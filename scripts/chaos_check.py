#!/usr/bin/env python3
"""Chaos gate: faulted runs must reproduce fault-free verdicts exactly.

Verifies each case-study module twice — once clean, once under a
deterministic :mod:`repro.resilience.faults` plan (a worker crash, a
cache-store I/O error, and a forced resource-out) with the retry ladder
enabled — and diffs the per-obligation verdict signatures.  Any
divergence means a recovery path changed an *answer* instead of just
costing time, and the script exits 1 so CI fails.

``--tiered`` runs the gate against the tiered proof cache instead: each
module is verified clean, then twice through a memory/disk/network
cache whose replica sits behind a 30%-drop fabric with plan-injected
reply corruption — and is partitioned (crashed) mid-run, between the
cold and warm passes, so the warm pass exercises breaker-tripped
degradation.  The bar is the same: byte-identical verdicts.

Run:  PYTHONPATH=src python scripts/chaos_check.py
      PYTHONPATH=src python scripts/chaos_check.py --jobs 2 \\
          --plan 'seed=5; pool.worker:crash@1; cache.store:io@1'
      PYTHONPATH=src python scripts/chaos_check.py --tiered
"""

import argparse
import importlib
import os
import sys
import tempfile

from repro.api import Session

# The Fig 9 module set: one representative verified module per shipped
# system.  (mimalloc is idiom-only and plog solver-free, so some fault
# points never arm there — the identical-verdicts bar still applies.)
MODULES = [
    ("ironkv", "repro.systems.ironkv.delegation_map.build_default_module"),
    ("nr", "repro.systems.nr.model.build_nr_core_module"),
    ("pagetable", "repro.systems.pagetable.view_verified.build_view_module"),
    ("mimalloc", "repro.systems.mimalloc.verified.build_bit_tricks_module"),
    ("plog", "repro.systems.plog.crc_verified.build_crc_table_module"),
]

DEFAULT_PLAN = ("seed=5; pool.worker:crash@1; cache.store:io@1; "
                "solver.check:resource_out@2")


def _build(dotted: str):
    modpath, _, fn = dotted.rpartition(".")
    return getattr(importlib.import_module(modpath), fn)()


def _signature(result):
    return [(f.name, o.label, o.kind, o.status)
            for f in result.functions for o in f.obligations]


TIERED_PLAN = "seed=7; cache.net:corrupt%0.25"


def run_tiered(jobs: int, plan: str) -> int:
    """Tiered-cache chaos gate; returns the number of diverged modules."""
    from repro.cache import CacheReplica, TieredProofCache
    from repro.runtime.network import Network

    failures = 0
    for name, dotted in MODULES:
        clean = Session(jobs=1).verify_module(_build(dotted))
        with tempfile.TemporaryDirectory(prefix="chaos_tc.") as cachedir:
            net = Network(drop_rate=0.3, seed=11)
            replica = CacheReplica("cache0", net, poll=0.01).start()
            try:
                signatures = []
                stats = []
                # Each phase gets a cold disk root so the net tier is
                # really on the lookup path: the cold pass pulls through
                # a lossy, corrupting fabric; the warm pass finds the
                # replica partitioned and must trip the breaker and
                # re-solve from scratch.
                for phase in ("cold", "warm"):
                    tc = TieredProofCache(os.path.join(cachedir, phase),
                                          tiers="mem,disk,net",
                                          network=net, net_timeout=0.02,
                                          breaker_threshold=2,
                                          client_name=f"chaos-{name}-{phase}")
                    session = Session(jobs=jobs, fault_plan=plan, cache=tc)
                    result = session.verify_module(_build(dotted))
                    signatures.append(_signature(result))
                    stats.append(result.stats)
                    tc.close()
                    if phase == "cold":
                        replica.crash()      # partition mid-run
            finally:
                replica.stop()
        cold, warm = stats
        tallies = (f"{cold.get('net_retries', 0)} cold retries, "
                   f"{cold.get('quarantined', 0)} quarantined, "
                   f"{warm.get('net_timeouts', 0)} warm timeouts, "
                   f"{warm.get('breaker_trips', 0)} breaker trips")
        if all(sig == _signature(clean) for sig in signatures):
            print(f"ok   {name}: verdicts identical across clean/cold/"
                  f"partitioned-warm ({tallies})")
        else:
            failures += 1
            print(f"FAIL {name}: tiered chaos run diverged from clean run")
            for sig in signatures:
                for c, f in zip(_signature(clean), sig):
                    if c != f:
                        print(f"     clean={c}  chaos={f}")
    if failures:
        print(f"{failures}/{len(MODULES)} modules diverged under the "
              f"tiered cache chaos scenario")
    else:
        print(f"all {len(MODULES)} modules byte-identical through the "
              f"tiered cache under 30% drop + corruption + mid-run "
              f"partition (plan {plan!r})")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=2,
                    help="worker processes for the chaos run (default 2)")
    ap.add_argument("--plan", default=None,
                    help="fault plan for the chaos run")
    ap.add_argument("--retries", type=int, default=3,
                    help="retry-escalation attempts (default 3)")
    ap.add_argument("--tiered", action="store_true",
                    help="gate the tiered proof cache: 30%% drop fabric, "
                         "corrupted replies, replica partitioned mid-run")
    args = ap.parse_args(argv)

    if args.tiered:
        return 1 if run_tiered(args.jobs, args.plan or TIERED_PLAN) else 0
    if args.plan is None:
        args.plan = DEFAULT_PLAN

    failures = 0
    total_fired = 0
    for name, dotted in MODULES:
        clean = Session(jobs=1).verify_module(_build(dotted))
        with tempfile.TemporaryDirectory(prefix="chaos_pc.") as cachedir:
            chaos = Session(jobs=args.jobs, retries=args.retries,
                            fault_plan=args.plan, cache_dir=cachedir)
            faulted = chaos.verify_module(_build(dotted))
        fired = faulted.stats.get("faults_injected", 0)
        total_fired += fired
        recovered = faulted.stats.get("retry_recoveries", 0)
        crashes = faulted.stats.get("pool_failures", 0)
        if _signature(faulted) == _signature(clean):
            print(f"ok   {name}: verdicts identical "
                  f"({fired} faults fired, {crashes} worker failures, "
                  f"{recovered} ladder recoveries)")
        else:
            failures += 1
            print(f"FAIL {name}: chaos run diverged from clean run")
            for c, f in zip(_signature(clean), _signature(faulted)):
                if c != f:
                    print(f"     clean={c}  chaos={f}")

    if total_fired == 0:
        print("FAIL: the fault plan never fired — the gate tested nothing")
        return 1
    if failures:
        print(f"{failures}/{len(MODULES)} modules diverged under faults")
        return 1
    print(f"all {len(MODULES)} modules byte-identical under plan "
          f"{args.plan!r} ({total_fired} faults fired)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
