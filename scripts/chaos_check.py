#!/usr/bin/env python3
"""Chaos gate: faulted runs must reproduce fault-free verdicts exactly.

Verifies each case-study module twice — once clean, once under a
deterministic :mod:`repro.resilience.faults` plan (a worker crash, a
cache-store I/O error, and a forced resource-out) with the retry ladder
enabled — and diffs the per-obligation verdict signatures.  Any
divergence means a recovery path changed an *answer* instead of just
costing time, and the script exits 1 so CI fails.

Run:  PYTHONPATH=src python scripts/chaos_check.py
      PYTHONPATH=src python scripts/chaos_check.py --jobs 2 \\
          --plan 'seed=5; pool.worker:crash@1; cache.store:io@1'
"""

import argparse
import importlib
import sys
import tempfile

from repro.api import Session

# The Fig 9 module set: one representative verified module per shipped
# system.  (mimalloc is idiom-only and plog solver-free, so some fault
# points never arm there — the identical-verdicts bar still applies.)
MODULES = [
    ("ironkv", "repro.systems.ironkv.delegation_map.build_default_module"),
    ("nr", "repro.systems.nr.model.build_nr_core_module"),
    ("pagetable", "repro.systems.pagetable.view_verified.build_view_module"),
    ("mimalloc", "repro.systems.mimalloc.verified.build_bit_tricks_module"),
    ("plog", "repro.systems.plog.crc_verified.build_crc_table_module"),
]

DEFAULT_PLAN = ("seed=5; pool.worker:crash@1; cache.store:io@1; "
                "solver.check:resource_out@2")


def _build(dotted: str):
    modpath, _, fn = dotted.rpartition(".")
    return getattr(importlib.import_module(modpath), fn)()


def _signature(result):
    return [(f.name, o.label, o.kind, o.status)
            for f in result.functions for o in f.obligations]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=2,
                    help="worker processes for the chaos run (default 2)")
    ap.add_argument("--plan", default=DEFAULT_PLAN,
                    help="fault plan for the chaos run")
    ap.add_argument("--retries", type=int, default=3,
                    help="retry-escalation attempts (default 3)")
    args = ap.parse_args(argv)

    failures = 0
    total_fired = 0
    for name, dotted in MODULES:
        clean = Session(jobs=1).verify_module(_build(dotted))
        with tempfile.TemporaryDirectory(prefix="chaos_pc.") as cachedir:
            chaos = Session(jobs=args.jobs, retries=args.retries,
                            fault_plan=args.plan, cache_dir=cachedir)
            faulted = chaos.verify_module(_build(dotted))
        fired = faulted.stats.get("faults_injected", 0)
        total_fired += fired
        recovered = faulted.stats.get("retry_recoveries", 0)
        crashes = faulted.stats.get("pool_failures", 0)
        if _signature(faulted) == _signature(clean):
            print(f"ok   {name}: verdicts identical "
                  f"({fired} faults fired, {crashes} worker failures, "
                  f"{recovered} ladder recoveries)")
        else:
            failures += 1
            print(f"FAIL {name}: chaos run diverged from clean run")
            for c, f in zip(_signature(clean), _signature(faulted)):
                if c != f:
                    print(f"     clean={c}  chaos={f}")

    if total_fired == 0:
        print("FAIL: the fault plan never fired — the gate tested nothing")
        return 1
    if failures:
        print(f"{failures}/{len(MODULES)} modules diverged under faults")
        return 1
    print(f"all {len(MODULES)} modules byte-identical under plan "
          f"{args.plan!r} ({total_fired} faults fired)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
