#!/usr/bin/env python3
"""Server smoke gate: daemon lifecycle + fast paths + quotas, via the CLIs.

Exercises the shipped entry points end to end, the way CI does:

1. start ``scripts/serve.py`` as a subprocess (ephemeral port, proof
   cache + journals in a temp dir, a small per-client step quota),
2. drive ``scripts/client.py`` through: cold verify → re-verify
   (must report the delta fast path, zero solvers built) → edit one
   function and re-verify (must re-solve *only* the edited function:
   one delta skip, verified result),
3. exhaust a greedy client's quota and assert the structured ``BUSY``
   reply (exit status 2),
4. shut the daemon down cleanly and assert a zero exit.

Any violated expectation exits 1 so CI fails.

Run:  PYTHONPATH=src python scripts/server_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MODULE_V1 = '''
from repro.lang import Module, U64, exec_fn, lit, ret, var

def build():
    mod = Module("smoke_mod")
    x = var("x", U64)
    exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
            requires=[x < lit(1000)],
            ensures=[var("r", U64).eq(x + lit(1))],
            body=[ret(x + lit(1))])
    exec_fn(mod, "dbl", [("x", U64)], ret=("r", U64),
            requires=[x < lit(500)],
            ensures=[var("r", U64).eq(x + x)],
            body=[ret(x + x)])
    return mod
'''

# The edit: dbl's contract bound changes; inc is untouched.
MODULE_V2 = MODULE_V1.replace("lit(500)", "lit(400)")

# Greedy-client fuel: a fresh fingerprint per iteration (the bound
# varies), so every submission is a cold solve that burns quota steps —
# repeats of a known module would ride the delta path and spend nothing.
MODULE_GREEDY = '''
from repro.lang import Module, U64, exec_fn, lit, ret, var

def build():
    mod = Module("greedy_mod")
    x = var("x", U64)
    exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
            requires=[x < lit({bound})],
            ensures=[var("r", U64).eq(x + lit(1))],
            body=[ret(x + lit(1))])
    return mod
'''


def _client(port, *args, client="editor"):
    """Run scripts/client.py; returns (exit status, parsed reply)."""
    cmd = [sys.executable, os.path.join(ROOT, "scripts", "client.py"),
           "--port", str(port), "--client", client, "--json", *args]
    env = dict(os.environ,
               PYTHONPATH=os.path.join(ROOT, "src")
               + os.pathsep + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=300)
    reply = None
    if proc.stdout.strip():
        try:
            reply = json.loads(proc.stdout)
        except ValueError:
            pass
    return proc.returncode, reply, proc


def _fail(message, proc=None):
    print(f"SMOKE FAIL: {message}")
    if proc is not None:
        print("--- stdout ---\n" + proc.stdout)
        print("--- stderr ---\n" + proc.stderr)
    return 1


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    v1 = os.path.join(tmp, "module_v1.py")
    v2 = os.path.join(tmp, "module_v2.py")
    with open(v1, "w", encoding="utf-8") as fh:
        fh.write(MODULE_V1)
    with open(v2, "w", encoding="utf-8") as fh:
        fh.write(MODULE_V2)

    env = dict(os.environ,
               PYTHONPATH=os.path.join(ROOT, "src")
               + os.pathsep + os.environ.get("PYTHONPATH", ""),
               # Triage off for this gate: its cold/delta/quota
               # arithmetic assumes every obligation reaches the solver
               # (the static tier has its own gate, triage_smoke.py).
               REPRO_TRIAGE="0")
    serve = subprocess.Popen(
        [sys.executable, os.path.join(ROOT, "scripts", "serve.py"),
         "--port", "0", "--workers", "2",
         "--cache-dir", os.path.join(tmp, "cache"),
         "--journal-dir", os.path.join(tmp, "journal"),
         "--quota", "40"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        line = serve.stdout.readline()
        if "listening on" not in line:
            return _fail(f"daemon did not start: {line!r}")
        port = int(line.split("listening on", 1)[1].split()[0]
                   .rsplit(":", 1)[1])
        print(f"daemon up on port {port}")

        # 1. Cold verify.
        rc, reply, proc = _client(port, "verify", "--source", v1)
        if rc != 0 or not reply or not reply["result"]["ok"]:
            return _fail("cold verify did not succeed", proc)
        if reply["server"]["path"] != "cold":
            return _fail(f"expected cold path, got {reply['server']}", proc)
        print(f"cold verify ok (solvers_built="
              f"{reply['server']['solvers_built']})")

        # 2. Identical re-submission must ride the delta fast path and
        #    build no solver at all.
        rc, reply, proc = _client(port, "verify", "--source", v1)
        if rc != 0 or reply["server"]["path"] != "delta":
            return _fail(f"re-verify not on delta path: "
                         f"{reply and reply['server']}", proc)
        if reply["server"]["solvers_built"] != 0:
            return _fail("delta-path request built a solver", proc)
        if reply["server"]["delta_skips"] != 2:
            return _fail(f"expected 2 delta skips, got "
                         f"{reply['server']['delta_skips']}", proc)
        print("warm re-verify ok: delta fast path, zero solvers built")

        # 3. Edit one function: only the changed fingerprint re-solves.
        rc, reply, proc = _client(port, "verify", "--source", v2)
        if rc != 0 or not reply["result"]["ok"]:
            return _fail("post-edit verify did not succeed", proc)
        if reply["server"]["delta_skips"] != 1:
            return _fail(f"expected exactly 1 delta skip after the edit, "
                         f"got {reply['server']['delta_skips']}", proc)
        print("post-edit verify ok: unchanged function skipped, "
              "edited function re-solved")

        # 4. Quota exhaustion → structured BUSY (exit status 2).  Each
        #    greedy submission is a distinct module (cold solve), so the
        #    ledger drains a few steps per request until admission stops.
        busy = None
        for i in range(40):
            fuel = os.path.join(tmp, f"greedy_{i}.py")
            with open(fuel, "w", encoding="utf-8") as fh:
                fh.write(MODULE_GREEDY.format(bound=100 + i))
            rc, reply, proc = _client(port, "verify", "--source", fuel,
                                      client="greedy")
            if rc == 2:
                busy = reply
                break
            if rc not in (0, 1):
                return _fail(f"unexpected client exit {rc}", proc)
        if busy is None or busy.get("reason") != "quota":
            return _fail(f"no quota BUSY reply observed: {busy}", proc)
        print(f"quota exhaustion ok: BUSY after "
              f"{busy.get('used')}/{busy.get('budget')} steps")

        # 5. status must report the paths and quota ledger.
        rc, reply, proc = _client(port, "status")
        result = reply["result"]
        if result["paths"]["delta"] < 1 or "greedy" not in \
                result["quota"]["clients"]:
            return _fail(f"status payload incomplete: {result}", proc)
        print(f"status ok: paths={result['paths']}, "
              f"warm={result['warm']['entries']} entries")

        # 6. Clean shutdown.
        rc, reply, proc = _client(port, "shutdown")
        if rc != 0:
            return _fail("shutdown request failed", proc)
        deadline = time.time() + 30
        while serve.poll() is None and time.time() < deadline:
            time.sleep(0.2)
        if serve.poll() != 0:
            return _fail(f"daemon exit status {serve.poll()}")
        print("clean shutdown ok")
        print("SMOKE PASS")
        return 0
    finally:
        if serve.poll() is None:
            serve.kill()


if __name__ == "__main__":
    sys.exit(main())
