#!/usr/bin/env python3
"""Start the verification service daemon (repro.server).

Reads the ``REPRO_SERVER_*`` knobs (port, queue depth, warm-context
budget, per-client quota) and the ``REPRO_*`` verification knobs once
at startup; per-request variation happens through protocol config
overrides, never by re-reading the environment.  Flags beat env.

Run:  PYTHONPATH=src python scripts/serve.py
      PYTHONPATH=src python scripts/serve.py --port 0 --workers 4 \\
          --cache-dir .pv_cache --journal-dir .pv_journal --quota 200000
"""

import argparse
import sys

from repro.api import VerifyConfig
from repro.server import ServerConfig, VerifyServer


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default=None, help="bind address")
    ap.add_argument("--port", type=int, default=None,
                    help="TCP port (0 = ephemeral; printed on startup)")
    ap.add_argument("--workers", type=int, default=None,
                    help="resident worker threads")
    ap.add_argument("--queue-depth", type=int, default=None,
                    help="max queued requests before BUSY replies")
    ap.add_argument("--warm-budget", type=int, default=None,
                    help="warm solver-context pool budget in bytes")
    ap.add_argument("--quota", type=int, default=None,
                    help="per-client solver-step quota (0 = unlimited)")
    ap.add_argument("--cache-dir", default=None,
                    help="proof-cache root (enables the delta fast path)")
    ap.add_argument("--journal-dir", default=None,
                    help="run-journal directory (crash-resumable requests)")
    ap.add_argument("--max-steps", type=int, default=None,
                    help="default per-check solver step budget")
    args = ap.parse_args(argv)

    server_cfg = ServerConfig.from_env(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, warm_budget=args.warm_budget,
        client_quota=args.quota)
    verify_cfg = VerifyConfig.from_env(
        cache_dir=args.cache_dir, journal_dir=args.journal_dir,
        max_steps=args.max_steps)
    server = VerifyServer(server_cfg, verify_cfg)

    import asyncio

    async def serve():
        await server.start()
        print(f"repro.server listening on "
              f"{server_cfg.host}:{server.port} "
              f"(workers={server_cfg.workers}, "
              f"queue={server_cfg.queue_depth}, "
              f"cache={server.base.cache_dir or 'off'}, "
              f"delta={'on' if server.base.delta else 'off'})",
              flush=True)
        await server.serve_forever()
        print("repro.server: clean shutdown", flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
