#!/usr/bin/env python3
"""Run the static-analysis passes over a module, no solver involved.

The module is named either by a preset (one of the shipped case-study
systems and benchmarks, see ``--list``) or by a dotted builder path like
``repro.systems.nr.model.build_nr_core_module``.  Exit status is 1 when
any module produces an error-severity finding — that is the same
condition under which the ``REPRO_ANALYZE`` scheduler gate would reject
it before issuing a single SMT query — so CI can call this directly.

Run:  PYTHONPATH=src python scripts/analyze_module.py --all
      PYTHONPATH=src python scripts/analyze_module.py ironkv --json
      PYTHONPATH=src python scripts/analyze_module.py \\
          repro.systems.nr.model.build_nr_core_module
"""

import argparse
import importlib
import json
import sys

from repro.api import Session

# Preset name -> dotted builder path.  Builders must take no arguments.
PRESETS = {
    "ironkv": "repro.systems.ironkv.delegation_map.build_default_module",
    "ironkv-epr": "repro.systems.ironkv.delegation_map_epr.build_epr_model",
    "ironkv-marshal":
        "repro.systems.ironkv.marshal_verified.build_u64_roundtrip_module",
    "nr": "repro.systems.nr.model.build_nr_core_module",
    "pagetable": "repro.systems.pagetable.view_verified.build_view_module",
    "pagetable-entry":
        "repro.systems.pagetable.entry_verified.build_entry_module",
    "mimalloc": "repro.systems.mimalloc.verified.build_bit_tricks_module",
    "mimalloc-disjoint":
        "repro.systems.mimalloc.verified.build_disjointness_module",
    "plog": "repro.systems.plog.crc_verified.build_crc_table_module",
    "lists": "repro.millibench.lists.build_singly_linked_module",
    "lists-doubly": "repro.millibench.lists.build_doubly_linked_module",
    "distlock": "repro.millibench.distlock.build_default_module",
    "distlock-epr": "repro.millibench.distlock.build_epr_module",
    "stdlib": "repro.lang.stdlib.build_stdlib",
}


def build(target: str):
    dotted = PRESETS.get(target, target)
    module_path, func_name = dotted.rsplit(".", 1)
    return getattr(importlib.import_module(module_path), func_name)()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="static analysis of verification modules")
    ap.add_argument("targets", nargs="*",
                    help="preset names or dotted builder paths")
    ap.add_argument("--all", action="store_true",
                    help="analyze every preset")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable output (one report per line)")
    ap.add_argument("--triage", action="store_true",
                    help="also preview the static proving tier: plan each "
                         "function (no solver) and report how many "
                         "obligations abstract interpretation discharges")
    ap.add_argument("--list", action="store_true",
                    help="list preset names and exit")
    args = ap.parse_args(argv)
    if args.list:
        for name, dotted in PRESETS.items():
            print(f"{name:<20} {dotted}")
        return 0
    targets = list(args.targets)
    if args.all:
        targets.extend(p for p in PRESETS if p not in targets)
    if not targets:
        ap.error("no targets (name presets, dotted paths, or --all)")
    session = Session()
    failed = False
    for target in targets:
        mod = build(target)
        report = session.analyze(mod)
        failed = failed or report.has_errors
        payload = report.to_json() if args.json else None
        preview = None
        if args.triage:
            from repro.analysis.absint import triage_preview
            preview = triage_preview(mod)
        if args.json:
            if preview is not None:
                # Additive key; the analysis schema stays version 2.
                payload["triage"] = preview
            print(json.dumps(payload, sort_keys=True))
        else:
            print(report.report())
            if preview is not None:
                print(f"  triage: {preview['static_proved']}/"
                      f"{preview['obligations']} obligations statically "
                      f"proved ({preview['rate']:.0%}), "
                      f"{preview['direct']} direct")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
