#!/usr/bin/env python3
"""Diagnostics-engine demo: a deliberately broken IronKV delegation map.

Rebuilds the ``dm_get`` scan from the IronKV case study (§3.2, Fig. 3a)
with the classic off-by-one — the returned window index is ``i + 1``
instead of ``i`` — states its whole postcondition as one conjunction,
and verifies with diagnostics on.  The report demonstrates every layer
of the engine:

* the failure is classified (PostCondFail) with its source span,
* the counterexample witness gives concrete pivots/key values,
* assert/ensures splitting pinpoints exactly which conjuncts break,
* the QI profiler shows which quantifier (dm_wf sortedness vs. the
  loop invariant) drove instantiation.

The script also re-verifies with ``jobs=4`` and with warm incremental
contexts and asserts the diagnostic output is identical to the serial
run — the determinism guarantee.  Verification goes through the
:mod:`repro.api` ``Session`` front door.

Run:  PYTHONPATH=src python scripts/diagnose_example.py
"""

import json
import sys

from repro.api import Session, VerifyConfig
from repro.lang import (BOOL, INT, U64, Module, SeqType, StructType, and_all,
                        assign, call, exec_fn, forall, let_, lit,
                        ret, spec_fn, struct, var, while_)
from repro.diag import module_profile
from repro.diag.profile import profile_table

SeqU = SeqType(U64)


def build_broken_module() -> Module:
    mod = Module("delegation_map_broken")
    p = var("p", SeqU)      # pivots
    h = var("h", SeqU)      # hosts
    k = var("k", U64)

    spec_fn(mod, "dm_wf", [("p", SeqU), ("h", SeqU)], BOOL,
            body=and_all(
                p.length() > 0,
                h.length().eq(p.length()),
                p.index(0).eq(0),
                forall([("i", INT), ("j", INT)],
                       and_all(lit(0) <= var("i", INT),
                               var("i", INT) < var("j", INT),
                               var("j", INT) < p.length()).implies(
                           p.index(var("i", INT)) < p.index(var("j", INT)))),
            ))

    GetOut = StructType("DmGetOut").declare([("host", U64), ("idx", INT)])
    mod.datatype(GetOut)
    i = var("i", INT)
    out = var("out", GetOut)
    exec_fn(
        mod, "dm_get", [("p", SeqU), ("h", SeqU), ("k", U64)],
        ret=("out", GetOut),
        requires=[call(mod, "dm_wf", p, h)],
        # The whole contract as ONE conjunction, so splitting gets to
        # pinpoint the clauses the off-by-one breaks.
        ensures=[and_all(
            lit(0) <= out.field("idx"),
            out.field("idx") < p.length(),
            p.index(out.field("idx")) <= k,
            out.field("host").eq(h.index(out.field("idx"))),
        )],
        body=[
            let_("i", p.length() - 1),
            while_(p.index(i) > k,
                   invariants=[
                       lit(0) <= i, i < p.length(),
                       forall([("m", INT)],
                              and_all(i < var("m", INT),
                                      var("m", INT) < p.length()).implies(
                                  k < p.index(var("m", INT)))),
                   ],
                   body=[assign("i", i - 1)],
                   decreases=i),
            # BUG: returns window i+1, one past the pivot that owns k.
            ret(struct(GetOut, host=h.index(i), idx=i + 1)),
        ])
    return mod


def diag_signature(result):
    """Everything diagnostic about a result, minus wall-clock noise."""
    return [(fn, o.label, o.kind, o.status, o.seq, str(o.span),
             o.error_type, o.diag.to_dict() if o.diag else None)
            for fn, o in result.failures()]


def main() -> int:
    serial = Session(VerifyConfig(jobs=1)).diagnose(build_broken_module())
    print(serial.report())
    print()

    rows = module_profile(serial, k=5)
    print("module QI profile (top 5):")
    print(profile_table(rows))
    print()

    parallel = Session(VerifyConfig(jobs=4)).diagnose(build_broken_module())
    if diag_signature(serial) != diag_signature(parallel):
        print("FATAL: serial and jobs=4 diagnostics differ", file=sys.stderr)
        return 1
    warm = Session(VerifyConfig(incremental=True)).diagnose(
        build_broken_module())
    if diag_signature(serial) != diag_signature(warm):
        print("FATAL: serial and incremental diagnostics differ",
              file=sys.stderr)
        return 1
    print("determinism: serial, jobs=4, and incremental diagnostics "
          "are identical")

    if serial.ok:
        print("FATAL: the broken module verified?!", file=sys.stderr)
        return 1
    failures = serial.failures()
    post = [o for _, o in failures if o.kind == "ensures"]
    if not post:
        print("FATAL: expected a postcondition failure", file=sys.stderr)
        return 1
    diag = post[0].diag
    checks = {
        "taxonomy class is PostCondFail":
            post[0].error_type == "PostCondFail",
        "counterexample witness present": bool(diag.witness),
        "splitting found failing conjunct(s)":
            bool(diag.failing_conjuncts())
            and len(diag.failing_conjuncts()) < len(diag.conjuncts),
        "QI profile recorded": bool(rows),
        "source span recorded": post[0].span is not None,
    }
    for name, ok in checks.items():
        print(f"  {'ok' if ok else 'MISSING'}: {name}")
    if not all(checks.values()):
        return 1

    # Machine-readable rendering round-trips through json and carries
    # the documented schema version.
    payload = serial.to_json()
    if payload.get("schema_version") != 2:
        print("FATAL: unexpected report schema_version", file=sys.stderr)
        return 1
    print("\nJSON rendering ok "
          f"({len(json.dumps(payload))} bytes, schema_version 2)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
