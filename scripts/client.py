#!/usr/bin/env python3
"""Submit a module to the verification daemon; print verdicts/diagnostics.

Run:  PYTHONPATH=src python scripts/client.py --port 9178 \\
          verify repro.systems.nr.model:build_nr_core_module
      PYTHONPATH=src python scripts/client.py --port 9178 \\
          verify --source edited_module.py --builder build --diag
      PYTHONPATH=src python scripts/client.py --port 9178 status

Exit status: 0 = verified (or status/shutdown ok), 1 = verification
failed, 2 = busy (queue full / quota exhausted), 3 = protocol or
transport error.
"""

import argparse
import json
import sys

from repro.server import ServerClient
from repro.server.client import ServerUnavailable


def _print_result(reply: dict, as_json: bool) -> int:
    if as_json:
        print(json.dumps(reply, indent=2, sort_keys=True))
    status = reply.get("status")
    if status == "busy":
        if not as_json:
            print(f"BUSY ({reply.get('reason')}): "
                  f"{json.dumps({k: v for k, v in reply.items() if k not in ('id', 'status', 'reason')})}")
        return 2
    if status != "ok":
        if not as_json:
            print(f"ERROR: {reply.get('error')}", file=sys.stderr)
        return 3
    result = reply.get("result") or {}
    server = reply.get("server") or {}
    if as_json:
        return 0 if result.get("ok", True) else 1
    if "functions" in result:           # a ModuleResult payload
        verdict = "VERIFIED" if result["ok"] else (
            "REJECTED" if result.get("rejected") else "FAILED")
        print(f"{verdict} {result['module']} "
              f"[path={server.get('path')}, "
              f"queued={server.get('queued_ms')}ms, "
              f"solvers_built={server.get('solvers_built')}, "
              f"delta_skips={server.get('delta_skips')}]")
        for fn in result["functions"]:
            marker = "ok " if fn["ok"] else "FAIL"
            print(f"  {marker} {fn['name']} "
                  f"({len(fn['obligations'])} obligations)")
        for failure in result.get("failures", []):
            print(f"  ✗ {failure['function']}: {failure['label']} "
                  f"[{failure.get('error_type')}] @ {failure.get('span')}")
            diag = failure.get("diag")
            if diag and diag.get("message"):
                print(f"      {diag['message']}")
        return 0 if result["ok"] else 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--client", default="cli",
                    help="client name for fairness/quota accounting")
    ap.add_argument("--priority", type=int, default=0)
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="socket timeout in seconds")
    ap.add_argument("--json", action="store_true",
                    help="print the raw reply as JSON")
    ap.add_argument("verb", choices=["verify", "analyze", "diagnose",
                                     "profiles", "status", "shutdown"])
    ap.add_argument("builder", nargs="?",
                    help="dotted builder path 'pkg.mod:fn' "
                         "(module verbs, unless --source)")
    ap.add_argument("--source", default=None,
                    help="file whose python source defines the module "
                         "builder (submitted verbatim)")
    ap.add_argument("--builder-name", default="build",
                    help="builder callable name inside --source")
    ap.add_argument("--diag", action="store_true",
                    help="request per-failure diagnostics")
    ap.add_argument("--max-steps", type=int, default=None,
                    help="per-check solver step budget override")
    ap.add_argument("--profile", default=None,
                    help="automation profile name (see the 'profiles' verb)")
    ap.add_argument("--portfolio", type=int, default=None,
                    help="race width for stubborn obligations (0 = off)")
    args = ap.parse_args(argv)

    config = {}
    if args.diag:
        config["diagnostics"] = True
    if args.max_steps is not None:
        config["max_steps"] = args.max_steps
    if args.profile is not None:
        config["profile"] = args.profile
    if args.portfolio is not None:
        config["portfolio"] = args.portfolio

    try:
        with ServerClient(args.host, args.port, client=args.client,
                          timeout=args.timeout) as client:
            if args.verb == "profiles":
                return _print_result(client.profiles(), args.json)
            if args.verb == "status":
                return _print_result(client.status(), args.json)
            if args.verb == "shutdown":
                return _print_result(client.shutdown(), args.json)
            kwargs = {"config": config or None,
                      "priority": args.priority}
            if args.source:
                with open(args.source, "r", encoding="utf-8") as fh:
                    kwargs["source"] = fh.read()
                kwargs["builder"] = args.builder_name
            elif args.builder:
                kwargs["builder"] = args.builder
            else:
                ap.error(f"{args.verb} needs a builder path or --source")
            reply = getattr(client, args.verb)(**kwargs)
            return _print_result(reply, args.json)
    except ServerUnavailable as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
