#!/usr/bin/env python3
"""Profiles smoke gate: the profile axis + the learning tuner, end to end.

Exercises the profile-first API the way CI does:

1. profile-axis ablation on two case studies (plog CRC table, ironkv
   delegation map): the E-matching profiles (default, frugal,
   aggressive) must verify both; the MBQI profile (epr) must verify
   plog but fail ironkv under a 1s per-obligation deadline — grounded
   arithmetic is exactly where complete instantiation grinds, the gap
   that motivates per-obligation portfolio racing;
2. the stubborn corpus module (one MBQI-only goal + one
   E-matching-only goal): the fixed default profile fails it,
   ``portfolio=2`` verifies it;
3. tuner learning: a second portfolio run against the same proof
   cache + tuner directory must build *strictly fewer* solvers than
   the cold race (and with the cache warm, exactly zero).

Any violated expectation exits 1 so CI fails.

Run:  PYTHONPATH=src python scripts/profiles_smoke.py
"""

import importlib
import sys
import tempfile

from repro.api import Session, VerifyConfig
from repro.profiles.corpus import build_stubborn_pair_module
from repro.smt.solver import solver_constructions

CASE_STUDIES = [
    ("plog_crc", "repro.systems.plog.crc_verified:build_crc_table_module"),
    ("ironkv", "repro.systems.ironkv.delegation_map:build_default_module"),
]

_failures = []


def _build(spec: str):
    mod_path, _, attr = spec.partition(":")
    return getattr(importlib.import_module(mod_path), attr)()


def gate(name: str, ok: bool, detail: str = "") -> None:
    marker = "ok  " if ok else "FAIL"
    print(f"{marker} {name}" + (f" ({detail})" if detail else ""), flush=True)
    if not ok:
        _failures.append(name)


def main() -> int:
    # ---- 1. profile axis over the case studies ------------------------
    expected = {
        "default": {"plog_crc": True, "ironkv": True},
        "frugal": {"plog_crc": True, "ironkv": True},
        "aggressive": {"plog_crc": True, "ironkv": True},
        "epr": {"plog_crc": True, "ironkv": False},
    }
    for prof, want in expected.items():
        for label, spec in CASE_STUDIES:
            result = Session(VerifyConfig(profile=prof,
                                          job_timeout=1.0)).verify_module(
                _build(spec))
            gate(f"profile-axis {prof}/{label}",
                 result.ok == want[label],
                 f"verified={result.ok}, expected={want[label]}")

    # ---- 2. portfolio rescues the stubborn module ---------------------
    fixed = Session(VerifyConfig()).verify_module(
        build_stubborn_pair_module())
    gate("stubborn_pair fails under the fixed default profile",
         not fixed.ok)

    with tempfile.TemporaryDirectory() as tmp:
        cfg = VerifyConfig(portfolio=2, cache_dir=tmp)
        before = solver_constructions()
        cold = Session(cfg).verify_module(build_stubborn_pair_module())
        cold_built = solver_constructions() - before
        gate("portfolio=2 verifies stubborn_pair", cold.ok,
             f"races={cold.stats.get('portfolio_races', 0)}, "
             f"solvers={cold_built}")
        gate("the race actually fanned out",
             cold.stats.get("portfolio_races", 0) >= 1
             and cold.stats.get("portfolio_wins", 0) >= 1)

        # ---- 3. tuner second pass: strictly fewer constructions -------
        before = solver_constructions()
        warm = Session(cfg).verify_module(build_stubborn_pair_module())
        warm_built = solver_constructions() - before
        gate("tuner-warm second pass verifies", warm.ok)
        gate("second pass builds strictly fewer solvers",
             warm_built < cold_built, f"{cold_built} -> {warm_built}")
        gate("cache+tuner-warm replay builds zero solvers",
             warm_built == 0, f"built={warm_built}")
        gate("second pass redirects instead of racing",
             warm.stats.get("portfolio_races", 0) == 0
             and warm.stats.get("tuner_hits", 0) >= 1)

    if _failures:
        print(f"\n{len(_failures)} gate(s) failed: {_failures}",
              file=sys.stderr)
        return 1
    print("\nprofiles smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
