#!/usr/bin/env python3
"""Triage smoke gate: the static proving tier, end to end.

Exercises the abstract-interpretation triage tier the way CI does, over
the five case-study systems:

1. **shadow soundness** — ``triage="shadow"`` runs the tier *and* the
   solver on every obligation; a single disagreement (tier claimed, the
   solver refuted) raises ``TriageDisagreement`` and fails the gate;
2. **solver economy** — a triage-on run must construct *strictly
   fewer* solvers than triage-off, and the discharge rate across the
   five systems must clear the 15% floor;
3. **verdict identity** — the per-obligation verdict signatures
   ``(fn, label, kind, status)`` of the triage-on run must be
   byte-identical to triage-off, serial and cache-warm alike;
4. **cache replay** — with a shared cache directory, a second
   triage-on run must replay the static verdicts (entry kind
   ``static-proved``) and build zero solvers.

Any violated expectation exits 1 so CI fails.

Run:  PYTHONPATH=src python scripts/triage_smoke.py
"""

import importlib
import sys
import tempfile

from repro.api import Session, VerifyConfig
from repro.smt.solver import total_solver_constructions

MODULES = [
    ("ironkv", "repro.systems.ironkv.delegation_map:build_default_module"),
    ("nr", "repro.systems.nr.model:build_nr_core_module"),
    ("pagetable", "repro.systems.pagetable.view_verified:build_view_module"),
    ("mimalloc", "repro.systems.mimalloc.verified:build_bit_tricks_module"),
    ("plog", "repro.systems.plog.crc_verified:build_crc_table_module"),
]

_failures = []


def _build(spec: str):
    mod_path, _, attr = spec.partition(":")
    return getattr(importlib.import_module(mod_path), attr)()


def gate(name: str, ok: bool, detail: str = "") -> None:
    marker = "ok  " if ok else "FAIL"
    print(f"{marker} {name}" + (f" ({detail})" if detail else ""), flush=True)
    if not ok:
        _failures.append(name)


def _signature(result):
    return [(f.name, o.label, o.kind, o.status)
            for f in result.functions for o in f.obligations]


def _run_all(triage: str, cache_dir=None):
    """(signatures, solvers_built, static_proved, obligations)."""
    built0 = total_solver_constructions()
    sigs, static, total = {}, 0, 0
    cfg = VerifyConfig(triage=triage, cache_dir=cache_dir)
    with Session(cfg) as session:
        for name, spec in MODULES:
            result = session.verify_module(_build(spec))
            gate(f"{name} verifies (triage={triage})", result.ok)
            sigs[name] = _signature(result)
            static += int(result.stats.get("static_proved", 0) or 0)
            total += sum(len(f.obligations) for f in result.functions)
    return sigs, total_solver_constructions() - built0, static, total


def main() -> int:
    # ---- 1. shadow soundness: tier + solver on everything -------------
    from repro.analysis.absint import TriageDisagreement
    try:
        shadow_sigs, shadow_built, shadow_claims, _ = _run_all("shadow")
        gate("shadow mode: zero tier/solver disagreements", True,
             f"{shadow_claims} claims checked against the solver")
    except TriageDisagreement as exc:
        gate("shadow mode: zero tier/solver disagreements", False, str(exc))
        shadow_sigs = None

    # ---- 2 + 3. economy and verdict identity --------------------------
    off_sigs, off_built, _, _ = _run_all("off")
    on_sigs, on_built, static, total = _run_all("on")
    gate("triage-on builds strictly fewer solvers",
         on_built < off_built, f"{on_built} < {off_built}")
    rate = static / total if total else 0.0
    gate("static discharge rate >= 15%",
         rate >= 0.15, f"{static}/{total} = {rate:.1%}")
    gate("verdict signatures identical (on vs off)", on_sigs == off_sigs)
    if shadow_sigs is not None:
        gate("verdict signatures identical (shadow vs off)",
             shadow_sigs == off_sigs)

    # ---- 4. static verdicts replay from the cache ---------------------
    with tempfile.TemporaryDirectory() as tmp:
        cold_sigs, cold_built, cold_static, _ = _run_all("on", cache_dir=tmp)
        warm_sigs, warm_built, warm_static, _ = _run_all("on", cache_dir=tmp)
        gate("cache-warm triage run builds zero solvers",
             warm_built == 0, f"built {warm_built}")
        gate("cache-warm verdicts identical to cold",
             warm_sigs == cold_sigs)
        gate("static verdicts replay from cache",
             warm_static == cold_static,
             f"cold {cold_static}, warm {warm_static}")

    print()
    if _failures:
        print(f"FAILED: {len(_failures)} gate(s): {', '.join(_failures)}")
        return 1
    print("all triage gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
