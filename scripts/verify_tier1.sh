#!/usr/bin/env bash
# Run the tier-1 suite twice against a shared proof cache (cold, then
# warm), assert the warm run is no slower, and report the cache hit rate
# for a warm re-verification of the Fig 9 module set.
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_CACHE_DIR="${REPRO_CACHE_DIR:-$(mktemp -d -t pv_cache.XXXXXX)}"
echo "== proof cache at $REPRO_CACHE_DIR"

t0=$(date +%s.%N)
PYTHONPATH=src python -m pytest -x -q
t1=$(date +%s.%N)
PYTHONPATH=src python -m pytest -x -q
t2=$(date +%s.%N)

PYTHONPATH=src python - "$t0" "$t1" "$t2" <<'EOF'
import sys

t0, t1, t2 = map(float, sys.argv[1:4])
cold, warm = t1 - t0, t2 - t1
print(f"== tier-1 cold run: {cold:.1f}s, warm run: {warm:.1f}s")

# Re-verification of the Fig 9 VC module set through the shared cache:
# the first pass tops up whatever tier-1 already stored (tests verify
# some of these modules under nondefault configs, which key separately);
# the measured second pass must answer everything without solving.
from repro.systems.ironkv.delegation_map import build_default_module
from repro.systems.ironkv.marshal_verified import build_u64_roundtrip_module
from repro.systems.mimalloc.verified import (build_bit_tricks_module,
                                             build_disjointness_module)
from repro.systems.pagetable.entry_verified import build_entry_module
from repro.smt.solver import Stats
from repro.vc.scheduler import Scheduler
from repro.vc.wp import VcGen

builders = (build_default_module, build_u64_roundtrip_module,
            build_bit_tricks_module, build_disjointness_module,
            build_entry_module)
total = Stats()
for passno in range(2):
    total = Stats()
    for build in builders:
        sched = Scheduler()  # env-configured: picks up REPRO_CACHE_DIR
        res = VcGen(build()).verify_module(sched)
        assert res.ok, f"{res.name} failed verification"
        total.merge(sched.stats.snapshot())

snap = total.snapshot()
hits, misses = snap["cache_hits"], snap["cache_misses"]
rate = hits / max(hits + misses, 1)
print(f"== Fig 9 set warm re-verify: {hits} hits / {misses} misses "
      f"({rate:.0%} hit rate, {snap['obligations']} obligations)")
assert rate >= 0.9, f"cache hit rate {rate:.0%} below 90%"
# The warm tier-1 run must be no slower than the cold one (10% noise
# slack: most suite time is solver work the cache removes).
assert warm <= cold * 1.10, f"warm run slower: {warm:.1f}s vs {cold:.1f}s"
print("== OK")
EOF
