"""§4.1.3 distributed lock: default-mode proof vs EPR-mode automation.

Paper result: the default-mode inductiveness proof is ~25 lines; the EPR
abstraction makes the invariant check automatic but costs ~100 lines of
boilerplate (order axioms, freshness hypotheses), suggesting EPR pays off
on complex examples (like the delegation map) more than simple ones.
"""

import inspect
import time

import pytest

from conftest import banner, table
from repro.epr import verify_epr_module
from repro.millibench import distlock
from repro.vc.wp import VcGen


@pytest.fixture(scope="module")
def results():
    t0 = time.perf_counter()
    default_res = VcGen(distlock.build_default_module()).verify_module()
    t_default = time.perf_counter() - t0
    t0 = time.perf_counter()
    epr_res = verify_epr_module(distlock.build_epr_module())
    t_epr = time.perf_counter() - t0
    return default_res, t_default, epr_res, t_epr


def _source_lines(fn) -> int:
    return len([ln for ln in inspect.getsource(fn).splitlines()
                if ln.strip() and not ln.strip().startswith("#")])


def test_distlock_both_modes_verify(results, benchmark):
    default_res, t_default, epr_res, t_epr = results
    banner("Distributed lock: default mode vs EPR mode")
    default_lines = _source_lines(distlock.build_default_module)
    epr_lines = _source_lines(distlock.build_epr_module)
    table(["mode", "verified", "time (s)", "source lines"],
          [["default", "yes" if default_res.ok else "NO",
            f"{t_default:.2f}", default_lines],
           ["epr", "yes" if epr_res.ok else "NO", f"{t_epr:.2f}",
            epr_lines]])
    assert default_res.ok, default_res.report()
    assert epr_res.ok, epr_res.report()
    # The paper's observation: EPR needs *more* source for this simple
    # protocol (the boilerplate), even though the invariant check itself
    # is automatic.
    assert epr_lines > default_lines * 0.8
    benchmark.pedantic(
        lambda: VcGen(distlock.build_default_module()).verify_module(),
        rounds=1, iterations=1)


def test_distlock_epr_is_push_button(results, benchmark):
    # The EPR obligations carry no manual proof bodies at all.
    mod = distlock.build_epr_module()
    for fn in mod.functions.values():
        if fn.mode == "proof":
            assert fn.body == []
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_distlock_broken_protocol_caught(benchmark):
    # Drop accept's transfer requirement: mutual exclusion must fail.
    from repro.lang import (BOOL, INT, Function, Module, Param, and_all,
                            call, forall, or_all, proof_fn, var)
    from repro.millibench.distlock import Node, State

    mod = Module("distlock_broken")
    mod.add(Function("holds", "spec",
                     [Param("s", State), Param("n", Node)],
                     ("result", BOOL)))
    s, s2, n = var("s", State), var("s2", State), var("n", Node)
    qn = ("qn", Node)
    vn = var("qn", Node)

    def inv(st):
        return forall([("a", Node), ("b", Node)],
                      and_all(call(mod, "holds", st, var("a", Node)),
                              call(mod, "holds", st, var("b", Node))
                              ).implies(var("a", Node).eq(var("b", Node))))

    accept_anyone = forall([qn], call(mod, "holds", s2, vn).eq(
        or_all(call(mod, "holds", s, vn), vn.eq(n))))
    proof_fn(mod, "accept_without_token",
             [("s", State), ("s2", State), ("n", Node)],
             requires=[inv(s), accept_anyone], ensures=[inv(s2)], body=[])
    res = VcGen(mod).verify_module()
    assert not res.ok
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
