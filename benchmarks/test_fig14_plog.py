"""Figure 14: persistent-log append throughput vs libpmemlog.

Paper result: the initial verified log is slow on small appends (extra
DRAM copying); the latest version matches libpmemlog across sizes — even
while computing CRCs, because it takes no locks.

Throughput here is measured in *simulated device time* (the pmem model
charges per-byte write cost and per-flush latency) plus the real Python
overhead of each implementation's extra work, which is what reproduces
the crossover shape deterministically.
"""

import time

import pytest

from conftest import FULL, banner, table
from repro.runtime.pmem import PmemDevice
from repro.systems.plog.log import (PmdkLikeLog, VerifiedLogInitial,
                                    VerifiedLogLatest)

SIZES = [128, 256, 512, 1024, 4096, 8192, 65536]
TOTAL_BYTES = (1 << 22) if not FULL else (1 << 26)

VARIANTS = [("PMDK", PmdkLikeLog), ("initial", VerifiedLogInitial),
            ("latest", VerifiedLogLatest)]


def _throughput(cls, append_size: int) -> float:
    """MiB/s of appends, with device time from the pmem cost model."""
    device = PmemDevice(1 << 20)
    log = cls(device)
    payload = bytes(append_size)
    count = max(TOTAL_BYTES // append_size, 1)
    wall0 = time.perf_counter()
    for _ in range(count):
        if log.free_space() < append_size:
            log.advance_head(log.tail)
        log.append(payload)
    wall = time.perf_counter() - wall0
    total = wall + device.elapsed_ns / 1e9
    return (count * append_size) / total / (1 << 20)


@pytest.fixture(scope="module")
def curves():
    return {name: [_throughput(cls, s) for s in SIZES]
            for name, cls in VARIANTS}


def test_fig14_throughput(curves, benchmark):
    banner("Figure 14: log append throughput (MiB/s)")
    rows = [[f"{s}B"] + [f"{curves[name][i]:.1f}"
                         for name, _ in VARIANTS]
            for i, s in enumerate(SIZES)]
    table(["append size"] + [name for name, _ in VARIANTS], rows)
    pmdk = curves["PMDK"]
    initial = curves["initial"]
    latest = curves["latest"]
    # Shape 1: the initial version loses to the latest on small appends
    # (the staging copy dominates when records are small).
    small = SIZES.index(128)
    assert initial[small] < latest[small]
    # Shape 2: the latest version is comparable to PMDK everywhere
    # (within 2x at every size, despite computing CRCs).
    for i, s in enumerate(SIZES):
        assert latest[i] > pmdk[i] / 2.0, (s, latest[i], pmdk[i])
    # Shape 3: throughput grows with append size for every variant.
    for name, _ in VARIANTS:
        assert curves[name][-1] > curves[name][0]
    benchmark.pedantic(lambda: _throughput(VerifiedLogLatest, 1024),
                       rounds=1, iterations=1)


def test_fig14_crc_detects_what_pmdk_misses(benchmark):
    # the qualitative columns behind the figure: same throughput class,
    # strictly more protection
    from repro.systems.plog.log import LogCorruption
    dev = PmemDevice(1 << 14)
    log = VerifiedLogLatest(dev)
    log.append(b"payload")
    dev.corrupt(9, 1)
    try:
        VerifiedLogLatest.recover(dev)
        raise AssertionError("corruption missed")
    except LogCorruption:
        pass
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
