"""Ablations of the design choices DESIGN.md calls out (§3.1, §3.3).

* context pruning on/off — query sizes,
* trigger policy conservative vs broad — instantiation counts,
* by(bit_vector) isolation vs attempting the same fact in default mode.
"""

import pytest

from conftest import banner, table
from repro.lang import *
from repro.vc.wp import VcGen


def _module_with_unused_context(n_spec_fns: int = 30) -> Module:
    mod = Module("ablate_prune")
    x = var("x", INT)
    for i in range(n_spec_fns):
        spec_fn(mod, f"helper_{i}", [("x", INT)], INT, body=x + i)
    spec_fn(mod, "double", [("x", INT)], INT, body=x * 2)
    exec_fn(mod, "use_double", [("x", INT)], ret=("r", INT),
            requires=[x >= 0, x < 100000],
            ensures=[var("r", INT).eq(call(mod, "double", x))],
            body=[ret(x + x)])
    return mod


def test_ablation_context_pruning(benchmark):
    mod = _module_with_unused_context()
    pruned = VcGen(mod, VcConfig(prune_context=True)).verify_module()
    full = VcGen(mod, VcConfig(prune_context=False)).verify_module()
    banner("Ablation: context pruning (§3.1)")
    table(["config", "verified", "query bytes"],
          [["pruned", "yes" if pruned.ok else "NO", pruned.query_bytes],
           ["unpruned", "yes" if full.ok else "NO", full.query_bytes]])
    assert pruned.ok and full.ok
    assert pruned.query_bytes < full.query_bytes / 2, \
        (pruned.query_bytes, full.query_bytes)
    benchmark.pedantic(
        lambda: VcGen(mod, VcConfig(prune_context=True)).verify_module(),
        rounds=1, iterations=1)


def _seq_module() -> Module:
    mod = Module("ablate_triggers")
    SeqI = SeqType(INT)
    s = var("s", SeqI)
    exec_fn(mod, "chain", [("s", SeqI)],
            requires=[s.length() >= 2],
            body=[
                let_("t", s.update(0, lit(1)).update(1, lit(2))),
                assert_(var("t", SeqI).index(0).eq(1)),
                assert_(var("t", SeqI).index(1).eq(2)),
                assert_(var("t", SeqI).length().eq(s.length())),
            ])
    return mod


def test_ablation_trigger_policy(benchmark):
    results = {}
    for policy in (CONSERVATIVE, BROAD):
        mod = _seq_module()
        res = VcGen(mod, VcConfig(trigger_policy=policy)).verify_module()
        insts = sum(o.stats.get("instantiations", 0)
                    for f in res.functions for o in f.obligations)
        results[policy] = (res.ok, insts, res.seconds)
    banner("Ablation: trigger policy (§3.1)")
    table(["policy", "verified", "instantiations", "time (s)"],
          [[p, "yes" if ok else "NO", i, f"{t:.2f}"]
           for p, (ok, i, t) in results.items()])
    assert results[CONSERVATIVE][0] and results[BROAD][0]
    # broad triggers instantiate at least as much as conservative ones
    assert results[BROAD][1] >= results[CONSERVATIVE][1]
    benchmark.pedantic(
        lambda: VcGen(_seq_module()).verify_module(),
        rounds=1, iterations=1)


def test_ablation_bit_vector_isolation(benchmark):
    # In default mode the mask/mod identity is out of reach (bit ops are
    # uninterpreted); the by(bit_vector) dispatch proves it instantly.
    x = var("x", U64)

    def build(use_bv):
        mod = Module(f"ablate_bv_{use_bv}")
        exec_fn(mod, "mask", [("x", U64)],
                body=[assert_((x & lit(511)).eq(x % 512),
                              by=BY_BIT_VECTOR if use_bv else None)])
        return mod

    with_bv = VcGen(build(True)).verify_module()
    without = VcGen(build(False)).verify_module()
    banner("Ablation: by(bit_vector) isolation (§3.3)")
    table(["mode", "verified"],
          [["by(bit_vector)", "yes" if with_bv.ok else "NO"],
           ["default mode", "yes" if without.ok else "NO"]])
    assert with_bv.ok
    assert not without.ok  # uninterpreted in the main encoding, as designed
    benchmark.pedantic(lambda: VcGen(build(True)).verify_module(),
                       rounds=1, iterations=1)


def test_ablation_nonlinear_isolation(benchmark):
    # The §3.3 predictability property: the isolated query sees only the
    # premises the developer forwards.
    q, a = var("q", U64), var("a", U64)

    def build(forward_premise):
        mod = Module(f"ablate_nl_{forward_premise}")
        goal = ((a * a + 1) * q) >= ((a * a + 1) * 2)
        expr = (q > 2).implies(goal) if forward_premise else goal
        exec_fn(mod, "f", [("q", U64), ("a", U64)],
                requires=[q > 2],
                body=[assert_(expr, by=BY_NONLINEAR)])
        return mod

    with_premise = VcGen(build(True)).verify_module()
    without = VcGen(build(False)).verify_module()
    banner("Ablation: by(nonlinear_arith) isolation (§3.3)")
    table(["premise forwarded", "verified"],
          [["yes", "yes" if with_premise.ok else "NO"],
           ["no", "yes" if without.ok else "NO"]])
    assert with_premise.ok
    assert not without.ok
    benchmark.pedantic(lambda: VcGen(build(True)).verify_module(),
                       rounds=1, iterations=1)


def test_ablation_automation_profile(benchmark):
    # The profile axis: each gap-corpus module is provable under one
    # quantifier strategy and not the other, and the pair of them is
    # beyond every fixed profile — only the portfolio race gets it.
    from repro.api import Session, VerifyConfig
    from repro.profiles.corpus import (build_mbqi_gap_module,
                                       build_stubborn_pair_module,
                                       build_universe_gap_module)

    def run(build, **cfg):
        return Session(VerifyConfig(**cfg)).verify_module(build())

    rows = []
    for label, build in (("mbqi_gap", build_mbqi_gap_module),
                         ("universe_gap", build_universe_gap_module),
                         ("stubborn_pair", build_stubborn_pair_module)):
        default = run(build, profile="default")
        epr = run(build, profile="epr")
        raced = run(build, portfolio=2)
        rows.append([label,
                     "yes" if default.ok else "NO",
                     "yes" if epr.ok else "NO",
                     "yes" if raced.ok else "NO"])
    banner("Ablation: automation profile (quantifier strategy)")
    table(["module", "default (E-matching)", "epr (MBQI)", "portfolio=2"],
          rows)
    assert [r[1:] for r in rows] == [["NO", "yes", "yes"],
                                     ["yes", "NO", "yes"],
                                     ["NO", "NO", "yes"]]
    benchmark.pedantic(
        lambda: run(build_stubborn_pair_module, portfolio=2),
        rounds=1, iterations=1)
