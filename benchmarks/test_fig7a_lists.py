"""Figure 7a: verification time for the linked-list millibenchmarks.

Paper result: Verus verifies the singly linked list 3–28× faster than the
other frameworks and the doubly linked list 24–61× faster; Prusti cannot
express the doubly linked list (cyclic pointers).
"""

import time

import pytest

from conftest import banner, record_incremental, record_solver, table
from repro.api import Session, VerifyConfig
from repro.baselines.pipelines import PIPELINES, time_pipeline
from repro.millibench.lists import (build_doubly_linked_module,
                                    build_singly_linked_module)

ORDER = ["verus", "creusot", "dafny", "fstar", "prusti", "ivy"]


def _measure(module):
    out = {}
    for name in ORDER:
        result, secs = time_pipeline(PIPELINES[name], module)
        if result is None:
            out[name] = (None, None, None)
        else:
            assert result.ok, f"{name}: {result.report()}"
            out[name] = (secs, result.query_bytes, result)
    return out


@pytest.fixture(scope="module")
def measurements():
    single = _measure(build_singly_linked_module())
    double = _measure(build_doubly_linked_module())
    return single, double


def test_fig7a_table(measurements, benchmark):
    single, double = measurements
    banner("Figure 7a: linked-list verification time (seconds)")
    rows = []
    for name in ORDER:
        s_secs = single[name][0]
        d_secs = double[name][0]
        rows.append([
            name,
            f"{s_secs:.2f}" if s_secs is not None else "n/a",
            f"{d_secs:.2f}" if d_secs is not None else "n/a",
            f"{single[name][1]}" if single[name][1] else "-",
            f"{double[name][1]}" if double[name][1] else "-",
        ])
    table(["tool", "single (s)", "double (s)", "single qbytes",
           "double qbytes"], rows)
    # shape: Verus verifies both, fastest or tied on wall clock,
    # and with the smallest queries (the §3.1 economy claim).
    v_single, v_single_q, _ = single["verus"]
    v_double, v_double_q, _ = double["verus"]
    for name in ("dafny", "fstar", "prusti"):
        if single[name][0] is not None:
            assert single[name][1] > v_single_q, f"{name} query not larger"
        if double[name][0] is not None:
            assert double[name][1] > v_double_q
    # Prusti cannot express the doubly linked list.
    assert double["prusti"][0] is None
    # Ivy rejects both (outside EPR), as in §4.1.2.
    assert single["ivy"][0] is None
    # Re-verify the single list under Verus as the timed benchmark sample.
    benchmark.pedantic(
        lambda: time_pipeline(PIPELINES["verus"], build_singly_linked_module()),
        rounds=1, iterations=1)


def test_fig7a_verus_not_slowest(measurements):
    single, double = measurements
    others_single = [v[0] for k, v in single.items()
                     if k != "verus" and v[0] is not None]
    others_double = [v[0] for k, v in double.items()
                     if k != "verus" and v[0] is not None]
    assert single["verus"][0] <= max(others_single)
    assert double["verus"][0] <= max(others_double)


def _time_session(builder, **knobs):
    # Triage off: this benchmark measures fresh-vs-warm solver-context
    # economics, and BENCH_solver.json's embedded pre-PR baseline was
    # captured with every obligation on the solver path.
    t0 = time.perf_counter()
    result = Session(VerifyConfig(triage="off",
                                  **knobs)).verify_module(builder())
    return result, time.perf_counter() - t0


def test_fig7a_incremental_warm_contexts():
    """Warm per-function solver contexts vs fresh solvers (same verdicts).

    The §3.1 amortization claim: sharing the module prelude across a
    function's obligations under push/pop scopes cuts wall-clock without
    changing a single verdict or query byte.  Recorded into
    BENCH_incremental.json and BENCH_solver.json by conftest; timing is
    best-of-3 to damp scheduler noise, and every row must show warm at
    least matching fresh (the perf-smoke gate).
    """
    banner("Figure 7a companion: fresh vs warm incremental contexts")
    rows = []
    total_fresh = total_warm = 0.0
    for label, builder in [("single", build_singly_linked_module),
                           ("double", build_doubly_linked_module)]:
        f_secs = w_secs = None
        for _ in range(3):
            fresh, f_s = _time_session(builder)
            warm, w_s = _time_session(builder, incremental=True)
            f_secs = f_s if f_secs is None else min(f_secs, f_s)
            w_secs = w_s if w_secs is None else min(w_secs, w_s)
            assert fresh.ok and warm.ok
            assert fresh.query_bytes == warm.query_bytes
        record_incremental(f"fig7a_{label}", f_secs, w_secs)
        record_solver(f"fig7a_{label}", f_secs, w_secs, fresh.stats,
                      fresh.query_bytes)
        rows.append([label, f"{f_secs:.2f}", f"{w_secs:.2f}",
                     f"{f_secs / w_secs:.2f}x"])
        assert w_secs <= f_secs, \
            f"warm regression on fig7a_{label}: {f_secs / w_secs:.3f}x"
        total_fresh += f_secs
        total_warm += w_secs
    table(["lists", "fresh (s)", "warm (s)", "speedup"], rows)
    # The amortization must be a measurable aggregate win.
    assert total_warm < total_fresh
