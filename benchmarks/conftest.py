"""Shared helpers for the figure-reproduction benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (§4).  Absolute numbers come from a Python stack on
container hardware, so they are not comparable to the paper's; each
benchmark therefore *prints* the paper-style rows and *asserts the shape*
(who wins, monotonicity, crossover positions).

Set ``REPRO_FULL=1`` to run the paper-scale parameter sweeps; the default
sizes keep the whole directory comfortably runnable.
"""

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

FULL = os.environ.get("REPRO_FULL") == "1"

_CAPMAN = []
_SIDE_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "bench_figures.txt")
_INCR_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_incremental.json")
_INCR_ROWS: list = []
_SOLVER_FILE = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_solver.json")
_SOLVER_ROWS: list = []
_CACHE_TIERS_FILE = os.path.join(os.path.dirname(__file__), "..",
                                 "BENCH_cache_tiers.json")
_CACHE_TIERS_ROWS: list = []

# Pre-PR solver numbers for the same four workloads (captured with the
# command below before the incremental E-matching / fired-set / context
# pruning pass landed), so BENCH_solver.json is self-contained: the
# aggregate instantiation-count and query-byte reductions are read off
# against this block.
_SOLVER_BASELINE = {
    "rows": [
        {"benchmark": "fig7a_single", "fresh_seconds": 0.1517,
         "warm_seconds": 0.0744, "instantiations": 140,
         "query_bytes": 162941},
        {"benchmark": "fig7a_double", "fresh_seconds": 0.4529,
         "warm_seconds": 0.376, "instantiations": 292,
         "query_bytes": 207229},
        {"benchmark": "fig10_delegation_map", "fresh_seconds": 0.7514,
         "warm_seconds": 0.6254, "instantiations": 436,
         "query_bytes": 312167},
        {"benchmark": "fig10_marshal", "fresh_seconds": 0.4197,
         "warm_seconds": 0.4081, "instantiations": 160,
         "query_bytes": 119843},
    ],
    "total_fresh_seconds": 1.7757,
    "total_warm_seconds": 1.4839,
    "total_instantiations": 1028,
    "total_query_bytes": 802180,
}


def pytest_configure(config):
    _CAPMAN.append(config.pluginmanager.getplugin("capturemanager"))
    for stale in (_SIDE_FILE, _INCR_FILE, _SOLVER_FILE,
                  _CACHE_TIERS_FILE):
        try:
            os.remove(stale)
        except OSError:
            pass


def record_incremental(label: str, fresh_secs: float,
                       warm_secs: float) -> None:
    """Record one fresh-vs-warm wall-clock pair for BENCH_incremental.json.

    Benchmarks that compare a fresh-solver run against a warm-context
    (``incremental=True``) run call this; the accumulated comparison is
    written once at session end.
    """
    _INCR_ROWS.append({
        "benchmark": label,
        "fresh_seconds": round(fresh_secs, 4),
        "warm_seconds": round(warm_secs, 4),
        "speedup": round(fresh_secs / warm_secs, 3) if warm_secs else None,
    })


def record_solver(label: str, fresh_secs: float, warm_secs: float,
                  stats: dict, query_bytes: int) -> None:
    """Record one solver-performance row for BENCH_solver.json.

    ``fresh_secs``/``warm_secs`` should be best-of-N wall-clock (the
    caller times the repeats); ``stats`` is the merged Stats snapshot of
    the fresh run, from which instantiation counts and the pruning
    counters are read.
    """
    _SOLVER_ROWS.append({
        "benchmark": label,
        "fresh_seconds": round(fresh_secs, 4),
        "warm_seconds": round(warm_secs, 4),
        "warm_speedup": round(fresh_secs / warm_secs, 3)
        if warm_secs else None,
        "instantiations": stats.get("instantiations", 0),
        "query_bytes": query_bytes,
        "pruned_axioms": stats.get("pruned_axioms", 0),
        "query_bytes_saved": stats.get("query_bytes_saved", 0),
        "ematch_index_hits": stats.get("ematch_index_hits", 0),
        "ematch_rescans_avoided": stats.get("ematch_rescans_avoided", 0),
        "fired_set_hits": stats.get("fired_set_hits", 0),
        "congruent_skips": stats.get("congruent_skips", 0),
    })


def record_cache_tier(label: str, payload: dict) -> None:
    """Record one tiered-cache row for BENCH_cache_tiers.json.

    ``payload`` carries whatever the benchmark measured (per-tier
    warm-hit latency, degraded-mode overhead ratio, breaker counters);
    rows are written once at session end.
    """
    _CACHE_TIERS_ROWS.append({"benchmark": label, **payload})


def pytest_sessionfinish(session, exitstatus):
    if _INCR_ROWS:
        fresh = sum(r["fresh_seconds"] for r in _INCR_ROWS)
        warm = sum(r["warm_seconds"] for r in _INCR_ROWS)
        payload = {
            "description": "fresh-solver vs warm-context "
                           "(incremental=True) verification wall-clock",
            "rows": _INCR_ROWS,
            "total_fresh_seconds": round(fresh, 4),
            "total_warm_seconds": round(warm, 4),
            "total_speedup": round(fresh / warm, 3) if warm else None,
        }
        with open(_INCR_FILE, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if _SOLVER_ROWS:
        fresh = sum(r["fresh_seconds"] for r in _SOLVER_ROWS)
        warm = sum(r["warm_seconds"] for r in _SOLVER_ROWS)
        insts = sum(r["instantiations"] for r in _SOLVER_ROWS)
        qbytes = sum(r["query_bytes"] for r in _SOLVER_ROWS)
        payload = {
            "description": "Profile-driven solver pass: per-workload "
                           "wall clock (best-of-N), quantifier "
                           "instantiations, and query bytes, against "
                           "the pre-PR baseline below.",
            "command": "PYTHONPATH=src python -m pytest "
                       "benchmarks/test_fig7a_lists.py "
                       "benchmarks/test_fig10_ironkv.py -q",
            "rows": _SOLVER_ROWS,
            "total_fresh_seconds": round(fresh, 4),
            "total_warm_seconds": round(warm, 4),
            "total_instantiations": insts,
            "total_query_bytes": qbytes,
            "baseline": _SOLVER_BASELINE,
            "instantiations_reduced": insts
            < _SOLVER_BASELINE["total_instantiations"],
            "query_bytes_reduced": qbytes
            < _SOLVER_BASELINE["total_query_bytes"],
        }
        with open(_SOLVER_FILE, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if _CACHE_TIERS_ROWS:
        payload = {
            "description": "Tiered proof cache: warm-hit latency per "
                           "tier (memory / disk / networked replica) "
                           "and the overhead of degraded breaker-open "
                           "operation relative to disk-only.",
            "command": "PYTHONPATH=src python -m pytest "
                       "benchmarks/test_cache_tiers_bench.py -q",
            "rows": _CACHE_TIERS_ROWS,
        }
        with open(_CACHE_TIERS_FILE, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


def _emit(line: str) -> None:
    """Emit a regenerated-figure line past pytest's fd-level capture, so it
    appears in `pytest benchmarks/ --benchmark-only | tee bench_output.txt`
    (and, belt-and-braces, in bench_figures.txt)."""
    if _CAPMAN and _CAPMAN[0] is not None:
        with _CAPMAN[0].global_and_fixture_disabled():
            sys.stdout.write(line + "\n")
            sys.stdout.flush()
    else:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()
    with open(_SIDE_FILE, "a") as fh:
        fh.write(line + "\n")


def emit(line: str) -> None:
    _emit(line)


def banner(title: str) -> None:
    _emit(f"\n=== {title} " + "=" * max(0, 66 - len(title)))


def table(headers, rows) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    _emit(line)
    _emit("-" * len(line))
    for r in rows:
        _emit("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
