"""Shared helpers for the figure-reproduction benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (§4).  Absolute numbers come from a Python stack on
container hardware, so they are not comparable to the paper's; each
benchmark therefore *prints* the paper-style rows and *asserts the shape*
(who wins, monotonicity, crossover positions).

Set ``REPRO_FULL=1`` to run the paper-scale parameter sweeps; the default
sizes keep the whole directory comfortably runnable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

FULL = os.environ.get("REPRO_FULL") == "1"

_CAPMAN = []
_SIDE_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "bench_figures.txt")


def pytest_configure(config):
    _CAPMAN.append(config.pluginmanager.getplugin("capturemanager"))
    try:
        os.remove(_SIDE_FILE)
    except OSError:
        pass


def _emit(line: str) -> None:
    """Emit a regenerated-figure line past pytest's fd-level capture, so it
    appears in `pytest benchmarks/ --benchmark-only | tee bench_output.txt`
    (and, belt-and-braces, in bench_figures.txt)."""
    if _CAPMAN and _CAPMAN[0] is not None:
        with _CAPMAN[0].global_and_fixture_disabled():
            sys.stdout.write(line + "\n")
            sys.stdout.flush()
    else:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()
    with open(_SIDE_FILE, "a") as fh:
        fh.write(line + "\n")


def emit(line: str) -> None:
    _emit(line)


def banner(title: str) -> None:
    _emit(f"\n=== {title} " + "=" * max(0, 66 - len(title)))


def table(headers, rows) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    _emit(line)
    _emit("-" * len(line))
    for r in rows:
        _emit("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
