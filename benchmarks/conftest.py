"""Shared helpers for the figure-reproduction benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (§4).  Absolute numbers come from a Python stack on
container hardware, so they are not comparable to the paper's; each
benchmark therefore *prints* the paper-style rows and *asserts the shape*
(who wins, monotonicity, crossover positions).

Set ``REPRO_FULL=1`` to run the paper-scale parameter sweeps; the default
sizes keep the whole directory comfortably runnable.
"""

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

FULL = os.environ.get("REPRO_FULL") == "1"

_CAPMAN = []
_SIDE_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "bench_figures.txt")
_INCR_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_incremental.json")
_INCR_ROWS: list = []


def pytest_configure(config):
    _CAPMAN.append(config.pluginmanager.getplugin("capturemanager"))
    for stale in (_SIDE_FILE, _INCR_FILE):
        try:
            os.remove(stale)
        except OSError:
            pass


def record_incremental(label: str, fresh_secs: float,
                       warm_secs: float) -> None:
    """Record one fresh-vs-warm wall-clock pair for BENCH_incremental.json.

    Benchmarks that compare a fresh-solver run against a warm-context
    (``incremental=True``) run call this; the accumulated comparison is
    written once at session end.
    """
    _INCR_ROWS.append({
        "benchmark": label,
        "fresh_seconds": round(fresh_secs, 4),
        "warm_seconds": round(warm_secs, 4),
        "speedup": round(fresh_secs / warm_secs, 3) if warm_secs else None,
    })


def pytest_sessionfinish(session, exitstatus):
    if not _INCR_ROWS:
        return
    fresh = sum(r["fresh_seconds"] for r in _INCR_ROWS)
    warm = sum(r["warm_seconds"] for r in _INCR_ROWS)
    payload = {
        "description": "fresh-solver vs warm-context (incremental=True) "
                       "verification wall-clock",
        "rows": _INCR_ROWS,
        "total_fresh_seconds": round(fresh, 4),
        "total_warm_seconds": round(warm, 4),
        "total_speedup": round(fresh / warm, 3) if warm else None,
    }
    with open(_INCR_FILE, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def _emit(line: str) -> None:
    """Emit a regenerated-figure line past pytest's fd-level capture, so it
    appears in `pytest benchmarks/ --benchmark-only | tee bench_output.txt`
    (and, belt-and-braces, in bench_figures.txt)."""
    if _CAPMAN and _CAPMAN[0] is not None:
        with _CAPMAN[0].global_and_fixture_disabled():
            sys.stdout.write(line + "\n")
            sys.stdout.flush()
    else:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()
    with open(_SIDE_FILE, "a") as fh:
        fh.write(line + "\n")


def emit(line: str) -> None:
    _emit(line)


def banner(title: str) -> None:
    _emit(f"\n=== {title} " + "=" * max(0, 66 - len(title)))


def table(headers, rows) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    _emit(line)
    _emit("-" * len(line))
    for r in rows:
        _emit("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
