"""Figure 9: macrobenchmark statistics.

For each case study: line counts (trusted / proof / code), proof-to-code
ratio, verification time on 1 and 8 cores, and total SMT query bytes.

Line-count mapping (documented in DESIGN.md): *code* counts the runtime
modules (the executable system), *proof* counts the verified-model modules
(invariants/ensures plus the VerusSync systems), and *trusted* counts the
trusted substrates (hardware/OS models the proofs assume).  The paper's
absolute numbers come from Rust/Dafny sources; the relational content that
must survive: every system verifies, proof LoC dominates code LoC, and
verification parallelizes across modules (the 8-core column).
"""

import os
import time

import pytest

import repro
from repro.vc.scheduler import run_builder_job, run_builder_jobs
from conftest import banner, emit, table

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _loc(*relpaths) -> int:
    total = 0
    for rel in relpaths:
        path = os.path.join(ROOT, "repro", rel)
        with open(path) as fh:
            total += sum(1 for line in fh
                         if line.strip() and not line.strip().startswith("#"))
    return total


SYSTEMS = [
    ("IronKV", {
        "jobs": [
            ("vc", "repro.systems.ironkv.delegation_map"
                   ".build_default_module"),
            ("vc", "repro.systems.ironkv.marshal_verified"
                   ".build_u64_roundtrip_module"),
            ("epr", "repro.systems.ironkv.delegation_map_epr"
                    ".build_epr_model"),
        ],
        "trusted": ["runtime/network.py"],
        "proof": ["systems/ironkv/delegation_map.py",
                  "systems/ironkv/delegation_map_epr.py",
                  "systems/ironkv/marshal_verified.py"],
        "code": ["systems/ironkv/host.py", "systems/ironkv/marshal.py"],
    }),
    ("NR", {
        # core obligations by default; the reader-phase preservation
        # queries are the solver's hardest (EXPERIMENTS.md documents the
        # split; run build_nr_system().check() for the full set)
        "jobs": [("vc", "repro.systems.nr.model.build_nr_core_module")],
        "trusted": ["runtime/des.py"],
        "proof": ["systems/nr/model.py"],
        "code": ["systems/nr/log.py"],
    }),
    ("Page table", {
        "jobs": [("vc", "repro.systems.pagetable.entry_verified"
                        ".build_entry_module")],
        "trusted": ["systems/pagetable/hw.py"],
        "proof": ["systems/pagetable/entry_verified.py"],
        "code": ["systems/pagetable/hw.py"],
    }),
    ("Mimalloc", {
        "jobs": [
            ("vc", "repro.systems.mimalloc.verified"
                   ".build_bit_tricks_module"),
            ("vc", "repro.systems.mimalloc.verified"
                   ".build_disjointness_module"),
            ("sync", "repro.systems.mimalloc.verified"
                     ".build_lifecycle_system"),
        ],
        "trusted": [],
        "proof": ["systems/mimalloc/verified.py"],
        "code": ["systems/mimalloc/alloc.py"],
    }),
    ("P. log", {
        "jobs": [("sync", "repro.systems.plog.model"
                          ".build_crash_safety_system")],
        "trusted": ["runtime/pmem.py", "runtime/crc.py"],
        "proof": ["systems/plog/model.py"],
        "code": ["systems/plog/log.py"],
    }),
]


@pytest.fixture(scope="module")
def macro():
    rows = []
    all_jobs = []
    for name, spec in SYSTEMS:
        all_jobs.extend(spec["jobs"])
    # 8-core pass over the whole suite (module granularity, as Verus
    # parallelizes) — measured once for the total row, through the
    # verification scheduler's process fan-out.
    t0 = time.perf_counter()
    parallel_results = run_builder_jobs(all_jobs, max_workers=8)
    t8_total = time.perf_counter() - t0
    assert all(ok for ok, _ in parallel_results)

    for name, spec in SYSTEMS:
        trusted = _loc(*spec["trusted"]) if spec["trusted"] else 0
        proof = _loc(*spec["proof"])
        code = _loc(*spec["code"])
        t0 = time.perf_counter()
        qbytes = 0
        ok = True
        for job in spec["jobs"]:
            job_ok, job_q = run_builder_job(job)
            ok = ok and job_ok
            qbytes += job_q
        t1 = time.perf_counter() - t0
        rows.append((name, trusted, proof, code, proof / max(code, 1),
                     t1, qbytes / 1e6, ok))
    return rows, t8_total


def test_fig9_table(macro, benchmark):
    rows, t8_total = macro
    banner("Figure 9: macrobenchmark statistics")
    table(["system", "trusted", "proof", "code", "P/C", "1 core (s)",
           "SMT (MB)", "verified"],
          [[n, t, p, c, f"{r:.1f}", f"{t1:.1f}", f"{q:.2f}",
            "yes" if ok else "NO"]
           for n, t, p, c, r, t1, q, ok in rows])
    t1_total = sum(r[5] for r in rows)
    import os
    cores = os.cpu_count() or 1
    emit(f"suite total: sequential {t1_total:.1f}s, "
         f"8-worker pool {t8_total:.1f}s (host has {cores} core(s))")
    for row in rows:
        assert row[-1], f"{row[0]} failed verification"
    # proofs dominate code, as in the paper's table (5.1:1 overall there)
    assert sum(r[2] for r in rows) > sum(r[3] for r in rows) * 0.5
    # Parallelism pays on multicore hosts; on a single core the pool must
    # at least not fall apart (bounded overhead).
    if cores >= 4:
        assert t8_total < t1_total
    else:
        assert t8_total < t1_total * 2.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig9_idiom_counts(benchmark):
    """§4.2.3/§4.2.4 idiom-invocation counts (62/39/11 and 78/71/187 in
    the paper; ours are smaller but span the same three engines)."""
    from repro.lang import count_idioms
    from repro.systems.mimalloc.verified import (build_bit_tricks_module,
                                                 build_disjointness_module)
    from repro.systems.pagetable.entry_verified import build_entry_module
    pt = count_idioms(build_entry_module())
    mi = count_idioms(build_bit_tricks_module())
    mi2 = count_idioms(build_disjointness_module())
    banner("Idiom invocations (bit_vector / nonlinear / compute)")
    table(["system", "bit_vector", "nonlinear", "compute"],
          [["page table", pt["bit_vector"], pt["nonlinear_arith"],
            pt["compute"]],
           ["mimalloc", mi["bit_vector"] + mi2["bit_vector"],
            mi["nonlinear_arith"] + mi2["nonlinear_arith"],
            mi["compute"] + mi2["compute"]]])
    assert pt["bit_vector"] > 0 and pt["nonlinear_arith"] > 0
    assert pt["compute"] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
