"""Figure 13: mimalloc-bench workloads, Verus-mimalloc vs mimalloc.

Paper result (seconds, lower is better): the verified allocator is 1–14×
slower on allocation-stress workloads (cfrac, larson, sh6bench, xmalloc,
glibc-*) but matches exactly on cache-scratch, whose inner loop does no
allocation.  We port the eight supported workloads and compare the
ghost-checked allocator against the unchecked one.
"""

import random
import threading
import time

import pytest

from conftest import FULL, banner, table
from repro.systems.mimalloc.alloc import Allocator, FastAllocator

SCALE = 1 if not FULL else 8


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# -- the eight ported workloads ----------------------------------------------

def cfrac(alloc):
    """Continued-fraction factoring: many small short-lived allocations
    interleaved with arithmetic ('real world' per the mimalloc authors)."""
    n = 77777777777  # the number being factored (arithmetic load)
    acc = 0
    live = []
    for i in range(4000 * SCALE):
        p = alloc.malloc(8 + (i % 48))
        live.append(p)
        acc += n % (i + 2)      # the compute part
        if len(live) > 32:
            alloc.free(live.pop(0))
    for p in live:
        alloc.free(p)
    return acc


def larson_sized(alloc):
    """larsonN-sized: threads allocate, hand blocks to other threads to
    free (the cross-thread deallocation stress, 'real world')."""
    threads = 4
    per = 1200 * SCALE
    chans = [[] for _ in range(threads)]
    locks = [threading.Lock() for _ in range(threads)]
    errors = []

    def body(tid):
        try:
            rng = random.Random(tid)
            for i in range(per):
                size = rng.choice([16, 64, 128, 256])
                p = alloc.malloc(size, thread_id=tid)
                dst = (tid + 1) % threads
                with locks[dst]:
                    chans[dst].append(p)
                with locks[tid]:
                    mine = chans[tid][:]
                    chans[tid].clear()
                for q in mine:
                    alloc.free(q, thread_id=tid)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    ts = [threading.Thread(target=body, args=(t,)) for t in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert not errors, errors
    for tid, chan in enumerate(chans):
        for p in chan:
            alloc.free(p, thread_id=tid)


def sh6bench(alloc):
    """sh6benchN: batched alloc/free of mixed sizes (stress test)."""
    for _ in range(40 * SCALE):
        batch = [alloc.malloc(8 << (i % 8)) for i in range(220)]
        for p in batch[::2]:
            alloc.free(p)
        batch2 = [alloc.malloc(24) for _ in range(110)]
        for p in batch[1::2]:
            alloc.free(p)
        for p in batch2:
            alloc.free(p)


def xmalloc_test(alloc):
    """xmalloc-testN: producer/consumer free stress."""
    stop = threading.Event()
    chan = []
    lock = threading.Lock()
    errors = []

    def producer():
        try:
            for _ in range(3000 * SCALE):
                p = alloc.malloc(64, thread_id=1)
                with lock:
                    chan.append(p)
            stop.set()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
            stop.set()

    def consumer():
        try:
            while True:
                with lock:
                    batch, chan[:] = chan[:], []
                for p in batch:
                    alloc.free(p, thread_id=2)
                if stop.is_set() and not chan:
                    return
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    t1, t2 = threading.Thread(target=producer), threading.Thread(
        target=consumer)
    t1.start(); t2.start(); t1.join(); t2.join()
    assert not errors, errors


def cache_scratch(alloc, threads: int):
    """cache-scratchN: allocate once, then a pure compute loop — the
    workload where verified == unverified in the paper."""
    bufs = [alloc.malloc(4096, thread_id=t) for t in range(threads)]
    sums = [0] * threads

    def body(t):
        acc = 0
        for i in range(200_000 * SCALE):
            acc = (acc * 31 + i) & 0xFFFFFFFF
        sums[t] = acc

    ts = [threading.Thread(target=body, args=(t,)) for t in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    for t, p in enumerate(bufs):
        alloc.free(p, thread_id=t)


def glibc_simple(alloc):
    """glibc-simple: malloc/free pairs in a tight loop."""
    for i in range(6000 * SCALE):
        p = alloc.malloc(16 + (i & 63))
        alloc.free(p)


def glibc_thread(alloc):
    """glibc-thread: the same loop on several threads."""
    errors = []

    def body(tid):
        try:
            for i in range(2000 * SCALE):
                p = alloc.malloc(16 + (i & 63), thread_id=tid)
                alloc.free(p, thread_id=tid)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    ts = [threading.Thread(target=body, args=(t,)) for t in range(3)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert not errors, errors


WORKLOADS = [
    ("cfrac", cfrac),
    ("larsonN-sized", larson_sized),
    ("sh6benchN", sh6bench),
    ("xmalloc-testN", xmalloc_test),
    ("cache-scratch1", lambda a: cache_scratch(a, 1)),
    ("cache-scratchN", lambda a: cache_scratch(a, 4)),
    ("glibc-simple", glibc_simple),
    ("glibc-thread", glibc_thread),
]


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, fn in WORKLOADS:
        out[name] = (_time(lambda: fn(FastAllocator())),
                     _time(lambda: fn(Allocator(ghost=True))))
    return out


def test_fig13_table(results, benchmark):
    banner("Figure 13: mimalloc-bench (seconds; mimalloc vs Verus-mimalloc)")
    rows = [[name, f"{fast:.2f}", f"{verified:.2f}",
             f"{verified / max(fast, 1e-9):.1f}x"]
            for name, (fast, verified) in results.items()]
    table(["benchmark", "mimalloc", "Verus-mimalloc", "ratio"], rows)
    # Shape 1: the allocation-stress workloads pay a ghost-checking tax.
    for name in ("glibc-simple", "sh6benchN"):
        fast, verified = results[name]
        assert verified > fast
    # Shape 2: cache-scratch is allocation-free in its hot loop, so the
    # verified allocator reaches parity (paper: identical times).
    for name in ("cache-scratch1", "cache-scratchN"):
        fast, verified = results[name]
        assert verified < fast * 1.35, (name, fast, verified)
    benchmark.pedantic(lambda: glibc_simple(Allocator(ghost=True)),
                       rounds=1, iterations=1)


def test_fig13_all_workloads_complete(results):
    # the paper's allocator completes 8 of 19 suite benchmarks; ours must
    # complete all 8 ported ones without a ghost violation
    assert len(results) == 8
    for name, (fast, verified) in results.items():
        assert fast > 0 and verified > 0
