"""Tiered proof cache bench: warm-hit latency per tier + degradation.

Emits ``BENCH_cache_tiers.json`` (repo root) with one row per tier —
average warm-hit lookup latency for the in-memory LRU, the on-disk
store, and a networked replica — plus a degraded-mode row measuring
what breaker-open operation costs relative to disk-only.

Asserted acceptance (not just reported): the tier latencies are
ordered (mem < disk < net), degraded breaker-open lookups stay under
1.1x the disk-only baseline, and once the breaker trips no further
network requests are constructed.
"""

import hashlib
import time

from conftest import FULL, banner, record_cache_tier, table
from repro.cache import CacheReplica, TieredProofCache
from repro.cache.store import make_entry
from repro.runtime.network import Network
from repro.vc.errors import PROVED

N = 200 if FULL else 50          # distinct cached entries
LOOKUPS = 2000 if FULL else 1000  # timed lookups (cycling the entries)
REPEAT = 5                        # best-of repeats per measurement


def _digest(i: int) -> str:
    return hashlib.sha256(b"tier-bench-%d" % i).hexdigest()


def _store_all(tc, n=N) -> None:
    for i in range(n):
        tc.store(_digest(i), PROVED, {"instantiations": i}, 64,
                 label=f"bench{i}")


def _avg_lookup_us(tc, n=N, lookups=LOOKUPS, repeat=REPEAT) -> float:
    """Best-of average per-lookup latency in microseconds."""
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        for j in range(lookups):
            assert tc.lookup(_digest(j % n)) is not None
        per = (time.perf_counter() - t0) / lookups * 1e6
        best = per if best is None else min(best, per)
    return best


def test_warm_hit_latency_per_tier(tmp_path):
    # Memory tier: everything resident in the LRU.
    tmem = TieredProofCache(str(tmp_path / "local"), tiers="mem,disk")
    _store_all(tmem)
    mem_us = _avg_lookup_us(tmem)
    assert tmem.mem_hits >= LOOKUPS

    # Disk tier: same files, no memory tier in front.
    tdisk = TieredProofCache(str(tmp_path / "local"), tiers="disk")
    disk_us = _avg_lookup_us(tdisk)
    assert tdisk.disk_hits >= LOOKUPS

    # Network tier: entries live only on the replica; every lookup is a
    # datagram round trip (plus the promotion write it pays for next
    # time).  One pass over N distinct digests, best-of repeats over
    # fresh disk roots so promotion never short-circuits the trip.
    net = Network()
    rep = CacheReplica("cache0", net, poll=0.001).start()
    try:
        rep.seed(make_entry(_digest(i), PROVED, {}, 64, label=f"bench{i}")
                 for i in range(N))
        net_us = None
        for r in range(REPEAT):
            tnet = TieredProofCache(str(tmp_path / f"netside{r}"),
                                    tiers="disk,net", network=net,
                                    net_timeout=1.0,
                                    client_name=f"bench-net-{r}")
            t0 = time.perf_counter()
            for i in range(N):
                assert tnet.lookup(_digest(i)) is not None
            per = (time.perf_counter() - t0) / N * 1e6
            assert tnet.net_hits == N
            net_us = per if net_us is None else min(net_us, per)
    finally:
        rep.stop()

    banner("Tiered cache: warm-hit latency per tier")
    table(["tier", "avg lookup (us)"],
          [["mem", f"{mem_us:.1f}"],
           ["disk", f"{disk_us:.1f}"],
           ["net", f"{net_us:.1f}"]])
    record_cache_tier("warm_hit_latency", {
        "mem_us": round(mem_us, 2),
        "disk_us": round(disk_us, 2),
        "net_us": round(net_us, 2),
    })
    assert mem_us < disk_us < net_us


def test_degraded_overhead_vs_disk_only(tmp_path):
    # Disk-only baseline: the exact behavior a fully partitioned
    # deployment must degrade to.  (No mem tier in either column — at
    # memory-hit scale, ~1us, the comparison measures timer noise.)
    base = TieredProofCache(str(tmp_path / "base"), tiers="disk")
    _store_all(base)
    base_us = _avg_lookup_us(base)

    # Degraded: a net tier whose replica is dead.  The first store pays
    # the timeout ladder, trips the breaker (threshold 1), and from then
    # on the cache must behave like disk-only — queued stores, no
    # requests, no added latency.
    net = Network()
    rep = CacheReplica("cache0", net, poll=0.001).start()
    rep.crash()
    try:
        deg = TieredProofCache(str(tmp_path / "deg"), tiers="disk,net",
                               network=net, net_timeout=0.005,
                               breaker_threshold=1,
                               breaker_cooldown=3600.0,
                               client_name="bench-degraded")
        _store_all(deg)
        assert deg.breaker_trips == 1
        requests_after_trip = deg.client.requests
        deg_us = _avg_lookup_us(deg)
        # Post-trip lookups construct no network requests at all.
        assert deg.client.requests == requests_after_trip
        assert deg.pending_stores > 0
    finally:
        rep.stop()

    overhead = deg_us / base_us
    banner("Tiered cache: degraded (breaker-open) vs disk-only")
    table(["mode", "avg lookup (us)"],
          [["disk-only", f"{base_us:.1f}"],
           ["degraded", f"{deg_us:.1f}"],
           ["overhead", f"{overhead:.3f}x"]])
    record_cache_tier("degraded_overhead", {
        "disk_only_us": round(base_us, 2),
        "degraded_us": round(deg_us, 2),
        "overhead_ratio": round(overhead, 3),
        "breaker_trips": deg.breaker_trips,
        "pending_stores": deg.pending_stores,
    })
    assert overhead < 1.1
