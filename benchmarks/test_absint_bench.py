"""Static proving tier bench: obligation triage over the five §4
case-study systems.

Emits ``BENCH_absint.json`` (repo root) with per-system rows —
obligation count, statically discharged count, solver constructions
with triage on vs off, wall clock both ways — plus the aggregate
discharge rate and the solver-economy delta.

Asserted acceptance (not just reported): the aggregate static
discharge rate clears the PR's 15% floor, every statically discharged
obligation costs zero solver constructions (on-mode constructions =
off-mode constructions − static count), and verdict signatures are
identical both ways.
"""

import importlib
import json
import os
import time

from conftest import banner, table
from repro.api import Session, VerifyConfig
from repro.smt.solver import total_solver_constructions

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_absint.json")

SYSTEMS = [
    ("ironkv", "repro.systems.ironkv.delegation_map:build_default_module"),
    ("nr", "repro.systems.nr.model:build_nr_core_module"),
    ("pagetable", "repro.systems.pagetable.view_verified:build_view_module"),
    ("mimalloc", "repro.systems.mimalloc.verified:build_bit_tricks_module"),
    ("plog", "repro.systems.plog.crc_verified:build_crc_table_module"),
]


def _build(spec: str):
    mod_path, _, attr = spec.partition(":")
    return getattr(importlib.import_module(mod_path), attr)()


def _signature(result):
    return [(f.name, o.label, o.kind, o.status)
            for f in result.functions for o in f.obligations]


def _run(label, spec, triage):
    before = total_solver_constructions()
    t0 = time.perf_counter()
    result = Session(VerifyConfig(triage=triage)).verify_module(_build(spec))
    seconds = round(time.perf_counter() - t0, 4)
    built = total_solver_constructions() - before
    assert result.ok, (label, triage)
    return result, built, seconds


def test_absint_triage_bench():
    rows = []
    total_obl = total_static = on_built_sum = off_built_sum = 0
    on_seconds_sum = off_seconds_sum = 0.0
    for label, spec in SYSTEMS:
        off, off_built, off_seconds = _run(label, spec, "off")
        on, on_built, on_seconds = _run(label, spec, "on")
        assert _signature(on) == _signature(off), label
        obligations = sum(len(f.obligations) for f in on.functions)
        static = int(on.stats.get("static_proved", 0) or 0)
        # Every static discharge is a solver never constructed.
        assert off_built - on_built == static, (label, off_built, on_built)
        rows.append({
            "system": label,
            "obligations": obligations,
            "static_proved": static,
            "rate": round(static / obligations, 4) if obligations else 0.0,
            "solvers_off": off_built,
            "solvers_on": on_built,
            "seconds_off": off_seconds,
            "seconds_on": on_seconds,
        })
        total_obl += obligations
        total_static += static
        on_built_sum += on_built
        off_built_sum += off_built
        on_seconds_sum += on_seconds
        off_seconds_sum += off_seconds

    rate = total_static / total_obl if total_obl else 0.0

    banner("Static proving tier: obligation triage over the case studies")
    table(["system", "obligations", "static", "rate",
           "solvers off→on", "time off→on (s)"],
          [[r["system"], r["obligations"], r["static_proved"],
            f"{r['rate']:.0%}",
            f"{r['solvers_off']}→{r['solvers_on']}",
            f"{r['seconds_off']}→{r['seconds_on']}"]
           for r in rows]
          + [["TOTAL", total_obl, total_static, f"{rate:.0%}",
              f"{off_built_sum}→{on_built_sum}",
              f"{round(off_seconds_sum, 4)}→{round(on_seconds_sum, 4)}"]])

    payload = {
        "description": "Abstract-interpretation obligation triage over "
                       "the five case-study systems: statically "
                       "discharged obligations never construct a "
                       "solver; verdicts are identical to triage-off.",
        "command": "PYTHONPATH=src python -m pytest "
                   "benchmarks/test_absint_bench.py -q",
        "systems": rows,
        "totals": {
            "obligations": total_obl,
            "static_proved": total_static,
            "discharge_rate": round(rate, 4),
            "solver_constructions_off": off_built_sum,
            "solver_constructions_on": on_built_sum,
            "solver_constructions_avoided": off_built_sum - on_built_sum,
            "seconds_off": round(off_seconds_sum, 4),
            "seconds_on": round(on_seconds_sum, 4),
            "wall_clock_delta_seconds": round(
                off_seconds_sum - on_seconds_sum, 4),
        },
    }
    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # The PR's acceptance bars, asserted where the numbers are emitted.
    assert rate >= 0.15, f"discharge rate {rate:.1%} below the 15% floor"
    assert off_built_sum - on_built_sum == total_static
