"""Figure 7b: memory-reasoning verification time vs number of pushes.

Paper result: with increasing interleaved updates to four lists, Dafny's
time grows dramatically (heap/frame reasoning), Low* worse still, the
Rust-based tools grow super-linearly, and Verus stays linear.
"""

import pytest

from conftest import FULL, banner, table
from repro.baselines.pipelines import PIPELINES, time_pipeline
from repro.millibench.lists import build_memory_reasoning_module

# The frame-axiom blowup makes Dafny minutes-per-point past n=3 on this
# solver, so the default sweep stays small; REPRO_FULL runs the paper's
# 4..16 axis.
PUSHES = [1, 2] if not FULL else [4, 8, 12, 16]
TOOLS = ["verus", "dafny"] if not FULL else ["verus", "creusot", "dafny"]


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for tool in TOOLS:
        series = []
        for n in PUSHES:
            module = build_memory_reasoning_module(n)
            result, secs = time_pipeline(PIPELINES[tool], module)
            assert result is not None and result.ok, \
                f"{tool} n={n}: {result.report() if result else 'n/a'}"
            series.append(secs)
        out[tool] = series
    return out


def test_fig7b_series(sweep, benchmark):
    banner("Figure 7b: memory reasoning, four lists (seconds)")
    rows = [[f"pushes={n}"] + [f"{sweep[t][i]:.2f}" for t in TOOLS]
            for i, n in enumerate(PUSHES)]
    table(["workload"] + TOOLS, rows)
    # Shape 1: at every size, the heap-encoding pipeline is slower.
    for i in range(len(PUSHES)):
        assert sweep["dafny"][i] > sweep["verus"][i]
    # Shape 2: the gap WIDENS with size — frame reasoning compounds,
    # value reasoning does not (Verus linear vs Dafny super-linear).
    first_ratio = sweep["dafny"][0] / sweep["verus"][0]
    last_ratio = sweep["dafny"][-1] / sweep["verus"][-1]
    assert last_ratio > first_ratio, (first_ratio, last_ratio)
    benchmark.pedantic(
        lambda: time_pipeline(PIPELINES["verus"],
                              build_memory_reasoning_module(PUSHES[0])),
        rounds=1, iterations=1)


def test_fig7b_verus_subquadratic(sweep):
    # Verus growth from the smallest to the largest size stays below
    # quadratic scaling in the push count (the paper reports linear).
    n_ratio = PUSHES[-1] / PUSHES[0]
    t_ratio = sweep["verus"][-1] / max(sweep["verus"][0], 1e-9)
    assert t_ratio < n_ratio ** 2 * 1.5, (t_ratio, n_ratio)
