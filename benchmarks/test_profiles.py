"""Automation-profile portfolio bench: per-profile win rates, the
portfolio rescue of stubborn modules, and the auto-tuner's
race→record→replay savings.

Emits ``BENCH_profiles.json`` (repo root) with three sections:

* ``fixed_profiles`` — every shipped profile run over the profile-gap
  corpus plus two §4 case studies: verified count and wall clock;
* ``portfolio`` — the same modules with ``portfolio=2``: race counts,
  per-profile win totals, and the modules *rescued* (verified by the
  race though every fixed profile fails them);
* ``tuner_replay`` — solver constructions for a cold portfolio run vs
  the tuner+cache-warm re-run of the same module.

Asserted acceptance (not just reported): the portfolio rescues at
least one module no fixed profile verifies, and the tuner-warm second
run builds at least 2x fewer solvers than the cold race.
"""

import importlib
import json
import os
import time

from conftest import banner, table
from repro.api import Session, VerifyConfig
from repro.profiles import profile_names
from repro.smt.solver import solver_constructions

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_profiles.json")

MODULES = [
    ("mbqi_gap", "repro.profiles.corpus:build_mbqi_gap_module"),
    ("universe_gap", "repro.profiles.corpus:build_universe_gap_module"),
    ("stubborn_pair", "repro.profiles.corpus:build_stubborn_pair_module"),
    ("ironkv", "repro.systems.ironkv.delegation_map:build_default_module"),
    ("plog_crc", "repro.systems.plog.crc_verified:build_crc_table_module"),
]


def _build(spec: str):
    mod_path, _, attr = spec.partition(":")
    return getattr(importlib.import_module(mod_path), attr)()


def test_profile_portfolio_bench(tmp_path):
    # ---- fixed-profile axis -------------------------------------------
    fixed_rows = []
    unverified_everywhere = {label for label, _ in MODULES}
    # The 1s per-obligation deadline bounds hopeless profile/module
    # pairings (MBQI grinding on a grounded-arithmetic module) without
    # touching winners: every provable cell proves well under 1s.
    for prof in profile_names():
        per = {}
        t0 = time.perf_counter()
        for label, spec in MODULES:
            result = Session(VerifyConfig(profile=prof,
                                          job_timeout=1.0)).verify_module(
                _build(spec))
            per[label] = bool(result.ok)
            if result.ok:
                unverified_everywhere.discard(label)
        fixed_rows.append({
            "profile": prof,
            "verified": sum(per.values()),
            "modules": len(MODULES),
            "seconds": round(time.perf_counter() - t0, 4),
            "per_module": per,
        })

    # ---- portfolio arm ------------------------------------------------
    wins: dict[str, int] = {}
    port_per = {}
    races = attempts = 0
    t0 = time.perf_counter()
    for label, spec in MODULES:
        result = Session(VerifyConfig(portfolio=2)).verify_module(
            _build(spec))
        port_per[label] = bool(result.ok)
        races += result.stats.get("portfolio_races", 0)
        attempts += result.stats.get("portfolio_attempts", 0)
        for fn in result.functions:
            for ob in fn.obligations:
                race = ob.stats.get("portfolio")
                if race and race.get("winner"):
                    wins[race["winner"]] = wins.get(race["winner"], 0) + 1
    port_seconds = round(time.perf_counter() - t0, 4)
    rescued = sorted(m for m in unverified_everywhere if port_per[m])

    # ---- tuner replay: cold race vs tuner+cache-warm re-run -----------
    cfg = VerifyConfig(portfolio=2, cache_dir=str(tmp_path / "cache"))
    spec = dict(MODULES)["stubborn_pair"]
    before = solver_constructions()
    t0 = time.perf_counter()
    cold = Session(cfg).verify_module(_build(spec))
    cold_seconds = round(time.perf_counter() - t0, 4)
    cold_built = solver_constructions() - before
    before = solver_constructions()
    t0 = time.perf_counter()
    warm = Session(cfg).verify_module(_build(spec))
    warm_seconds = round(time.perf_counter() - t0, 4)
    warm_built = solver_constructions() - before
    assert cold.ok and warm.ok

    # ---- report --------------------------------------------------------
    banner("Automation profiles: fixed axis vs portfolio race")
    table(["profile", "verified", "time (s)"],
          [[r["profile"], f"{r['verified']}/{r['modules']}", r["seconds"]]
           for r in fixed_rows]
          + [["portfolio=2", f"{sum(port_per.values())}/{len(MODULES)}",
              port_seconds]])
    table(["race winner", "wins"], sorted(wins.items()))
    table(["run", "solvers built", "time (s)"],
          [["cold race", cold_built, cold_seconds],
           ["tuner-warm", warm_built, warm_seconds]])

    payload = {
        "description": "Fixed automation profiles vs portfolio racing "
                       "over the profile-gap corpus and two case "
                       "studies, plus the tuner's replay savings.",
        "command": "PYTHONPATH=src python -m pytest "
                   "benchmarks/test_profiles.py -q",
        "fixed_profiles": fixed_rows,
        "portfolio": {
            "width": 2,
            "verified": sum(port_per.values()),
            "modules": len(MODULES),
            "seconds": port_seconds,
            "races": races,
            "live_attempts": attempts,
            "wins_by_profile": wins,
            "per_module": port_per,
            "rescued_modules": rescued,
        },
        "tuner_replay": {
            "module": "stubborn_pair",
            "cold_solver_constructions": cold_built,
            "warm_solver_constructions": warm_built,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
        },
    }
    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # The PR's acceptance bars, asserted where the numbers are emitted.
    assert rescued, \
        "portfolio must verify a module every fixed profile fails on"
    assert races >= 1 and wins, (races, wins)
    assert 2 * warm_built <= cold_built, (cold_built, warm_built)
