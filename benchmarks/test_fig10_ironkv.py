"""Figure 10: IronKV throughput — the Verus port vs the IronFleet original.

Paper result: the ported host performs comparably to the Dafny original
across Get/Set workloads and payload sizes (128/256/512 bytes).
"""

import threading
import time

import pytest

from conftest import FULL, banner, table
from repro.runtime.network import Network
from repro.systems.ironkv.host import IronFleetHost, VerusHost

PAYLOADS = [128, 256, 512]
DURATION = 0.6 if not FULL else 3.0
CLIENTS = 4 if not FULL else 10
KEYS = 1000 if not FULL else 10000


def _run_workload(host_cls, op: str, payload_size: int) -> float:
    """kop/s for the given workload against a 3-host cluster."""
    net = Network()
    hosts = [host_cls(i, net, default_host=0) for i in range(3)]
    servers = [threading.Thread(target=h.serve_forever, daemon=True)
               for h in hosts]
    for t in servers:
        t.start()
    payload = bytes(payload_size)
    # preload for Get workloads
    setup = net.endpoint("setup")
    marshal = hosts[0].marshal
    if op == "Get":
        for k in range(0, KEYS, max(KEYS // 200, 1)):
            setup.send("host0", marshal(
                ("Set", {"rid": k, "key": k, "value": payload})))
            setup.recv(timeout=1.0)
    done = threading.Event()
    counts = [0] * CLIENTS

    def client(ci: int):
        ep = net.endpoint(f"client{ci}")
        rid = ci << 32
        k = ci
        while not done.is_set():
            rid += 1
            k = (k + 7919) % KEYS
            if op == "Get":
                msg = ("Get", {"rid": rid, "key": k})
            else:
                msg = ("Set", {"rid": rid, "key": k, "value": payload})
            ep.send("host0", marshal(msg))
            if ep.recv(timeout=1.0) is not None:
                counts[ci] += 1

    clients = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    start = time.perf_counter()
    for t in clients:
        t.start()
    time.sleep(DURATION)
    done.set()
    for t in clients:
        t.join()
    elapsed = time.perf_counter() - start
    for h in hosts:
        h.stop()
    return sum(counts) / elapsed / 1000.0


@pytest.fixture(scope="module")
def results():
    out = {}
    for op in ("Get", "Set"):
        for size in PAYLOADS:
            out[("IronFleet", op, size)] = _run_workload(IronFleetHost, op,
                                                         size)
            out[("Verus", op, size)] = _run_workload(VerusHost, op, size)
    return out


def test_fig10_throughput(results, benchmark):
    banner("Figure 10: IronKV throughput (kop/s)")
    rows = []
    for op in ("Get", "Set"):
        for size in PAYLOADS:
            rows.append([f"{op} {size}",
                         f"{results[('IronFleet', op, size)]:.1f}",
                         f"{results[('Verus', op, size)]:.1f}"])
    table(["workload", "IronFleet", "Verus"], rows)
    # Shape: the Verus port performs comparably (within 3x either way, and
    # usually at least as fast thanks to the leaner marshaller).
    for key_f, val in results.items():
        assert val > 0, f"no throughput for {key_f}"
    for op in ("Get", "Set"):
        for size in PAYLOADS:
            verus = results[("Verus", op, size)]
            iron = results[("IronFleet", op, size)]
            assert verus > iron / 3.0, (op, size, verus, iron)
    benchmark.pedantic(lambda: _run_workload(VerusHost, "Get", 128),
                       rounds=1, iterations=1)


def test_fig10_incremental_verification():
    """Fresh vs warm incremental verification of the IronKV verified core.

    The throughput rows above exercise the executable port; this
    companion re-verifies its proof side (the delegation map and the
    marshaller roundtrip) under warm per-function solver contexts and
    records the wall-clock comparison into BENCH_incremental.json.
    """
    from conftest import record_incremental, record_solver
    from repro.api import Session, VerifyConfig
    from repro.systems.ironkv.delegation_map import build_default_module
    from repro.systems.ironkv.marshal_verified import \
        build_u64_roundtrip_module

    banner("Figure 10 companion: IronKV verification, fresh vs warm")
    rows = []
    total_fresh = total_warm = 0.0
    for label, builder in [("delegation_map", build_default_module),
                           ("marshal", build_u64_roundtrip_module)]:
        f_secs = w_secs = None
        # Triage off: this row measures fresh-vs-warm solver-context
        # economics against BENCH_solver.json's pre-PR baseline, which
        # was captured with every obligation on the solver path.
        for _ in range(3):     # best-of-3 damps scheduler noise
            t0 = time.perf_counter()
            fresh = Session(VerifyConfig(triage="off")).verify_module(
                builder())
            f_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = Session(VerifyConfig(triage="off",
                                        incremental=True)).verify_module(
                builder())
            w_s = time.perf_counter() - t0
            f_secs = f_s if f_secs is None else min(f_secs, f_s)
            w_secs = w_s if w_secs is None else min(w_secs, w_s)
            assert fresh.ok and warm.ok
            assert fresh.query_bytes == warm.query_bytes
        record_incremental(f"fig10_{label}", f_secs, w_secs)
        record_solver(f"fig10_{label}", f_secs, w_secs, fresh.stats,
                      fresh.query_bytes)
        rows.append([label, f"{f_secs:.2f}", f"{w_secs:.2f}",
                     f"{f_secs / w_secs:.2f}x"])
        # Perf-smoke gate: warm must at least match fresh on every row
        # (this is the fig10_marshal regression this pass fixed).
        assert w_secs <= f_secs, \
            f"warm regression on fig10_{label}: {f_secs / w_secs:.3f}x"
        total_fresh += f_secs
        total_warm += w_secs
    table(["ironkv module", "fresh (s)", "warm (s)", "speedup"], rows)
    assert total_warm <= total_fresh  # no regression from warming
