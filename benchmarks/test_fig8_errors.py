"""Figure 8: time to report *failure* (error feedback).

Paper result: Verus, Dafny, and Prusti pinpoint failures about as fast as
they report success; Low* degrades ~4× (fuel retries) and Creusot ~20×
(the prover portfolio must be exhausted).
"""

import pytest

from conftest import banner, table
from repro.baselines.pipelines import PIPELINES, time_pipeline
from repro.lang import *

TOOLS = ["verus", "dafny", "prusti", "fstar", "creusot"]
U64_MAX = (1 << 64) - 1
SeqU = SeqType(U64)


def _list_module(break_pop: bool = False, break_index: bool = False):
    """The singly-linked-list pop/index pair, optionally 'broken' by
    removing a precondition — the paper's exact failure-injection recipe."""
    mod = Module("fig8_list")
    List = StructType("SList").declare([("cells", SeqU)])
    mod.datatype(List)
    l = var("l", List)
    spec_fn(mod, "view", [("l", List)], SeqU, body=l.field("cells"))

    pop_requires = [] if break_pop else [call(mod, "view", l).length() > 0]
    PopOut = StructType("F8Pop").declare([("value", U64), ("rest", List)])
    mod.datatype(PopOut)
    exec_fn(mod, "pop_tail", [("l", List)], ret=("out", PopOut),
            requires=pop_requires,
            ensures=[
                var("out", PopOut).field("value").eq(
                    call(mod, "view", l).index(
                        call(mod, "view", l).length() - 1)),
            ],
            body=[
                let_("n", l.field("cells").length()),
                ret(struct(PopOut,
                           value=l.field("cells").index(var("n", INT) - 1),
                           rest=struct(List,
                                       cells=l.field("cells").take(
                                           var("n", INT) - 1)))),
            ])

    i = var("i", U64)
    idx_requires = [] if break_index else \
        [i < call(mod, "view", l).length()]
    exec_fn(mod, "index", [("l", List), ("i", U64)], ret=("r", U64),
            requires=idx_requires,
            ensures=[] if break_index else
            [var("r", U64).eq(call(mod, "view", l).index(i))],
            body=[ret(l.field("cells").index(i))])
    return mod


@pytest.fixture(scope="module")
def timings():
    out = {}
    for tool in TOOLS:
        ok_res, ok_secs = time_pipeline(PIPELINES[tool], _list_module())
        assert ok_res is not None and ok_res.ok
        fail = {}
        for label, kwargs in [("pop", {"break_pop": True}),
                              ("index", {"break_index": True})]:
            res, secs = time_pipeline(PIPELINES[tool],
                                      _list_module(**kwargs))
            assert res is not None and not res.ok, \
                f"{tool}: broken {label} not detected"
            fail[label] = secs
        out[tool] = (ok_secs, fail)
    return out


def test_fig8_error_feedback(timings, benchmark):
    banner("Figure 8: success vs error-report time (seconds)")
    rows = []
    for tool in TOOLS:
        ok_secs, fail = timings[tool]
        rows.append([tool, f"{ok_secs:.2f}",
                     f"{fail['pop']:.2f}", f"{fail['index']:.2f}"])
    table(["tool", "success", "error: pop", "error: index"], rows)
    # Shape: Verus reports errors about as fast as success (within 4x —
    # failed obligations spend their instantiation budget).
    ok, fail = timings["verus"]
    assert fail["pop"] < max(ok, 0.05) * 8
    # Creusot's portfolio makes failure its slow path: failure is slower
    # than ITS success by a larger factor than Verus's.
    c_ok, c_fail = timings["creusot"]
    assert c_fail["pop"] / max(c_ok, 1e-6) >= \
        fail["pop"] / max(ok, 1e-6)
    benchmark.pedantic(
        lambda: time_pipeline(PIPELINES["verus"],
                              _list_module(break_pop=True)),
        rounds=1, iterations=1)


def test_fig8_failures_localized(timings):
    # the failing obligation names the broken function
    res, _ = time_pipeline(PIPELINES["verus"], _list_module(break_pop=True))
    failures = res.failures()
    assert failures
    assert any("pop_tail" in fn_name for fn_name, _ in failures)
