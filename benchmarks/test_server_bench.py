"""Service daemon throughput/latency: cold vs warm-resident vs delta.

Drives a live in-process :class:`repro.server.daemon.VerifyServer` (real
socket, real protocol) through the five shipped case studies and times
each request end to end at the client, bucketed by how the daemon
served it:

* **cold** — first-ever submission to a freshly started daemon: full VC
  generation and solving (each cold repetition uses its own daemon with
  an empty proof cache and an empty warm-context pool).
* **warm** — re-submission of a known module with the delta fast path
  disabled for the request: served from the daemon's residency
  (pre-warmed solver contexts plus the resident proof cache).  CRC-table
  style obligations that bypass the proof cache re-solve here, so a few
  warm-bucket requests legitimately report the ``cold`` daemon path.
* **delta** — re-submission with the delta path on: unchanged
  dependency fingerprints replay whole functions without planning.

Emits ``BENCH_server.json`` (repo root) with requests/sec and p50/p95
latency per bucket, and asserts the residency acceptance bar: warm and
delta requests at least 2x faster than cold at the median.

Run:  PYTHONPATH=src python -m pytest benchmarks/test_server_bench.py -q
"""

import asyncio
import json
import os
import threading
import time

from conftest import FULL, banner, table

from repro.api import VerifyConfig
from repro.server import ServerClient, ServerConfig, VerifyServer

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_server.json")
COMMAND = "PYTHONPATH=src python -m pytest benchmarks/test_server_bench.py -q"

CASE_STUDIES = [
    "repro.systems.ironkv.delegation_map:build_default_module",
    "repro.systems.nr.model:build_nr_core_module",
    "repro.systems.pagetable.view_verified:build_view_module",
    "repro.systems.mimalloc.verified:build_bit_tricks_module",
    "repro.systems.plog.crc_verified:build_crc_table_module",
]

REPS = 5 if FULL else 3


def _percentile(samples, p):
    ordered = sorted(samples)
    if not ordered:
        return None
    k = (len(ordered) - 1) * p
    lo, hi = int(k), min(int(k) + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)


def _bucket_stats(samples, wall_s, paths):
    return {
        "requests": len(samples),
        "wall_seconds": round(wall_s, 4),
        "requests_per_sec": round(len(samples) / wall_s, 2) if wall_s
        else None,
        "p50_ms": round(_percentile(samples, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(samples, 0.95) * 1000, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1000, 3),
        "daemon_paths": paths,
    }


class _DaemonThread:
    def __init__(self, verify_cfg):
        self.server = VerifyServer(ServerConfig(port=0, workers=2),
                                   verify_cfg)
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            await self.server.start()
            self._started.set()
            await self.server.serve_forever()
        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(15), "daemon failed to start"
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            with ServerClient(port=self.server.port,
                              client="teardown") as c:
                c.shutdown()
        except Exception:
            pass
        self._thread.join(30)


def _drive(client, config, reps):
    """Submit every case study ``reps`` times; returns latencies+paths."""
    samples, paths = [], {}
    t0 = time.perf_counter()
    for _ in range(reps):
        for dotted in CASE_STUDIES:
            t1 = time.perf_counter()
            reply = client.verify(builder=dotted, config=config)
            samples.append(time.perf_counter() - t1)
            assert reply["status"] == "ok" and reply["result"]["ok"], \
                (dotted, reply.get("status"), reply.get("error"))
            path = reply["server"]["path"]
            paths[path] = paths.get(path, 0) + 1
    return samples, time.perf_counter() - t0, paths


def _merge(into, paths):
    for k, v in paths.items():
        into[k] = into.get(k, 0) + v


def test_server_request_paths(tmp_path):
    cold, cold_wall, cold_paths = [], 0.0, {}
    warm = delta = None
    # Each cold repetition gets its own daemon: empty proof cache, empty
    # warm pool — a genuinely cold front door.  The last daemon stays up
    # and serves the warm and delta re-submission passes.
    for rep in range(REPS):
        cfg = VerifyConfig(cache_dir=str(tmp_path / f"cache{rep}"))
        with _DaemonThread(cfg) as d, \
                ServerClient(port=d.server.port, client="bench",
                             timeout=600.0) as client:
            samples, wall, paths = _drive(client, None, 1)
            cold.extend(samples)
            cold_wall += wall
            _merge(cold_paths, paths)
            if rep == REPS - 1:
                warm = _drive(client, {"delta": False}, REPS)
                delta = _drive(client, None, REPS)
                status = client.status()["result"]
    assert cold_paths == {"cold": len(cold)}, cold_paths

    warm_samples, warm_wall, warm_paths = warm
    # Obligations that bypass the proof cache (CRC-table computation
    # goals) re-solve on every delta-off re-submission; everything else
    # must ride residency.
    assert warm_paths.get("cold", 0) <= REPS, warm_paths

    delta_samples, delta_wall, delta_paths = delta
    assert set(delta_paths) == {"delta"}, delta_paths

    buckets = {
        "cold": _bucket_stats(cold, cold_wall, cold_paths),
        "warm": _bucket_stats(warm_samples, warm_wall, warm_paths),
        "delta": _bucket_stats(delta_samples, delta_wall, delta_paths),
    }
    warm_speedup = round(buckets["cold"]["p50_ms"]
                         / buckets["warm"]["p50_ms"], 2)
    delta_speedup = round(buckets["cold"]["p50_ms"]
                          / buckets["delta"]["p50_ms"], 2)

    banner("repro.server: request latency by path (five case studies)")
    table(["bucket", "reqs", "req/s", "p50 ms", "p95 ms", "speedup"],
          [[name, b["requests"], b["requests_per_sec"], b["p50_ms"],
            b["p95_ms"],
            {"cold": "1.00x", "warm": f"{warm_speedup}x",
             "delta": f"{delta_speedup}x"}[name]]
           for name, b in buckets.items()])

    payload = {
        "description": "Verification daemon request latency over the "
                       "five case studies: cold solves (fresh daemon per "
                       "repetition) vs warm-resident re-submissions "
                       "(delta off: warm contexts + proof cache) vs "
                       "delta-path re-submissions.",
        "command": COMMAND,
        "reps_per_module": REPS,
        "case_studies": CASE_STUDIES,
        "buckets": buckets,
        "warm_p50_speedup_vs_cold": warm_speedup,
        "delta_p50_speedup_vs_cold": delta_speedup,
        "warm_pool": status["warm"],
        "cache": status["cache"],
    }
    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Residency acceptance: re-submissions must be at least 2x faster
    # than cold solves at the median (in practice they are 10-100x).
    assert warm_speedup >= 2.0, buckets
    assert delta_speedup >= 2.0, buckets
