"""Figure 11: NR throughput vs thread count at 0%/10%/100% writes.

Paper result: on a 4-socket machine, read-only throughput scales with
thread count; at 10% writes the log serializes some work; at 100% writes
throughput plateaus early.  Verus-NR matches IronSync-NR and the
unverified NR across the sweep.

Substitution (DESIGN.md): no 4-socket Xeon exists here and the GIL would
flatten real threads, so the *same replicated-structure logic* is driven
through the discrete-event simulator: thread bodies execute reads/writes
against a cost model (local reads cheap, log appends serialized through a
shared resource, combiner batches per replica).  The verified/IronSync/
unverified variants differ exactly as in the paper: by the (tiny) ghost
bookkeeping attached to each operation.
"""

import pytest

from conftest import FULL, banner, table
from repro.runtime.des import Resource, Simulator

THREADS = [4, 48, 96, 144, 192]
WRITE_RATIOS = [0.0, 0.1, 1.0]
HORIZON = 2_000.0  # microseconds of simulated time

# cost model (µs): tuned to NR's regimes, not to any absolute numbers
READ_LOCAL = 0.08
WRITE_APPEND = 0.30      # serialized CAS+log append
COMBINER_APPLY = 0.05    # per-entry apply at a replica
GHOST_OVERHEAD = {"NR": 0.0, "IronSync-NR": 0.004, "Verus-NR": 0.004}


def run_nr_sim(threads: int, write_ratio: float, variant: str) -> float:
    sim = Simulator(sockets=4, cores_per_socket=48)
    log_tail = Resource(sim, "log-tail")
    combiners = [Resource(sim, f"combiner{s}") for s in range(4)]
    ghost = GHOST_OVERHEAD[variant]

    def body(thread):
        rng_state = hash((thread.name, variant)) & 0xFFFFFFFF
        while True:
            rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
            is_write = (rng_state / 0x7FFFFFFF) < write_ratio
            if is_write:
                # append serializes on the shared tail, then the combiner
                # applies the batch at this thread's replica
                release = log_tail.acquire_at(thread.now,
                                              WRITE_APPEND + ghost)
                wait = max(0.0, release - thread.now)
                combiner = combiners[thread.socket]
                c_release = combiner.acquire_at(
                    thread.now + wait, COMBINER_APPLY + ghost)
                yield ("op_done",
                       wait + max(0.0, c_release - (thread.now + wait)))
            else:
                # local replica read; occasionally the replica must catch
                # up, paying a combiner visit (amortized by write ratio)
                cost = READ_LOCAL + ghost
                if write_ratio > 0:
                    rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
                    if (rng_state / 0x7FFFFFFF) < write_ratio * 0.2:
                        combiner = combiners[thread.socket]
                        release = combiner.acquire_at(thread.now,
                                                      COMBINER_APPLY)
                        cost += max(0.0, release - thread.now)
                yield ("op_done", cost)

    for i in range(threads):
        socket = (i // 48) % 4
        sim.thread(f"t{i}", socket, body)
    stats = sim.run(HORIZON)
    return stats["throughput"]  # ops per simulated µs


@pytest.fixture(scope="module")
def curves():
    out = {}
    for variant in ("NR", "IronSync-NR", "Verus-NR"):
        for ratio in WRITE_RATIOS:
            out[(variant, ratio)] = [run_nr_sim(t, ratio, variant)
                                     for t in THREADS]
    return out


def test_fig11_scaling(curves, benchmark):
    for ratio, label in [(0.0, "0% writes"), (0.1, "10% writes"),
                         (1.0, "100% writes")]:
        banner(f"Figure 11: NR throughput, {label} (Mops/sim-sec)")
        rows = [[f"{t} threads"] + [
            f"{curves[(v, ratio)][i]:.2f}"
            for v in ("NR", "IronSync-NR", "Verus-NR")]
            for i, t in enumerate(THREADS)]
        table(["threads", "NR", "IronSync-NR", "Verus-NR"], rows)

    # Shape 1: read-only throughput scales (more threads => more ops).
    ro = curves[("Verus-NR", 0.0)]
    assert ro[-1] > ro[0] * 3, ro
    # Shape 2: 100% writes plateaus — going 4 -> 192 threads gains little.
    wo = curves[("Verus-NR", 1.0)]
    assert wo[-1] < wo[0] * 3, wo
    # Shape 3: at every point, read-only beats write-heavy.
    for i in range(len(THREADS)):
        assert curves[("Verus-NR", 0.0)][i] > curves[("Verus-NR", 1.0)][i]
    # Shape 4: Verus-NR matches unverified NR within 10%.
    for ratio in WRITE_RATIOS:
        for i in range(len(THREADS)):
            nr = curves[("NR", ratio)][i]
            verus = curves[("Verus-NR", ratio)][i]
            assert abs(verus - nr) / nr < 0.10, (ratio, THREADS[i])
    benchmark.pedantic(lambda: run_nr_sim(48, 0.1, "Verus-NR"),
                       rounds=1, iterations=1)


def test_fig11_real_implementation_agrees(benchmark):
    """Sanity-bind the simulator to the real ghost-checked implementation:
    run the actual NodeReplicated structure (real threads, small scale)
    and check writes serialize while reads do not."""
    import threading
    import time as _time
    from repro.systems.nr.log import NodeReplicated

    nr = NodeReplicated(num_replicas=2, ghost=True)
    for i in range(50):
        nr.write(i % 2, ("set", f"k{i}", i))

    def read_many(rid):
        for _ in range(300):
            nr.read(rid, "k0")

    t0 = _time.perf_counter()
    ts = [threading.Thread(target=read_many, args=(r,)) for r in range(2)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    read_time = _time.perf_counter() - t0
    assert read_time > 0
    assert nr.read(0, "k49") == 49
    benchmark.pedantic(lambda: nr.read(0, "k0"), rounds=1, iterations=1)
