"""Figure 12: page-table map/unmap latency.

Paper result: the verified page table's ``map`` matches the unverified
NrOS reference; verified ``unmap`` is slower because it reclaims emptied
directories, confirmed by an unverified no-reclamation variant
(Unmap(Verif.*)) matching the reference again.
"""

import time

import pytest

from conftest import FULL, banner, table
from repro.systems.pagetable.hw import PAGE_SIZE, PageTable

OPS = 20_000 if not FULL else 200_000


def _bench(reclaim: bool) -> tuple[float, float]:
    """(map_ns, unmap_ns) mean latency over OPS operations."""
    pt = PageTable(reclaim=reclaim)
    vas = [(i * 0x5DEECE66D % (1 << 34)) // PAGE_SIZE * PAGE_SIZE * 512
           for i in range(OPS)]
    vas = [va % (1 << 46) for va in vas]
    seen = set()
    unique_vas = [va for va in vas if not (va in seen or seen.add(va))]
    t0 = time.perf_counter()
    for va in unique_vas:
        pt.map_frame(va, 0x1000)
    map_ns = (time.perf_counter() - t0) / len(unique_vas) * 1e9
    t0 = time.perf_counter()
    for va in unique_vas:
        pt.unmap(va)
    unmap_ns = (time.perf_counter() - t0) / len(unique_vas) * 1e9
    return map_ns, unmap_ns


@pytest.fixture(scope="module")
def latencies():
    verified = _bench(reclaim=True)      # the verified design reclaims
    no_reclaim = _bench(reclaim=False)   # Unmap(Verif.*) in the figure
    reference = _bench(reclaim=False)    # the unverified NrOS reference
    return {"verified": verified, "verif_noreclaim": no_reclaim,
            "reference": reference}


def test_fig12_latency(latencies, benchmark):
    banner("Figure 12: page-table latency (ns/op, mean)")
    rows = [[name, f"{m:.0f}", f"{u:.0f}"]
            for name, (m, u) in latencies.items()]
    table(["variant", "map", "unmap"], rows)
    v_map, v_unmap = latencies["verified"]
    r_map, r_unmap = latencies["reference"]
    nr_map, nr_unmap = latencies["verif_noreclaim"]
    # map matches the reference (same walk; reclamation only affects unmap)
    assert v_map < r_map * 1.8
    # verified unmap is slower than the reference (reclamation cost) ...
    assert v_unmap > r_unmap * 1.1
    # ... and disabling reclamation recovers reference-level unmap.
    assert nr_unmap < r_unmap * 1.5
    benchmark.pedantic(lambda: _bench(reclaim=True), rounds=1, iterations=1)


def test_fig12_reclamation_frees_memory(benchmark):
    # The flip side the figure's text mentions: reclamation keeps the
    # table's memory footprint bounded.
    pt_r = PageTable(reclaim=True)
    pt_n = PageTable(reclaim=False)
    for pt in (pt_r, pt_n):
        for i in range(2000):
            va = (i * (1 << 21)) % (1 << 40)
            pt.map_frame(va, 0x1000)
        for i in range(2000):
            va = (i * (1 << 21)) % (1 << 40)
            pt.unmap(va)
    assert pt_r.mmu.frames_freed > 0
    assert pt_n.mmu.frames_freed == 0
    live_r = pt_r.mmu.frames_allocated - pt_r.mmu.frames_freed
    live_n = pt_n.mmu.frames_allocated - pt_n.mmu.frames_freed
    assert live_r < live_n
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
