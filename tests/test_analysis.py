"""Static-analysis tests: the five passes, the scheduler gate, and the
satellite plumbing (trigger-fallback counting, EprViolation adapters,
JSON/text rendering, retired lang-shim absence).

The negative fixtures are seeded so each yields exactly the expected
finding; the sweep at the bottom asserts every shipped case-study and
millibench module analyzes clean (zero error-severity findings) — the
repo-wide invariant the CI ``analyze`` step enforces.
"""

import importlib

import pytest

from repro.analysis import (ERROR, INFO, WARNING, AnalysisReport, Finding,
                            analyze_module)
from repro.api import ANALYZE_ENV, Session, VerifyConfig
from repro.epr import EprViolation
from repro.lang import *
from repro.smt import terms as T
from repro.smt.quant import (BROAD, CONSERVATIVE,
                             FALLBACK_MULTI_PATTERN, select_triggers)
from repro.smt.solver import SmtSolver, Stats
from repro.smt.sorts import uninterpreted
from repro.vc.scheduler import Scheduler
from repro.vc.wp import VcGen


# ---------------------------------------------------------------------------
# Seeded negative fixtures — one expected finding each
# ---------------------------------------------------------------------------

def _mode_violation_module() -> Module:
    """A spec function whose body calls an exec function."""
    mod = Module("mode_bad")
    x = var("x", INT)
    exec_fn(mod, "helper", [("x", INT)], ret=("r", INT), body=[ret(x)])
    spec_fn(mod, "bad_spec", [("x", INT)], INT,
            body=rec_call("helper", INT, x))
    return mod


def _no_decreases_module() -> Module:
    """A recursive spec function without a decreases measure, plus an
    exec caller so the scheduler would actually plan obligations."""
    mod = Module("rec_bad")
    n = var("n", INT)
    spec_fn(mod, "count", [("n", INT)], INT,
            body=ite(n <= 0, lit(0), rec_call("count", INT, n - 1) + 1))
    exec_fn(mod, "use_count", [],
            body=[assert_(call(mod, "count", lit(0)).eq(0))])
    return mod


def _matching_loop_module() -> Module:
    """The classic two-axiom loop: g(f(x)) == x and f(g(y)) == y.

    Each axiom's (conservative) trigger is the inner application; each
    instantiation creates the other symbol's application over a strictly
    larger term — f -> g -> f with growing edges."""
    mod = Module("loopy")
    mod.add(Function("f", "spec", [Param("x", INT)], ("result", INT)))
    mod.add(Function("g", "spec", [Param("y", INT)], ("result", INT)))
    x, y = var("x", INT), var("y", INT)
    proof_fn(mod, "uses_axioms", [],
             requires=[
                 forall([("x", INT)],
                        call(mod, "g", call(mod, "f", x)).eq(x)),
                 forall([("y", INT)],
                        call(mod, "f", call(mod, "g", y)).eq(y)),
             ],
             body=[])
    return mod


ADV = StructType("AdvisorSort")


def _epr_eligible_module() -> Module:
    """A default-mode module whose vocabulary already fits EPR."""
    mod = Module("epr_ready")  # note: NOT epr_mode
    mod.add(Function("rel", "spec", [Param("a", ADV), Param("b", ADV)],
                     ("result", BOOL)))
    va, vb = var("a", ADV), var("b", ADV)
    proof_fn(mod, "uses_rel", [("x", ADV)],
             requires=[forall([("a", ADV), ("b", ADV)],
                              call(mod, "rel", va, vb).implies(
                                  call(mod, "rel", va, vb)))],
             body=[])
    return mod


def _dead_spec_module() -> Module:
    """A spec function no exec/proof function ever reaches."""
    mod = Module("deadweight")
    x = var("x", INT)
    spec_fn(mod, "used", [("x", INT)], INT, body=x + 1)
    spec_fn(mod, "never_used", [("x", INT)], INT, body=x + 2)
    exec_fn(mod, "go", [("x", INT)], ret=("r", INT),
            ensures=[var("r", INT).eq(call(mod, "used", x))],
            body=[ret(x + 1)])
    return mod


class TestPasses:
    def test_mode_checker_flags_spec_calling_exec(self):
        report = analyze_module(_mode_violation_module())
        errs = report.errors()
        assert len(errs) == 1
        assert errs[0].pass_id == "modes"
        assert "helper" in errs[0].message
        assert "mode_bad.bad_spec" == errs[0].where

    def test_mode_checker_flags_ghost_result_in_exec(self):
        mod = Module("ghost_leak")
        x = var("x", INT)
        proof_fn(mod, "lemma", [("x", INT)], ret=("r", INT), body=[ret(x)])
        exec_fn(mod, "leak", [("x", INT)],
                body=[call_stmt("lemma", [x], binds=["gr"])])
        report = analyze_module(mod)
        errs = report.errors()
        assert any(e.pass_id == "modes" and "ghost result" in e.message
                   for e in errs)

    def test_termination_flags_missing_decreases(self):
        report = analyze_module(_no_decreases_module())
        errs = report.errors()
        assert len(errs) == 1
        assert errs[0].pass_id == "termination"
        assert errs[0].where == "rec_bad.count"
        assert "decreases" in errs[0].message

    def test_termination_accepts_decreases(self):
        mod = Module("rec_ok")
        n = var("n", INT)
        spec_fn(mod, "count", [("n", INT)], INT,
                body=ite(n <= 0, lit(0), rec_call("count", INT, n - 1) + 1),
                decreases=n)
        assert analyze_module(mod).by_pass("termination") == []

    def test_matching_loop_two_axiom_cycle(self):
        report = analyze_module(_matching_loop_module())
        errs = report.errors()
        assert len(errs) == 1
        assert errs[0].pass_id == "matching-loop"
        assert "f" in errs[0].message and "g" in errs[0].message

    def test_matching_loop_ignores_bounded_cycles(self):
        # has/get invariant shape: a has<->get cycle whose edges never
        # grow the instantiation — must NOT be flagged.
        mod = Module("benign")
        M = StructType("BMap")
        mod.add(Function("has", "spec", [Param("m", M), Param("k", INT)],
                         ("result", BOOL)))
        mod.add(Function("get", "spec", [Param("m", M), Param("k", INT)],
                         ("result", INT)))
        m, k = var("m", M), var("k", INT)
        proof_fn(mod, "inv", [("m", M)],
                 requires=[forall([("k", INT)],
                                  call(mod, "has", m, k).implies(
                                      call(mod, "get", m, k) >= 0))],
                 body=[])
        assert analyze_module(mod).errors() == []

    def test_epr_advisor_flags_eligible_module(self):
        report = analyze_module(_epr_eligible_module())
        assert report.errors() == []
        infos = report.by_pass("epr")
        assert len(infos) == 1
        assert infos[0].severity == INFO
        assert "epr_mode" in infos[0].message

    def test_epr_advisor_errors_on_bad_epr_module(self):
        mod = Module("epr_broken", epr_mode=True)
        x = var("x", INT)
        spec_fn(mod, "plus", [("x", INT)], INT, body=x + 1)
        report = analyze_module(mod)
        assert report.has_errors
        assert all(f.pass_id == "epr" for f in report.errors())

    def test_pruning_advisor_flags_dead_spec(self):
        report = analyze_module(_dead_spec_module())
        assert report.errors() == []
        prun = report.by_pass("pruning")
        assert [f.where for f in prun] == ["deadweight.never_used"]
        assert prun[0].severity == INFO


# ---------------------------------------------------------------------------
# The scheduler gate: reject before any solver exists
# ---------------------------------------------------------------------------

class _NoSolver:
    """Poisoned SmtSolver constructor: any instantiation fails the test."""

    def __init__(self, *a, **k):
        raise AssertionError("SmtSolver constructed during a gated run")


class TestSchedulerGate:
    @pytest.mark.parametrize("builder", [_no_decreases_module,
                                         _matching_loop_module])
    def test_rejects_without_smt_query(self, builder, monkeypatch):
        monkeypatch.setattr(SmtSolver, "__init__", _NoSolver.__init__)
        sched = Scheduler(cache=False, analyze=True)
        result = VcGen(builder()).verify_module(sched)
        assert result.rejected
        assert not result.ok
        assert result.functions == []          # nothing was even planned
        assert result.query_bytes == 0
        assert result.analysis is not None and result.analysis.has_errors
        assert "REJECTED" in result.report()

    def test_clean_module_passes_through_gate(self):
        mod = Module("gate_ok")
        x = var("x", INT)
        exec_fn(mod, "ident", [("x", INT)], ret=("r", INT),
                ensures=[var("r", INT).eq(x)], body=[ret(x)])
        # Triage off: the trivial obligation must reach the solver so
        # query_bytes actually witnesses a solve.
        result = VcGen(mod).verify_module(Scheduler(cache=False,
                                                    analyze=True,
                                                    triage="off"))
        assert result.ok and not result.rejected
        assert result.analysis is not None
        assert result.query_bytes > 0          # it really verified

    def test_gate_off_by_default(self):
        result = VcGen(_no_decreases_module()).verify_module(
            Scheduler(cache=False))
        assert not result.rejected
        assert result.analysis is None

    def test_env_knob_read_once_in_from_env(self, monkeypatch):
        monkeypatch.setenv(ANALYZE_ENV, "1")
        assert VerifyConfig.from_env().analyze is True
        assert Scheduler(cache=False).analyze is True
        monkeypatch.setenv(ANALYZE_ENV, "0")
        assert VerifyConfig.from_env().analyze is False
        assert Scheduler(cache=False).analyze is False

    def test_session_analyze_verb(self):
        report = Session().analyze(_dead_spec_module())
        assert isinstance(report, AnalysisReport)
        assert report.ok


# ---------------------------------------------------------------------------
# Satellite: trigger-fallback counting
# ---------------------------------------------------------------------------

_S = uninterpreted("TFS")
_p = T.FuncDecl("tf_p", [_S], T.BoolVal(True).sort)


class TestTriggerFallbacks:
    def _multi_pattern_quant(self):
        x, y = T.Var("x", _S), T.Var("y", _S)
        return T.ForAll([x, y],
                        T.Implies(T.And(_p(x), _p(y)), T.Eq(x, y)))

    def test_on_fallback_callback_fires(self):
        seen = []
        select_triggers(self._multi_pattern_quant(), CONSERVATIVE,
                        on_fallback=seen.append)
        assert seen == [FALLBACK_MULTI_PATTERN]

    def test_stats_field_and_snapshot(self):
        stats = Stats()
        assert stats.trigger_fallbacks == 0
        assert "trigger_fallbacks" in stats.snapshot()

    def test_solver_counts_fallbacks(self):
        solver = SmtSolver()
        solver.add(self._multi_pattern_quant())
        solver.add(_p(T.Const("c0", _S)))
        solver.check()
        assert solver.stats.trigger_fallbacks >= 1
        assert solver.stats.snapshot()["trigger_fallbacks"] >= 1


# ---------------------------------------------------------------------------
# Satellite: EprViolation span + to_finding adapter
# ---------------------------------------------------------------------------

class TestEprViolationAdapter:
    def test_to_finding_defaults(self):
        v = EprViolation("m.f", "arithmetic is outside EPR")
        f = v.to_finding()
        assert isinstance(f, Finding)
        assert (f.pass_id, f.severity) == ("epr", ERROR)
        assert f.where == "m.f" and f.span is None

    def test_check_epr_module_threads_spans(self):
        mod = Module("span_epr", epr_mode=True)
        x = var("x", INT)
        spec_fn(mod, "plus", [("x", INT)], INT, body=x + 1)
        from repro.epr import check_epr_module
        violations = check_epr_module(mod)
        fn_level = [v for v in violations if "." in v.where]
        assert fn_level
        # function-level violations carry the function's span; the
        # module-level sort-cycle one legitimately has none
        assert all(v.span is not None for v in fn_level)
        assert all(v.to_finding().span is v.span for v in violations)


# ---------------------------------------------------------------------------
# Rendering: text and JSON through the diag machinery
# ---------------------------------------------------------------------------

class TestRendering:
    def test_report_text(self):
        report = analyze_module(_no_decreases_module())
        text = report.report()
        assert "1 error(s)" in text
        assert "ERROR [termination] rec_bad.count" in text
        assert "hint:" in text

    def test_analysis_json(self):
        report = analyze_module(_no_decreases_module())
        js = report.to_json()
        assert js["module"] == "rec_bad"
        assert js["ok"] is False and js["errors"] == 1
        assert js["passes"] == ["modes", "termination", "matching-loop",
                                "epr", "pruning"]
        [finding] = [f for f in js["findings"] if f["severity"] == ERROR]
        assert finding["pass"] == "termination"
        assert finding["span"] is not None

    def test_module_json_carries_analysis(self, monkeypatch):
        sched = Scheduler(cache=False, analyze=True)
        result = VcGen(_no_decreases_module()).verify_module(sched)
        js = result.to_json()
        assert js["rejected"] is True and js["ok"] is False
        assert js["analysis"]["errors"] == 1
        assert js["query_bytes"] == 0

    def test_finding_to_dict_roundtrip_keys(self):
        f = Finding("modes", WARNING, "m.f", "msg", suggestion="do x")
        d = f.to_dict()
        assert d == {"pass": "modes", "severity": "warning", "where": "m.f",
                     "message": "msg", "span": None, "suggestion": "do x"}

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("modes", "fatal", "m", "msg")


# ---------------------------------------------------------------------------
# Satellite: the deprecated lang shims are gone for good
# ---------------------------------------------------------------------------

class TestDeprecationShims:
    def test_legacy_shims_removed(self):
        """The deprecated ``lang.verify``/``verify_module``/``diagnose``
        shims were retired; verification goes through repro.api.Session
        (and the module neither exports nor defines the old names)."""
        import repro.lang as lang
        for name in ("verify", "verify_module", "diagnose"):
            assert not hasattr(lang, name)
            assert name not in lang.__all__


# ---------------------------------------------------------------------------
# The repo-wide invariant: every shipped module analyzes clean
# ---------------------------------------------------------------------------

SHIPPED_BUILDERS = [
    "repro.systems.ironkv.delegation_map.build_default_module",
    "repro.systems.ironkv.delegation_map_epr.build_epr_model",
    "repro.systems.ironkv.marshal_verified.build_u64_roundtrip_module",
    "repro.systems.nr.model.build_nr_core_module",
    "repro.systems.pagetable.view_verified.build_view_module",
    "repro.systems.pagetable.entry_verified.build_entry_module",
    "repro.systems.mimalloc.verified.build_bit_tricks_module",
    "repro.systems.mimalloc.verified.build_disjointness_module",
    "repro.systems.plog.crc_verified.build_crc_table_module",
    "repro.millibench.lists.build_singly_linked_module",
    "repro.millibench.lists.build_doubly_linked_module",
    "repro.millibench.distlock.build_default_module",
    "repro.millibench.distlock.build_epr_module",
    "repro.lang.stdlib.build_stdlib",
]


class TestShippedModulesClean:
    @pytest.mark.parametrize("dotted", SHIPPED_BUILDERS)
    def test_zero_error_findings(self, dotted):
        module_path, fn = dotted.rsplit(".", 1)
        mod = getattr(importlib.import_module(module_path), fn)()
        report = analyze_module(mod)
        assert report.errors() == [], report.report()

    def test_memory_reasoning_clean(self):
        from repro.millibench.lists import build_memory_reasoning_module
        report = analyze_module(build_memory_reasoning_module(4))
        assert report.errors() == [], report.report()
