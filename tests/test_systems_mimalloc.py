"""Tests for the mimalloc case study (§4.2.4)."""

import random
import threading

import pytest

from repro.systems.mimalloc.alloc import (Allocator, FastAllocator,
                                          PAGE_SIZE, SIZE_CLASSES,
                                          size_class_index)
from repro.systems.mimalloc.verified import (build_bit_tricks_module,
                                             build_disjointness_module,
                                             build_lifecycle_system)


class TestSizeClasses:
    def test_classes_sorted(self):
        assert SIZE_CLASSES == sorted(SIZE_CLASSES)

    def test_index_fits(self):
        for size in (1, 8, 9, 100, 1024, 60000):
            ci = size_class_index(size)
            assert SIZE_CLASSES[ci] >= size
            if ci > 0:
                assert SIZE_CLASSES[ci - 1] < size

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            size_class_index(1 << 20)


class TestAllocator:
    def test_unique_addresses(self):
        a = Allocator(ghost=True)
        seen = set()
        for _ in range(1000):
            p = a.malloc(64)
            assert p not in seen
            seen.add(p)

    def test_reuse_after_free(self):
        a = Allocator(ghost=True)
        p = a.malloc(64)
        a.free(p)
        q = a.malloc(64)
        assert q == p  # LIFO free list reuses the block

    def test_double_free_detected(self):
        a = Allocator(ghost=True)
        p = a.malloc(32)
        a.free(p)
        with pytest.raises(AssertionError):
            a.free(p)

    def test_foreign_free_detected(self):
        a = Allocator(ghost=True)
        with pytest.raises(AssertionError):
            a.free(0xDEAD000)

    def test_blocks_do_not_alias(self):
        a = Allocator(ghost=True)
        live = {}
        rng = random.Random(5)
        for _ in range(2000):
            if live and rng.random() < 0.4:
                addr = rng.choice(list(live))
                a.free(addr)
                del live[addr]
            else:
                size = rng.choice([8, 16, 100, 1000, 30000])
                addr = a.malloc(size)
                ci = size_class_index(size)
                end = addr + SIZE_CLASSES[ci]
                for other, other_end in live.items():
                    assert end <= other or other_end <= addr
                live[addr] = end

    def test_cross_thread_free(self):
        a = Allocator(ghost=True)
        # a size class with capacity 1 per page: the next malloc after a
        # cross-thread free MUST collect the atomic list to make progress
        block = a.malloc(60000, thread_id=1)
        a.free(block, thread_id=2)           # lands on page.thread_free
        page = a._page_of(block)
        assert page.thread_free == [block]
        reused = a.malloc(60000, thread_id=1)
        assert reused == block               # collected and reused
        assert page.thread_free == []

    def test_concurrent_stress(self):
        a = Allocator(ghost=True)
        errors = []

        def worker(tid):
            try:
                rng = random.Random(tid)
                mine = []
                for _ in range(500):
                    if mine and rng.random() < 0.5:
                        a.free(mine.pop(), thread_id=tid)
                    else:
                        mine.append(a.malloc(rng.choice([16, 64, 256]),
                                             thread_id=tid))
                for p in mine:
                    a.free(p, thread_id=tid)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert not a.ghost.live

    def test_fast_allocator_has_no_ledger(self):
        fa = FastAllocator()
        p = fa.malloc(64)
        fa.free(p)
        assert fa.inner.ghost is None

    def test_page_capacity_respected(self):
        a = Allocator(ghost=True)
        count = PAGE_SIZE // 8
        blocks = [a.malloc(8) for _ in range(count + 10)]
        assert len(set(blocks)) == len(blocks)


class TestVerifiedFacets:
    def test_bit_tricks_verify(self):
        from repro.vc.wp import VcGen
        res = VcGen(build_bit_tricks_module()).verify_module()
        assert res.ok, res.report()

    def test_disjointness_verifies(self):
        from repro.vc.wp import VcGen
        res = VcGen(build_disjointness_module()).verify_module()
        assert res.ok, res.report()

    def test_lifecycle_protocol_verifies(self):
        res = build_lifecycle_system().check()
        assert res.ok, res.report()
        names = {f.name for f in res.functions}
        assert "free_remote#preserves" in names
        assert "no_double_free#property" in names

    def test_lifecycle_tokens_at_runtime(self):
        from repro.sync import ProtocolViolation, start
        sys_ = build_lifecycle_system()
        inst, _ = start(sys_)
        tok = inst.apply("mint", b=0x1000)["blocks"]
        tok = inst.apply("alloc", tokens={"blocks": tok}, b=0x1000)["blocks"]
        tok = inst.apply("free_remote", tokens={"blocks": tok},
                         b=0x1000)["blocks"]
        # double free: the Live shard is gone
        with pytest.raises(ProtocolViolation):
            inst.apply("free_local", tokens={"blocks": tok}, b=0x1000)
        inst.apply("collect", tokens={"blocks": tok}, b=0x1000)
