"""Tiered proof cache tests (repro.cache): memory → disk → network.

Covers the Merkle index and anti-entropy convergence (with transfer
counts), the circuit breaker's trip/half-open/close cycle, cross-tier
quarantine of tampered entries, the ``cache.net``/``cache.replica``
fault points, graceful degradation (a partitioned or corrupting replica
set behaves exactly like disk-only operation, byte-identically), and
the config/daemon wiring.
"""

import hashlib
import time

import pytest

from repro.api import Session, VerifyConfig
from repro.cache import (CacheReplica, CircuitBreaker, MerkleIndex,
                         ProofCache, ReplicaClient, TieredProofCache,
                         diff_shards, entry_is_sound, make_entry,
                         parse_tiers, seal_entry)
from repro.cache.breaker import CLOSED, HALF_OPEN, OPEN
from repro.cache.store import entry_checksum
from repro.lang import *
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.runtime.network import Network
from tests.helpers import verify_module


def _digest(tag) -> str:
    return hashlib.sha256(str(tag).encode()).hexdigest()


def _entries(n, start=0):
    return [make_entry(_digest(i), "proved", {"i": i}, 7, f"g{i}")
            for i in range(start, start + n)]


def _mk_module(bound=5, name="tiers_demo"):
    mod = Module(name)
    a = var("a", U64)
    r = var("res", U64)
    exec_fn(mod, "bump", [("a", U64)], ret=("res", U64),
            requires=[a < lit(100)],
            ensures=[r >= a, r <= a + lit(bound)],
            body=[ret(a + 1)])
    exec_fn(mod, "twice", [("a", U64)], ret=("res", U64),
            requires=[a < lit(100)],
            ensures=[r.eq(a + a)],
            body=[ret(a + a)])
    return mod


def _signature(res):
    return [(f.name, o.label, o.kind, o.status)
            for f in res.functions for o in f.obligations]


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def replica(net):
    rep = CacheReplica("cache0", net, poll=0.01).start()
    yield rep
    rep.stop()


def _tiered(tmp_path, net=None, name="c", root=None, **kw):
    kw.setdefault("net_timeout", 0.02)
    kw.setdefault("tiers", "mem,disk,net" if net is not None else "mem,disk")
    return TieredProofCache(str(tmp_path / (root or name)), network=net,
                            replica_name="cache0",
                            client_name=f"cli-{name}", **kw)


# ---------------------------------------------------------------------------
# Merkle index
# ---------------------------------------------------------------------------

class TestMerkle:
    def test_empty_roots_agree(self):
        assert MerkleIndex().root() == MerkleIndex().root()

    def test_put_changes_root_remove_restores(self):
        idx = MerkleIndex()
        empty = idx.root()
        idx.put(_digest(1), "c1")
        assert idx.root() != empty
        idx.remove(_digest(1))
        assert idx.root() == empty

    def test_insertion_order_irrelevant(self):
        a, b = MerkleIndex(), MerkleIndex()
        for i in range(40):
            a.put(_digest(i), f"c{i}")
        for i in reversed(range(40)):
            b.put(_digest(i), f"c{i}")
        assert a.root() == b.root()

    def test_diff_localizes_to_touched_shards(self):
        a, b = MerkleIndex(), MerkleIndex()
        for i in range(40):
            a.put(_digest(i), f"c{i}")
            b.put(_digest(i), f"c{i}")
        d = _digest("extra")
        b.put(d, "cx")
        differing = diff_shards(a.shard_hashes(), b.shard_hashes())
        assert differing == [d[:2]]
        assert d in b.leaves(d[:2])

    def test_checksum_change_same_key_detected(self):
        a, b = MerkleIndex(), MerkleIndex()
        d = _digest(1)
        a.put(d, "good")
        b.put(d, "rotten")
        assert diff_shards(a.shard_hashes(), b.shard_hashes()) == [d[:2]]


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class TestBreaker:
    def test_trip_halfopen_close_cycle(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=3, cooldown=5.0,
                            clock=lambda: clock[0])
        assert br.state == CLOSED
        assert not br.record_failure()
        assert not br.record_failure()
        assert br.record_failure()          # third consecutive: trips
        assert br.state == OPEN and br.trips == 1
        assert not br.allow()               # cooldown not elapsed
        clock[0] = 5.1
        assert br.allow()                   # the single half-open probe
        assert br.state == HALF_OPEN
        assert not br.allow()               # no second probe in flight
        assert br.record_success()          # probe ok -> closed + flush cue
        assert br.state == CLOSED
        assert br.allow()

    def test_failed_probe_reopens_without_new_trip(self):
        clock = [0.0]
        br = CircuitBreaker(threshold=1, cooldown=2.0,
                            clock=lambda: clock[0])
        br.record_failure()
        assert br.trips == 1
        clock[0] = 2.5
        assert br.allow()
        br.record_failure()                 # probe failed
        assert br.state == OPEN and br.trips == 1
        assert not br.allow()               # new cooldown started
        clock[0] = 5.0
        assert br.allow()

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(threshold=2, clock=lambda: 0.0)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == CLOSED           # never two *consecutive*


# ---------------------------------------------------------------------------
# Replica store + anti-entropy
# ---------------------------------------------------------------------------

class TestReplicaStore:
    def test_resolve_put_rejects_bad_checksum(self, replica):
        entry = seal_entry(_entries(1)[0])
        entry["stats"] = {"tampered": True}       # sum now stale
        assert not replica.store.resolve_put(entry)
        assert replica.store.quarantined == 1
        assert len(replica.store) == 0

    def test_valid_repairs_planted_corruption(self, replica):
        good = seal_entry(_entries(1)[0])
        rotten = dict(good)
        rotten["stats"] = {"rot": 1}              # body != claimed sum
        replica.store.plant(rotten)
        assert not entry_is_sound(replica.store.get(good["digest"]),
                                  good["digest"])
        assert replica.store.resolve_put(good)    # valid beats invalid
        assert replica.store.get(good["digest"]) == good

    def test_conflict_rule_symmetric(self):
        e = _entries(1)[0]
        a = seal_entry(dict(e, stats={"run": "a"}))
        b = seal_entry(dict(e, stats={"run": "b"}))
        from repro.cache.replica import ReplicaStore
        s1, s2 = ReplicaStore(), ReplicaStore()
        s1.resolve_put(a), s1.resolve_put(b)
        s2.resolve_put(b), s2.resolve_put(a)
        assert s1.get(e["digest"]) == s2.get(e["digest"])
        assert s1.index.root() == s2.index.root()


class TestAntiEntropy:
    def test_disjoint_halves_converge_with_counted_transfers(self, net):
        r1 = CacheReplica("r1", net, poll=0.01).start()
        r2 = CacheReplica("r2", net, poll=0.01).start()
        try:
            entries = _entries(20)
            assert r1.seed(entries[:10]) == 10
            assert r2.seed(entries[10:]) == 10
            assert r1.store.root() != r2.store.root()
            counts = r1.sync_with("r2")
            # Only the differing entries ship — each side's half, once.
            assert counts["pulled"] == 10
            assert counts["pushed"] == 10
            assert counts["quarantined"] == 0
            assert len(r1.store) == len(r2.store) == 20
            assert r1.store.root() == r2.store.root()
            again = r1.sync_with("r2")
            assert again["in_sync"]
            assert again["pulled"] == again["pushed"] == 0
            assert again["shards_walked"] == 0
        finally:
            r1.stop(), r2.stop()

    def test_sync_walks_only_differing_shards(self, net):
        r1 = CacheReplica("s1", net, poll=0.01).start()
        r2 = CacheReplica("s2", net, poll=0.01).start()
        try:
            shared = _entries(30)
            r1.seed(shared), r2.seed(shared)
            extra = make_entry(_digest("only-r2"), "failed", {}, 3, "g")
            r2.seed([extra])
            counts = r1.sync_with("s2")
            assert counts["shards_walked"] == 1
            assert counts["pulled"] == 1 and counts["pushed"] == 0
            assert r1.store.root() == r2.store.root()
        finally:
            r1.stop(), r2.stop()

    def test_sync_quarantines_planted_rot_then_repairs_peer(self, net):
        r1 = CacheReplica("q1", net, poll=0.01).start()
        r2 = CacheReplica("q2", net, poll=0.01).start()
        try:
            good = seal_entry(_entries(1)[0])
            digest = good["digest"]
            rotten = dict(good, stats={"rot": 1})
            r1.seed(_entries(1))                   # r1 holds the truth
            r2.store.plant(rotten)                 # r2 holds bit-rot
            counts = r2.sync_with("q1")
            # The rotten copy loses to the valid one; nothing rotten
            # survives on either side.
            assert counts["pulled"] == 1
            assert r2.store.get(digest) == good
            assert r1.store.get(digest) == good
            assert r1.store.root() == r2.store.root()
        finally:
            r1.stop(), r2.stop()

    def test_unreachable_peer_reported(self, net):
        r1 = CacheReplica("u1", net, poll=0.01).start()
        try:
            r1.seed(_entries(2))
            client = ReplicaClient(net, "nobody", "u1#sync",
                                   timeout=0.01, retries=0)
            counts = r1.sync_with("nobody", client=client)
            assert not counts["reachable"]
        finally:
            r1.stop()


# ---------------------------------------------------------------------------
# Tiered lookup/store mechanics
# ---------------------------------------------------------------------------

class TestTieredCache:
    def test_parse_tiers(self):
        assert parse_tiers(None) == ("mem", "disk")
        assert parse_tiers("net, mem") == ("mem", "disk", "net")
        assert parse_tiers("disk") == ("disk",)
        with pytest.raises(ValueError):
            parse_tiers("mem,disk,tape")

    def test_lookup_walks_mem_then_disk(self, tmp_path):
        tc = _tiered(tmp_path)
        d = _digest("a")
        tc.store(d, "proved", {"s": 1}, 5, "lbl")
        assert tc.lookup(d)["status"] == "proved"
        assert tc.mem_hits == 1 and tc.disk_hits == 0
        tc2 = _tiered(tmp_path)                    # cold memory, same disk
        assert tc2.lookup(d)["status"] == "proved"
        assert tc2.disk_hits == 1
        assert tc2.lookup(d)["status"] == "proved"
        assert tc2.mem_hits == 1                   # promoted on disk hit

    def test_mem_budget_evicts_lru(self, tmp_path):
        entry = make_entry(_digest("x"), "proved", {}, 0, "l")
        from repro.cache.store import entry_nbytes
        budget = entry_nbytes(entry) * 2 + 10
        tc = _tiered(tmp_path, mem_budget=budget)
        digests = [_digest(i) for i in range(4)]
        for d in digests:
            tc.store(d, "proved", {}, 0, "l")
        assert len(tc._mem) <= 2                   # budget enforced
        assert tc.lookup(digests[0])["digest"] == digests[0]
        assert tc.disk_hits == 1                   # evicted -> disk served

    def test_mem_disabled_without_mem_tier(self, tmp_path):
        tc = TieredProofCache(str(tmp_path / "d"), tiers="disk")
        tc.store(_digest("y"), "proved", {}, 0, "l")
        assert tc.lookup(_digest("y")) is not None
        assert tc.mem_hits == 0 and tc.disk_hits == 1

    def test_net_hit_promotes_to_local_tiers(self, tmp_path, net, replica):
        replica.seed(_entries(1))
        tc = _tiered(tmp_path, net)
        d = _digest(0)
        assert tc.lookup(d)["status"] == "proved"
        assert tc.net_hits == 1
        # Promoted: a fresh instance over the same disk never asks the
        # network again, and this instance serves memory.
        assert tc.lookup(d)["status"] == "proved"
        assert tc.mem_hits == 1
        tc2 = _tiered(tmp_path, net, name="c-again", root="c")
        requests0 = tc2.client.requests
        assert tc2.lookup(d)["status"] == "proved"
        assert tc2.disk_hits == 1 and tc2.client.requests == requests0

    def test_store_writes_through_to_replica(self, tmp_path, net, replica):
        tc = _tiered(tmp_path, net)
        d = _digest("w")
        tc.store(d, "failed", {"k": 1}, 9, "lbl")
        deadline = time.monotonic() + 2.0
        while replica.store.get(d) is None and time.monotonic() < deadline:
            time.sleep(0.005)
        stored = replica.store.get(d)
        assert stored is not None and entry_is_sound(stored, d)

    def test_uncacheable_status_not_stored(self, tmp_path):
        from repro.vc.errors import RESOURCE_OUT
        tc = _tiered(tmp_path)
        tc.store(_digest("r"), RESOURCE_OUT, {}, 0, "l")
        assert tc.stores == 0 and tc.lookup(_digest("r")) is None


class TestCrossTierQuarantine:
    def test_corrupt_net_entry_rejected_and_not_promoted(
            self, tmp_path, net, replica):
        good = _entries(1)[0]
        d = good["digest"]
        rotten = seal_entry(good)
        rotten["stats"] = {"rot": True}           # breaks the checksum
        replica.store.plant(rotten)
        tc = _tiered(tmp_path, net)
        assert tc.lookup(d) is None               # quarantined = a miss
        assert tc.quarantined == 1 and tc.corrupt == 1
        assert tc.misses == 1 and tc.net_hits == 0
        # Never promoted: disk has no file, memory has no entry.
        import os
        assert not os.path.exists(tc.disk._path(d))
        assert d not in tc._mem

    def test_resolved_verdict_overwrites_rot_via_store(
            self, tmp_path, net, replica):
        good = _entries(1)[0]
        d = good["digest"]
        rotten = seal_entry(good)
        rotten["query_bytes"] = 999999            # stale sum
        replica.store.plant(rotten)
        tc = _tiered(tmp_path, net)
        assert tc.lookup(d) is None               # quarantine, miss
        # "Re-solve" and store: the write-through put beats the rotten
        # incumbent (valid beats invalid) — the replica is repaired.
        tc.store(d, good["status"], good["stats"],
                 good["query_bytes"], good["label"])
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            held = replica.store.get(d)
            if held is not None and entry_is_sound(held, d):
                break
            time.sleep(0.005)
        assert entry_is_sound(replica.store.get(d), d)

    def test_rot_also_repaired_by_anti_entropy_round(self, net, replica):
        good = _entries(1)[0]
        d = good["digest"]
        rotten = seal_entry(good)
        rotten["label"] = "tampered"              # stale sum
        replica.store.plant(rotten)
        peer = CacheReplica("peer", net, poll=0.01).start()
        try:
            peer.seed([good])
            counts = replica.sync_with("peer")
            assert counts["pulled"] == 1
            assert entry_is_sound(replica.store.get(d), d)
            assert replica.store.root() == peer.store.root()
        finally:
            peer.stop()


# ---------------------------------------------------------------------------
# Fault envelope: deadlines, retries, breaker, fault points
# ---------------------------------------------------------------------------

class TestFaultEnvelope:
    def test_partitioned_replica_times_out_and_retries(self, tmp_path):
        lossy = Network(drop_rate=1.0)
        CacheReplica("cache0", lossy, poll=0.01).start().stop()  # exists
        tc = _tiered(tmp_path, lossy, net_timeout=0.01)
        assert tc.lookup(_digest("z")) is None
        assert tc.net_timeouts >= 1
        assert tc.net_retries_used >= 1

    def test_breaker_trips_and_stops_constructing_requests(
            self, tmp_path, net, replica):
        replica.crash()
        tc = _tiered(tmp_path, net, net_timeout=0.01,
                     breaker_threshold=2)
        for i in range(4):
            tc.lookup(_digest(i))
        assert tc.breaker_trips >= 1
        assert tc.breaker.state == OPEN
        requests0 = tc.client.requests
        for i in range(4, 10):
            tc.lookup(_digest(i))
        # Steady state after the trip: lookups fall through to local
        # tiers without constructing a single network request.
        assert tc.client.requests == requests0

    def test_stores_queue_while_open_and_flush_on_probe(
            self, tmp_path, net, replica):
        clock = [0.0]
        tc = _tiered(tmp_path, net, net_timeout=0.01, breaker_threshold=1)
        tc.breaker = CircuitBreaker(threshold=1, cooldown=1.0,
                                    clock=lambda: clock[0])
        replica.crash()
        tc.lookup(_digest("warmup"))              # trips the breaker
        assert tc.breaker.state == OPEN
        d = _digest("queued")
        tc.store(d, "proved", {}, 0, "l")
        assert tc.pending_stores == 1             # queued, not lost
        replica.revive()
        clock[0] = 1.5                            # cooldown elapsed
        assert tc.lookup(_digest("probe")) is None  # half-open probe, ok
        assert tc.breaker.state == CLOSED
        assert tc.pending_stores == 0             # flushed on close
        deadline = time.monotonic() + 2.0
        while replica.store.get(d) is None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert replica.store.get(d) is not None

    def test_cache_net_fault_kinds(self, tmp_path, net, replica):
        replica.seed(_entries(3))
        for kind, counter in (("drop", "net_timeouts"),
                              ("timeout", "net_timeouts"),
                              ("corrupt", None)):
            tc = _tiered(tmp_path, net, name=f"f-{kind}", net_timeout=0.01)
            plan = FaultPlan.from_string(f"cache.net:{kind}@1")
            prev = faults.install(plan)
            try:
                entry = tc.lookup(_digest(0))
            finally:
                faults.install(prev)
            # One attempt is sabotaged; the retry ladder still lands the
            # verdict, so the fault costs latency, never an answer.
            assert entry is not None and entry["status"] == "proved"
            assert plan.total_fired == 1
            if counter:
                assert getattr(tc, counter) >= 1
            else:
                assert tc.client.corrupt >= 1

    def test_cache_replica_crash_fault_point(self, tmp_path, net, replica):
        replica.seed(_entries(1))
        tc = _tiered(tmp_path, net, net_timeout=0.01)
        plan = FaultPlan.from_string("cache.replica:crash@1")
        prev = faults.install(plan)
        try:
            assert tc.lookup(_digest(0)) is None  # replica died mid-serve
        finally:
            faults.install(prev)
        assert replica.crashed
        replica.revive()
        tc2 = _tiered(tmp_path, net, name="after-revive")
        assert tc2.lookup(_digest(0)) is not None


# ---------------------------------------------------------------------------
# Graceful degradation: byte-identical verdicts in every net-tier state
# ---------------------------------------------------------------------------

class TestDegradationByteIdentity:
    def _run(self, tmp_path, name, network, fault_plan=None, jobs=1):
        """Cold then warm run over a fresh disk root; both signatures."""
        results = []
        for _phase in ("cold", "warm"):
            tc = _tiered(tmp_path, network, name=name,
                         net_timeout=0.01, breaker_threshold=2)
            cfg = VerifyConfig(jobs=jobs, fault_plan=fault_plan)
            with Session(cfg, cache=tc) as session:
                results.append(_signature(
                    session.verify_module(_mk_module())))
        return results

    def test_all_net_states_verdict_identical(self, tmp_path, net, replica):
        healthy = Network()
        healthy_rep = CacheReplica("cache0", healthy, poll=0.01).start()
        partitioned = Network(drop_rate=1.0)
        baseline = None
        scenarios = [
            ("absent", None, None),
            ("healthy", healthy, None),
            ("partitioned", partitioned, None),
            ("corrupting", net, "seed=3; cache.net:corrupt%1"),
        ]
        try:
            for name, network, plan in scenarios:
                for jobs in (1, 2):
                    cold, warm = self._run(tmp_path, f"{name}-j{jobs}",
                                           network, fault_plan=plan,
                                           jobs=jobs)
                    if baseline is None:
                        baseline = cold
                    assert cold == baseline, \
                        f"{name} jobs={jobs} cold diverged"
                    assert warm == baseline, \
                        f"{name} jobs={jobs} warm diverged"
        finally:
            healthy_rep.stop()


# ---------------------------------------------------------------------------
# Scheduler / Session / config wiring
# ---------------------------------------------------------------------------

class TestWiring:
    def test_env_knobs_parsed(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pc"))
        monkeypatch.setenv("REPRO_CACHE_TIERS", "mem,disk,net")
        monkeypatch.setenv("REPRO_CACHE_MEM_BUDGET", "1024")
        monkeypatch.setenv("REPRO_CACHE_NET_TIMEOUT", "0.25")
        cfg = VerifyConfig.from_env()
        assert cfg.cache_tiers == "mem,disk,net"
        assert cfg.cache_mem_budget == 1024
        assert cfg.cache_net_timeout == 0.25
        from repro.cache.tiers import cache_from_env
        cache = cache_from_env()
        assert isinstance(cache, TieredProofCache)
        assert cache.mem_budget == 1024
        assert cache.client is None              # inert until attached

    def test_env_without_tiers_stays_flat(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pc"))
        monkeypatch.delenv("REPRO_CACHE_TIERS", raising=False)
        from repro.cache.tiers import cache_from_env
        cache = cache_from_env()
        assert isinstance(cache, ProofCache)
        assert not isinstance(cache, TieredProofCache)

    def test_session_builds_tiered_cache(self, tmp_path):
        cfg = VerifyConfig(cache_dir=str(tmp_path / "pc"),
                           cache_tiers="mem,disk")
        with Session(cfg) as session:
            assert isinstance(session.cache, TieredProofCache)
            result = session.verify_module(_mk_module())
        assert result.ok
        assert result.stats["mem_hits"] + result.stats["disk_hits"] == 0
        with Session(cfg) as session:
            warm = session.verify_module(_mk_module())
        assert warm.stats["cache_hits"] > 0
        # Per-tier counters flow through scheduler stats: a fresh
        # session has a cold memory tier, so warm hits come from disk.
        assert warm.stats["disk_hits"] == warm.stats["cache_hits"]

    def test_scheduler_merges_tier_counters(self, tmp_path, net, replica):
        tc = _tiered(tmp_path, net)
        verify_module(_mk_module(), cache=tc)
        replica.crash()
        tc2 = _tiered(tmp_path / "other", net, name="deg",
                      net_timeout=0.01, breaker_threshold=1)
        r = verify_module(_mk_module(), cache=tc2)
        assert r.ok
        assert r.stats["net_timeouts"] >= 1
        assert r.stats["breaker_trips"] == 1
        replica.revive()

    def test_quarantine_counter_reaches_module_stats(
            self, tmp_path, net, replica):
        # Learn the run's digests via a clean tiered run, tamper every
        # replica copy, then re-run over fresh local tiers: each lookup
        # quarantines, the verdicts re-solve identically, and the
        # write-through repairs the replica.
        tc = _tiered(tmp_path, net)
        r1 = verify_module(_mk_module(), cache=tc)
        deadline = time.monotonic() + 2.0
        while len(replica.store) < tc.stores and time.monotonic() < deadline:
            time.sleep(0.005)
        digests = replica.store.digests()
        assert digests
        for d in digests:
            rotten = dict(replica.store.get(d))
            rotten["stats"] = {"rot": True}       # stale sum
            replica.store.plant(rotten)
        tc2 = _tiered(tmp_path / "fresh", net, name="fresh")
        r2 = verify_module(_mk_module(), cache=tc2)
        assert _signature(r1) == _signature(r2)
        assert r2.stats["quarantined"] == len(digests)
        assert r2.stats["net_hits"] == 0
        for d in digests:
            assert entry_is_sound(replica.store.get(d), d)  # repaired


# ---------------------------------------------------------------------------
# Daemon residency
# ---------------------------------------------------------------------------

class TestDaemonWiring:
    def test_status_reports_tiers_and_seeded_replica(self, tmp_path):
        disk = ProofCache(str(tmp_path / "pc"))
        for e in _entries(3):
            disk.store_entry(e)
        from repro.server.config import ServerConfig
        from repro.server.daemon import VerifyServer
        cfg = VerifyConfig(cache_dir=str(tmp_path / "pc"),
                           cache_tiers="mem,disk,net")
        server = VerifyServer(ServerConfig(workers=1), verify_config=cfg)
        try:
            assert server.replica is not None
            assert len(server.replica.store) == 3    # warmed from disk
            status = server.status()
            cache = status["cache"]
            assert cache["tiers"] == "mem,disk,net"
            assert cache["replica"]["entries"] == 3
            assert cache["replica"]["merkle_root"]
            assert set(cache["tier_counters"]) == {
                "mem_hits", "disk_hits", "net_hits", "net_timeouts",
                "net_retries", "breaker_trips", "quarantined"}
            rc = server._request_cache(cfg)
            assert isinstance(rc, TieredProofCache)
            assert rc.client is not None
            rc2 = server._request_cache(cfg)
            assert (rc2.client.endpoint.name
                    != rc.client.endpoint.name)      # private endpoints
        finally:
            server.executor.shutdown(wait=False)

    def test_no_replica_without_net_tier(self, tmp_path):
        from repro.server.config import ServerConfig
        from repro.server.daemon import VerifyServer
        cfg = VerifyConfig(cache_dir=str(tmp_path / "pc"),
                           cache_tiers="mem,disk")
        server = VerifyServer(ServerConfig(workers=1), verify_config=cfg)
        try:
            assert server.replica is None
            assert server._request_cache(cfg) is None
        finally:
            server.executor.shutdown(wait=False)


# ---------------------------------------------------------------------------
# perf_summary rendering
# ---------------------------------------------------------------------------

def test_perf_summary_renders_tier_counters():
    from repro.diag.profile import perf_summary
    text = perf_summary({"mem_hits": 3, "net_timeouts": 2,
                         "breaker_trips": 1, "quarantined": 4})
    assert "mem_hits" in text and "breaker_trips" in text
    assert "quarantined" in text
