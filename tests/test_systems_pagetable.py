"""Tests for the page-table case study (§4.2.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import count_idioms
from repro.systems.pagetable.entry_verified import build_entry_module
from repro.systems.pagetable.hw import (ENTRIES, FLAG_PRESENT, FLAG_WRITE,
                                        LEVELS, MMU, PAGE_SIZE, PageTable,
                                        entry_addr, entry_flags, entry_pack,
                                        entry_present, vaddr_index)


class TestEntryOps:
    @given(st.integers(0, (1 << 52) - 1), st.integers(0, 0xFFF))
    def test_pack_unpack(self, addr, flags):
        addr &= ~0xFFF
        e = entry_pack(addr, flags)
        assert entry_addr(e) == addr
        assert entry_flags(e) == flags

    def test_present(self):
        assert entry_present(entry_pack(0x1000, FLAG_PRESENT))
        assert not entry_present(entry_pack(0x1000, FLAG_WRITE))

    @given(st.integers(0, (1 << 48) - 1))
    def test_vaddr_index_in_range(self, va):
        for level in range(LEVELS):
            assert 0 <= vaddr_index(va, level) < ENTRIES

    def test_vaddr_index_decomposition(self):
        va = (3 << 39) | (7 << 30) | (500 << 21) | (511 << 12) | 0xABC
        assert vaddr_index(va, 3) == 3
        assert vaddr_index(va, 2) == 7
        assert vaddr_index(va, 1) == 500
        assert vaddr_index(va, 0) == 511


class TestMapUnmap:
    def test_translate_roundtrip(self):
        pt = PageTable()
        assert pt.map_frame(0x12345000, 0xABC000)
        assert pt.mmu.translate(0x12345123) == 0xABC123

    def test_unmapped_faults(self):
        pt = PageTable()
        assert pt.mmu.translate(0x5000) is None

    def test_double_map_rejected(self):
        pt = PageTable()
        assert pt.map_frame(0x1000, 0x2000)
        assert not pt.map_frame(0x1000, 0x3000)

    def test_unmap_missing(self):
        pt = PageTable()
        assert not pt.unmap(0x1000)

    def test_reclamation_frees_empty_directories(self):
        pt = PageTable(reclaim=True)
        pt.map_frame(0x12345000, 0x1000)
        pt.map_frame(0x12346000, 0x2000)  # same leaf table
        assert pt.unmap(0x12345000)
        assert pt.mmu.frames_freed == 0   # sibling keeps the table alive
        assert pt.unmap(0x12346000)
        assert pt.mmu.frames_freed == 3   # PT, PD, PDPT reclaimed

    def test_no_reclamation_keeps_tables(self):
        pt = PageTable(reclaim=False)
        pt.map_frame(0x12345000, 0x1000)
        pt.unmap(0x12345000)
        assert pt.mmu.frames_freed == 0
        # remapping reuses the retained tables: no new allocations
        before = pt.mmu.frames_allocated
        pt.map_frame(0x12345000, 0x9000)
        assert pt.mmu.frames_allocated == before

    def test_randomized_against_reference(self):
        rng = random.Random(0)
        pt = PageTable(reclaim=True)
        ref = {}
        vas = [rng.randrange(1 << 36) * PAGE_SIZE % (1 << 42)
               for _ in range(80)]
        for _ in range(1500):
            va = rng.choice(vas)
            if va in ref:
                assert pt.unmap(va)
                del ref[va]
            else:
                pa = rng.randrange(1 << 24) * PAGE_SIZE
                assert pt.map_frame(va, pa)
                ref[va] = pa
            probe = rng.choice(vas)
            expect = (ref[probe] | 0x21) if probe in ref else None
            assert pt.mmu.translate(probe + 0x21) == expect

    def test_reclaim_then_translate_consistent(self):
        pt = PageTable(reclaim=True)
        pt.map_frame(0x40000000, 0x1000)
        pt.unmap(0x40000000)
        assert pt.mmu.translate(0x40000000) is None
        pt.map_frame(0x40000000, 0x7000)
        assert pt.mmu.translate(0x40000000) == 0x7000


class TestVerifiedEntries:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.vc.wp import VcGen
        mod = build_entry_module()
        return mod, VcGen(mod).verify_module()

    def test_module_verifies(self, result):
        mod, res = result
        assert res.ok, res.report()

    def test_idiom_usage_reported(self, result):
        mod, _ = result
        counts = count_idioms(mod)
        assert counts["bit_vector"] >= 10
        assert counts["nonlinear_arith"] >= 1
        assert counts["compute"] >= 2
