"""Unit + randomized tests for the simplex/branch-and-bound LIA solver."""

import itertools
import random

import pytest

from repro.smt.lia import (LiaConflict, LiaSolver, LiaUnknown, LinExpr,
                           Simplex, _integerize)


def V(n):
    return LinExpr.var(n)


def C(k):
    return LinExpr.constant(k)


def test_linexpr_arithmetic():
    e = V("x") + V("y").scale(2) - C(3)
    assert e.coeffs == {"x": 1, "y": 2}
    assert e.const == -3
    assert (e - e).is_constant()


def test_integerize():
    e = LinExpr({"x": "1/2", "y": "1/3"})
    scaled = _integerize(e)
    assert scaled.coeffs == {"x": 3, "y": 2}


def test_simple_conflict_with_exact_reasons():
    s = LiaSolver()
    s.assert_le0(V("x") + V("y") - C(3), "c1")
    s.assert_ge0(V("x") - C(2), "c2")
    s.assert_ge0(V("y") - C(2), "c3")
    with pytest.raises(LiaConflict) as exc:
        s.check()
    assert exc.value.reasons == frozenset({"c1", "c2", "c3"})


def test_gcd_test_catches_parity():
    s = LiaSolver()
    s.assert_eq0(V("x").scale(2) - C(1), "g")
    with pytest.raises(LiaConflict) as exc:
        s.check()
    assert exc.value.reasons == frozenset({"g"})


def test_gcd_on_difference():
    s = LiaSolver()
    s.assert_eq0(V("x").scale(3) - V("y").scale(3) - C(1), "g")
    with pytest.raises(LiaConflict):
        s.check()


def test_branch_and_bound_finds_integer_point():
    s = LiaSolver()
    s.assert_eq0(V("x").scale(2) + V("y").scale(2) - C(4), "e")
    s.assert_ge0(V("x") - C(1), "a")
    s.assert_ge0(V("y") - C(1), "b")
    assert s.check() == {"x": 1, "y": 1}


def test_rational_relaxation_integer_infeasible():
    # 2x = 2y + 1 has rational but no integer solutions.
    s = LiaSolver()
    s.assert_eq0(V("x").scale(2) - V("y").scale(2) - C(1), "e")
    with pytest.raises(LiaConflict):
        s.check()


def test_strict_inequality_over_ints():
    s = LiaSolver()
    s.assert_lt0(V("x") - C(5), "c1")   # x < 5
    s.assert_ge0(V("x") - C(4), "c2")   # x >= 4
    m = s.check()
    assert m["x"] == 4


def test_equalities_propagate():
    s = LiaSolver()
    s.assert_eq0(V("x") - V("y"), "e1")
    s.assert_eq0(V("y") - C(7), "e2")
    m = s.check()
    assert m["x"] == 7 and m["y"] == 7


def test_unbounded_is_sat():
    s = LiaSolver()
    s.assert_ge0(V("x") - C(1000000), "c")
    m = s.check()
    assert m["x"] >= 1000000


@pytest.mark.parametrize("seed", range(3))
def test_random_against_brute_force(seed):
    rng = random.Random(seed)
    for _ in range(120):
        nv = rng.randint(1, 3)
        names = [f"v{i}" for i in range(nv)]
        cons = []
        for _ in range(rng.randint(1, 6)):
            coeffs = {n: rng.randint(-3, 3) for n in names}
            const = rng.randint(-5, 5)
            cons.append((rng.choice(["le", "ge", "eq"]), coeffs, const))
        s = LiaSolver()
        for n in names:
            s.assert_ge0(V(n) + C(4), f"lo{n}")
            s.assert_le0(V(n) - C(4), f"hi{n}")
        for i, (kind, coeffs, const) in enumerate(cons):
            getattr(s, f"assert_{kind}0")(LinExpr(coeffs, const), f"c{i}")
        try:
            model = s.check()
            got = True
            for kind, coeffs, const in cons:
                val = sum(coeffs[n] * model[n] for n in names) + const
                assert (val <= 0 if kind == "le" else
                        val >= 0 if kind == "ge" else val == 0)
        except LiaConflict:
            got = False
        except LiaUnknown:
            continue
        brute = any(
            all((sum(cf[n] * env[n] for n in names) + k <= 0 if kd == "le"
                 else sum(cf[n] * env[n] for n in names) + k >= 0 if kd == "ge"
                 else sum(cf[n] * env[n] for n in names) + k == 0)
                for kd, cf, k in cons)
            for env in (dict(zip(names, pt))
                        for pt in itertools.product(range(-4, 5), repeat=nv)))
        assert got == brute


def test_simplex_pivot_counter():
    s = LiaSolver()
    s.assert_le0(V("x") + V("y") - C(10), "c1")
    s.assert_ge0(V("x") - C(4), "c2")
    s.assert_ge0(V("y") - C(4), "c3")
    m = s.check()
    assert m["x"] >= 4 and m["y"] >= 4 and m["x"] + m["y"] <= 10


def test_conflicting_bounds_same_slack():
    simplex = Simplex()
    with pytest.raises(LiaConflict) as exc:
        simplex.assert_upper(V("x") - C(1), "u")   # x <= 1
        simplex.assert_lower(V("x") - C(2), "l")   # x >= 2
    assert exc.value.reasons == frozenset({"u", "l"})
