"""Tests for the IronKV case study (§4.2.1)."""

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.systems.ironkv import marshal as M
from repro.systems.ironkv.host import (DELEGATE_MSG, KEY_SPACE, MESSAGE,
                                       DelegationMap, IronFleetHost,
                                       ReliableClient, VerusHost,
                                       _GenericValueTree)
from repro.runtime.network import Network


class TestDelegationMapRuntime:
    def test_default_owner(self):
        dm = DelegationMap(default_host=3)
        assert dm.get(0) == 3
        assert dm.get(KEY_SPACE - 1) == 3

    def test_set_range_basic(self):
        dm = DelegationMap(0)
        dm.set_range(100, 200, 7)
        assert dm.get(99) == 0
        assert dm.get(100) == 7
        assert dm.get(199) == 7
        assert dm.get(200) == 0

    def test_set_range_overlapping(self):
        dm = DelegationMap(0)
        dm.set_range(100, 300, 1)
        dm.set_range(200, 400, 2)
        assert dm.get(150) == 1
        assert dm.get(250) == 2
        assert dm.get(350) == 2
        assert dm.get(400) == 0

    def test_invariant_preserved(self):
        dm = DelegationMap(0)
        rng = random.Random(3)
        for _ in range(200):
            lo = rng.randrange(KEY_SPACE)
            hi = rng.randrange(lo + 1, KEY_SPACE + 1)
            dm.set_range(lo, hi, rng.randrange(8))
            assert dm.check_invariant()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, KEY_SPACE - 1),
                              st.integers(1, KEY_SPACE),
                              st.integers(0, 4)),
                    min_size=1, max_size=20),
           st.integers(0, KEY_SPACE - 1))
    def test_matches_reference(self, ranges, probe):
        dm = DelegationMap(0)
        expected = 0
        for lo, hi_raw, h in ranges:
            hi = max(lo + 1, hi_raw)
            dm.set_range(lo, hi, h)
            if lo <= probe < hi:
                expected = h
        assert dm.get(probe) == expected


class TestMarshalling:
    CASES = [
        ("Get", {"rid": 7, "key": 42}),
        ("Set", {"rid": 8, "key": 1, "value": b"hello"}),
        ("Reply", {"rid": 8, "ok": 1, "value": b"\x00" * 100}),
        ("Delegate", {"lo": 5, "hi": 10, "host": 2,
                      "pairs": [(6, b"x"), (7, b"yz")]}),
    ]

    @pytest.mark.parametrize("msg", CASES, ids=[c[0] for c in CASES])
    def test_derive_roundtrip(self, msg):
        out, end = MESSAGE.parse(MESSAGE.marshal(msg))
        assert out == msg

    @pytest.mark.parametrize("msg", CASES, ids=[c[0] for c in CASES])
    def test_value_tree_roundtrip(self, msg):
        variant, fields = _GenericValueTree.parse(
            _GenericValueTree.marshal(msg))
        assert variant == msg[0]
        assert set(fields) == set(msg[1])

    def test_u64_bounds(self):
        with pytest.raises(M.MarshalError):
            M.U64.marshal(1 << 64)
        with pytest.raises(M.MarshalError):
            M.U64.marshal(-1)

    def test_truncation_detected(self):
        data = MESSAGE.marshal(("Get", {"rid": 1, "key": 2}))
        with pytest.raises(M.MarshalError):
            MESSAGE.parse(data[:-3])

    def test_bad_tag_detected(self):
        data = bytes([99]) + b"\x00" * 16
        with pytest.raises(M.MarshalError):
            MESSAGE.parse(data)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, (1 << 64) - 1), st.binary(max_size=300))
    def test_hypothesis_roundtrip(self, key, value):
        msg = ("Set", {"rid": 1, "key": key, "value": value})
        assert MESSAGE.parse(MESSAGE.marshal(msg))[0] == msg

    def test_vec_roundtrip(self):
        m = M.vec(M.tuple_of(M.U64, M.BYTES))
        pairs = [(i, bytes([i])) for i in range(50)]
        out, _ = m.parse(m.marshal(pairs))
        assert out == pairs


class TestHosts:
    def _cluster(self, cls, n=3):
        net = Network()
        hosts = [cls(i, net, default_host=0) for i in range(n)]
        threads = [threading.Thread(target=h.serve_forever, daemon=True)
                   for h in hosts]
        for t in threads:
            t.start()
        return net, hosts

    def _request(self, net, client, target, msg, marshal, timeout=2.0):
        ep = net.endpoint(client)
        ep.send(f"host{target}", marshal(msg))
        got = ep.recv(timeout=timeout)
        assert got is not None, "no reply"
        return got

    @pytest.mark.parametrize("cls", [VerusHost, IronFleetHost])
    def test_set_then_get(self, cls):
        net, hosts = self._cluster(cls)
        try:
            self._request(net, "c", 0, ("Set", {"rid": 1, "key": 5,
                                                "value": b"abc"}),
                          hosts[0].marshal)
            src, data = self._request(
                net, "c", 0, ("Get", {"rid": 2, "key": 5}),
                hosts[0].marshal)
            variant, fields = hosts[0].parse(data)
            assert variant == "Reply"
            assert fields["value"] == b"abc"
        finally:
            for h in hosts:
                h.stop()

    def test_delegation_moves_data(self):
        net, hosts = self._cluster(VerusHost)
        try:
            self._request(net, "c", 0, ("Set", {"rid": 1, "key": 100,
                                                "value": b"v"}),
                          hosts[0].marshal)
            hosts[0].delegate_range(50, 150, 1, [0, 1, 2])
            # every host should now route key 100 to host 1
            deadline_ok = False
            for _ in range(50):
                if all(h.dmap.get(100) == 1 for h in hosts):
                    deadline_ok = True
                    break
                import time
                time.sleep(0.02)
            assert deadline_ok
            src, data = self._request(
                net, "c", 1, ("Get", {"rid": 2, "key": 100}),
                hosts[1].marshal)
            variant, fields = hosts[1].parse(data)
            assert fields["value"] == b"v"
        finally:
            for h in hosts:
                h.stop()

    def test_ack_roundtrip(self):
        msg = ("Ack", {"rid": 99})
        assert MESSAGE.parse(MESSAGE.marshal(msg))[0] == msg
        variant, fields = _GenericValueTree.parse(
            _GenericValueTree.marshal(msg))
        assert (variant, fields["rid"]) == ("Ack", 99)

    def test_cross_variant_interop(self):
        # A VerusHost cluster speaks derive-marshalling; an IronFleet host
        # with its own marshaller runs a separate cluster — both must
        # satisfy the same protocol semantics.
        for cls in (VerusHost, IronFleetHost):
            net, hosts = self._cluster(cls, n=2)
            try:
                self._request(net, "c", 0,
                              ("Set", {"rid": 1, "key": 7, "value": b"zz"}),
                              hosts[0].marshal)
                _, data = self._request(net, "c", 0,
                                        ("Get", {"rid": 2, "key": 7}),
                                        hosts[0].marshal)
                _, fields = hosts[0].parse(data)
                assert fields["value"] == b"zz"
            finally:
                for h in hosts:
                    h.stop()


class TestLossyNetwork:
    """Retransmission with backoff + jitter converges despite drops."""

    def _lossy_cluster(self, drop_rate, seed, n=3):
        net = Network(drop_rate=drop_rate, seed=seed)
        hosts = [VerusHost(i, net, default_host=0) for i in range(n)]
        threads = [threading.Thread(target=h.serve_forever, daemon=True)
                   for h in hosts]
        for t in threads:
            t.start()
        return net, hosts

    def test_converges_under_drop_rate_point_three(self):
        import time
        net, hosts = self._lossy_cluster(drop_rate=0.3, seed=42)
        try:
            client = ReliableClient(net, "client", hosts[0].marshal,
                                    hosts[0].parse, seed=7)
            rng = random.Random(13)
            expected = {}
            for rid in range(1, 21):
                key = rng.randrange(1000)
                value = bytes([rid % 256]) * 3
                fields = client.set(0, rid, key, value)
                assert fields["ok"] == 1
                expected[key] = value

            # Move [0, 500) to host 1; the Delegates must survive drops.
            hosts[0].delegate_range(0, 500, 1, [0, 1, 2])
            converged = False
            for _ in range(400):
                if all(h.dmap.get(100) == 1 for h in hosts):
                    converged = True
                    break
                time.sleep(0.02)
            assert converged, "delegation never reached every host"

            # Read everything back through host 0: keys < 500 exercise
            # the forward + reply-relay path under the same loss.
            rid = 1000
            for key, value in expected.items():
                rid += 1
                fields = client.get(0, rid, key)
                assert fields["ok"] == 1
                assert fields["value"] == value

            # The run really was lossy and really was repaired.
            assert net.stats["dropped"] > 0
            retx = (client.stats["retransmits"]
                    + sum(h.stats["retransmits"] for h in hosts))
            assert retx > 0
        finally:
            for h in hosts:
                h.stop()

    def test_duplicate_delegate_applied_once(self):
        net, hosts = self._lossy_cluster(drop_rate=0.0, seed=0, n=2)
        try:
            import time
            data = hosts[0].marshal(("Delegate", {
                "lo": 10, "hi": 20, "host": 1, "pairs": [(12, b"d")]}))
            for _ in range(3):
                net.endpoint("tester").send("host1", data)
            deadline = time.monotonic() + 2.0
            while (hosts[1].stats["delegates"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            time.sleep(0.1)   # let the duplicates drain
            assert hosts[1].stats["delegates"] == 1
            assert hosts[1].store[12] == b"d"
            # every copy was acked so the sender's buffer can clear
            acks = 0
            ep = net.endpoint("tester")
            while True:
                got = ep.try_recv()
                if got is None:
                    break
                variant, _ = hosts[0].parse(got[1])
                acks += 1 if variant == "Ack" else 0
            assert acks == 3
        finally:
            for h in hosts:
                h.stop()
