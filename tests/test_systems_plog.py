"""Tests for the persistent log case study (§4.2.5)."""

import random

import pytest

from repro.runtime.pmem import PmemCrash, PmemDevice
from repro.systems.plog.log import (HEADER_SIZE, LogCorruption, PmdkLikeLog,
                                    VerifiedLogInitial, VerifiedLogLatest)
from repro.systems.plog.model import build_crash_safety_system

ALL_LOGS = [PmdkLikeLog, VerifiedLogInitial, VerifiedLogLatest]


class TestBasicLog:
    @pytest.mark.parametrize("cls", ALL_LOGS)
    def test_append_read(self, cls):
        log = cls(PmemDevice(1 << 14))
        off = log.append(b"hello")
        off2 = log.append(b"world!")
        assert log.read(off, 5) == b"hello"
        assert log.read(off2, 6) == b"world!"
        assert off2 == off + 5

    @pytest.mark.parametrize("cls", ALL_LOGS)
    def test_wraparound(self, cls):
        log = cls(PmemDevice(1 << 12))
        chunk = bytes(range(200))
        offsets = []
        for i in range(60):  # deliberately exceeds capacity several times
            n = 100 + i
            if log.free_space() < n:
                log.advance_head(log.tail)
                offsets.clear()
            offsets.append((log.append(chunk[:n]), n))
        for off, n in offsets:
            assert log.read(off, n) == chunk[:n]

    def test_full_log_rejected(self):
        log = VerifiedLogLatest(PmemDevice(1 << 12))
        with pytest.raises(ValueError):
            log.append(b"x" * (log.capacity + 1))

    def test_advance_head_frees_space(self):
        log = VerifiedLogLatest(PmemDevice(1 << 12))
        log.append(b"x" * 1000)
        before = log.free_space()
        log.advance_head(log.tail)
        assert log.free_space() == before + 1000

    def test_read_outside_window_rejected(self):
        log = VerifiedLogLatest(PmemDevice(1 << 12))
        off = log.append(b"abc")
        with pytest.raises(ValueError):
            log.read(off, 100)


class TestCrashSafety:
    @pytest.mark.parametrize("cls", [VerifiedLogInitial, VerifiedLogLatest])
    def test_random_crash_points(self, cls):
        for trial in range(15):
            dev = PmemDevice(1 << 15, seed=trial)
            log = cls(dev)
            rng = random.Random(trial)
            committed = []
            dev.schedule_crash(after_writes=rng.randrange(2, 30))
            with pytest.raises(PmemCrash):
                while True:
                    payload = bytes([rng.randrange(256)]
                                    * rng.randrange(1, 300))
                    off = log.append(payload)
                    committed.append((off, payload))
                    if log.free_space() < 1024:
                        log.advance_head(log.tail)
                        committed.clear()
            recovered = cls.recover(dev)
            # The recovered window is a prefix of committed appends; all
            # records inside it read back intact.
            for off, payload in committed:
                if off >= recovered.head and \
                        off + len(payload) <= recovered.tail:
                    assert recovered._read_circular(
                        off, len(payload)) == payload

    def test_uncommitted_append_invisible_after_crash(self):
        dev = PmemDevice(1 << 14)
        log = VerifiedLogLatest(dev)
        log.append(b"committed")
        tail_before = log.tail
        # simulate a crash after data write but before header commit:
        log._write_circular(log.tail, b"torn-record")
        dev.crash()
        recovered = VerifiedLogLatest.recover(dev)
        assert recovered.tail == tail_before

    def test_corruption_detected_by_crc(self):
        dev = PmemDevice(1 << 14)
        log = VerifiedLogLatest(dev)
        log.append(b"data")
        dev.corrupt(9, 2)  # header bytes
        with pytest.raises(LogCorruption):
            VerifiedLogLatest.recover(dev)

    def test_stray_write_detected(self):
        dev = PmemDevice(1 << 14)
        log = VerifiedLogLatest(dev)
        log.append(b"data")
        dev.stray_write(8, b"\xff" * 8)  # clobber the head field
        with pytest.raises(LogCorruption):
            VerifiedLogLatest.recover(dev)

    def test_pmdk_like_misses_corruption(self):
        dev = PmemDevice(1 << 14)
        log = PmdkLikeLog(dev)
        log.append(b"data")
        dev.corrupt(9, 1)
        # no CRC: recovery silently accepts a damaged header
        PmdkLikeLog.recover(dev)

    def test_atomic_pair_commit(self):
        dev_a, dev_b = PmemDevice(1 << 13), PmemDevice(1 << 13)
        log_a = VerifiedLogLatest(dev_a)
        log_b = VerifiedLogLatest(dev_b)
        log_a.append_atomic_pair(log_b, b"metadata", b"payload")
        ra = VerifiedLogLatest.recover(dev_a)
        rb = VerifiedLogLatest.recover(dev_b)
        assert ra.tail == 8 and rb.tail == 7


class TestCrashSafetyModel:
    def test_model_verifies(self):
        res = build_crash_safety_system().check()
        assert res.ok, res.report()

    def test_bad_commit_rejected_at_runtime(self):
        from repro.sync import ProtocolViolation, start
        sys_ = build_crash_safety_system()
        inst, toks = start(sys_)
        toks["d_written"] = inst.apply(
            "write_data", tokens={"d_written": toks["d_written"]},
            n=100)["d_written"]
        # committing past the flushed mark violates the protocol
        with pytest.raises(ProtocolViolation):
            inst.apply("commit_tail", tokens={"p_tail": toks["p_tail"]},
                       t=50)
        # after flushing, the same commit is legal
        toks["d_flushed"] = inst.apply(
            "flush_data", tokens={"d_flushed": toks["d_flushed"]}
        )["d_flushed"]
        inst.apply("commit_tail", tokens={"p_tail": toks["p_tail"]}, t=50)

    def test_crash_transition_preserves_invariants(self):
        from repro.sync import start
        sys_ = build_crash_safety_system()
        inst, toks = start(sys_)
        toks["d_written"] = inst.apply(
            "write_data", tokens={"d_written": toks["d_written"]},
            n=10)["d_written"]
        inst.apply("crash", tokens={"d_written": toks["d_written"]})
