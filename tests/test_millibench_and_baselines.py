"""Tests for the §4.1 millibench modules and the baseline pipelines."""

import pytest

from repro.baselines.pipelines import (PIPELINES, Unsupported,
                                       time_pipeline)
from repro.epr import verify_epr_module
from repro.millibench.distlock import (build_default_module,
                                       build_epr_module)
from repro.millibench.lists import (build_doubly_linked_module,
                                    build_memory_reasoning_module,
                                    build_singly_linked_module)
from repro.vc.wp import VcGen


class TestListModules:
    def test_singly_linked_verifies(self):
        res = VcGen(build_singly_linked_module()).verify_module()
        assert res.ok, res.report()

    def test_doubly_linked_verifies(self):
        res = VcGen(build_doubly_linked_module()).verify_module()
        assert res.ok, res.report()

    def test_memory_reasoning_small(self):
        res = VcGen(build_memory_reasoning_module(2)).verify_module()
        assert res.ok, res.report()

    def test_doubly_linked_flagged_cyclic(self):
        assert build_doubly_linked_module().attrs_get("uses_cyclic")


class TestPipelines:
    @pytest.mark.parametrize("name", ["verus", "dafny", "fstar", "creusot",
                                      "prusti"])
    def test_pipeline_verifies_single_list(self, name):
        res, secs = time_pipeline(PIPELINES[name],
                                  build_singly_linked_module())
        assert res is not None and res.ok, name

    def test_prusti_rejects_cyclic(self):
        with pytest.raises(Unsupported):
            PIPELINES["prusti"].verify(build_doubly_linked_module())

    def test_ivy_rejects_non_epr(self):
        with pytest.raises(Unsupported):
            PIPELINES["ivy"].verify(build_singly_linked_module())

    def test_ivy_accepts_epr_module(self):
        res = PIPELINES["ivy"].verify(build_epr_module())
        assert res.ok

    def test_heap_pipelines_ship_bigger_queries(self):
        module = build_singly_linked_module()
        verus, _ = time_pipeline(PIPELINES["verus"], module)
        dafny, _ = time_pipeline(PIPELINES["dafny"], module)
        fstar, _ = time_pipeline(PIPELINES["fstar"], module)
        assert dafny.query_bytes > verus.query_bytes
        assert fstar.query_bytes > dafny.query_bytes

    def test_heap_encoding_is_sound_on_failures(self):
        # a buggy module must fail under every pipeline, not just Verus
        from repro.lang import INT, Module, exec_fn, ret, var
        mod = Module("bad_everywhere")
        x = var("x", INT)
        exec_fn(mod, "wrong", [("x", INT)], ret=("r", INT),
                ensures=[var("r", INT).eq(x + 1)],
                body=[ret(x)])
        for name in ("verus", "dafny", "creusot"):
            res, _ = time_pipeline(PIPELINES[name], mod)
            assert res is not None and not res.ok, name


class TestDistributedLock:
    def test_default_mode(self):
        res = VcGen(build_default_module()).verify_module()
        assert res.ok, res.report()

    def test_epr_mode(self):
        res = verify_epr_module(build_epr_module())
        assert res.ok, res.report()

    def test_safety_is_not_vacuous(self):
        # mutual_exclusion really depends on the invariant: removing the
        # locked-uniqueness conjunct makes it fail
        from repro.lang import (BOOL, Function, Module, Param, call,
                                proof_fn, var)
        from repro.millibench.distlock import Node, State
        mod = Module("distlock_vacuity_check")
        mod.add(Function("locked2", "spec",
                         [Param("s", State), Param("n", Node)],
                         ("result", BOOL)))
        s = var("s", State)
        n1, n2 = var("n1", Node), var("n2", Node)
        proof_fn(mod, "mutex_without_invariant",
                 [("s", State), ("n1", Node), ("n2", Node)],
                 requires=[call(mod, "locked2", s, n1),
                           call(mod, "locked2", s, n2)],
                 ensures=[n1.eq(n2)], body=[])
        res = VcGen(mod).verify_module()
        assert not res.ok
