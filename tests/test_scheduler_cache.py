"""Obligation scheduler + content-addressed proof cache tests.

Covers the verification scheduler layer (repro.vc.scheduler): term
fingerprinting/serialization for cross-process jobs, cache hit/miss/
invalidation semantics, corrupted-entry recovery, idiom-engine caching,
and serial-vs-parallel determinism on the Fig 9 case-study modules.
"""

import glob
import os

import pytest

from repro.lang import *
from repro.smt import terms as T
from repro.smt.fingerprint import (deserialize_terms, idiom_digest,
                                   obligation_digest, serialize_terms,
                                   solver_config_key)
from repro.smt.solver import SolverConfig, Stats
from repro.smt.sorts import INT as SINT
from repro.smt.sorts import bv, uninterpreted
from repro.vc.cache import CACHE_DIR_ENV, ProofCache
from repro.vc.scheduler import JOBS_ENV, Scheduler, default_jobs
from repro.vc.wp import VcConfig, VcGen
from tests.helpers import verify_module


def _mk_module(bound=5, name="sched_demo"):
    """A small module with several cheap SMT obligations."""
    mod = Module(name)
    a = var("a", U64)
    r = var("res", U64)
    exec_fn(mod, "bump", [("a", U64)], ret=("res", U64),
            requires=[a < lit(100)],
            ensures=[r >= a, r <= a + lit(bound)],
            body=[ret(a + 1)])
    exec_fn(mod, "twice", [("a", U64)], ret=("res", U64),
            requires=[a < lit(100)],
            ensures=[r.eq(a + a)],
            body=[ret(a + a)])
    return mod


def _mk_failing_module():
    """Two functions with distinct failing obligations (stable labels)."""
    mod = Module("sched_fail")
    x = var("x", INT)
    r = var("r", INT)
    exec_fn(mod, "wrong_post", [("x", INT)], ret=("r", INT),
            ensures=[r.eq(x + 1)],
            body=[ret(x)])
    exec_fn(mod, "bad_assert", [("x", INT)], ret=("r", INT),
            body=[assert_(x >= 0, label="nonneg"), ret(x)])
    return mod


def _signature(res):
    return [(f.name, o.label, o.kind, o.status)
            for f in res.functions for o in f.obligations]


# ---------------------------------------------------------------------------
# Fingerprinting / serialization
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_roundtrip_identity(self):
        S = uninterpreted("RT")
        s1, s2 = T.Var("s1", S), T.Var("s2", S)
        f = T.FuncDecl("frt", [S], S)
        x, y = T.Var("x", SINT), T.Var("y", SINT)
        b = T.Var("b8", bv(8))
        u = T.Var("u", S)
        roots = [
            T.And(T.Lt(x, y), T.Eq(f(s1), s2)),
            T.Ite(T.Le(x, T.IntVal(0)), T.BoolVal(True), T.Lt(y, x)),
            T.Eq(T.BvAnd(b, T.BVVal(0x0F, 8)), T.BVVal(3, 8)),
            T.ForAll([u], T.Eq(f(u), u), [(f(u),)]),
            T.Not(T.Eq(T.Add(x, T.Mul(y, T.IntVal(2))), T.IntVal(7))),
        ]
        rebuilt = deserialize_terms(serialize_terms(roots))
        # Hash-consing makes identity the strongest possible check.
        assert all(a is b for a, b in zip(roots, rebuilt))

    def test_shared_subterms_emitted_once(self):
        x = T.Var("x", SINT)
        shared = T.Add(x, T.IntVal(1))
        nodes, _, _ = serialize_terms([T.Lt(shared, T.IntVal(5)),
                                       T.Le(shared, T.IntVal(9))])
        adds = [n for n in nodes if n[0] == "o" and n[1] == T.ADD]
        assert len(adds) == 1

    def test_digest_sensitive_to_config(self):
        x = T.Var("x", SINT)
        assertions = [T.Lt(x, T.IntVal(0))]
        k1 = solver_config_key(SolverConfig(trigger_policy=CONSERVATIVE))
        k2 = solver_config_key(SolverConfig(trigger_policy=BROAD))
        assert (obligation_digest(assertions, k1)
                != obligation_digest(assertions, k2))

    def test_digest_sensitive_to_strategy(self):
        x = T.Var("x", SINT)
        assertions = [T.Lt(x, T.IntVal(0))]
        key = solver_config_key(SolverConfig())
        assert (obligation_digest(assertions, key, "VcGen")
                != obligation_digest(assertions, key, "FStarVcGen"))

    def test_idiom_digest_engine_scoped(self):
        b = T.Var("vb", bv(64))
        formula = T.Eq(T.BvAnd(b, T.BVVal(1, 64)), T.BVVal(0, 64))
        assert (idiom_digest("bit_vector", [formula])
                != idiom_digest("nonlinear_arith", [formula]))
        assert (idiom_digest("bit_vector", [formula])
                == idiom_digest("bit_vector", [formula]))


# ---------------------------------------------------------------------------
# Proof cache semantics
# ---------------------------------------------------------------------------

class TestProofCache:
    def test_hit_on_identical_reverify(self, tmp_path):
        cache = str(tmp_path / "pc")
        r1 = verify_module(_mk_module(), cache=cache)
        r2 = verify_module(_mk_module(), cache=cache)
        assert r1.ok and r2.ok
        assert _signature(r1) == _signature(r2)
        assert r1.stats["cache_hits"] == 0
        assert r1.stats["cache_misses"] > 0
        assert r2.stats["cache_misses"] == 0
        assert r2.stats["cache_hits"] == r1.stats["cache_misses"]

    def test_miss_after_postcondition_change(self, tmp_path):
        cache = str(tmp_path / "pc")
        verify_module(_mk_module(bound=5), cache=cache)
        r2 = verify_module(_mk_module(bound=6), cache=cache)
        # The mutated function re-solves; the untouched one still hits.
        assert r2.stats["cache_misses"] > 0
        assert r2.stats["cache_hits"] > 0

    def test_miss_after_solver_knob_change(self, tmp_path):
        cache = str(tmp_path / "pc")
        verify_module(_mk_module(), VcConfig(trigger_policy=CONSERVATIVE),
                      cache=cache)
        r2 = verify_module(_mk_module(), VcConfig(trigger_policy=BROAD),
                           cache=cache)
        assert r2.stats["cache_hits"] == 0
        assert r2.stats["cache_misses"] > 0

    def test_corrupted_entries_recovered(self, tmp_path):
        cachedir = tmp_path / "pc"
        r1 = verify_module(_mk_module(), cache=str(cachedir))
        entries = glob.glob(str(cachedir / "*" / "*.json"))
        assert entries
        for path in entries:
            with open(path, "w") as fh:
                fh.write("{not json")
        sched = Scheduler(cache=str(cachedir))
        r2 = VcGen(_mk_module()).verify_module(sched)
        assert r2.ok and _signature(r1) == _signature(r2)
        assert sched.cache.corrupt == len(entries)
        assert sched.cache.stores == len(entries)  # rewritten
        # Third run: everything hits again.
        r3 = verify_module(_mk_module(), cache=str(cachedir))
        assert r3.stats["cache_misses"] == 0

    def test_failed_verdicts_cached_too(self, tmp_path):
        cache = str(tmp_path / "pc")
        r1 = verify_module(_mk_failing_module(), cache=cache)
        r2 = verify_module(_mk_failing_module(), cache=cache)
        assert not r1.ok and not r2.ok
        assert _signature(r1) == _signature(r2)
        assert r2.stats["cache_misses"] == 0

    def test_env_default_and_explicit_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envpc"))
        assert Scheduler().cache is not None
        assert Scheduler(cache=False).cache is None
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert Scheduler().cache is None

    def test_lookup_rejects_digest_mismatch(self, tmp_path):
        cache = ProofCache(str(tmp_path / "pc"))
        cache.store("ab" * 32, "proved", {}, 0, label="x")
        # Entry stored under a different digest must not be served.
        path = cache._path("ab" * 32)
        os.makedirs(os.path.dirname(cache._path("cd" * 32)), exist_ok=True)
        os.replace(path, cache._path("cd" * 32))
        assert cache.lookup("cd" * 32) is None


class TestCacheQuarantine:
    """Damaged entries are evicted (quarantined) and the run proceeds
    with a fresh solve — never a wrong replay, never a crash."""

    def _poison(self, cachedir, mutate):
        entries = glob.glob(str(cachedir / "*" / "*.json"))
        assert entries
        for path in entries:
            mutate(path)
        return entries

    def _assert_recovers(self, cachedir, entries, r1):
        sched = Scheduler(cache=str(cachedir))
        r2 = VcGen(_mk_module()).verify_module(sched)
        assert r2.ok and _signature(r1) == _signature(r2)
        assert sched.cache.hits == 0
        assert sched.cache.corrupt == len(entries)
        assert sched.cache.stores == len(entries)   # rewritten fresh
        r3 = verify_module(_mk_module(), cache=str(cachedir))
        assert r3.stats["cache_misses"] == 0        # healthy again

    def test_truncated_json_quarantined(self, tmp_path):
        cachedir = tmp_path / "pc"
        r1 = verify_module(_mk_module(), cache=str(cachedir))

        def truncate(path):
            data = open(path, "rb").read()
            with open(path, "wb") as fh:
                fh.write(data[:len(data) // 2])
        entries = self._poison(cachedir, truncate)
        self._assert_recovers(cachedir, entries, r1)

    def test_digest_mismatch_quarantined(self, tmp_path):
        cachedir = tmp_path / "pc"
        r1 = verify_module(_mk_module(), cache=str(cachedir))

        def tamper(path):
            import json as J
            entry = J.load(open(path))
            entry["digest"] = "f" * 64   # valid JSON, wrong identity
            with open(path, "w") as fh:
                J.dump(entry, fh)
        entries = self._poison(cachedir, tamper)
        self._assert_recovers(cachedir, entries, r1)

    def test_bogus_status_quarantined(self, tmp_path):
        cachedir = tmp_path / "pc"
        r1 = verify_module(_mk_module(), cache=str(cachedir))

        def bogus(path):
            import json as J
            entry = J.load(open(path))
            entry["status"] = "maybe-proved"
            with open(path, "w") as fh:
                J.dump(entry, fh)
        entries = self._poison(cachedir, bogus)
        self._assert_recovers(cachedir, entries, r1)

    def test_eviction_removes_the_file(self, tmp_path):
        cache = ProofCache(str(tmp_path / "pc"))
        cache.store("ab" * 32, "proved", {}, 0, label="x")
        path = cache._path("ab" * 32)
        with open(path, "w") as fh:
            fh.write("{torn")
        assert cache.lookup("ab" * 32) is None
        assert not os.path.exists(path)              # quarantined
        assert cache.corrupt == 1

    def test_resource_out_never_stored(self, tmp_path):
        from repro.vc.errors import RESOURCE_OUT
        cache = ProofCache(str(tmp_path / "pc"))
        cache.store("ab" * 32, RESOURCE_OUT, {}, 0, label="x")
        assert cache.stores == 0
        assert not os.path.exists(cache._path("ab" * 32))
        assert cache.lookup("ab" * 32) is None


class TestTieredCacheQuarantine:
    """Cross-tier quarantine: the flat-cache guarantees extend to the
    tiered front — a damaged entry at *any* tier boundary is rejected,
    counted, and re-solved, never replayed as a verdict."""

    def test_poisoned_disk_behind_tiered_front_recovers(self, tmp_path):
        from repro.cache import TieredProofCache
        cachedir = tmp_path / "pc"
        r1 = verify_module(_mk_module(), cache=str(cachedir))
        entries = glob.glob(str(cachedir / "*" / "*.json"))
        assert entries
        for path in entries:
            data = open(path, "rb").read()
            with open(path, "wb") as fh:
                fh.write(data[: len(data) // 2])
        tc = TieredProofCache(str(cachedir))
        sched = Scheduler(cache=tc)
        r2 = VcGen(_mk_module()).verify_module(sched)
        assert r2.ok and _signature(r1) == _signature(r2)
        assert tc.hits == 0
        assert tc.corrupt == len(entries)
        assert tc.quarantined == len(entries)
        assert tc.stores == len(entries)            # rewritten fresh
        r3 = verify_module(_mk_module(), cache=str(cachedir))
        assert r3.stats["cache_misses"] == 0        # healthy again

    def test_tampered_replica_behind_tiered_front_recovers(self, tmp_path):
        from repro.cache import CacheReplica, TieredProofCache
        from repro.runtime.network import Network
        net = Network()
        rep = CacheReplica("cache0", net, poll=0.01).start()
        try:
            tc1 = TieredProofCache(str(tmp_path / "a"),
                                   tiers="mem,disk,net", network=net,
                                   net_timeout=0.05, client_name="sched-a")
            r1 = VcGen(_mk_module()).verify_module(Scheduler(cache=tc1))
            digests = rep.store.digests()
            assert digests                          # write-through landed
            for d in digests:
                rep.store._entries[d]["status"] = "maybe-proved"
            # A peer with cold local tiers sees only rot from the net
            # tier: every reply is quarantined, nothing is promoted, and
            # the re-solved verdicts are byte-identical.
            tc2 = TieredProofCache(str(tmp_path / "b"),
                                   tiers="mem,disk,net", network=net,
                                   net_timeout=0.05, client_name="sched-b")
            r2 = VcGen(_mk_module()).verify_module(Scheduler(cache=tc2))
            assert r2.ok and _signature(r1) == _signature(r2)
            assert tc2.net_hits == 0
            assert tc2.mem_hits == 0 and tc2.disk_hits == 0
            assert tc2.quarantined == len(digests)
        finally:
            rep.stop()


# ---------------------------------------------------------------------------
# Idiom-engine caching (§3.3 by(...) verdicts)
# ---------------------------------------------------------------------------

class TestIdiomCache:
    def _bv_module(self):
        mod = Module("t_bv_cache")
        x = var("x", U64)
        exec_fn(mod, "mask_is_mod", [("x", U64)], ret=("r", U64),
                ensures=[var("r", U64).eq(x % 512)],
                body=[
                    assert_((x & lit(511)).eq(x % 512), by=BY_BIT_VECTOR),
                    ret(x & lit(511)),
                ])
        return mod

    def test_bit_vector_verdict_cached(self, tmp_path):
        cache = str(tmp_path / "pc")
        r1 = verify_module(self._bv_module(), cache=cache)
        r2 = verify_module(self._bv_module(), cache=cache)
        assert r1.ok and r2.ok
        assert _signature(r1) == _signature(r2)
        assert r2.stats["cache_misses"] == 0
        assert r2.stats["cache_hits"] == r1.stats["cache_misses"]

    def test_failing_bit_vector_cached(self, tmp_path):
        mod = Module("t_bv_bad_cache")
        x = var("x", U64)

        def build():
            m = Module("t_bv_bad_cache")
            xx = var("x", U64)
            exec_fn(m, "bad", [("x", U64)],
                    body=[assert_((xx & lit(3)).eq(xx % 8),
                                  by=BY_BIT_VECTOR)])
            return m

        cache = str(tmp_path / "pc")
        r1 = verify_module(build(), cache=cache)
        r2 = verify_module(build(), cache=cache)
        assert not r1.ok and not r2.ok
        assert _signature(r1) == _signature(r2)
        assert r2.stats["cache_misses"] == 0

    def test_no_cache_attached_is_passthrough(self):
        r = verify_module(self._bv_module(), cache=False)
        assert r.ok and r.stats["cache_hits"] == 0
        assert r.stats["cache_misses"] == 0


# ---------------------------------------------------------------------------
# Serial vs parallel determinism (satellite: IronKV + pagetable)
# ---------------------------------------------------------------------------

class TestDeterminism:
    def _compare(self, build):
        serial = VcGen(build()).verify_module(
            Scheduler(jobs=1, cache=False))
        parallel = VcGen(build()).verify_module(
            Scheduler(jobs=4, cache=False))
        assert _signature(serial) == _signature(parallel)
        assert serial.ok == parallel.ok
        return serial, parallel

    def test_ironkv_delegation_map(self):
        from repro.systems.ironkv.delegation_map import build_default_module
        serial, _ = self._compare(build_default_module)
        assert serial.ok

    def test_ironkv_marshal(self):
        from repro.systems.ironkv.marshal_verified import (
            build_u64_roundtrip_module)
        serial, _ = self._compare(build_u64_roundtrip_module)
        assert serial.ok

    def test_pagetable_entries(self):
        from repro.systems.pagetable.entry_verified import build_entry_module
        serial, _ = self._compare(build_entry_module)
        assert serial.ok

    def test_failure_labels_identical(self):
        serial, parallel = self._compare(_mk_failing_module)
        assert not serial.ok
        assert ([(f, o.label) for f, o in serial.failures()]
                == [(f, o.label) for f, o in parallel.failures()])


# ---------------------------------------------------------------------------
# Stats plumbing
# ---------------------------------------------------------------------------

class TestStatsPlumbing:
    def test_module_stats_snapshot(self, tmp_path):
        res = verify_module(_mk_module(), cache=str(tmp_path / "pc"))
        assert res.stats["obligations"] == sum(
            len(f.obligations) for f in res.functions)
        assert res.stats["wall_seconds"] > 0

    def test_report_mentions_cache(self, tmp_path):
        cache = str(tmp_path / "pc")
        verify_module(_mk_module(), cache=cache)
        res = verify_module(_mk_module(), cache=cache)
        assert "proof cache" in res.report()
        assert "100% hit rate" in res.report()

    def test_stats_merge_ignores_non_numeric(self):
        s = Stats()
        s.merge({"conflicts": 3, "cache_hit": True, "note": "x"})
        s.merge({"conflicts": 2})
        assert s.conflicts == 5
        assert not hasattr(s, "note")

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3
        monkeypatch.setenv(JOBS_ENV, "junk")
        assert default_jobs() == 1
        monkeypatch.delenv(JOBS_ENV)
        assert default_jobs() == 1
