"""Tests for the concrete expression interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.lang import *
from repro.vc.interp import EnumVal, Interp, InterpError, StructVal


def ev(expr, env=None, module=None):
    return Interp(module=module).eval(expr, env or {})


class TestArith:
    def test_basic_ops(self):
        x = var("x", INT)
        env = {"x": 10}
        assert ev(x + 5, env) == 15
        assert ev(x - 3, env) == 7
        assert ev(x * 2, env) == 20
        assert ev(x // 3, env) == 3
        assert ev(x % 3, env) == 1

    def test_euclidean_semantics_match_smt(self):
        # The interpreter's / and % must match the SMT encoding exactly.
        x = var("x", INT)
        assert ev(x // 2, {"x": -7}) == -4  # floor for positive divisor
        assert ev(x % 2, {"x": -7}) == 1

    def test_bool_ops(self):
        p, q = var("p", BOOL), var("q", BOOL)
        env = {"p": True, "q": False}
        assert ev(p.and_(q), env) is False
        assert ev(p.or_(q), env) is True
        assert ev(p.implies(q), env) is False
        assert ev(q.implies(p), env) is True
        assert ev(p.not_(), env) is False

    def test_division_by_zero_raises(self):
        x = var("x", INT)
        with pytest.raises(InterpError):
            ev(x // 0, {"x": 1})

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_comparisons_match_python(self, a, b):
        x, y = var("x", INT), var("y", INT)
        env = {"x": a, "y": b}
        assert ev(x < y, env) == (a < b)
        assert ev(x.eq(y), env) == (a == b)


class TestCollections:
    def test_seq_ops(self):
        SeqI = SeqType(INT)
        s = var("s", SeqI)
        env = {"s": (1, 2, 3, 4)}
        assert ev(s.length(), env) == 4
        assert ev(s.index(2), env) == 3
        assert ev(s.update(0, lit(9)), env) == (9, 2, 3, 4)
        assert ev(s.skip(1), env) == (2, 3, 4)
        assert ev(s.take(2), env) == (1, 2)
        assert ev(s.push(5), env) == (1, 2, 3, 4, 5)

    def test_seq_index_oob(self):
        s = var("s", SeqType(INT))
        with pytest.raises(InterpError):
            ev(s.index(9), {"s": (1,)})

    def test_map_ops(self):
        MI = MapType(INT, INT)
        m = var("m", MI)
        env = {"m": {1: 10}}
        assert ev(m.contains_key(1), env) is True
        assert ev(m.map_index(1), env) == 10
        assert ev(m.insert(2, lit(20)), env) == {1: 10, 2: 20}
        assert ev(m.remove(1), env) == {}
        # original untouched (immutability)
        assert env["m"] == {1: 10}

    def test_struct_and_enum(self):
        P = StructType("TIPoint").declare([("x", INT), ("y", INT)])
        Opt = EnumType("TIOpt").declare({"N": [], "S": [("v", INT)]})
        p = var("p", P)
        env = {"p": StructVal(P, {"x": 1, "y": 2})}
        assert ev(p.field("x"), env) == 1
        assert ev(struct_update(p, x=lit(9)), env).fields == {"x": 9, "y": 2}
        o = var("o", Opt)
        env = {"o": EnumVal(Opt, "S", {"v": 5})}
        assert ev(o.is_variant("S"), env) is True
        assert ev(o.get("S", "v"), env) == 5
        with pytest.raises(InterpError):
            ev(o.get("S", "v"), {"o": EnumVal(Opt, "N", {})})


class TestSpecCalls:
    def test_module_spec_fn(self):
        mod = Module("ti_mod")
        n = var("n", INT)
        spec_fn(mod, "triple", [("n", INT)], INT, body=n * 3)
        out = ev(call(mod, "triple", lit(4)), {}, module=mod)
        assert out == 12

    def test_recursive_spec_fn(self):
        mod = Module("ti_rec")
        n = var("n", INT)
        spec_fn(mod, "fact", [("n", INT)], INT,
                body=ite(n <= 0, lit(1), n * rec_call("fact", INT, n - 1)))
        assert ev(call(mod, "fact", lit(5)), {}, module=mod) == 120

    def test_python_callable_binding(self):
        from repro.vc import ast as A
        interp = Interp(spec_fns={"sq": lambda v: v * v})
        expr = A.Call("sq", [lit(7)], INT)
        assert interp.eval(expr, {}) == 49


class TestQuantifiers:
    def test_finite_domain(self):
        k = var("k", INT)
        f = forall([("k", INT)], k >= 0)
        assert Interp().eval(f, {"$domains": {INT: range(5)}}) is True
        assert Interp().eval(f, {"$domains": {INT: range(-2, 5)}}) is False

    def test_exists(self):
        k = var("k", INT)
        e = exists([("k", INT)], k.eq(3))
        assert Interp().eval(e, {"$domains": {INT: range(5)}}) is True
        assert Interp().eval(e, {"$domains": {INT: range(3)}}) is False

    def test_unbounded_domain_raises(self):
        f = forall([("k", INT)], var("k", INT) >= 0)
        with pytest.raises(InterpError):
            Interp().eval(f, {})


class TestOldAndLet:
    def test_old(self):
        x = var("x", INT)
        assert ev(old("x", INT) + x, {"x": 5, "old!x": 3}) == 8

    def test_let(self):
        x = var("x", INT)
        expr = let("y", x + 1, var("y", INT) * 2)
        assert ev(expr, {"x": 4}) == 10
