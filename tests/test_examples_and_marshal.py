"""Smoke tests: every example script runs; marshal_verified proves."""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(ROOT, "examples")


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "distributed_lock.py",
    "crash_safe_log.py",
    "node_replication.py",
    "verified_allocator.py",
    "sharded_kv.py",
    "lemma_library.py",
])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script)],
        capture_output=True, text=True, timeout=420)
    assert proc.returncode == 0, (proc.stdout[-2000:], proc.stderr[-2000:])
    assert "passed" in proc.stdout


class TestMarshalVerified:
    def test_u64_roundtrip_proof(self):
        from repro.systems.ironkv.marshal_verified import (
            build_u64_roundtrip_module)
        from repro.vc.wp import VcGen
        res = VcGen(build_u64_roundtrip_module(levels=4)).verify_module()
        assert res.ok, res.report()

    def test_derive_macro_generates_proofs(self):
        from repro.systems.ironkv.marshal_verified import (
            derive_struct_roundtrip_module)
        from repro.vc.wp import VcGen
        mod = derive_struct_roundtrip_module("Pkt", 3, levels=2)
        res = VcGen(mod).verify_module()
        assert res.ok, res.report()
        assert "Pkt_roundtrip" in mod.functions

    def test_verified_encoding_matches_runtime(self):
        """The verified byte decomposition equals the executable
        marshaller's little-endian bytes."""
        from repro.systems.ironkv import marshal as M
        from repro.systems.ironkv.marshal_verified import (
            build_u64_roundtrip_module)
        from repro.vc.interp import Interp
        from repro.lang import call, lit
        mod = build_u64_roundtrip_module(levels=8)
        interp = Interp(module=mod)
        for value in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            runtime = M.U64.marshal(value)
            for i in range(8):
                expr = call(mod, f"byte{i}", lit(value))
                assert interp.eval(expr, {}) == runtime[i]
