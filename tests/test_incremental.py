"""Incremental solving: push/pop scopes, warm contexts, delta, repro.api.

The acceptance bar for the warm-context strategy is *differential*:
verdicts, failure sets, diagnostics, and the machine-readable report
(modulo timing fields and aggregate solver-effort counters, which
legitimately shrink when work is shared) must be identical between
fresh-solver and warm-context runs — across every broken-module fixture
of the diagnostics suite and a couple of fully verified modules.
"""

import json
import random

import pytest

from repro.api import Session, VerifyConfig
from repro.lang import (BOOL, INT, U64, Module, and_all, assert_, assign,
                        call, call_stmt, exec_fn, forall, let_, lit, ret,
                        spec_fn, var, while_)
from tests.helpers import verify_module
from repro.smt import terms as T
from repro.smt.solver import SAT, SmtSolver, UNSAT
from repro.vc.errors import PROVED, TIMEOUT

from tests.test_diagnostics import (_broken_assert_conjunctive,
                                    _broken_decreases, _broken_inv_end,
                                    _broken_inv_front, _broken_overflow,
                                    _broken_postcond, _broken_precond,
                                    _diag_signature)

BROKEN_BUILDERS = [_broken_postcond, _broken_precond,
                   _broken_assert_conjunctive, _broken_inv_front,
                   _broken_inv_end, _broken_overflow, _broken_decreases]


def _verified_module():
    mod = Module("inc_ok")
    x, n, i = var("x", U64), var("n", U64), var("i", U64)
    exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
            requires=[x < lit(1000)],
            ensures=[var("r", U64).eq(x + lit(1))],
            body=[ret(x + lit(1))])
    exec_fn(mod, "count_to", [("n", U64)], ret=("res", U64),
            ensures=[var("res", U64).eq(n)],
            body=[let_("i", lit(0, U64)),
                  while_(i < n, invariants=[i <= n],
                         body=[assign("i", i + 1)], decreases=n - i),
                  ret(i)])
    return mod


def _quantified_module():
    """Spec-function context with a quantified well-formedness axiom."""
    mod = Module("inc_quant")
    x = var("x", U64)
    spec_fn(mod, "above", [("x", INT)], BOOL,
            body=var("x", INT) >= lit(10))
    exec_fn(mod, "use_spec", [("x", U64)],
            requires=[call(mod, "above", x)],
            body=[assert_(x >= lit(10)),
                  assert_(x + lit(1) >= lit(11))])
    return mod


def _normalize(payload: dict) -> dict:
    """Strip timing fields and aggregate effort counters from to_json().

    Everything else — statuses, labels, seqs, spans, error types, diag
    payloads, query_bytes — must match byte-for-byte.
    """
    payload = json.loads(json.dumps(payload))
    payload["seconds"] = 0
    payload.pop("stats", None)
    payload.pop("inst_profile", None)
    for f in payload["functions"]:
        f["seconds"] = 0
        for o in f["obligations"]:
            o["seconds"] = 0
    for o in payload.get("failures", []):
        o["seconds"] = 0
    return payload


# ---------------------------------------------------------------------------
# SMT layer: push/pop scopes
# ---------------------------------------------------------------------------

class TestSolverScopes:
    def test_push_pop_basic(self):
        x, y = T.Var("x", T.INT), T.Var("y", T.INT)
        f = T.FuncDecl("f", [T.INT], T.INT)
        s = SmtSolver(incremental=True)
        s.add(T.Eq(x, y))
        s.push()
        s.add(T.Not(T.Eq(T.App(f, x), T.App(f, y))))
        assert s.check() == UNSAT
        s.pop()
        s.push()
        s.add(T.Ge(x, T.IntVal(3)))
        s.add(T.Le(y, T.IntVal(10)))
        assert s.check() == SAT
        s.pop()
        s.push()
        s.add(T.Lt(x, T.IntVal(0)))
        s.add(T.Gt(y, T.IntVal(0)))
        assert s.check() == UNSAT
        s.pop()

    def test_nested_scopes(self):
        x = T.Var("x", T.INT)
        s = SmtSolver(incremental=True)
        s.add(T.Ge(x, T.IntVal(0)))
        s.push()
        s.add(T.Le(x, T.IntVal(5)))
        s.push()
        s.add(T.Gt(x, T.IntVal(5)))
        assert s.check() == UNSAT
        s.pop()
        assert s.check() == SAT
        s.pop()
        assert s.check() == SAT

    def test_quantifier_state_respects_scopes(self):
        xq = T.Var("xq", T.INT)
        g = T.FuncDecl("g", [T.INT], T.INT)
        ax = T.ForAll([xq], T.Ge(T.App(g, xq), xq),
                      triggers=[[T.App(g, xq)]])
        a = T.Var("a", T.INT)
        goals = [T.Lt(T.App(g, a), a),
                 T.And(T.Ge(a, T.IntVal(5)),
                       T.Lt(T.App(g, a), T.IntVal(5)))]
        warm = SmtSolver(incremental=True)
        warm.add(ax)
        for goal in goals:
            fresh = SmtSolver()
            fresh.add(ax)
            fresh.add(goal)
            warm.push()
            warm.add(goal)
            assert warm.check() == fresh.check()
            warm.pop()

    def test_randomized_differential(self):
        rng = random.Random(20260806)
        ivars = [T.Var(f"v{i}", T.INT) for i in range(5)]
        bvars = [T.Var(f"b{i}", T.BOOL) for i in range(3)]
        g = T.FuncDecl("g", [T.INT], T.INT)

        def atom():
            k = rng.randrange(6)
            a, b = rng.choice(ivars), rng.choice(ivars)
            if k == 0:
                return T.Le(a, T.IntVal(rng.randrange(-5, 6)))
            if k == 1:
                return T.Eq(a, b)
            if k == 2:
                return T.Eq(T.App(g, a), T.App(g, b))
            if k == 3:
                return rng.choice(bvars)
            if k == 4:
                return T.Lt(T.Add(a, b), T.IntVal(rng.randrange(-3, 8)))
            return T.Not(T.Eq(a, T.IntVal(rng.randrange(-4, 5))))

        def formula(depth=2):
            if depth == 0:
                return atom()
            k = rng.randrange(4)
            if k == 0:
                return T.And(formula(depth - 1), formula(depth - 1))
            if k == 1:
                return T.Or(formula(depth - 1), formula(depth - 1))
            if k == 2:
                return T.Not(formula(depth - 1))
            return atom()

        for _ in range(25):
            base = [formula() for _ in range(rng.randrange(1, 4))]
            goals = [[formula() for _ in range(rng.randrange(1, 3))]
                     for _ in range(rng.randrange(2, 5))]
            fresh = []
            for goal in goals:
                s = SmtSolver()
                for a in base + goal:
                    s.add(a)
                fresh.append(s.check())
            warm_solver = SmtSolver(incremental=True)
            for a in base:
                warm_solver.add(a)
            warm = []
            for goal in goals:
                warm_solver.push()
                for a in goal:
                    warm_solver.add(a)
                warm.append(warm_solver.check())
                warm_solver.pop()
            assert warm == fresh

    def test_learned_clause_retention_is_scoped(self):
        """A goal-scoped consequence must not leak into later goals."""
        x = T.Var("x", T.INT)
        s = SmtSolver(incremental=True)
        s.push()
        s.add(T.Ge(x, T.IntVal(10)))
        assert s.check() == SAT
        s.pop()
        s.push()
        # If anything from the popped scope survived, this would be UNSAT.
        s.add(T.Le(x, T.IntVal(-10)))
        assert s.check() == SAT
        s.pop()

    def test_check_timeout_sets_flag(self):
        x = T.Var("x", T.INT)
        s = SmtSolver()
        s.add(T.Ge(x, T.IntVal(0)))
        assert s.check(timeout=0.0) == "unknown"
        assert s.last_deadline_exceeded
        # A later un-timed check clears the flag and solves normally.
        assert s.check() == SAT
        assert not s.last_deadline_exceeded


# ---------------------------------------------------------------------------
# Warm contexts vs fresh solvers: the differential guarantee
# ---------------------------------------------------------------------------

class TestWarmDifferential:
    @pytest.mark.parametrize("builder", BROKEN_BUILDERS,
                             ids=lambda b: b.__name__)
    def test_broken_fixture_identical(self, builder):
        fresh = Session(VerifyConfig(diagnostics=True)).verify_module(
            builder())
        warm = Session(VerifyConfig(diagnostics=True,
                                    incremental=True)).verify_module(
            builder())
        assert not fresh.ok and not warm.ok
        assert _diag_signature(fresh) == _diag_signature(warm)
        assert _normalize(fresh.to_json()) == _normalize(warm.to_json())

    @pytest.mark.parametrize("builder", [_verified_module,
                                         _quantified_module],
                             ids=lambda b: b.__name__)
    def test_verified_module_identical(self, builder):
        fresh = Session(VerifyConfig()).verify_module(builder())
        warm = Session(VerifyConfig(incremental=True)).verify_module(
            builder())
        assert fresh.ok and warm.ok
        assert fresh.query_bytes == warm.query_bytes
        assert _normalize(fresh.to_json()) == _normalize(warm.to_json())

    def test_warm_composes_with_cache(self, tmp_path):
        cold = Session(VerifyConfig(cache_dir=str(tmp_path),
                                    incremental=True))
        r1 = cold.verify_module(_verified_module())
        assert r1.ok and r1.stats.get("cache_hits", 0) == 0
        rewarm = Session(VerifyConfig(cache_dir=str(tmp_path),
                                      incremental=True))
        r2 = rewarm.verify_module(_verified_module())
        assert r2.ok and r2.stats.get("cache_hits", 0) > 0
        assert _normalize(r1.to_json()) == _normalize(r2.to_json())

    def test_warm_and_fresh_share_cache_digests(self, tmp_path):
        """Warm runs hit entries a fresh run stored, and vice versa."""
        Session(VerifyConfig(cache_dir=str(tmp_path))).verify_module(
            _verified_module())
        warm = Session(VerifyConfig(cache_dir=str(tmp_path),
                                    incremental=True))
        result = warm.verify_module(_verified_module())
        assert result.ok
        assert result.stats.get("cache_misses", 0) == 0


# ---------------------------------------------------------------------------
# Serial soft deadline (REPRO_JOB_TIMEOUT regression)
# ---------------------------------------------------------------------------

class TestSerialDeadline:
    @pytest.fixture(autouse=True)
    def _isolate_env(self, monkeypatch):
        # These are regression tests for the REPRO_JOB_TIMEOUT path
        # specifically; ambient CI knobs (a shared proof cache would
        # answer obligations before any deadline is consulted) must not
        # leak in.
        for name in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_DIAG",
                     "REPRO_JOB_TIMEOUT", "REPRO_INCREMENTAL",
                     "REPRO_DELTA"):
            monkeypatch.delenv(name, raising=False)
        # The static proving tier would discharge these obligations
        # before any solver deadline is consulted; force them all onto
        # the solver path the deadline actually guards.
        monkeypatch.setenv("REPRO_TRIAGE", "0")

    def test_serial_run_honors_job_timeout_env(self, monkeypatch):
        # A zero deadline trips deterministically at the first wall-clock
        # check; a small-but-positive one may lose the race against a
        # fast obligation.
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "0.0")
        result = verify_module(_verified_module())  # jobs=1: serial path
        assert not result.ok
        for fn in result.functions:
            for ob in fn.obligations:
                assert ob.status == TIMEOUT
                assert ob.stats.get("deadline_exceeded") == 1

    def test_deadline_verdicts_never_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "0.0")
        timed = Session(VerifyConfig.from_env(cache_dir=str(tmp_path)))
        assert timed.config.job_timeout == 0.0
        r1 = timed.verify_module(_verified_module())
        assert not r1.ok
        monkeypatch.delenv("REPRO_JOB_TIMEOUT")
        clean = Session(VerifyConfig(cache_dir=str(tmp_path)))
        r2 = clean.verify_module(_verified_module())
        assert r2.ok  # no stale TIMEOUT entries were replayed
        assert r2.stats.get("cache_hits", 0) == 0

    def test_warm_deadline_also_soft(self):
        session = Session(VerifyConfig(incremental=True, job_timeout=0.0,
                                       triage="off"))
        result = session.verify_module(_verified_module())
        assert not result.ok
        statuses = {o.status for f in result.functions
                    for o in f.obligations}
        assert statuses == {TIMEOUT}


# ---------------------------------------------------------------------------
# Delta re-verification
# ---------------------------------------------------------------------------

class TestDelta:
    def test_unchanged_function_skipped(self, tmp_path):
        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True)
        r1 = Session(cfg).verify_module(_verified_module())
        assert r1.ok and not r1.stats.get("delta_skips")
        r2 = Session(cfg).verify_module(_verified_module())
        assert r2.ok
        assert r2.stats.get("delta_skips") == 2
        assert _normalize(r1.to_json()) == _normalize(r2.to_json())
        for fn in r2.functions:
            for ob in fn.obligations:
                assert ob.stats.get("delta_skipped") is True

    def test_changed_function_reverified(self, tmp_path):
        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True)

        def build(bound):
            mod = Module("delta_demo")
            x = var("x", U64)
            exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
                    requires=[x < lit(bound)],
                    ensures=[var("r", U64).eq(x + lit(1))],
                    body=[ret(x + lit(1))])
            return mod

        assert Session(cfg).verify_module(build(1000)).ok
        r2 = Session(cfg).verify_module(build(500))  # contract changed
        assert r2.ok
        assert not r2.stats.get("delta_skips")

    def test_spec_dependency_change_invalidates(self, tmp_path):
        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True)

        def build(threshold):
            mod = Module("delta_spec")
            x = var("x", U64)
            spec_fn(mod, "above", [("x", INT)], BOOL,
                    body=var("x", INT) >= lit(threshold))
            exec_fn(mod, "use_spec", [("x", U64)],
                    requires=[call(mod, "above", x)],
                    body=[assert_(x >= lit(threshold))])
            return mod

        assert Session(cfg).verify_module(build(10)).ok
        r2 = Session(cfg).verify_module(build(10))
        assert r2.stats.get("delta_skips") == 1
        r3 = Session(cfg).verify_module(build(7))  # spec body changed
        assert r3.ok
        assert not r3.stats.get("delta_skips")

    def test_spec_edit_propagates_to_callers(self, tmp_path):
        """A spec-fn edit invalidates every (transitive) caller, even when
        the caller's own AST is byte-identical across the edit and only
        sees the spec through a callee's contract."""
        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True)

        def build(threshold):
            mod = Module("delta_chain")
            x = var("x", U64)
            spec_fn(mod, "big", [("x", INT)], BOOL,
                    body=var("x", INT) >= lit(threshold))
            # check's AST never mentions `threshold`: it depends on the
            # edit only through big's definition.
            exec_fn(mod, "check", [("x", U64)], ret=("r", U64),
                    requires=[call(mod, "big", x)],
                    ensures=[var("r", U64).eq(x)],
                    body=[ret(x)])
            # caller's AST is also threshold-independent; big is reachable
            # only through check's contract.
            exec_fn(mod, "caller", [("x", U64)],
                    requires=[x >= lit(10)],
                    body=[call_stmt("check", [x], binds=["y"]),
                          assert_(var("y", U64).eq(x))])
            return mod

        assert Session(cfg).verify_module(build(10)).ok
        r2 = Session(cfg).verify_module(build(10))
        assert r2.stats.get("delta_skips") == 2
        r3 = Session(cfg).verify_module(build(7))  # only big's body changed
        assert r3.ok
        assert not r3.stats.get("delta_skips"), \
            "spec edit must re-verify both direct and transitive callers"

    def test_budget_change_invalidates(self, tmp_path):
        """The delta digest keys the scheduler-*effective* solver config:
        a PROVED under one max_steps budget must not replay under
        another (the proof cache already keys budgets; the function
        cache has to agree)."""
        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True)
        assert Session(cfg).verify_module(_verified_module()).ok
        r2 = Session(cfg.replace(max_steps=50)).verify_module(
            _verified_module())
        assert not r2.stats.get("delta_skips"), \
            "a tighter step budget must force re-verification"
        r3 = Session(cfg).verify_module(_verified_module())
        assert r3.stats.get("delta_skips") == 2  # original budget still warm

    def test_decreases_spec_dependency_invalidates(self, tmp_path):
        """A spec fn referenced only from a function-level decreases
        clause is still a dependency: editing it must invalidate."""
        from repro.vc import ast as A

        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True)

        def build(weight):
            mod = Module("delta_dec")
            n = var("n", U64)
            spec_fn(mod, "measure", [("n", INT)], INT,
                    body=var("n", INT) * lit(weight))
            fn = exec_fn(mod, "work", [("n", U64)],
                         body=[assert_(n + lit(1) >= lit(1))])
            fn.decreases = A.coerce(call(mod, "measure", n))
            return mod

        assert Session(cfg).verify_module(build(2)).ok
        r2 = Session(cfg).verify_module(build(2))
        assert r2.stats.get("delta_skips") == 1
        r3 = Session(cfg).verify_module(build(3))  # measure's body changed
        assert r3.ok
        assert not r3.stats.get("delta_skips"), \
            "decreases-only spec dependencies must participate in digests"

    def test_failures_never_recorded(self, tmp_path):
        cfg = VerifyConfig(cache_dir=str(tmp_path), delta=True,
                           diagnostics=True)
        r1 = Session(cfg).verify_module(_broken_postcond())
        assert not r1.ok
        r2 = Session(cfg).verify_module(_broken_postcond())
        assert not r2.ok and not r2.stats.get("delta_skips")
        # The re-run still carries full diagnostics.
        assert _diag_signature(r1) == _diag_signature(r2)


# ---------------------------------------------------------------------------
# The repro.api front door
# ---------------------------------------------------------------------------

class TestApi:
    def test_from_env_is_single_reader(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_DIAG", "1")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_INCREMENTAL", "yes")
        monkeypatch.setenv("REPRO_DELTA", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/pvcache-test")
        cfg = VerifyConfig.from_env()
        assert cfg == VerifyConfig(jobs=3, cache_dir="/tmp/pvcache-test",
                                   diagnostics=True, job_timeout=2.5,
                                   incremental=True, delta=True)

    def test_from_env_garbage_tolerant(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "junk")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "junk")
        monkeypatch.setenv("REPRO_INCREMENTAL", "off")
        cfg = VerifyConfig.from_env()
        assert cfg.jobs == 1
        assert cfg.job_timeout is None
        assert not cfg.incremental

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        cfg = VerifyConfig.from_env(jobs=2, incremental=True)
        assert cfg.jobs == 2 and cfg.incremental

    def test_config_is_frozen(self):
        cfg = VerifyConfig()
        with pytest.raises(Exception):
            cfg.jobs = 5
        with pytest.raises(TypeError):
            cfg.replace(bogus=1)

    def test_session_verify_raises_on_failure(self):
        from repro.vc.errors import VerificationFailure
        session = Session(VerifyConfig())
        session.verify(_verified_module())
        with pytest.raises(VerificationFailure):
            session.verify(_broken_postcond())

    def test_session_diagnose_forces_diagnostics(self):
        result = Session(VerifyConfig()).diagnose(_broken_postcond())
        assert not result.ok
        _, ob = result.first_failure()
        assert ob.diag is not None

    def test_legacy_shims_removed(self):
        import repro.lang as lang
        for name in ("verify", "verify_module", "diagnose"):
            assert not hasattr(lang, name)

    def test_schema_version_present(self):
        payload = Session(VerifyConfig()).verify_module(
            _verified_module()).to_json()
        assert payload["schema_version"] == 2
        # v2's additive per-obligation fields are present (and None on
        # an un-raced default run).
        ob = payload["functions"][0]["obligations"][0]
        assert "profile" in ob and "portfolio" in ob
        assert ob["profile"] is None and ob["portfolio"] is None
