"""Unit tests for congruence closure and its explanations."""

import pytest

from repro.smt import terms as T
from repro.smt.euf import EufConflict, EufSolver
from repro.smt.sorts import INT, uninterpreted

S = uninterpreted("S")
f = T.FuncDecl("f", [S], S)
g = T.FuncDecl("g", [S, S], S)
a, b, c, d = (T.Var(n, S) for n in "abcd")


def test_transitivity_and_congruence():
    e = EufSolver()
    e.assert_eq(a, b, "r1")
    e.assert_eq(b, c, "r2")
    e.add_term(f(a))
    e.add_term(f(c))
    e.flush()
    assert e.are_equal(f(a), f(c))


def test_explanation_is_exact():
    e = EufSolver()
    e.assert_eq(a, b, "r1")
    e.assert_eq(b, c, "r2")
    e.assert_eq(c, d, "r3")  # irrelevant for f(a)=f(b)
    e.add_term(f(a))
    e.add_term(f(b))
    e.flush()
    assert e.explain(f(a), f(b)) == frozenset({"r1"})


def test_binary_congruence_conflict():
    e = EufSolver()
    e.assert_neq(g(a, b), g(c, d), "rneq")
    e.assert_eq(a, c, "r1")
    with pytest.raises(EufConflict) as exc:
        e.assert_eq(b, d, "r2")
    assert exc.value.reasons == frozenset({"rneq", "r1", "r2"})


def test_distinct_constants_conflict():
    e = EufSolver()
    x = T.Var("x", INT)
    e.assert_eq(x, T.IntVal(1), "p")
    with pytest.raises(EufConflict) as exc:
        e.assert_eq(x, T.IntVal(2), "q")
    assert exc.value.reasons == frozenset({"p", "q"})


def test_fn_power_chain():
    # f^5(a) = a and f^3(a) = a imply f(a) = a.
    def fn(t, n):
        for _ in range(n):
            t = f(t)
        return t

    e = EufSolver()
    e.assert_eq(fn(a, 5), a, "h5")
    e.assert_eq(fn(a, 3), a, "h3")
    assert e.are_equal(f(a), a)
    assert e.explain(f(a), a) <= frozenset({"h5", "h3"})


def test_disequality_without_conflict():
    e = EufSolver()
    e.assert_neq(a, b, "n")
    e.assert_eq(a, c, "r")
    assert not e.are_equal(a, b)
    assert e.are_equal(a, c)


def test_diseq_then_merge_conflict():
    e = EufSolver()
    e.assert_neq(a, b, "n")
    e.assert_eq(a, c, "r1")
    with pytest.raises(EufConflict) as exc:
        e.assert_eq(c, b, "r2")
    assert exc.value.reasons == frozenset({"n", "r1", "r2"})


def test_registration_congruence_found_on_flush():
    e = EufSolver()
    e.assert_eq(a, b, "r")
    e.add_term(f(a))
    e.add_term(f(b))
    e.flush()
    assert e.are_equal(f(a), f(b))


def test_value_of_prefers_constants():
    e = EufSolver()
    x = T.Var("x", INT)
    e.assert_eq(x, T.IntVal(7), "p")
    v = e.value_of(x)
    assert v is not None and v.payload == 7


def test_class_of_members():
    e = EufSolver()
    e.assert_eq(a, b, "r1")
    e.assert_eq(b, c, "r2")
    members = set(e.class_of(a))
    assert {a, b, c} <= members


def test_interpreted_op_congruence():
    # EUF treats + as a function: x=y implies x+1 ~ y+1.
    e = EufSolver()
    x, y = T.Var("x", INT), T.Var("y", INT)
    tx = T.Term(T.ADD, INT, (x, T.IntVal(1)))
    ty = T.Term(T.ADD, INT, (y, T.IntVal(1)))
    e.add_term(tx)
    e.add_term(ty)
    e.assert_eq(x, y, "r")
    assert e.are_equal(tx, ty)
