"""Resilient-pipeline tests: fault injection, resource guards, retry
escalation, crash-resumable journals, and the chaos acceptance gate.

The contract under test: with a deterministic seeded FaultPlan injecting
worker crashes, cache I/O errors, and forced resource-out verdicts, the
pipeline's recovery machinery (quarantine, escalation ladder, serial
fallback, journal resume) must converge to verdicts *byte-identical* to
a fault-free run — faults may cost time, never answers.
"""

import glob
import importlib
import json
import os

import pytest

from repro.api import Session
from repro.lang import *
from repro.resilience.faults import (FAULT_POINTS, FaultPlan, InjectedCrash,
                                     active, install, maybe_fault, uninstall)
from repro.resilience.journal import RunJournal
from repro.smt.solver import SmtSolver
from repro.vc.cache import ProofCache
from repro.vc.errors import FAILED, PROVED, RESOURCE_OUT
from repro.vc.scheduler import Scheduler
from repro.vc.wp import VcGen


@pytest.fixture(autouse=True)
def _hermetic_env(monkeypatch):
    """Strip ambient cache knobs (e.g. the shared $REPRO_CACHE_DIR that
    scripts/verify_tier1.sh exports): a warm proof cache would replay
    verdicts without ever reaching the solver/worker code paths the
    fault points of this suite live in.  Tests that want a cache pass
    one to Scheduler explicitly."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_DELTA", raising=False)
    # Likewise the static proving tier: it would discharge the cheap
    # fixture obligations before the solver/worker fault points fire.
    monkeypatch.setenv("REPRO_TRIAGE", "0")


def _mk_module(name="resil_demo"):
    """A module with several cheap, offloadable obligations."""
    mod = Module(name)
    a = var("a", U64)
    r = var("res", U64)
    exec_fn(mod, "bump", [("a", U64)], ret=("res", U64),
            requires=[a < lit(100)],
            ensures=[r >= a, r <= a + lit(5)],
            body=[ret(a + 1)])
    exec_fn(mod, "twice", [("a", U64)], ret=("res", U64),
            requires=[a < lit(100)],
            ensures=[r.eq(a + a)],
            body=[ret(a + a)])
    return mod


def _mk_failing_module():
    mod = Module("resil_fail")
    x = var("x", INT)
    r = var("r", INT)
    exec_fn(mod, "wrong_post", [("x", INT)], ret=("r", INT),
            ensures=[r.eq(x + 1)],
            body=[ret(x)])
    return mod


def _signature(res):
    return [(f.name, o.label, o.kind, o.status)
            for f in res.functions for o in f.obligations]


# ---------------------------------------------------------------------------
# Fault-plan grammar + determinism
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_round_trip(self):
        text = ("seed=7; pool.worker:crash@1; net.send:drop%0.25x3; "
                "solver.check:resource_out@2x2")
        plan = FaultPlan.from_string(text)
        again = FaultPlan.from_string(plan.to_string())
        assert plan.to_string() == again.to_string()
        assert [s.clause() for s in plan.specs] == \
            [s.clause() for s in again.specs]
        assert plan.seed == again.seed == 7

    def test_empty_is_none(self):
        assert FaultPlan.from_string("") is None
        assert FaultPlan.from_string("  ;  , ") is None
        assert FaultPlan.from_string("seed=3") is None

    @pytest.mark.parametrize("bad", [
        "nowhere:crash@1",              # unknown point
        "solver.check:drop@1",          # kind not supported at point
        "solver.check:crash",           # missing trigger
        "solver.check@1",               # missing kind separator
        "solver.check:crash@0",         # @count is 1-based
        "net.send:drop%1.5",            # probability out of range
    ])
    def test_bad_clauses_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_string(bad)

    def test_counted_clause_fires_once_at_nth(self):
        plan = FaultPlan.from_string("solver.check:resource_out@3")
        fired = [plan.arm("solver.check") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]
        assert plan.total_fired == 1

    def test_counted_window_xm(self):
        plan = FaultPlan.from_string("solver.check:resource_out@2x2")
        fired = [plan.arm("solver.check") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_points_count_independently(self):
        plan = FaultPlan.from_string(
            "solver.check:crash@2; cache.store:io@1")
        assert plan.arm("cache.store") is not None     # 1st store arming
        assert plan.arm("solver.check") is None        # 1st check arming
        assert plan.arm("solver.check") is not None    # 2nd check arming

    def test_probabilistic_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan.from_string(f"seed={seed}; net.send:drop%0.5")
            return [plan.arm("net.send") is not None for _ in range(64)]
        assert pattern(11) == pattern(11)
        assert pattern(11) != pattern(12)
        assert any(pattern(11)) and not all(pattern(11))

    def test_install_restore(self):
        plan = FaultPlan.from_string("cache.store:io@1")
        assert active() is None
        prev = install(plan)
        try:
            assert prev is None
            assert active() is plan
            assert maybe_fault("cache.store") is not None
        finally:
            assert install(prev) is plan
        assert active() is None
        assert maybe_fault("cache.store") is None      # no plan, no-op
        uninstall()

    def test_kind_with_x_parses(self):
        # 'exit' contains an 'x'; the xM suffix parser must not eat it.
        plan = FaultPlan.from_string("pool.worker:exit@1")
        assert plan.specs[0].kind == "exit"
        assert plan.specs[0].at == 1


# ---------------------------------------------------------------------------
# Resource guards: budgets become structured RESOURCE_OUT verdicts
# ---------------------------------------------------------------------------

class TestResourceGuards:
    def test_max_steps_yields_resource_out(self):
        sched = Scheduler(max_steps=1)
        res = VcGen(_mk_module()).verify_module(sched)
        statuses = {o.status for f in res.functions for o in f.obligations}
        assert RESOURCE_OUT in statuses
        assert not res.ok
        assert res.stats["resource_outs"] >= 1

    def test_resource_out_classified_in_taxonomy(self):
        from repro.diag.taxonomy import VerusErrorType, classify
        # The obligation kind wins when it has a specific class ...
        assert (classify("ensures", "f: ensures#0", RESOURCE_OUT)
                is VerusErrorType.POST_COND_FAIL)
        # ... ResourceOut is for obligations with no more specific one.
        assert (classify("", "", RESOURCE_OUT)
                is VerusErrorType.RESOURCE_OUT)
        # The diagnostics pass tags budget-exhausted jobs explicitly.
        sched = Scheduler(max_steps=1, diagnostics=True)
        res = VcGen(_mk_module()).verify_module(sched)
        ro = [o for f in res.functions for o in f.obligations
              if o.status == RESOURCE_OUT]
        assert ro and all(o.error_type == "ResourceOut" for o in ro)

    def test_resource_out_never_cached(self, tmp_path):
        cachedir = str(tmp_path / "pc")
        sched = Scheduler(cache=cachedir, max_steps=1)
        res = VcGen(_mk_module()).verify_module(sched)
        n_ro = sum(o.status == RESOURCE_OUT
                   for f in res.functions for o in f.obligations)
        assert n_ro >= 1
        for path in glob.glob(str(tmp_path / "pc" / "*" / "*.json")):
            assert json.load(open(path))["status"] != RESOURCE_OUT
        # A second identical run must re-solve (and re-exhaust) them.
        sched2 = Scheduler(cache=cachedir, max_steps=1)
        res2 = VcGen(_mk_module()).verify_module(sched2)
        assert res2.stats["resource_outs"] == n_ro
        assert _signature(res) == _signature(res2)

    def test_ample_budget_changes_nothing(self):
        clean = VcGen(_mk_module()).verify_module(Scheduler())
        budgeted = VcGen(_mk_module()).verify_module(
            Scheduler(max_steps=10_000_000))
        assert clean.ok and budgeted.ok
        assert _signature(clean) == _signature(budgeted)


# ---------------------------------------------------------------------------
# Injection at each fault point
# ---------------------------------------------------------------------------

class TestInjection:
    def test_solver_check_resource_out(self):
        clean = VcGen(_mk_module()).verify_module(Scheduler())
        sched = Scheduler(fault_plan="solver.check:resource_out@1")
        res = VcGen(_mk_module()).verify_module(sched)
        assert res.stats["faults_injected"] == 1
        assert res.stats["resource_outs"] == 1
        diffs = [(c, f) for c, f in zip(_signature(clean), _signature(res))
                 if c != f]
        assert len(diffs) == 1
        assert diffs[0][1][3] == RESOURCE_OUT

    def test_solver_check_crash_escapes_without_retries(self):
        # Serial runs have no worker boundary to absorb the crash: it
        # takes the whole run down, exactly like a SIGKILL (this is what
        # the journal-resume path recovers from).
        sched = Scheduler(jobs=1, fault_plan="solver.check:crash@1")
        with pytest.raises(InjectedCrash):
            VcGen(_mk_module()).verify_module(sched)
        assert active() is None        # plan uninstalled despite the crash

    def test_cache_lookup_io_quarantines(self, tmp_path):
        cachedir = str(tmp_path / "pc")
        r1 = VcGen(_mk_module()).verify_module(Scheduler(cache=cachedir))
        sched = Scheduler(cache=cachedir,
                          fault_plan="cache.lookup:io@1; cache.lookup:corrupt@2")
        r2 = VcGen(_mk_module()).verify_module(sched)
        assert r2.ok and _signature(r1) == _signature(r2)
        assert sched.cache.corrupt == 2     # both injected lookups
        assert sched.cache.stores == 2      # quarantined entries rewritten
        r3 = VcGen(_mk_module()).verify_module(Scheduler(cache=cachedir))
        assert r3.stats["cache_misses"] == 0

    def test_cache_store_io_skips_entry(self, tmp_path):
        cachedir = str(tmp_path / "pc")
        sched = Scheduler(cache=cachedir, fault_plan="cache.store:io@1")
        r1 = VcGen(_mk_module()).verify_module(sched)
        assert r1.ok
        assert sched.cache.stores == sched.cache.misses - 1
        sched2 = Scheduler(cache=cachedir)
        r2 = VcGen(_mk_module()).verify_module(sched2)
        assert r2.ok and _signature(r1) == _signature(r2)
        assert sched2.cache.misses == 1     # only the skipped entry

    def test_worker_crash_cause_recorded(self):
        clean = VcGen(_mk_module()).verify_module(Scheduler())
        sched = Scheduler(jobs=2, fault_plan="pool.worker:crash@1")
        res = VcGen(_mk_module()).verify_module(sched)
        assert res.ok and _signature(clean) == _signature(res)
        assert res.stats["pool_failures"] == 1
        causes = [o.stats.get("pool_failure")
                  for f in res.functions for o in f.obligations
                  if o.stats.get("pool_failure")]
        assert len(causes) == 1
        assert causes[0].startswith("InjectedCrash:")

    def test_net_send_drop(self):
        from repro.runtime.network import Network
        net = Network()
        a, b = net.endpoint("a"), net.endpoint("b")
        prev = install(FaultPlan.from_string("net.send:drop@2"))
        try:
            a.send("b", b"one")
            a.send("b", b"two")       # injected drop
            a.send("b", b"three")
        finally:
            install(prev)
        assert [p for _, p in iter(b.try_recv, None)] == [b"one", b"three"]
        assert net.stats["injected_drops"] == 1


# ---------------------------------------------------------------------------
# Retry escalation ladder
# ---------------------------------------------------------------------------

class TestRetryLadder:
    def test_ladder_order(self):
        assert Scheduler.LADDER == ("warm", "fresh", "split", "serial")

    def test_resource_out_recovered(self):
        clean = VcGen(_mk_module()).verify_module(Scheduler())
        sched = Scheduler(fault_plan="solver.check:resource_out@1",
                          retries=3, retry_backoff=0.001)
        res = VcGen(_mk_module()).verify_module(sched)
        assert res.ok and _signature(clean) == _signature(res)
        assert res.stats["retries"] == 1
        assert res.stats["retry_recoveries"] == 1
        trails = [o.stats.get("escalation")
                  for f in res.functions for o in f.obligations
                  if o.stats.get("escalation")]
        assert trails == [["warm"]]

    def test_worker_crash_recovered_by_ladder(self):
        clean = VcGen(_mk_module()).verify_module(Scheduler())
        sched = Scheduler(jobs=2, retries=2, retry_backoff=0.001,
                          fault_plan="pool.worker:crash@1")
        res = VcGen(_mk_module()).verify_module(sched)
        assert res.ok and _signature(clean) == _signature(res)
        assert res.stats["retry_recoveries"] == 1
        assert res.stats["pool_failures"] == 1

    def test_genuine_failure_stays_failed(self):
        sched = Scheduler(retries=1, retry_backoff=0.001)
        res = VcGen(_mk_failing_module()).verify_module(sched)
        assert not res.ok
        assert res.stats["retry_recoveries"] == 0
        assert res.stats["retries"] >= 1
        failed = [o for f in res.functions for o in f.obligations
                  if o.status == FAILED]
        assert failed and failed[0].stats.get("escalation") == ["warm"]

    def test_retries_off_by_default(self):
        assert Scheduler().retries == 0


# ---------------------------------------------------------------------------
# Run journal
# ---------------------------------------------------------------------------

class TestRunJournal:
    def test_record_and_lookup(self, tmp_path):
        path = str(tmp_path / "m.journal")
        j = RunJournal(path, module="m")
        assert j.record("ab" * 32, PROVED, {"rounds": 3}, 120, label="f: e#0")
        j.close()
        j2 = RunJournal(path, module="m")
        entry = j2.lookup("ab" * 32)
        assert entry["status"] == PROVED
        assert entry["query_bytes"] == 120
        assert j2.skips == 1

    def test_header_line(self, tmp_path):
        path = str(tmp_path / "m.journal")
        j = RunJournal(path, module="mymod")
        j.record("cd" * 32, FAILED, {}, 0, label="x")
        j.close()
        first = open(path).readline()
        header = json.loads(first)
        assert header["journal"] == "mymod"
        assert header["schema_version"] == 1

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "m.journal")
        j = RunJournal(path, module="m")
        j.record("ab" * 32, PROVED, {}, 0, label="a")
        j.record("cd" * 32, PROVED, {}, 0, label="b")
        j.close()
        with open(path, "a") as fh:
            fh.write('{"digest": "ef", "stat')    # torn mid-write
        j2 = RunJournal(path, module="m")
        assert j2.corrupt_lines == 1
        assert j2.lookup("ab" * 32) and j2.lookup("cd" * 32)
        # the journal stays appendable after a torn tail
        assert j2.record("12" * 32, PROVED, {}, 0, label="c")
        j2.close()
        assert RunJournal(path).lookup("12" * 32) is not None

    def test_resource_out_never_journaled(self, tmp_path):
        path = str(tmp_path / "m.journal")
        j = RunJournal(path, module="m")
        assert not j.record("ab" * 32, RESOURCE_OUT, {}, 0, label="x")
        assert not j.record("cd" * 32, "unknown", {}, 0, label="y")
        assert j.lookup("ab" * 32) is None
        j.close()

    def test_last_record_wins(self, tmp_path):
        path = str(tmp_path / "m.journal")
        j = RunJournal(path, module="m")
        j.record("ab" * 32, PROVED, {}, 0, label="x")
        j.record("ab" * 32, FAILED, {}, 0, label="x")
        j.close()
        assert RunJournal(path).lookup("ab" * 32)["status"] == FAILED


# ---------------------------------------------------------------------------
# Acceptance: kill mid-run, resume from the journal
# ---------------------------------------------------------------------------

def _count_solver_builds(monkeypatch):
    counts = {"n": 0}
    orig = SmtSolver.__init__

    def counting(self, *a, **k):
        counts["n"] += 1
        orig(self, *a, **k)
    monkeypatch.setattr(SmtSolver, "__init__", counting)
    return counts


class TestJournalResume:
    def test_killed_run_resumes_without_resolving(self, tmp_path,
                                                  monkeypatch):
        from repro.systems.ironkv.delegation_map import build_default_module
        jdir = str(tmp_path / "journals")

        clean = Session(jobs=1).verify_module(build_default_module())
        total = sum(len(f.obligations) for f in clean.functions)

        # "Kill" the run at the 4th solver check: the injected crash
        # escapes verify_module exactly like a SIGKILL would, leaving
        # the journal with the 3 already-discharged goals.
        chaos = Session(jobs=1, fault_plan="solver.check:crash@4",
                        journal_dir=jdir)
        with pytest.raises(RuntimeError):
            chaos.verify_module(build_default_module())
        journals = glob.glob(os.path.join(jdir, "*.journal"))
        assert len(journals) == 1
        recorded = RunJournal(journals[0])
        assert len(recorded._entries) == 3

        counts = _count_solver_builds(monkeypatch)
        resumed = Session(jobs=1).verify_module(build_default_module(),
                                                resume=jdir)
        assert resumed.ok
        assert _signature(resumed) == _signature(clean)
        assert resumed.stats["journal_skips"] == 3
        assert counts["n"] == total - 3    # only unfinished goals re-solved

        # The resumed run appended what it solved: a third pass over the
        # same journal replays everything and builds no solver at all.
        counts["n"] = 0
        replayed = Session(jobs=1).verify_module(build_default_module(),
                                                 resume=jdir)
        assert replayed.ok and _signature(replayed) == _signature(clean)
        assert replayed.stats["journal_skips"] == total
        assert counts["n"] == 0


# ---------------------------------------------------------------------------
# Acceptance: chaos runs converge to fault-free verdicts, all systems
# ---------------------------------------------------------------------------

# (name, module path, builder, min faults expected to fire).  The
# mimalloc module is all by(bit_vector) idiom proofs (one solver arming,
# no standard-path cache stores) and plog is all by(compute) — ground
# evaluation, no solver at all — so the plan legitimately fires fewer
# (or zero) times there; the byte-identical-verdicts bar still applies.
CASE_STUDIES = [
    ("ironkv", "repro.systems.ironkv.delegation_map",
     "build_default_module", 2),
    ("nr", "repro.systems.nr.model", "build_nr_core_module", 2),
    ("pagetable", "repro.systems.pagetable.view_verified",
     "build_view_module", 2),
    ("mimalloc", "repro.systems.mimalloc.verified",
     "build_bit_tricks_module", 1),
    ("plog", "repro.systems.plog.crc_verified",
     "build_crc_table_module", 0),
]

CHAOS_PLAN = "seed=5; solver.check:resource_out@2; cache.store:io@1"


class TestChaosAcceptance:
    @pytest.mark.parametrize("name,modpath,builder,min_fired", CASE_STUDIES,
                             ids=[c[0] for c in CASE_STUDIES])
    def test_chaos_verdicts_identical(self, tmp_path, name, modpath,
                                      builder, min_fired):
        build = getattr(importlib.import_module(modpath), builder)
        clean = Session(jobs=1).verify_module(build())
        chaos = Session(jobs=1, retries=3, fault_plan=CHAOS_PLAN,
                        cache_dir=str(tmp_path / "pc"))
        res = chaos.verify_module(build())
        assert res.ok == clean.ok
        assert _signature(res) == _signature(clean)
        assert res.stats["faults_injected"] >= min_fired
        if min_fired >= 2:
            # The forced resource-out was recovered by the retry ladder.
            assert res.stats["retry_recoveries"] >= 1

    def test_parallel_chaos_with_worker_crash(self, tmp_path):
        from repro.systems.ironkv.delegation_map import build_default_module
        clean = Session(jobs=1).verify_module(build_default_module())
        plan = ("seed=5; pool.worker:crash@1; cache.store:io@1; "
                "solver.check:resource_out@2")
        chaos = Session(jobs=2, retries=3, fault_plan=plan,
                        cache_dir=str(tmp_path / "pc"))
        res = chaos.verify_module(build_default_module())
        assert res.ok and _signature(res) == _signature(clean)
        assert res.stats["pool_failures"] == 1
        assert res.stats["faults_injected"] >= 3
