"""Differential soundness tests: the SMT solver vs brute-force evaluation.

Random ground formulas over small bounded-integer and boolean vocabularies
are checked both by the DPLL(T) solver and by exhaustive enumeration; the
verdicts must agree (UNKNOWN never appears on decidable ground inputs of
this size).  This is the strongest end-to-end evidence that the solver —
the largest trusted component — is sound.
"""

import itertools
import random

import pytest

from repro.smt import terms as T
from repro.smt.solver import SAT, UNSAT, SmtSolver
from repro.smt.sorts import BOOL, INT


def _random_formula(rng, int_vars, bool_vars, depth):
    if depth == 0 or rng.random() < 0.25:
        choice = rng.random()
        if choice < 0.45:
            a = _random_int_term(rng, int_vars, 1)
            b = _random_int_term(rng, int_vars, 1)
            return rng.choice([T.Lt, T.Le, T.Eq])(a, b)
        if choice < 0.7:
            return rng.choice(bool_vars)
        return T.BoolVal(rng.random() < 0.5)
    op = rng.random()
    if op < 0.3:
        return T.And(_random_formula(rng, int_vars, bool_vars, depth - 1),
                     _random_formula(rng, int_vars, bool_vars, depth - 1))
    if op < 0.6:
        return T.Or(_random_formula(rng, int_vars, bool_vars, depth - 1),
                    _random_formula(rng, int_vars, bool_vars, depth - 1))
    if op < 0.8:
        return T.Not(_random_formula(rng, int_vars, bool_vars, depth - 1))
    return T.Implies(_random_formula(rng, int_vars, bool_vars, depth - 1),
                     _random_formula(rng, int_vars, bool_vars, depth - 1))


def _random_int_term(rng, int_vars, depth):
    if depth == 0 or rng.random() < 0.5:
        if rng.random() < 0.6:
            return rng.choice(int_vars)
        return T.IntVal(rng.randint(-3, 3))
    op = rng.random()
    a = _random_int_term(rng, int_vars, depth - 1)
    b = _random_int_term(rng, int_vars, depth - 1)
    if op < 0.5:
        return T.Add(a, b)
    if op < 0.8:
        return T.Sub(a, b)
    return T.Mul(a, T.IntVal(rng.randint(-2, 2)))


def _eval(term, env):
    k = term.kind
    if k == T.INT_CONST or k == T.BOOL_CONST:
        return term.payload
    if k == T.VAR:
        return env[term.payload]
    if k == T.AND:
        return all(_eval(a, env) for a in term.args)
    if k == T.OR:
        return any(_eval(a, env) for a in term.args)
    if k == T.NOT:
        return not _eval(term.args[0], env)
    if k == T.IMPLIES:
        return (not _eval(term.args[0], env)) or _eval(term.args[1], env)
    if k == T.EQ:
        return _eval(term.args[0], env) == _eval(term.args[1], env)
    if k == T.LE:
        return _eval(term.args[0], env) <= _eval(term.args[1], env)
    if k == T.LT:
        return _eval(term.args[0], env) < _eval(term.args[1], env)
    if k == T.ADD:
        return sum(_eval(a, env) for a in term.args)
    if k == T.SUB:
        return _eval(term.args[0], env) - _eval(term.args[1], env)
    if k == T.MUL:
        return _eval(term.args[0], env) * _eval(term.args[1], env)
    if k == T.NEG:
        return -_eval(term.args[0], env)
    raise ValueError(k)


@pytest.mark.parametrize("seed", range(6))
def test_ground_differential(seed):
    rng = random.Random(seed)
    int_names = ["dx", "dy"]
    bool_names = ["dp", "dq"]
    int_vars = [T.Var(n, INT) for n in int_names]
    bool_vars = [T.Var(n, BOOL) for n in bool_names]
    domain = range(-3, 4)

    for _ in range(25):
        formula = _random_formula(rng, int_vars, bool_vars, 3)
        # Bound the integer variables so brute force is exact.
        bounded = T.And(formula,
                        *[T.And(T.Le(T.IntVal(-3), v), T.Le(v, T.IntVal(3)))
                          for v in int_vars])
        solver = SmtSolver()
        solver.add(bounded)
        verdict = solver.check()
        brute = any(
            _eval(formula, dict(zip(int_names + bool_names,
                                    list(point) + list(bools))))
            for point in itertools.product(domain, repeat=2)
            for bools in itertools.product([False, True], repeat=2))
        expected = SAT if brute else UNSAT
        assert verdict == expected, (seed, verdict, expected, repr(formula))
