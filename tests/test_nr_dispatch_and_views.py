"""Tests: NR's trait interface (incl. replicated page table), the verified
page-table view module, and the CRC-table by(compute) proof."""

import pytest

from repro.systems.nr.dispatch import (KvDispatch, PageTableDispatch,
                                       replicated)


class TestNrTraitInterface:
    def test_kv_dispatch(self):
        nr = replicated(KvDispatch, num_replicas=2, ghost=True)
        nr.write(0, ("set", "k", 5))
        assert nr.read(1, "k") == 5

    def test_replicated_page_table(self):
        """Figure 11's actual workload: NR wrapping an x86 page table."""
        nr = replicated(PageTableDispatch, num_replicas=2, ghost=True)
        nr.write(0, ("map", 0x40000000, 0x1000))
        nr.write(1, ("map", 0x40001000, 0x2000))
        # both replicas' MMUs translate both mappings
        assert nr.read(0, 0x40001000) == 0x2000
        assert nr.read(1, 0x40000000) == 0x1000
        nr.write(0, ("unmap", 0x40000000))
        assert nr.read(1, 0x40000000) is None

    def test_replicas_converge_on_page_tables(self):
        nr = replicated(PageTableDispatch, num_replicas=3, ghost=True)
        for i in range(20):
            nr.write(i % 3, ("map", 0x1000000 + i * 0x1000, 0x5000 + i))
        for r in range(3):
            nr.replicas[r].sync_up()
        for i in range(20):
            va = 0x1000000 + i * 0x1000
            expected = (0x5000 + i) & ~0xFFF
            for r in range(3):
                got = nr.replicas[r].ds.read(va)
                assert got == expected | (va & 0), (r, i, got)

    def test_dynamic_registration(self):
        # runtime-chosen replica counts (IronSync-NR fixed them statically)
        from repro.systems.nr.log import NrLog, Replica
        log = NrLog(ghost=True)
        replicas = [Replica(i, log) for i in range(2)]
        replicas.append(Replica(2, log))  # registered later, dynamically
        replicas[0].execute_write(("set", "x", 1))
        assert replicas[2].execute_read("x") == 1


class TestPageTableViewModule:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.systems.pagetable.view_verified import build_view_module
        from repro.vc.wp import VcGen
        return VcGen(build_view_module()).verify_module()

    def test_verifies(self, result):
        assert result.ok, result.report()

    def test_covers_all_contracts(self, result):
        names = {f.name for f in result.functions}
        assert names == {"pt_map_frame", "pt_unmap",
                         "pt_map_unmap_roundtrip", "pt_translation_stable"}

    def test_missing_precondition_caught(self):
        from repro.lang import (MapType, Module, U64, call_stmt, exec_fn,
                                var)
        from repro.systems.pagetable.view_verified import build_view_module
        from repro.vc.wp import VcGen
        base = build_view_module()
        VaMap = MapType(U64, U64)
        mod = Module("pt_view_bad")
        mod.import_module(base)
        view = var("view", VaMap)
        exec_fn(mod, "double_map", [("view", VaMap), ("va", U64),
                                    ("pa", U64)],
                body=[
                    # no requires: mapping an already-mapped page must fail
                    call_stmt("pt_map_frame",
                              [view, var("va", U64), var("pa", U64)],
                              binds=["m"]),
                ])
        res = VcGen(mod).verify_module()
        assert not res.ok


class TestCrcTableByCompute:
    def test_table_entries_proved_by_computation(self):
        from repro.systems.plog.crc_verified import build_crc_table_module
        from repro.vc.wp import VcGen
        mod = build_crc_table_module(entries=(0, 1, 7, 255))
        res = VcGen(mod).verify_module()
        assert res.ok, res.report()

    def test_wrong_entry_rejected(self):
        from repro.lang import (Module, assert_, call, exec_fn, lit,
                                BY_COMPUTE)
        from repro.systems.plog.crc_verified import build_crc_table_module
        from repro.vc.wp import VcGen
        base = build_crc_table_module(entries=(0,))
        mod = Module("crc_bad")
        mod.import_module(base)
        exec_fn(mod, "wrong_entry", [],
                body=[assert_(
                    call(mod, "crc_steps", lit(1), lit(8)).eq(12345),
                    by=BY_COMPUTE)])
        res = VcGen(mod).verify_module()
        assert not res.ok
