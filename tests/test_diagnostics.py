"""Tests for the diagnostics engine (repro.diag) and vc.errors.

Covers: the failure taxonomy (one deliberately broken module per
class), counterexample witnesses, assert/ensures splitting, the QI
profiler, determinism of diagnostics across serial / parallel /
cache-warm runs, deterministic failure ordering, and the result/report
plumbing in repro.vc.errors.
"""

import os

import pytest

from repro.diag import (Diagnostic, VerusErrorType, classify,
                        split_goal, top_instantiations)
from repro.diag.model import pretty_name
from repro.diag.profile import profile_table
from repro.lang import (BOOL, INT, U64, Module, VerificationFailure, and_all,
                        assert_, assign, exec_fn, forall, if_, let_,
                        lit, proof_fn, ret, spec_fn, var, while_)
from tests.helpers import diagnose, verify, verify_module
from repro.smt import terms as T
from repro.vc.ast import Span
from repro.vc.errors import (FAILED, PROVED, TIMEOUT, FunctionResult,
                             ModuleResult, Obligation)
from repro.vc.scheduler import Scheduler
from repro.vc.wp import VcGen


# ---------------------------------------------------------------------------
# Broken-module builders (one per taxonomy class)
# ---------------------------------------------------------------------------

def _broken_postcond():
    mod = Module("bad_post")
    x = var("x", U64)
    exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
            requires=[x < lit(100)],
            ensures=[var("r", U64).eq(x + lit(2))],   # off by one
            body=[ret(x + lit(1))])
    return mod


def _broken_precond():
    mod = Module("bad_pre")
    x = var("x", U64)
    exec_fn(mod, "needs_pos", [("x", U64)],
            requires=[x >= lit(1)], body=[])
    from repro.lang import call_stmt
    exec_fn(mod, "caller", [],
            body=[call_stmt("needs_pos", [lit(0)])])
    return mod


def _broken_assert_conjunctive():
    mod = Module("bad_assert")
    x = var("x", U64)
    exec_fn(mod, "check", [("x", U64)],
            requires=[x < lit(10)],
            body=[assert_(and_all(x < lit(10), x >= lit(1)))])
    return mod


def _broken_inv_front():
    mod = Module("bad_inv_front")
    i = var("i", U64)
    n = var("n", U64)
    exec_fn(mod, "loop", [("n", U64)],
            body=[let_("i", lit(0)),
                  while_(i < n, invariants=[i >= lit(1)],  # false on entry
                         body=[assign("i", i + lit(1))])])
    return mod


def _broken_inv_end():
    mod = Module("bad_inv_end")
    i = var("i", U64)
    n = var("n", U64)
    exec_fn(mod, "loop", [("n", U64)],
            requires=[n < lit(100)],
            body=[let_("i", lit(0)),
                  while_(i < n, invariants=[i <= n],
                         body=[assign("i", i + lit(2))])])  # skips past n
    return mod


def _broken_overflow():
    mod = Module("bad_overflow")
    x = var("x", U64)
    exec_fn(mod, "bump", [("x", U64)],
            body=[let_("y", x + lit(1))])   # no bound on x
    return mod


def _broken_decreases():
    mod = Module("bad_dec")
    i = var("i", U64)
    n = var("n", U64)
    exec_fn(mod, "loop", [("n", U64)],
            requires=[n < lit(100)],
            body=[let_("i", lit(0)),
                  while_(i < n, invariants=[i <= n],
                         body=[assign("i", i + lit(1))],
                         decreases=n)])   # n never decreases
    return mod


# ---------------------------------------------------------------------------
# Taxonomy
# ---------------------------------------------------------------------------

class TestTaxonomy:
    def test_classify_table(self):
        assert classify("requires") is VerusErrorType.PRE_COND_FAIL
        assert classify("ensures") is VerusErrorType.POST_COND_FAIL
        assert classify("invariant", "loop invariant #0 on entry") \
            is VerusErrorType.INV_FAIL_FRONT
        assert classify("invariant", "loop invariant #0 preserved") \
            is VerusErrorType.INV_FAIL_END
        assert classify("assert") is VerusErrorType.ASSERT_FAIL
        assert classify("overflow") is VerusErrorType.ARITH_OVERFLOW
        assert classify("bounds") is VerusErrorType.BOUNDS_FAIL
        assert classify("termination") is VerusErrorType.DECREASES_FAIL
        # The kind wins even when the solver gave up...
        assert classify("assert", status=TIMEOUT) \
            is VerusErrorType.ASSERT_FAIL
        # ...RlimitExceeded is for obligations with no better class.
        assert classify("mystery", status=TIMEOUT) \
            is VerusErrorType.RLIMIT_EXCEEDED
        assert classify("mystery") is VerusErrorType.UNKNOWN_FAIL

    @pytest.mark.parametrize("builder,expected", [
        (_broken_postcond, "PostCondFail"),
        (_broken_precond, "PreCondFail"),
        (_broken_assert_conjunctive, "SplitAssertFail"),
        (_broken_inv_front, "InvFailFront"),
        (_broken_inv_end, "InvFailEnd"),
        (_broken_overflow, "ArithmeticOverflow"),
        (_broken_decreases, "DecreasesFail"),
    ])
    def test_broken_module_classification(self, builder, expected):
        res = diagnose(builder())
        assert not res.ok
        types = [o.error_type for _, o in res.failures()]
        assert expected in types, f"{expected} not in {types}"
        for _, o in res.failures():
            assert o.diag is not None
            assert o.diag.error_type == o.error_type

    def test_diagnostic_roundtrip(self):
        d = Diagnostic("AssertFail", "f: assert", "assert", span="x.py:3",
                       witness=[{"name": "x", "value": "7", "term": "x"}],
                       conjuncts=[{"index": 0, "text": "(< x 1)",
                                   "status": FAILED}],
                       qi_profile=[{"quantifier": "q", "trigger": "t",
                                    "count": 3, "mechanism": "e-matching"}],
                       notes=["n"])
        assert Diagnostic.from_dict(d.to_dict()) == d


# ---------------------------------------------------------------------------
# Witness / splitting / profiler
# ---------------------------------------------------------------------------

class TestWitness:
    def test_postcond_witness_names_inputs(self):
        res = diagnose(_broken_postcond())
        (_, o), = res.failures()
        names = {row["name"] for row in o.diag.witness}
        assert "x" in names          # pretty name, not "inc!x"
        # The witness is a genuine counterexample: r != x + 2.
        vals = {row["name"]: int(row["value"]) for row in o.diag.witness
                if row["value"].lstrip("-").isdigit()}
        if "x" in vals and "r" in vals:
            assert vals["r"] != vals["x"] + 2

    def test_pretty_name(self):
        assert pretty_name("inc!x", "inc") == "x"
        assert pretty_name("havoc!i!3") == "i"
        assert pretty_name("plain") == "plain"
        assert pretty_name("callee!ret!7", "caller") == "callee.ret"


class TestSplitting:
    def test_split_goal_flattens(self):
        from repro.smt.sorts import INT as SINT
        x = T.Var("x", SINT)
        g = T.And(T.Le(x, T.IntVal(1)), T.Le(T.IntVal(0), x),
                  T.Lt(x, T.IntVal(5)))
        assert len(split_goal(g)) == 3

    def test_split_implies_distributes(self):
        from repro.smt.sorts import INT as SINT
        x = T.Var("x", SINT)
        g = T.Implies(T.Le(T.IntVal(0), x),
                      T.And(T.Le(x, T.IntVal(1)), T.Lt(x, T.IntVal(5))))
        parts = split_goal(g)
        assert len(parts) == 2
        assert all(p.kind == T.IMPLIES for p in parts)

    def test_split_atom_unchanged(self):
        from repro.smt.sorts import INT as SINT
        x = T.Var("x", SINT)
        g = T.Le(x, T.IntVal(1))
        assert split_goal(g) == [g]

    def test_exact_failing_conjunct_identified(self):
        res = diagnose(_broken_assert_conjunctive())
        (_, o), = res.failures()
        assert o.error_type == "SplitAssertFail"
        failing = o.diag.failing_conjuncts()
        assert len(failing) == 1
        # x < 10 holds (it's the precondition); x >= 1 is the bad one.
        assert failing[0]["index"] == 1
        statuses = [c["status"] for c in o.diag.conjuncts]
        assert statuses == [PROVED, FAILED]


class TestProfiler:
    def test_top_instantiations_ranks_and_tags(self):
        prof = {"q1": {"trigA": 5, "<mbqi>": 2}, "q2": {"trigB": 9}}
        rows = top_instantiations(prof, k=2)
        assert rows[0] == {"quantifier": "q2", "trigger": "trigB",
                           "count": 9, "mechanism": "e-matching"}
        assert rows[1]["count"] == 5
        all_rows = top_instantiations(prof, k=10)
        mechs = {(r["quantifier"], r["mechanism"]) for r in all_rows}
        assert ("q1", "mbqi") in mechs
        assert "mbqi" in profile_table(all_rows)

    def test_quantified_failure_has_profile(self):
        mod = Module("quantfail")
        s = var("s", INT)
        spec_fn(mod, "f", [("x", INT)], INT, body=var("x", INT) + lit(1))
        from repro.lang import rec_call
        proof_fn(mod, "claim", [("s", INT)],
                 requires=[forall([("k", INT)],
                                  rec_call("f", INT, var("k", INT))
                                  > var("k", INT))],
                 ensures=[rec_call("f", INT, s) > s + lit(1)],  # false
                 body=[])
        res = diagnose(mod)
        assert not res.ok
        (_, o), = res.failures()
        # The hypothesis quantifier was instantiated during the re-solve.
        assert isinstance(o.diag.qi_profile, list)
        # Module-level profile aggregated through the scheduler stats.
        assert "inst_profile" in res.stats

    def test_solver_inst_profile_counts_match(self):
        from repro.smt.solver import SmtSolver
        from repro.smt.sorts import INT as SINT
        f = T.FuncDecl("f", [SINT], SINT)
        k = T.Var("k", SINT)
        solver = SmtSolver()
        solver.add(T.ForAll((k,), T.Lt(k, f(k)), triggers=((f(k),),)))
        solver.add(T.Le(f(T.IntVal(0)), T.IntVal(0)))
        assert solver.check() == "unsat"
        total = sum(n for per in solver.stats.inst_profile.values()
                    for n in per.values())
        assert total == solver.stats.instantiations > 0


# ---------------------------------------------------------------------------
# Determinism: serial vs parallel vs cache-warm
# ---------------------------------------------------------------------------

def _diag_signature(result):
    return [(fn, o.label, o.kind, o.status, o.seq,
             str(o.span), o.error_type,
             o.diag.to_dict() if o.diag else None)
            for fn, o in result.failures()]


class TestDeterminism:
    def _mixed_module(self):
        mod = Module("mixed")
        x = var("x", U64)
        exec_fn(mod, "bad_a", [("x", U64)], ret=("r", U64),
                requires=[x < lit(50)],
                ensures=[var("r", U64) > x + lit(1)],
                body=[ret(x + lit(1))])
        exec_fn(mod, "bad_b", [("x", U64)],
                requires=[x < lit(10)],
                body=[assert_(and_all(x < lit(10), x > lit(3)))])
        exec_fn(mod, "good", [("x", U64)],
                requires=[x < lit(5)],
                body=[assert_(x < lit(6))])
        return mod

    def test_serial_vs_parallel_diagnostics_identical(self):
        serial = diagnose(self._mixed_module(), jobs=1, cache=False)
        para = diagnose(self._mixed_module(), jobs=4, cache=False)
        assert not serial.ok and not para.ok
        assert _diag_signature(serial) == _diag_signature(para)

    def test_cold_vs_warm_diagnostics_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = diagnose(self._mixed_module(), cache=cache)
        warm = diagnose(self._mixed_module(), cache=cache)
        assert warm.stats["cache_misses"] == 0
        assert _diag_signature(cold) == _diag_signature(warm)
        # Warm diagnostics came from the cache payload, not a re-solve.
        assert all(o.diag is not None for _, o in warm.failures())

    def test_prediag_cache_entries_upgraded(self, tmp_path):
        cache = str(tmp_path / "cache")
        # Cold run WITHOUT diagnostics: failures cached verdict-only.
        plain = verify_module(self._mixed_module(), cache=cache)
        assert not plain.ok
        assert all(o.diag is None for _, o in plain.failures())
        # Warm run WITH diagnostics must not serve the bare entries for
        # failures — it re-solves them and upgrades the cache.
        withd = diagnose(self._mixed_module(), cache=cache)
        assert all(o.diag is not None for _, o in withd.failures())
        assert withd.stats["cache_misses"] == len(withd.failures())
        # Third run: everything (including diagnostics) served warm.
        warm = diagnose(self._mixed_module(), cache=cache)
        assert warm.stats["cache_misses"] == 0
        assert _diag_signature(withd) == _diag_signature(warm)

    def test_failure_order_is_emission_order(self):
        mod = Module("order")
        x = var("x", U64)
        exec_fn(mod, "f", [("x", U64)],
                requires=[x < lit(10)],
                body=[assert_(x > lit(5), label="first"),
                      assert_(x > lit(6), label="second"),
                      assert_(x > lit(7), label="third")])
        for jobs in (1, 4):
            res = verify_module(mod, jobs=jobs, cache=False)
            labels = [o.label for _, o in res.failures()]
            assert labels == ["f: first", "f: second", "f: third"]
            assert [o.seq for _, o in res.failures()] \
                == sorted(o.seq for _, o in res.failures())


# ---------------------------------------------------------------------------
# vc.errors coverage
# ---------------------------------------------------------------------------

class TestErrorsModule:
    def _result(self):
        res = ModuleResult("m")
        f = FunctionResult("f")
        ok = Obligation("f: assert", "assert")
        ok.status = PROVED
        bad = Obligation("f: ensures #0", "ensures")
        bad.status = FAILED
        bad.seq = 1
        bad.span = Span("/tmp/demo.py", 42)
        f.obligations = [ok, bad]
        res.functions = [f]
        return res

    def test_first_failure_and_ok(self):
        res = self._result()
        assert not res.ok
        fn, o = res.first_failure()
        assert fn == "f" and o.label == "f: ensures #0"
        assert ModuleResult("empty").first_failure() is None
        assert ModuleResult("empty").ok

    def test_report_formatting(self):
        rep = self._result().report()
        assert "module m: FAILED" in rep
        assert "✗ f" in rep
        assert "FAILED: f: ensures #0 [PostCondFail] @ demo.py:42" in rep

    def test_report_includes_diag_sections(self):
        res = self._result()
        _, o = res.first_failure()
        o.diag = Diagnostic("PostCondFail", o.label, o.kind,
                            witness=[{"name": "x", "value": "3",
                                      "term": "x"}],
                            notes=["hello"])
        rep = res.report()
        assert "counterexample:" in rep
        assert "x = 3" in rep
        assert "note: hello" in rep
        bare = res.report(diagnostics=False)
        assert "counterexample:" not in bare

    def test_to_json_shape(self):
        res = self._result()
        j = res.to_json()
        assert j["module"] == "m" and j["ok"] is False
        assert j["failures"][0]["error_type"] == "PostCondFail"
        assert j["failures"][0]["span"] == "demo.py:42"
        obls = j["functions"][0]["obligations"]
        assert [o["status"] for o in obls] == [PROVED, FAILED]
        assert obls[0]["error_type"] is None

    def test_verification_failure_carries_result(self):
        mod = _broken_postcond()
        with pytest.raises(VerificationFailure) as exc:
            verify(mod, cache=False)
        assert exc.value.result.first_failure() is not None
        assert "FAILED" in str(exc.value)

    def test_span_roundtrip_and_str(self):
        s = Span("/a/b/file.py", 7)
        assert str(s) == "file.py:7"
        assert Span.from_dict(s.to_dict()) == s
        assert Span.from_dict(None) is None

    def test_spans_point_into_this_file(self):
        res = diagnose(_broken_assert_conjunctive())
        (_, o), = res.failures()
        assert o.span is not None
        assert str(o.span).startswith(os.path.basename(__file__))


# ---------------------------------------------------------------------------
# Scheduler integration details
# ---------------------------------------------------------------------------

class TestSchedulerIntegration:
    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIAG", "1")
        assert Scheduler(cache=False).diagnostics
        monkeypatch.setenv("REPRO_DIAG", "0")
        assert not Scheduler(cache=False).diagnostics
        monkeypatch.delenv("REPRO_DIAG")
        assert not Scheduler(cache=False).diagnostics

    def test_diagnostics_off_attaches_nothing(self):
        res = verify_module(_broken_postcond(), cache=False)
        assert all(o.diag is None for _, o in res.failures())
        # Taxonomy class still shows in the report (it's free).
        assert "[PostCondFail]" in res.report()

    def test_idiom_obligation_gets_taxonomy_only_diag(self):
        mod = Module("bvbad")
        from repro.lang import BY_BIT_VECTOR
        x = var("x", U64)
        exec_fn(mod, "f", [("x", U64)],
                body=[assert_((x & lit(1)).eq(lit(2)), by=BY_BIT_VECTOR)])
        res = diagnose(mod)
        fails = res.failures()
        assert fails
        for _, o in fails:
            assert o.diag is not None
            assert o.diag.witness == [] and o.diag.conjuncts == []
            assert any("idiom" in n for n in o.diag.notes)
