"""Tests for hash-consed terms, smart constructors, and substitution."""

import pytest
from hypothesis import given, strategies as st

from repro.smt import terms as T
from repro.smt.printer import query_size_bytes, query_to_smtlib, term_to_str
from repro.smt.sorts import BOOL, INT, bv, uninterpreted

x, y, z = (T.Var(n, INT) for n in "xyz")
I = T.IntVal


def test_hash_consing_identity():
    assert T.Add(x, y) is T.Add(x, y)
    assert T.Var("x", INT) is x
    assert T.IntVal(5) is T.IntVal(5)


def test_and_simplification():
    assert T.And() is T.TRUE
    assert T.And(T.TRUE, T.Lt(x, y)) is T.Lt(x, y)
    assert T.And(T.FALSE, T.Lt(x, y)) is T.FALSE
    # flattening and dedup
    inner = T.And(T.Lt(x, y), T.Lt(y, z))
    assert T.And(inner, T.Lt(x, y)) is inner


def test_or_simplification():
    assert T.Or() is T.FALSE
    assert T.Or(T.TRUE, T.Lt(x, y)) is T.TRUE


def test_not_involution():
    atom = T.Lt(x, y)
    assert T.Not(T.Not(atom)) is atom


def test_eq_folding():
    assert T.Eq(x, x) is T.TRUE
    assert T.Eq(I(3), I(3)) is T.TRUE
    assert T.Eq(I(3), I(4)) is T.FALSE


def test_eq_canonical_order():
    assert T.Eq(x, y) is T.Eq(y, x)


def test_arith_folding():
    assert T.Add(I(2), I(3)) is I(5)
    assert T.Add(x, I(0)) is x
    assert T.Mul(I(0), x) is I(0)
    assert T.Mul(I(1), x) is x
    assert T.Sub(x, x) is I(0)
    assert T.Neg(I(4)) is I(-4)


def test_div_mod_euclidean_folding():
    assert T.Div(I(7), I(2)).payload == 3
    assert T.Mod(I(7), I(2)).payload == 1
    assert T.Mod(I(-7), I(2)).payload == 1  # Euclidean: result in [0, |b|)
    assert T.Mod(I(7), I(-2)).payload == 1


def test_comparison_folding():
    assert T.Le(I(2), I(3)) is T.TRUE
    assert T.Lt(x, x) is T.FALSE
    assert T.Le(x, x) is T.TRUE


def test_ite_simplification():
    assert T.Ite(T.TRUE, x, y) is x
    assert T.Ite(T.FALSE, x, y) is y
    assert T.Ite(T.Lt(x, y), z, z) is z


def test_bool_ite_becomes_implications():
    cond = T.Lt(x, y)
    out = T.Ite(cond, T.Lt(y, z), T.Lt(z, y))
    assert out.kind == T.AND


def test_sort_checking():
    with pytest.raises(ValueError):
        T.Add(x, T.TRUE)
    with pytest.raises(ValueError):
        T.Eq(x, T.TRUE)
    f = T.FuncDecl("ff", [INT], INT)
    with pytest.raises(ValueError):
        f(T.TRUE)
    with pytest.raises(ValueError):
        T.App(f)


def test_bv_value_masking():
    assert T.BVVal(256, 8).payload == 0
    assert T.BVVal(-1, 8).payload == 255


def test_free_vars():
    t = T.Add(x, T.Mul(y, I(2)))
    assert t.free_vars() == frozenset({x, y})
    q = T.ForAll([x], T.Lt(x, y))
    assert q.free_vars() == frozenset({y})


def test_substitute_basic():
    t = T.Add(x, y)
    out = T.substitute(t, {x: I(3), y: I(4)})
    assert out is I(7)


def test_substitute_respects_binding():
    q = T.ForAll([x], T.Lt(x, y))
    out = T.substitute(q, {x: I(3)})
    assert out is q  # bound occurrence untouched


def test_substitute_capture_avoidance():
    # Substituting y := x into (forall x. x < y) must rename the binder.
    q = T.ForAll([x], T.Lt(x, y))
    out = T.substitute(q, {y: x})
    assert out.is_quant()
    new_binder = out.bound_vars[0]
    assert new_binder is not x
    assert out.body is T.Lt(new_binder, x)


def test_quantifier_accessors():
    q = T.ForAll([x, y], T.Lt(x, y), triggers=[[T.Add(x, y)]])
    assert q.bound_vars == (x, y)
    assert q.triggers == ((T.Add(x, y),),)
    assert q.body is T.Lt(x, y)


def test_subterm_iteration_dag_size():
    t = T.Add(T.Mul(x, y), T.Mul(x, y))
    # DAG: Add node + one shared Mul + x + y + the folded const? Add folds
    # the constant away, so: add, mul, x, y.
    assert t.size() == 4


def test_printer_roundtrip_syntax():
    t = T.ForAll([x], T.Implies(T.Le(I(0), x), T.Lt(x, T.Add(x, I(1)))))
    s = term_to_str(t)
    assert s.startswith("(forall ((x Int))")
    assert "(=>" in s


def test_query_size_counts_declarations():
    f = T.FuncDecl("qf", [INT], INT)
    q = [T.Eq(f(x), I(1))]
    script = query_to_smtlib(q)
    assert "(declare-fun qf (Int) Int)" in script
    assert "(declare-const x Int)" in script
    assert query_size_bytes(q) == len(script.encode())


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_constant_folding_matches_python(a, b):
    assert T.Add(I(a), I(b)).payload == a + b
    assert T.Sub(I(a), I(b)).payload == a - b
    assert T.Mul(I(a), I(b)).payload == a * b
    assert T.Le(I(a), I(b)) is T.BoolVal(a <= b)


@given(st.integers(-100, 100), st.integers(1, 20))
def test_euclidean_divmod_invariant(a, b):
    q = T.Div(I(a), I(b)).payload
    r = T.Mod(I(a), I(b)).payload
    assert a == b * q + r
    assert 0 <= r < b
