"""End-to-end tests of the verification pipeline (lang -> VC -> solver)."""

import pytest

from repro.lang import *
from tests.helpers import verify_module


U64_MAX = (1 << 64) - 1


class TestBasics:
    def test_max_with_spec_fn(self):
        mod = Module("t_max")
        ai, bi = var("a", INT), var("b", INT)
        spec_fn(mod, "max2", [("a", INT), ("b", INT)], INT,
                body=ite(ai >= bi, ai, bi))
        a, b = var("a", U64), var("b", U64)
        exec_fn(mod, "max_exec", [("a", U64), ("b", U64)], ret=("res", U64),
                ensures=[var("res", U64).eq(call(mod, "max2", a, b))],
                body=[if_(a >= b, [ret(a)], [ret(b)])])
        assert verify_module(mod).ok

    def test_overflow_detected(self):
        mod = Module("t_overflow")
        x = var("x", U64)
        exec_fn(mod, "incr", [("x", U64)], ret=("r", U64),
                ensures=[var("r", U64).eq(x + 1)],
                body=[ret(x + 1)])
        res = verify_module(mod)
        assert not res.ok
        assert any(o.kind == "overflow" for _, o in res.failures())

    def test_overflow_ruled_out_by_requires(self):
        mod = Module("t_overflow_ok")
        x = var("x", U64)
        exec_fn(mod, "incr", [("x", U64)], ret=("r", U64),
                requires=[x < lit(U64_MAX)],
                ensures=[var("r", U64).eq(x + 1)],
                body=[ret(x + 1)])
        assert verify_module(mod).ok

    def test_nat_subtraction_underflow(self):
        mod = Module("t_nat")
        x, y = var("x", NAT), var("y", NAT)
        exec_fn(mod, "sub", [("x", NAT), ("y", NAT)], ret=("r", NAT),
                body=[ret(x - y)])
        res = verify_module(mod)
        assert not res.ok

    def test_division_by_zero_check(self):
        mod = Module("t_div")
        x, y = var("x", U64), var("y", U64)
        exec_fn(mod, "div", [("x", U64), ("y", U64)], ret=("r", U64),
                body=[ret(x // y)])
        res = verify_module(mod)
        assert not res.ok
        mod2 = Module("t_div_ok")
        exec_fn(mod2, "div", [("x", U64), ("y", U64)], ret=("r", U64),
                requires=[y > 0],
                ensures=[var("r", U64).eq(x // y)],
                body=[ret(x // y)])
        assert verify_module(mod2).ok

    def test_false_postcondition_fails(self):
        mod = Module("t_falsepost")
        x = var("x", INT)
        exec_fn(mod, "id", [("x", INT)], ret=("r", INT),
                ensures=[var("r", INT).eq(x + 1)],
                body=[ret(x)])
        res = verify_module(mod)
        assert not res.ok
        assert res.failures()[0][1].kind == "ensures"


class TestControlFlow:
    def test_if_merging(self):
        mod = Module("t_if")
        x = var("x", INT)
        exec_fn(mod, "abs", [("x", INT)], ret=("r", INT),
                ensures=[var("r", INT) >= 0,
                         or_all(var("r", INT).eq(x),
                                var("r", INT).eq(x.neg()))],
                body=[
                    let_("r", x),
                    if_(x < 0, [assign("r", x.neg())]),
                    ret(var("r", INT)),
                ])
        assert verify_module(mod).ok

    def test_early_return_paths(self):
        mod = Module("t_early")
        x = var("x", INT)
        exec_fn(mod, "clamp", [("x", INT)], ret=("r", INT),
                ensures=[var("r", INT) >= 0, var("r", INT) <= 10],
                body=[
                    if_(x < 0, [ret(lit(0))]),
                    if_(x > 10, [ret(lit(10))]),
                    ret(x),
                ])
        assert verify_module(mod).ok

    def test_loop_with_invariant(self):
        mod = Module("t_loop")
        n, i, r = var("n", U64), var("i", U64), var("r", U64)
        exec_fn(mod, "count", [("n", U64)], ret=("res", U64),
                ensures=[var("res", U64).eq(n)],
                body=[
                    let_("i", lit(0, U64)),
                    let_("r", lit(0, U64)),
                    while_(i < n,
                           invariants=[i <= n, r.eq(i)],
                           body=[assign("i", i + 1), assign("r", r + 1)],
                           decreases=n - i),
                    ret(r),
                ])
        assert verify_module(mod).ok

    def test_loop_invariant_not_preserved(self):
        mod = Module("t_badloop")
        n, i = var("n", U64), var("i", U64)
        exec_fn(mod, "bad", [("n", U64)], ret=("res", U64),
                body=[
                    let_("i", lit(0, U64)),
                    while_(i < n,
                           invariants=[i.eq(0)],  # broken by i += 1
                           body=[assign("i", i + 1)],
                           decreases=n - i),
                    ret(i),
                ])
        res = verify_module(mod)
        assert not res.ok
        assert any("preserved" in o.label for _, o in res.failures())

    def test_loop_termination_failure(self):
        mod = Module("t_nonterm")
        n, i = var("n", U64), var("i", U64)
        exec_fn(mod, "spin", [("n", U64)], ret=("res", U64),
                body=[
                    let_("i", lit(0, U64)),
                    while_(i < n,
                           invariants=[i <= n],
                           body=[assign("i", i)],  # no progress
                           decreases=n - i),
                    ret(i),
                ])
        res = verify_module(mod)
        assert not res.ok
        assert any(o.kind == "termination" for _, o in res.failures())


class TestCalls:
    def test_call_precondition_checked(self):
        mod = Module("t_callpre")
        x = var("x", U64)
        exec_fn(mod, "needs_pos", [("x", U64)], ret=("r", U64),
                requires=[x > 0],
                ensures=[var("r", U64).eq(x - 1)],
                body=[ret(x - 1)])
        exec_fn(mod, "caller_bad", [("x", U64)], ret=("r", U64),
                body=[call_stmt("needs_pos", [x], binds=["y"]),
                      ret(var("y", U64))])
        res = verify_module(mod)
        assert not res.ok
        assert any(o.kind == "requires" for _, o in res.failures())

    def test_call_postcondition_used(self):
        mod = Module("t_callpost")
        x = var("x", U64)
        exec_fn(mod, "bump", [("x", U64)], ret=("r", U64),
                requires=[x < lit(100)],
                ensures=[var("r", U64).eq(x + 1)],
                body=[ret(x + 1)])
        exec_fn(mod, "twice", [("x", U64)], ret=("r", U64),
                requires=[x < lit(50)],
                ensures=[var("r", U64).eq(x + 2)],
                body=[
                    call_stmt("bump", [x], binds=["a"]),
                    call_stmt("bump", [var("a", U64)], binds=["b"]),
                    ret(var("b", U64)),
                ])
        assert verify_module(mod).ok

    def test_mut_param_callee_and_caller(self):
        mod = Module("t_mut")
        x = var("x", U64)
        exec_fn(mod, "zero_out", [("x", U64)], mut=["x"],
                ensures=[x.eq(0)],
                body=[assign("x", lit(0, U64))])
        exec_fn(mod, "use_it", [("y", U64)], ret=("r", U64),
                ensures=[var("r", U64).eq(0)],
                body=[
                    let_("local", var("y", U64)),
                    call_stmt("zero_out", [var("local", U64)],
                              mut_args=["local"]),
                    ret(var("local", U64)),
                ])
        assert verify_module(mod).ok

    def test_old_in_mut_ensures(self):
        mod = Module("t_old")
        x = var("x", U64)
        exec_fn(mod, "incr_mut", [("x", U64)], mut=["x"],
                requires=[x < lit(100)],
                ensures=[x.eq(old("x", U64) + 1)],
                body=[assign("x", x + 1)])
        assert verify_module(mod).ok


class TestSeqAndStruct:
    def test_pop_front_figure2(self):
        SeqI = SeqType(INT)
        mod = Module("t_pop")
        s = var("s", SeqI)
        pair = StructType("T2PopResult").declare(
            [("value", INT), ("rest", SeqI)])
        exec_fn(mod, "pop_front", [("s", SeqI)], ret=("out", pair),
                requires=[s.length() > 0],
                ensures=[
                    var("out", pair).field("value").eq(s.index(0)),
                    ext_eq(var("out", pair).field("rest"), s.skip(1)),
                ],
                body=[
                    let_("v", s.index(0)),
                    let_("rest", s.skip(1)),
                    ret(struct(pair, value=var("v", INT),
                               rest=var("rest", SeqI))),
                ])
        assert verify_module(mod).ok

    def test_index_out_of_bounds_detected(self):
        SeqI = SeqType(INT)
        mod = Module("t_oob")
        s = var("s", SeqI)
        exec_fn(mod, "first", [("s", SeqI)], ret=("r", INT),
                body=[ret(s.index(0))])  # missing len > 0
        res = verify_module(mod)
        assert not res.ok
        assert any(o.kind == "bounds" for _, o in res.failures())

    def test_quantified_loop_invariant_over_seq(self):
        SeqI = SeqType(INT)
        mod = Module("t_fill")
        a = var("a", SeqI)
        k, i, out = var("k", INT), var("i", INT), var("out", SeqI)
        exec_fn(mod, "fill_zero", [("a", SeqI)], ret=("out", SeqI),
                ensures=[
                    out.length().eq(a.length()),
                    forall([("k", INT)],
                           and_all(lit(0) <= k, k < a.length()).implies(
                               out.index(k).eq(0))),
                ],
                body=[
                    let_("i", lit(0, INT)),
                    let_("out", a),
                    while_(i < out.length(),
                           invariants=[
                               lit(0) <= i,
                               out.length().eq(a.length()),
                               i <= a.length(),
                               forall([("k", INT)],
                                      and_all(lit(0) <= k, k < i).implies(
                                          out.index(k).eq(0))),
                           ],
                           body=[
                               assign("out", out.update(i, lit(0))),
                               assign("i", i + 1),
                           ],
                           decreases=a.length() - i),
                    ret(out),
                ])
        assert verify_module(mod).ok

    def test_struct_update(self):
        Point = StructType("T2Point").declare([("x", INT), ("y", INT)])
        mod = Module("t_structup")
        p = var("p", Point)
        exec_fn(mod, "move_x", [("p", Point)], ret=("q", Point),
                ensures=[
                    var("q", Point).field("x").eq(p.field("x") + 1),
                    var("q", Point).field("y").eq(p.field("y")),
                ],
                body=[ret(struct_update(p, x=p.field("x") + 1))])
        assert verify_module(mod).ok

    def test_enum_match_reasoning(self):
        Opt = EnumType("T2Opt").declare(
            {"None_": [], "Some": [("v", INT)]})
        mod = Module("t_enum")
        o = var("o", Opt)
        exec_fn(mod, "unwrap_or_zero", [("o", Opt)], ret=("r", INT),
                ensures=[
                    o.is_variant("Some").implies(
                        var("r", INT).eq(o.get("Some", "v"))),
                    o.is_variant("None_").implies(var("r", INT).eq(0)),
                ],
                body=[
                    if_(o.is_variant("Some"),
                        [ret(o.get("Some", "v"))],
                        [ret(lit(0))]),
                ])
        assert verify_module(mod).ok

    def test_map_reasoning(self):
        MI = MapType(INT, INT)
        mod = Module("t_map")
        m = var("m", MI)
        k, v = var("k", INT), var("v", INT)
        exec_fn(mod, "put_get", [("m", MI), ("k", INT), ("v", INT)],
                ret=("r", INT),
                ensures=[var("r", INT).eq(v)],
                body=[
                    let_("m2", m.insert(k, v)),
                    ret(var("m2", MI).map_index(k)),
                ])
        assert verify_module(mod).ok

    def test_map_missing_key_detected(self):
        MI = MapType(INT, INT)
        mod = Module("t_mapmiss")
        m = var("m", MI)
        exec_fn(mod, "get", [("m", MI)], ret=("r", INT),
                body=[ret(m.map_index(lit(0)))])
        res = verify_module(mod)
        assert not res.ok


class TestByStrategies:
    def test_assert_by_bit_vector(self):
        mod = Module("t_bv")
        x = var("x", U64)
        exec_fn(mod, "mask_is_mod", [("x", U64)], ret=("r", U64),
                ensures=[var("r", U64).eq(x % 512)],
                body=[
                    assert_((x & lit(511)).eq(x % 512), by=BY_BIT_VECTOR),
                    ret(x & lit(511)),
                ])
        assert verify_module(mod).ok

    def test_assert_by_bit_vector_false(self):
        mod = Module("t_bv_bad")
        x = var("x", U64)
        exec_fn(mod, "bad", [("x", U64)],
                body=[assert_((x & lit(3)).eq(x % 8), by=BY_BIT_VECTOR)])
        res = verify_module(mod)
        assert not res.ok

    def test_assert_by_nonlinear(self):
        mod = Module("t_nl")
        q, a = var("q", U64), var("a", U64)
        # the paper's §3.3 example
        exec_fn(mod, "f", [("q", U64), ("a", U64)],
                requires=[q > 2],
                body=[assert_(
                    (q > 2).implies(
                        ((a * a + 1) * q) >= ((a * a + 1) * 2)),
                    by=BY_NONLINEAR)])
        assert verify_module(mod).ok

    def test_nonlinear_isolation(self):
        # Without forwarding the premise, the isolated query must fail,
        # even though the enclosing context knows q > 2.
        mod = Module("t_nl_iso")
        q, a = var("q", U64), var("a", U64)
        exec_fn(mod, "f", [("q", U64), ("a", U64)],
                requires=[q > 2],
                body=[assert_(
                    ((a * a + 1) * q) >= ((a * a + 1) * 2),
                    by=BY_NONLINEAR)])
        res = verify_module(mod)
        assert not res.ok

    def test_assert_by_integer_ring(self):
        mod = Module("t_ring")
        a, b, c = var("a", INT), var("b", INT), var("c", INT)
        exec_fn(mod, "subtract_mod_eq_zero",
                [("a", INT), ("b", INT), ("c", INT)],
                requires=[(a % c).eq(0), (b % c).eq(0), c > 0],
                body=[assert_(((b - a) % c).eq(0), by=BY_INTEGER_RING,
                              premises=[(a % c).eq(0), (b % c).eq(0)])])
        assert verify_module(mod).ok

    def test_assert_by_compute(self):
        mod = Module("t_compute")
        n = var("n", INT)
        spec_fn(mod, "fact", [("n", INT)], INT,
                body=ite(n <= 0, lit(1), n * rec_call("fact", INT, n - 1)))
        exec_fn(mod, "check_table", [],
                body=[assert_(call(mod, "fact", lit(6)).eq(720),
                              by=BY_COMPUTE)])
        assert verify_module(mod).ok

    def test_count_idioms(self):
        mod = Module("t_idioms")
        x = var("x", U64)
        exec_fn(mod, "f", [("x", U64)], body=[
            assert_((x & lit(1)) <= 1, by=BY_BIT_VECTOR),
            assert_((x * x) >= 0, by=BY_NONLINEAR),
        ])
        counts = count_idioms(mod)
        assert counts[BY_BIT_VECTOR] == 1
        assert counts[BY_NONLINEAR] == 1


class TestPruning:
    def _module_with_many_specs(self, n=20):
        mod = Module("t_prune")
        x = var("x", INT)
        for i in range(n):
            spec_fn(mod, f"unused_{i}", [("x", INT)], INT, body=x + i)
        spec_fn(mod, "double", [("x", INT)], INT, body=x * 2)
        exec_fn(mod, "use_double", [("x", INT)], ret=("r", INT),
                requires=[x >= 0, x < 1000],
                ensures=[var("r", INT).eq(call(mod, "double", x))],
                body=[ret(x + x)])
        return mod

    def test_pruning_shrinks_queries(self):
        mod = self._module_with_many_specs()
        pruned = verify_module(mod, VcConfig(prune_context=True))
        full = verify_module(mod, VcConfig(prune_context=False))
        assert pruned.ok and full.ok
        assert pruned.query_bytes < full.query_bytes

    def test_reachable_specs_through_calls(self):
        from repro.vc.wp import VcGen
        mod = Module("t_reach")
        x = var("x", INT)
        spec_fn(mod, "inner", [("x", INT)], INT, body=x + 1)
        spec_fn(mod, "outer", [("x", INT)], INT,
                body=call(mod, "inner", x) + 1)
        spec_fn(mod, "unrelated", [("x", INT)], INT, body=x)
        fn = exec_fn(mod, "go", [("x", INT)], ret=("r", INT),
                     requires=[x < 100],
                     ensures=[var("r", INT).eq(call(mod, "outer", x))],
                     body=[ret(x + 2)])
        gen = VcGen(mod)
        names = {f.name for f in gen.reachable_spec_fns(fn)}
        assert names == {"outer", "inner"}
