"""The profile-driven solver performance pass, differentially.

Three guarantees, each with its own section:

* **Matcher differential** — the incremental E-matcher (persistent
  apps-by-decl index + watermarks + fired-set memo + congruent-instance
  skip) must be *observationally identical* to the naive full-rescan
  matcher: same verdicts and same diagnostics on every case study, under
  every scheduler mode (serial, parallel jobs, warm contexts,
  cache-warm re-runs).

* **Index maintenance** — the EufSolver's persistent apps-by-decl index
  and the matcher watermarks must track push/pop exactly: terms
  registered inside a popped scope disappear from the index, and a
  re-match after the pop reproduces the pre-push result.

* **Pruning soundness** — per-obligation context pruning may only drop
  axioms that cannot fire; failing obligations must keep failing with
  the same taxonomy (never crash, never flip to PROVED), and obligations
  that need an axiom reachable only through another axiom's body must
  keep both.
"""

import json

from repro.api import Session, VerifyConfig
from repro.lang import (BOOL, INT, U64, Module, assert_, call, exec_fn,
                        lit, ret, spec_fn, var)
from repro.millibench.lists import (build_doubly_linked_module,
                                    build_singly_linked_module)
from repro.smt import terms as T
from repro.smt.euf import EufSolver
from repro.smt.quant import EMatcher
from repro.smt.solver import SolverConfig
from repro.systems.ironkv.delegation_map import build_default_module
from repro.systems.ironkv.marshal_verified import build_u64_roundtrip_module
from repro.systems.mimalloc.verified import build_bit_tricks_module
from repro.vc.errors import PROVED
from repro.vc.prune import axiom_decl, bytes_saved, prune_axioms
from repro.vc.wp import VcConfig

CASE_STUDIES = [
    ("fig7a_single", build_singly_linked_module),
    ("fig7a_double", build_doubly_linked_module),
    ("fig10_delegation_map", build_default_module),
    ("fig10_marshal", build_u64_roundtrip_module),
    ("fig13_bit_tricks", build_bit_tricks_module),
]


def _naive_vc_config():
    return VcConfig(solver_config=SolverConfig(incremental_ematch=False))


def _signature(result):
    """Verdict + diagnostics signature, stripped of timing and effort."""
    payload = json.loads(json.dumps(result.to_json()))
    payload["seconds"] = 0
    payload.pop("stats", None)
    payload.pop("inst_profile", None)
    for f in payload["functions"]:
        f["seconds"] = 0
        for o in f["obligations"]:
            o["seconds"] = 0
    for o in payload.get("failures", []):
        o["seconds"] = 0
    return payload


class TestMatcherDifferential:
    """Incremental matcher == naive matcher, everywhere it runs."""

    def _reference(self, builder):
        return _signature(Session(VerifyConfig(diagnostics=True))
                          .verify_module(builder(), _naive_vc_config()))

    def test_serial_warm_jobs_cache_match_naive(self, tmp_path):
        for label, builder in CASE_STUDIES:
            ref = self._reference(builder)
            modes = {
                "serial": VerifyConfig(diagnostics=True),
                "warm": VerifyConfig(diagnostics=True, incremental=True),
                "jobs": VerifyConfig(diagnostics=True, jobs=2),
            }
            for mode, cfg in modes.items():
                got = _signature(Session(cfg).verify_module(builder()))
                assert got == ref, (label, mode)
            cache = str(tmp_path / f"cache_{label}")
            cold = _signature(
                Session(VerifyConfig(diagnostics=True, cache_dir=cache))
                .verify_module(builder()))
            cachewarm = _signature(
                Session(VerifyConfig(diagnostics=True, cache_dir=cache))
                .verify_module(builder()))
            assert cold == ref, (label, "cache-cold")
            assert cachewarm == ref, (label, "cache-warm")


class TestIndexMaintenance:
    """Apps-by-decl index and watermarks across push/pop."""

    def _setup(self):
        euf = EufSolver()
        f = T.FuncDecl("f", [T.INT], T.INT)
        a, b = T.Var("a", T.INT), T.Var("b", T.INT)
        for t in (T.App(f, a), T.App(f, b)):
            euf.add_term(t)
        return euf, f, a, b

    def test_pop_removes_scoped_apps(self):
        euf, f, a, b = self._setup()
        assert len(euf.apps_of(f)) == 2
        euf.push()
        c = T.Var("c", T.INT)
        euf.add_term(T.App(f, c))
        assert len(euf.apps_of(f)) == 3
        euf.pop()
        assert len(euf.apps_of(f)) == 2
        # The index must hold exactly the surviving applications.
        assert set(euf.apps_of(f)) == {T.App(f, a), T.App(f, b)}

    def test_rematch_after_pop_reproduces_prepush(self):
        euf, f, a, b = self._setup()
        x = T.Var("x", T.INT)
        pattern = T.App(f, x)
        matcher = EMatcher(euf, incremental=True)
        before = matcher.match_group([pattern], (x,), state_key="q")
        assert {s[x] for s in before} == {a, b}
        euf.push()
        c = T.Var("c", T.INT)
        euf.add_term(T.App(f, c))
        delta = matcher.match_group([pattern], (x,), state_key="q")
        assert {s[x] for s in delta} == {c}
        euf.pop()
        # A fresh matcher (what each solver round builds) sees exactly
        # the pre-push candidate set again.
        after = EMatcher(euf, incremental=True).match_group(
            [pattern], (x,), state_key="q")
        assert {s[x] for s in after} == {a, b}

    def test_watermark_skips_unchanged_group(self):
        euf, f, a, b = self._setup()
        x = T.Var("x", T.INT)
        pattern = T.App(f, x)
        matcher = EMatcher(euf, incremental=True)
        matcher.match_group([pattern], (x,), state_key="q")
        assert matcher.rescans_avoided == 0
        assert matcher.match_group([pattern], (x,), state_key="q") == []
        assert matcher.rescans_avoided == 1
        # A different consumer of the same group gets the full result.
        full = matcher.match_group([pattern], (x,), state_key="q2")
        assert {s[x] for s in full} == {a, b}


def _mk_axiom(decl, body_decl=None):
    """forall x :pattern (decl x). decl(x) == (body_decl(x) | x)."""
    x = T.Var(f"x_{decl.name}", T.INT)
    app = T.App(decl, x)
    rhs = T.App(body_decl, x) if body_decl is not None else x
    return T.ForAll([x], T.Eq(app, rhs), triggers=[[app]])


class TestPruning:
    def test_transitive_reachability_keeps_chain(self):
        fd = T.FuncDecl("pf", [T.INT], T.INT)
        gd = T.FuncDecl("pg", [T.INT], T.INT)
        hd = T.FuncDecl("ph", [T.INT], T.INT)
        ax_f = _mk_axiom(fd, gd)     # pf's body mentions pg
        ax_g = _mk_axiom(gd)
        ax_h = _mk_axiom(hd)         # unreachable from the goal
        a = T.Var("a", T.INT)
        goal = T.Ge(T.App(fd, a), T.IntVal(0))
        kept, dropped = prune_axioms([ax_f, ax_g, ax_h], goal, [])
        assert kept == [ax_f, ax_g]
        assert dropped == [ax_h]
        assert bytes_saved(dropped) > 0

    def test_assumptions_seed_reachability(self):
        fd = T.FuncDecl("paf", [T.INT], T.INT)
        ax = _mk_axiom(fd)
        a = T.Var("a", T.INT)
        kept, dropped = prune_axioms(
            [ax], T.Ge(a, T.IntVal(0)), [T.Ge(T.App(fd, a), T.IntVal(1))])
        assert kept == [ax] and dropped == []

    def test_multi_trigger_axioms_never_pruned(self):
        fd = T.FuncDecl("pmf", [T.INT], T.INT)
        gd = T.FuncDecl("pmg", [T.INT], T.INT)
        x = T.Var("x", T.INT)
        two_groups = T.ForAll([x], T.Eq(T.App(fd, x), T.App(gd, x)),
                              triggers=[[T.App(fd, x)], [T.App(gd, x)]])
        assert axiom_decl(two_groups) is None
        a = T.Var("a", T.INT)
        kept, dropped = prune_axioms([two_groups],
                                     T.Ge(a, T.IntVal(0)), [])
        assert kept == [two_groups] and dropped == []

    def _failing_module(self):
        """An assert that needs a spec-function fact it doesn't have."""
        mod = Module("prune_fail")
        x = var("x", U64)
        spec_fn(mod, "big", [("x", INT)], BOOL,
                body=var("x", INT) >= lit(100))
        exec_fn(mod, "bad", [("x", U64)],
                requires=[call(mod, "big", x)],
                body=[assert_(x >= lit(200))])
        return mod

    def test_failure_taxonomy_survives_pruning(self):
        """A genuinely failing goal still fails with assert taxonomy —
        pruning must not crash the discharge or distort the diagnosis."""
        pruned = Session(VerifyConfig(diagnostics=True)).verify_module(
            self._failing_module())
        unpruned = Session(VerifyConfig(diagnostics=True)).verify_module(
            self._failing_module(), VcConfig(prune_context=False))
        assert not pruned.ok and not unpruned.ok
        sigs = [[(fn, o.label, o.status, o.error_type)
                 for fn, o in r.failures()] for r in (pruned, unpruned)]
        assert sigs[0] == sigs[1]
        assert sigs[0], "expected at least one failing obligation"
        for _, ob in pruned.failures():
            assert ob.diag is not None and ob.diag.error_type

    def test_needed_axiom_is_kept(self):
        """A proof that hinges on a spec-function definition must still
        go through with pruning on (the axiom is reachable and kept)."""
        mod = Module("prune_need")
        x = var("x", U64)
        spec_fn(mod, "lo", [("x", INT)], BOOL,
                body=var("x", INT) >= lit(10))
        exec_fn(mod, "ok", [("x", U64)],
                requires=[call(mod, "lo", x)],
                body=[assert_(x >= lit(10))])
        result = Session(VerifyConfig()).verify_module(mod)
        assert result.ok
        for fn in result.functions:
            for ob in fn.obligations:
                assert ob.status == PROVED

    def test_pruning_counters_surface(self):
        """Dropped axioms show up in the merged module stats.

        Triage off: pruning happens at encoding time, which statically
        discharged obligations never reach."""
        result = Session(VerifyConfig(triage="off")).verify_module(
            build_u64_roundtrip_module())
        assert result.ok
        assert result.stats.get("pruned_axioms", 0) > 0
        assert result.stats.get("query_bytes_saved", 0) > 0
