"""Integration tests for the DPLL(T) core (EUF + LIA + quantifiers)."""

import pytest

from repro.smt import terms as T
from repro.smt.solver import (SAT, UNKNOWN, UNSAT, SmtSolver, SolverConfig)
from repro.smt.sorts import BOOL, INT, uninterpreted

S = uninterpreted("S")
x, y, z = (T.Var(n, INT) for n in "xyz")
a, b, c = (T.Var(n, S) for n in "abc")
f = T.FuncDecl("f", [S], S)
g = T.FuncDecl("g", [INT], INT)
p = T.FuncDecl("p", [S, S], BOOL)
I = T.IntVal


def check(*assertions, **kw):
    solver = SmtSolver(SolverConfig(**kw)) if kw else SmtSolver()
    for assertion in assertions:
        solver.add(assertion)
    return solver.check()


class TestGroundArithmetic:
    def test_lt_cycle_unsat(self):
        assert check(T.Lt(x, y), T.Lt(y, z), T.Lt(z, x)) == UNSAT

    def test_lt_chain_sat(self):
        assert check(T.Lt(x, y), T.Lt(y, z)) == SAT

    def test_parity_unsat(self):
        assert check(T.Eq(T.Add(x, y), I(10)),
                     T.Eq(T.Sub(x, y), I(3))) == UNSAT

    def test_parity_sat(self):
        assert check(T.Eq(T.Add(x, y), I(10)),
                     T.Eq(T.Sub(x, y), I(4))) == SAT

    def test_model_values(self):
        s = SmtSolver()
        s.add(T.Eq(T.Add(x, y), I(10)))
        s.add(T.Eq(T.Sub(x, y), I(4)))
        assert s.check() == SAT
        assert s.model_int(x) == 7
        assert s.model_int(y) == 3

    def test_boolean_structure(self):
        assert check(T.Or(T.Lt(x, I(0)), T.Gt(x, I(10))),
                     T.Ge(x, I(0)), T.Le(x, I(10))) == UNSAT

    def test_ite_lifting(self):
        t = T.Ite(T.Lt(x, I(0)), T.Neg(x), x)
        assert check(T.Lt(t, I(0))) == UNSAT  # |x| >= 0

    def test_iff(self):
        atom1 = T.Lt(x, y)
        atom2 = T.Lt(y, x)
        assert check(T.Eq(atom1, atom2), atom1) == UNSAT


class TestDivMod:
    def test_div_mod_relation(self):
        assert check(T.Ne(T.Add(T.Mul(T.Div(x, I(4)), I(4)),
                                T.Mod(x, I(4))), x)) == UNSAT

    def test_mod_range(self):
        assert check(T.Ge(T.Mod(x, I(4)), I(4))) == UNSAT
        assert check(T.Lt(T.Mod(x, I(4)), I(0))) == UNSAT

    def test_mod_concrete(self):
        assert check(T.Ne(T.Mod(I(10), I(4)), I(2))) == UNSAT

    def test_variable_divisor_guarded(self):
        assert check(T.Ge(y, I(1)), T.Ge(T.Mod(x, y), y)) == UNSAT


class TestEuf:
    def test_congruence(self):
        assert check(T.Eq(a, b), T.Ne(f(a), f(b))) == UNSAT

    def test_no_congruence_needed(self):
        assert check(T.Ne(f(a), f(b))) == SAT

    def test_euf_lia_combination(self):
        assert check(T.Le(x, y), T.Le(y, x), T.Ne(g(x), g(y))) == UNSAT

    def test_interface_equality_propagation(self):
        assert check(T.Eq(x, T.Add(z, I(1))), T.Eq(y, T.Add(z, I(1))),
                     T.Ne(g(x), g(y))) == UNSAT

    def test_boolean_function_congruence(self):
        q = T.FuncDecl("q", [S], BOOL)
        assert check(T.Eq(a, b), q(a), T.Not(q(b))) == UNSAT


class TestQuantifiers:
    def test_ematch_simple(self):
        qx = T.Var("qx", INT)
        ax = T.ForAll([qx], T.Gt(g(qx), qx))
        assert check(ax, T.Le(g(I(5)), I(5))) == UNSAT

    def test_ematch_nested_apps(self):
        qa = T.Var("qa", S)
        ax = T.ForAll([qa], T.Eq(f(f(qa)), qa))
        assert check(ax, T.Ne(f(f(f(c))), f(c))) == UNSAT

    def test_multivar_with_arith_guard(self):
        h = T.FuncDecl("h", [INT], INT)
        qi, qj = T.Var("qi", INT), T.Var("qj", INT)
        mono = T.ForAll([qi, qj],
                        T.Implies(T.Lt(qi, qj), T.Le(h(qi), h(qj))))
        assert check(mono, T.Gt(h(I(3)), h(I(7)))) == UNSAT

    def test_skolemization(self):
        qx = T.Var("qx", INT)
        ex = T.Exists([qx], T.Eq(g(qx), I(0)))
        alln = T.ForAll([qx], T.Ne(g(qx), I(0)))
        assert check(ex, alln) == UNSAT

    def test_unresolved_quantifier_is_unknown_or_sat(self):
        qx = T.Var("qx", INT)
        ax = T.ForAll([qx], T.Gt(g(qx), qx))
        assert check(ax, T.Ge(g(I(5)), I(0))) in (SAT, UNKNOWN)

    def test_explicit_triggers_respected(self):
        qx = T.Var("qx", INT)
        ax = T.ForAll([qx], T.Gt(g(qx), qx), triggers=[[g(qx)]])
        assert check(ax, T.Le(g(I(5)), I(5))) == UNSAT

    def test_instantiation_counter(self):
        s = SmtSolver()
        qx = T.Var("qx", INT)
        s.add(T.ForAll([qx], T.Gt(g(qx), qx)))
        s.add(T.Le(g(I(5)), I(5)))
        assert s.check() == UNSAT
        assert s.stats.instantiations >= 1


class TestMbqi:
    def test_epr_symmetry_unsat(self):
        u, v = T.Var("u", S), T.Var("v", S)
        sym = T.ForAll([u, v], T.Implies(p(u, v), p(v, u)))
        assert check(sym, p(a, b), T.Not(p(b, a))) == UNSAT

    def test_epr_sat_with_complete_instantiation(self):
        u, v = T.Var("u", S), T.Var("v", S)
        sym = T.ForAll([u, v], T.Implies(p(u, v), p(v, u)))
        assert check(sym, p(a, b), mbqi=True) == SAT

    def test_epr_transitivity_unsat(self):
        u, v, w = T.Var("u", S), T.Var("v", S), T.Var("w", S)
        trans = T.ForAll([u, v, w], T.Implies(T.And(p(u, v), p(v, w)),
                                              p(u, w)))
        assert check(trans, p(a, b), p(b, c), T.Not(p(a, c)),
                     mbqi=True) == UNSAT

    def test_epr_no_ground_terms_gets_witness(self):
        u = T.Var("u", S)
        q = T.FuncDecl("q1", [S], BOOL)
        both = T.And(T.ForAll([u], q(u)),
                     T.ForAll([u], T.Not(q(u))))
        assert check(both, mbqi=True) == UNSAT


class TestStats:
    def test_query_bytes_accumulate(self):
        s = SmtSolver()
        s.add(T.Lt(x, y))
        before = s.stats.query_bytes
        s.add(T.Lt(y, z))
        assert s.stats.query_bytes > before

    def test_solve_time_recorded(self):
        s = SmtSolver()
        s.add(T.Lt(x, y))
        s.check()
        assert s.stats.solve_seconds > 0


class TestItecacheLifetime:
    """Regression: the ITE-lift cache must not leak across `add` batches.

    `_preprocess` clears `_ite_cache`, so a reused solver re-lifts the
    same ITE term with a fresh variable (and fresh defining clauses) in
    each assertion batch instead of resurrecting a stale rewrite.
    """

    def test_cache_cleared_between_adds(self):
        s = SmtSolver()
        ite = T.Ite(T.Lt(x, y), I(1), I(2))
        s.add(T.Eq(z, ite))
        first = s._ite_cache.get(ite)
        assert first is not None
        s.add(T.Eq(z, ite))
        second = s._ite_cache.get(ite)
        assert second is not None and second is not first

    def test_relift_keeps_semantics(self):
        # Both batches lift the same ITE independently; the defining
        # clauses must still force them equal under the same condition.
        s = SmtSolver()
        ite = T.Ite(T.Lt(x, I(0)), I(1), I(2))
        s.add(T.Eq(y, ite))
        s.add(T.Eq(z, ite))
        s.add(T.Ne(y, z))
        assert s.check() == UNSAT

    def test_relift_sat_side(self):
        s = SmtSolver()
        ite = T.Ite(T.Lt(x, I(0)), I(1), I(2))
        s.add(T.Eq(y, ite))
        s.add(T.Eq(z, ite))
        assert s.check() == SAT
