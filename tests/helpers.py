"""Session-API wrappers shared by tests that predate ``repro.api``.

The historical ``repro.lang.verify`` / ``verify_module`` / ``diagnose``
shims are gone; these helpers keep the old call shapes the test corpus
was written against (``cache=`` as a directory path, a live
``ProofCache``, or ``False``; ``jobs=``; ``diagnostics=``) while
routing everything through the one supported front door,
:class:`repro.api.Session`.
"""

import dataclasses

from repro.api import Session, VerifyConfig


def make_session(jobs=None, cache=None, diagnostics=None):
    """A Session from the historical kwarg shapes.

    ``cache`` conflates three shapes the Session API splits apart: a
    directory path becomes ``cache_dir`` config, a live ProofCache is
    injected directly, and ``False`` disables caching even when
    ``$REPRO_CACHE_DIR`` is set.
    """
    cfg = VerifyConfig.from_env(jobs=jobs, diagnostics=diagnostics)
    cache_obj = None
    if cache is False:
        cfg = dataclasses.replace(cfg, cache_dir=None)
    elif isinstance(cache, str):
        cfg = dataclasses.replace(cfg, cache_dir=cache)
    elif cache is not None:
        cache_obj = cache
    return Session(cfg, cache=cache_obj)


def verify_module(mod, config=None, jobs=None, cache=None,
                  diagnostics=None):
    """Detailed ModuleResult via a throwaway Session."""
    return make_session(jobs, cache, diagnostics).verify_module(mod, config)


def verify(mod, config=None, jobs=None, cache=None, diagnostics=None):
    """Raise VerificationFailure on failure via a throwaway Session."""
    return make_session(jobs, cache, diagnostics).verify(mod, config)


def diagnose(mod, config=None, jobs=None, cache=None):
    """Verify with diagnostics forced on via a throwaway Session."""
    return make_session(jobs, cache, True).diagnose(mod, config)
