"""Automation profiles: registry detents, the profile-first config API,
portfolio racing (with its determinism contract), the learning
auto-tuner, and the daemon's ``profiles`` verb.

The empirical backbone is the profile-gap corpus in
:mod:`repro.profiles.corpus`: ``mbqi_gap`` is provable only under MBQI
(the ``epr`` profile), ``universe_gap`` only under E-matching (every
non-``epr`` profile), so ``stubborn_pair`` — which contains both — is
beyond every *fixed* profile and needs the portfolio race.
"""

import dataclasses
import json

import pytest

from repro.api import PORTFOLIO_ENV, PROFILE_ENV, Session, VerifyConfig
from repro.profiles import (
    PROFILES,
    RACE_ORDER,
    AutomationProfile,
    ProfileTuner,
    UnknownProfileError,
    escalate_config,
    get_profile,
    portfolio_candidates,
    profile_names,
    tuner_fingerprint,
)
from repro.profiles.corpus import (
    CORPUS_BUILDERS,
    build_mbqi_gap_module,
    build_stubborn_pair_module,
    build_universe_gap_module,
)
from repro.smt.fingerprint import solver_config_key
from repro.smt.solver import SolverConfig, solver_constructions
from tests.test_incremental import _normalize


def _strip_race_fields(payload: dict) -> dict:
    """Normalize minus the additive per-obligation race metadata.

    A tuner-warm run *replays* a race instead of re-running it, so its
    ``portfolio`` field is ``None`` by design — and it never re-pays the
    losing attempts' query bytes, so module-level ``query_bytes`` is an
    effort counter here, not a verdict field.  Everything else must
    still match byte-for-byte.
    """
    payload = _normalize(payload)
    payload.pop("query_bytes", None)
    for f in payload["functions"]:
        for o in f["obligations"]:
            o.pop("profile", None)
            o.pop("portfolio", None)
    return payload


def _raced_obligations(result) -> list:
    return [o for fn in result.functions for o in fn.obligations
            if o.stats.get("portfolio")]


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_shipped_names_and_race_order(self):
        assert list(profile_names()) == ["default", "frugal", "aggressive",
                                         "nonlinear", "bitvector", "epr"]
        assert set(RACE_ORDER) == set(profile_names())
        assert RACE_ORDER[0] == "aggressive"

    def test_default_profile_is_identity(self):
        """The default profile must not perturb solver configs — its
        obligation digests stay byte-identical to a profile-free build."""
        base = SolverConfig()
        assert get_profile("default").apply_solver(base) is base

    def test_profiles_change_cache_key(self):
        base = SolverConfig()
        keys = {name: solver_config_key(get_profile(name).apply_solver(base))
                for name in profile_names()}
        assert keys["default"] == solver_config_key(base)
        # Every non-default profile keys differently from default and
        # from each other: per-profile cache entries never collide.
        assert len(set(map(str, keys.values()))) == len(keys)

    def test_get_profile_passthrough_and_unknown(self):
        aggressive = PROFILES["aggressive"]
        assert get_profile(aggressive) is aggressive
        with pytest.raises(UnknownProfileError) as exc:
            get_profile("warpspeed")
        assert exc.value.name == "warpspeed"
        assert "available" in str(exc.value)

    def test_portfolio_candidates_skip_primary(self):
        assert portfolio_candidates("default", 2) == ("aggressive", "epr")
        assert portfolio_candidates("aggressive", 2) == ("epr", "nonlinear")
        assert portfolio_candidates("default", 0) == ()
        assert len(portfolio_candidates("default", 99)) == len(RACE_ORDER) - 1

    def test_escalate_config_doubles_budgets(self):
        base = SolverConfig(max_steps=1000)
        esc = escalate_config(base)
        assert (esc.max_rounds, esc.max_instantiations) == \
            (2 * base.max_rounds, 2 * base.max_instantiations)
        assert esc.sat_conflict_budget == 2 * base.sat_conflict_budget
        assert esc.max_steps == 4000
        assert escalate_config(SolverConfig()).max_steps is None

    def test_custom_profile_validation(self):
        with pytest.raises(ValueError):
            AutomationProfile(name="bad", doc="", split_strategy="banana")

    def test_describe_is_json_safe(self):
        for name in profile_names():
            json.dumps(get_profile(name).describe())


# ---------------------------------------------------------------------------
# Profile-first config API


class TestConfigApi:
    def test_from_env_profile_and_portfolio(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "epr")
        monkeypatch.setenv(PORTFOLIO_ENV, "2")
        cfg = VerifyConfig.from_env()
        assert cfg.profile == "epr" and cfg.portfolio == 2

    @pytest.mark.parametrize("raw,expect", [
        (None, 0), ("", 0), ("0", 0), ("no", 0),
        ("2", 2), ("yes", 3), ("true", 3),
    ])
    def test_portfolio_env_parse(self, monkeypatch, raw, expect):
        monkeypatch.delenv(PORTFOLIO_ENV, raising=False)
        if raw is not None:
            monkeypatch.setenv(PORTFOLIO_ENV, raw)
        assert VerifyConfig.from_env().portfolio == expect

    def test_knobs_default_from_profile(self):
        cfg = VerifyConfig()
        assert cfg.incremental is None and cfg.retries is None
        assert (cfg.effective_incremental, cfg.effective_retries) == (False, 0)
        aggr = VerifyConfig(profile="aggressive")
        assert (aggr.effective_incremental, aggr.effective_retries) == (True, 1)
        assert VerifyConfig(profile="frugal").effective_max_steps == 200000

    def test_explicit_override_beats_profile(self):
        cfg = VerifyConfig(profile="aggressive", incremental=False,
                           retries=0, max_steps=123)
        assert cfg.effective_incremental is False
        assert cfg.effective_retries == 0
        assert cfg.effective_max_steps == 123

    def test_unknown_profile_rejected_at_session_open(self):
        with pytest.raises(UnknownProfileError):
            Session(VerifyConfig(profile="warpspeed"))


# ---------------------------------------------------------------------------
# Corpus gaps + portfolio acceptance


class TestProfileGaps:
    def test_corpus_registry(self):
        assert set(CORPUS_BUILDERS) == {"mbqi_gap", "universe_gap",
                                        "stubborn_pair"}

    def test_mbqi_gap_needs_epr(self):
        assert Session(VerifyConfig(profile="epr")).verify_module(
            build_mbqi_gap_module()).ok
        assert not Session(VerifyConfig()).verify_module(
            build_mbqi_gap_module()).ok

    def test_universe_gap_needs_ematching(self):
        assert Session(VerifyConfig()).verify_module(
            build_universe_gap_module()).ok
        assert not Session(VerifyConfig(profile="epr")).verify_module(
            build_universe_gap_module()).ok

    def test_portfolio_beats_every_fixed_profile(self):
        """The headline acceptance: a module no single profile can
        verify goes through once racing is on."""
        for name in profile_names():
            result = Session(VerifyConfig(profile=name)).verify_module(
                build_stubborn_pair_module())
            assert not result.ok, f"profile {name} unexpectedly verified"
        raced = Session(VerifyConfig(portfolio=2)).verify_module(
            build_stubborn_pair_module())
        assert raced.ok
        assert raced.stats.get("portfolio_races", 0) >= 1
        assert raced.stats.get("portfolio_wins", 0) >= 1


# ---------------------------------------------------------------------------
# Determinism


class TestPortfolioDeterminism:
    def test_race_results_identical_across_modes(self):
        """serial / jobs=2 / incremental must adopt the same winner and
        produce byte-identical reports (timing aside)."""
        arms = {
            "serial": VerifyConfig(portfolio=2),
            "jobs2": VerifyConfig(portfolio=2, jobs=2),
            "warm": VerifyConfig(portfolio=2, incremental=True),
        }
        reports = {}
        for label, cfg in arms.items():
            result = Session(cfg).verify_module(build_stubborn_pair_module())
            assert result.ok, label
            raced = _raced_obligations(result)
            assert raced, label
            for ob in raced:
                assert ob.stats["portfolio"]["winner"] == "epr"
                assert ob.stats["profile"] == "epr"
            reports[label] = _normalize(result.to_json())
        assert reports["serial"] == reports["jobs2"] == reports["warm"]

    def test_cache_warm_replays_race(self, tmp_path):
        cfg = VerifyConfig(portfolio=2, cache_dir=str(tmp_path / "cache"))
        cold = Session(cfg).verify_module(build_stubborn_pair_module())
        assert cold.ok and cold.stats.get("portfolio_races", 0) >= 1

        before = solver_constructions()
        warm = Session(cfg).verify_module(build_stubborn_pair_module())
        assert warm.ok
        assert solver_constructions() == before, \
            "tuner-warm replay must build zero solvers"
        assert warm.stats.get("portfolio_races", 0) == 0
        assert warm.stats.get("tuner_hits", 0) >= 1
        # The replayed verdict still carries the winning profile; only
        # the race record itself is absent (nothing was re-raced).
        raced_cold = _raced_obligations(cold)
        assert raced_cold
        warm_obs = {o.label: o for fn in warm.functions
                    for o in fn.obligations}
        for ob in raced_cold:
            assert warm_obs[ob.label].stats.get("profile") == \
                ob.stats["portfolio"]["winner"]
        assert _strip_race_fields(cold.to_json()) == \
            _strip_race_fields(warm.to_json())

    def test_case_studies_unaffected_by_portfolio(self, tmp_path):
        """Modules with no stubborn obligations never fan out: the
        portfolio flag cannot change their verdicts or their bytes,
        serial vs jobs=2 vs cache-warm."""
        import importlib
        for dotted in [
            "repro.systems.ironkv.delegation_map:build_default_module",
            "repro.systems.nr.model:build_nr_core_module",
            "repro.systems.pagetable.view_verified:build_view_module",
            "repro.systems.mimalloc.verified:build_bit_tricks_module",
            "repro.systems.plog.crc_verified:build_crc_table_module",
        ]:
            mod_path, _, attr = dotted.partition(":")
            build = getattr(importlib.import_module(mod_path), attr)
            cache = str(tmp_path / attr)
            plain = Session(VerifyConfig()).verify_module(build())
            serial = Session(VerifyConfig(portfolio=2,
                                          cache_dir=cache)).verify_module(
                build())
            jobs2 = Session(VerifyConfig(portfolio=2,
                                         jobs=2)).verify_module(build())
            rewarm = Session(VerifyConfig(portfolio=2,
                                          cache_dir=cache)).verify_module(
                build())
            assert plain.ok and serial.ok and jobs2.ok and rewarm.ok
            assert serial.stats.get("portfolio_races", 0) == 0
            expected = _normalize(plain.to_json())
            assert _normalize(serial.to_json()) == expected
            assert _normalize(jobs2.to_json()) == expected
            assert _strip_race_fields(rewarm.to_json()) == \
                _strip_race_fields(expected)


# ---------------------------------------------------------------------------
# Tuner


class TestTuner:
    def test_record_lookup_roundtrip(self, tmp_path):
        tuner = ProfileTuner(str(tmp_path))
        fp = "a" * 40
        assert tuner.lookup(fp) is None
        tuner.record_win(fp, "epr", status="proved")
        assert tuner.lookup(fp) == "epr"
        tuner.record_win(fp, "epr", status="proved")
        stats = tuner.stats()
        assert stats["records"] == 2 and stats["entries"] == 1
        assert stats["wins_by_profile"] == {"epr": 2}

    def test_malformed_and_unknown_entries_evicted(self, tmp_path):
        from pathlib import Path
        tuner = ProfileTuner(str(tmp_path))
        fp_bad, fp_gone = "b" * 40, "c" * 40
        tuner.record_win(fp_bad, "epr")
        Path(tuner._path(fp_bad)).write_text("not json", encoding="utf-8")
        assert tuner.lookup(fp_bad) is None
        tuner.record_win(fp_gone, "epr")
        gone = Path(tuner._path(fp_gone))
        entry = json.loads(gone.read_text(encoding="utf-8"))
        entry["profile"] = "retired-profile"
        gone.write_text(json.dumps(entry), encoding="utf-8")
        assert tuner.lookup(fp_gone) is None
        assert tuner.stats()["evictions"] == 2

    def test_fingerprint_is_profile_independent(self):
        from repro.smt import terms as T
        from repro.smt.sorts import BOOL
        x = T.Const("x", BOOL)
        fp = tuner_fingerprint([x], "VcGen")
        assert fp == tuner_fingerprint([x], "VcGen")
        assert fp != tuner_fingerprint([x], "OtherGen")

    def test_learned_winner_survives_proof_cache_wipe(self, tmp_path):
        """The tuner redirects *before* fan-out: a second run against a
        fresh proof cache still skips the race entirely."""
        cold_cfg = VerifyConfig(portfolio=2,
                                cache_dir=str(tmp_path / "cacheA"))
        session = Session(cold_cfg)
        assert session.verify_module(build_stubborn_pair_module()).ok
        tuner = ProfileTuner.for_cache_dir(cold_cfg.cache_dir)
        assert tuner.stats()["entries"] >= 1

        fresh_cfg = VerifyConfig(portfolio=2,
                                 cache_dir=str(tmp_path / "cacheB"))
        redirected = Session(fresh_cfg, tuner=tuner).verify_module(
            build_stubborn_pair_module())
        assert redirected.ok
        assert redirected.stats.get("portfolio_races", 0) == 0
        assert redirected.stats.get("portfolio_attempts", 0) == 0
        assert redirected.stats.get("tuner_hits", 0) >= 1


# ---------------------------------------------------------------------------
# Daemon integration


class TestServerProfiles:
    def test_profiles_verb_and_unknown_profile_error(self, tmp_path):
        from tests.test_server import _Daemon
        cfg = VerifyConfig(cache_dir=str(tmp_path / "cache"))
        with _Daemon(verify_cfg=cfg) as d, d.client("profiles") as c:
            listing = c.profiles()
            assert listing["status"] == "ok"
            result = listing["result"]
            assert [p["name"] for p in result["profiles"]] == \
                list(profile_names())
            assert result["race_order"] == list(RACE_ORDER)
            assert result["tuner"] is not None

            bad = c.verify(
                builder="repro.profiles.corpus:build_stubborn_pair_module",
                config={"profile": "warpspeed"})
            assert bad["status"] == "error"
            assert "warpspeed" in bad["error"]
            assert "available" in bad["error"]

            ok = c.verify(
                builder="repro.systems.plog.crc_verified:build_crc_table_module",
                config={"profile": "frugal", "portfolio": 2})
            assert ok["status"] == "ok" and ok["result"]["ok"]
            assert ok["server"]["portfolio_races"] == 0

    def test_server_races_and_tuner_persists(self, tmp_path):
        from tests.test_server import _Daemon
        cfg = VerifyConfig(cache_dir=str(tmp_path / "cache"))
        with _Daemon(verify_cfg=cfg) as d, d.client("racer") as c:
            first = c.verify(
                builder="repro.profiles.corpus:build_stubborn_pair_module",
                config={"portfolio": 2})
            assert first["status"] == "ok" and first["result"]["ok"]
            assert first["server"]["portfolio_races"] >= 1
            assert first["server"]["portfolio_wins"] >= 1
            stats = c.profiles()["result"]["tuner"]
            assert stats["entries"] >= 1
            assert stats["wins_by_profile"].get("epr", 0) >= 1
