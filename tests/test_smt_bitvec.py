"""Tests for the bit-blasting BV decision procedure (by(bit_vector))."""

import random

import pytest

from repro.smt import terms as T
from repro.smt.bitvec import bv_check_sat, bv_model
from repro.smt.sorts import bv

W = 8
B = bv(W)
x = T.Var("x", B)
y = T.Var("y", B)


def _valid(claim):
    return bv_check_sat(T.Not(claim)) is False


def test_paper_mask_mod_identity():
    # The §3.3 example, scaled to 8 bits: x & 7 == x % 8.
    assert _valid(T.Eq(T.BvAnd(x, T.BVVal(7, W)), T.BvURem(x, T.BVVal(8, W))))


def test_mask_mod_wrong_width_refuted():
    m = bv_model(T.Not(T.Eq(T.BvAnd(x, T.BVVal(3, W)),
                            T.BvURem(x, T.BVVal(8, W)))))
    assert m is not None
    assert (m[x] & 3) != (m[x] % 8)


def test_add_commutes():
    assert _valid(T.Eq(T.BvAdd(x, y), T.BvAdd(y, x)))


def test_sub_self_is_zero():
    assert _valid(T.Eq(T.BvSub(x, x), T.BVVal(0, W)))


def test_shift_is_mul_by_two():
    assert _valid(T.Eq(T.BvShl(x, T.BVVal(1, W)), T.BvMul(x, T.BVVal(2, W))))


def test_de_morgan_bitwise():
    assert _valid(T.Eq(T.BvNot(T.BvAnd(x, y)),
                       T.BvOr(T.BvNot(x), T.BvNot(y))))


def test_xor_self_zero():
    assert _valid(T.Eq(T.BvXor(x, x), T.BVVal(0, W)))


def test_shift_beyond_width_is_zero():
    assert _valid(T.Eq(T.BvShl(x, T.BVVal(9, W)), T.BVVal(0, W)))


def test_lshr_then_shl_clears_low_bits():
    k = T.BVVal(3, W)
    assert _valid(T.Eq(T.BvShl(T.BvLshr(x, k), k),
                       T.BvAnd(x, T.BVVal(0b11111000, W))))


def test_udiv_relation():
    d = T.BVVal(5, W)
    q = T.BvUDiv(x, d)
    r = T.BvURem(x, d)
    assert _valid(T.Eq(T.BvAdd(T.BvMul(q, d), r), x))
    assert _valid(T.BvULt(r, d))


def test_division_by_zero_smtlib_semantics():
    z = T.BVVal(0, W)
    assert _valid(T.Eq(T.BvUDiv(x, z), T.BVVal(255, W)))
    assert _valid(T.Eq(T.BvURem(x, z), x))


@pytest.mark.parametrize("seed", range(2))
def test_ground_ops_against_python(seed):
    rng = random.Random(seed)
    ops = [
        (T.BvAnd, lambda a, b: a & b),
        (T.BvOr, lambda a, b: a | b),
        (T.BvXor, lambda a, b: a ^ b),
        (T.BvAdd, lambda a, b: (a + b) % 256),
        (T.BvSub, lambda a, b: (a - b) % 256),
        (T.BvMul, lambda a, b: (a * b) % 256),
        (T.BvUDiv, lambda a, b: (a // b) if b else 255),
        (T.BvURem, lambda a, b: (a % b) if b else a),
        (T.BvShl, lambda a, b: (a << b) % 256 if b < 8 else 0),
        (T.BvLshr, lambda a, b: (a >> b) if b < 8 else 0),
    ]
    for _ in range(40):
        op, pyop = rng.choice(ops)
        a, b = rng.randrange(256), rng.randrange(256)
        expect = pyop(a, b)
        assert _valid(T.Eq(op(T.BVVal(a, W), T.BVVal(b, W)),
                           T.BVVal(expect, W)))
        wrong = (expect + 1) % 256
        assert bv_check_sat(T.Eq(op(T.BVVal(a, W), T.BVVal(b, W)),
                                 T.BVVal(wrong, W))) is False


def test_comparisons_ground():
    rng = random.Random(7)
    for _ in range(20):
        a, b = rng.randrange(256), rng.randrange(256)
        assert bv_check_sat(T.BvULe(T.BVVal(a, W), T.BVVal(b, W))) is (a <= b)
        assert bv_check_sat(T.BvULt(T.BVVal(a, W), T.BVVal(b, W))) is (a < b)


def test_wide_word_mask_property():
    # 64-bit instance of the page-table-style lemma:
    # (a & mask(13,29)) == 0 && i < 13  ==>  ((a | bit(i)) & mask(13,29)) == 0
    # checked for a fixed i to keep blasting small.
    W64 = 16  # scaled-down width keeps the test fast; structure is identical
    a = T.Var("a", bv(W64))
    mask = ((1 << 13) - 1) & ~((1 << 5) - 1)  # bits 5..12
    i = 3
    pre = T.Eq(T.BvAnd(a, T.BVVal(mask, W64)), T.BVVal(0, W64))
    post = T.Eq(T.BvAnd(T.BvOr(a, T.BVVal(1 << i, W64)), T.BVVal(mask, W64)),
                T.BVVal(0, W64))
    assert bv_check_sat(T.Not(T.Implies(pre, post))) is False
