"""The vstd-style lemma library: verification, invocation, model checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (INT, Module, and_all, assert_, call_stmt, lit,
                        proof_fn, var)
from tests.helpers import verify_module
from repro.lang.stdlib import MapII, SeqI, build_stdlib
from repro.vc.interp import Interp


@pytest.fixture(scope="module")
def stdlib():
    return build_stdlib()


@pytest.fixture(scope="module")
def stdlib_result(stdlib):
    return verify_module(stdlib)


def test_stdlib_all_lemmas_verify(stdlib_result):
    failures = [(fr.name, o.label) for fr in stdlib_result.functions
                for o in fr.obligations if not o.ok]
    assert stdlib_result.ok, failures
    assert len(stdlib_result.functions) >= 20


def test_stdlib_verifies_fast(stdlib_result):
    # The library is meant to be re-verified on every build; it must stay
    # trivially cheap (each lemma is one small query).
    assert stdlib_result.seconds < 5.0


def test_most_lemmas_are_push_button(stdlib):
    # Only the documented exceptions carry proof bodies: the extensional-
    # equality bridge (needs the ext term introduced) and the nonlinear
    # product/division lemmas (isolated by(nonlinear_arith) queries).
    with_bodies = {name for name, fn in stdlib.functions.items() if fn.body}
    assert with_bodies == {
        "lemma_seq_ext_symmetric", "lemma_mul_nonneg",
        "lemma_mul_strictly_ordered", "lemma_div_floor",
    }


def test_user_module_discharges_goal_via_lemma(stdlib):
    # i < n && k > 0 ==> i*k < n*k is nonlinear: the default encoding
    # cannot prove it, and calling the library lemma makes it go through.
    # This is the Verus workflow the paper describes — nonlinear facts are
    # proved once, in isolation, and reused as near-propositional lemmas.
    i, n, k = var("i", INT), var("n", INT), var("k", INT)

    def build(with_lemma):
        mod = Module("user")
        mod.import_module(stdlib)
        proof_fn(mod, "scaled_ordering",
                 [("i", INT), ("n", INT), ("k", INT)],
                 requires=[i < n, k > 0],
                 ensures=[i * k < n * k],
                 body=[call_stmt("lemma_mul_strictly_ordered", [i, n, k])]
                 if with_lemma else [])
        return verify_module(mod)

    assert not build(with_lemma=False).ok
    assert build(with_lemma=True).ok


def test_lemma_preconditions_are_enforced(stdlib):
    # Invoking a lemma whose requires cannot be established must fail —
    # the index bound on update_same is not implied by the caller here.
    s, i, v = var("s", SeqI), var("i", INT), var("v", INT)
    mod = Module("user_bad")
    mod.import_module(stdlib)
    proof_fn(mod, "unguarded_update",
             [("s", SeqI), ("i", INT), ("v", INT)],
             requires=[i >= 0],  # missing i < len(s)
             ensures=[],
             body=[call_stmt("lemma_seq_update_same", [s, i, v])])
    result = verify_module(mod)
    assert not result.ok
    labels = [o.label for fr in result.functions
              for o in fr.obligations if not o.ok]
    assert any("lemma_seq_update_same" in lbl for lbl in labels)


def test_seq_lemma_consequences_usable(stdlib):
    # A caller can combine several lemmas: pushing then reading back.
    s, v = var("s", SeqI), var("v", INT)
    mod = Module("user_seq")
    mod.import_module(stdlib)
    proof_fn(mod, "push_roundtrip", [("s", SeqI), ("v", INT)],
             ensures=[s.push(v).index(s.length()).eq(v),
                      s.push(v).length().eq(s.length() + 1)],
             body=[call_stmt("lemma_seq_push_last", [s, v]),
                   call_stmt("lemma_seq_push_len", [s, v])])
    assert verify_module(mod).ok


# ---------------------------------------------------------------------------
# Model checks: every lemma statement is TRUE of the concrete semantics.
# A verified-but-false lemma would mean an unsound axiomatization; randomly
# instantiating each statement and evaluating it with the interpreter is a
# cheap differential check of the Seq/Map/arith axioms themselves.
# ---------------------------------------------------------------------------

_INTS = st.integers(min_value=-30, max_value=30)
_VALS = {
    INT: _INTS,
    SeqI: st.lists(_INTS, max_size=8).map(tuple),
    MapII: st.dictionaries(_INTS, _INTS, max_size=6),
}


def _model_checkable(fn):
    from repro.vc import ast as A

    def scan(e):
        if isinstance(e, (A.ForAllE, A.ExistsE)):
            return False
        return all(scan(v) for v in vars(e).values()
                   if isinstance(v, A.Expr))

    return all(scan(e) for e in list(fn.requires) + list(fn.ensures))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_lemma_statements_hold_concretely(data):
    std = build_stdlib()
    interp = Interp(std)
    for name, fn in std.functions.items():
        if not _model_checkable(fn):
            continue  # quantified requires need $domains; tested below
        env = {p.name: data.draw(_VALS[p.vtype], label=f"{name}:{p.name}")
               for p in fn.params}
        if not all(interp.eval(r, env) for r in fn.requires):
            continue
        for e in fn.ensures:
            assert interp.eval(e, env), (name, env)


@settings(max_examples=40, deadline=None)
@given(s=st.lists(_INTS, max_size=6).map(tuple))
def test_ext_symmetric_statement_holds_concretely(s):
    # The one quantified lemma, checked with an explicit domain: a seq is
    # extensionally equal to an elementwise-identical copy.
    std = build_stdlib()
    fn = std.functions["lemma_seq_ext_symmetric"]
    interp = Interp(std)
    env = {"s": s, "t": tuple(s),
           "$domains": {INT: range(-1, len(s) + 1)}}
    assert all(interp.eval(r, env) for r in fn.requires)
    for e in fn.ensures:
        assert interp.eval(e, env), e


def test_stdlib_queries_are_small(stdlib_result):
    # Context pruning keeps each lemma's query tiny even though the module
    # holds 20+ definitions (the §3.1 property, applied to the library).
    for fr in stdlib_result.functions:
        assert fr.query_bytes < 200_000, (fr.name, fr.query_bytes)
