"""Unit tests for the CDCL SAT core, including a brute-force cross-check."""

import random

import pytest

from repro.smt.sat import SatSolver, lit, lit_sign, lit_var, neg


def _brute_force_sat(num_vars, clauses):
    for assign in range(1 << num_vars):
        if all(any((bool(assign >> (l >> 1) & 1)) == ((l & 1) == 0)
                   for l in c) for c in clauses):
            return True
    return False


def _model_satisfies(model, clauses):
    return all(any(model[l >> 1] == ((l & 1) == 0) for l in c)
               for c in clauses)


def test_literal_encoding():
    assert lit(3) == 6
    assert lit(3, False) == 7
    assert lit_var(lit(3, False)) == 3
    assert lit_sign(lit(3)) is True
    assert lit_sign(lit(3, False)) is False
    assert neg(lit(3)) == lit(3, False)


def test_unit_propagation():
    s = SatSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([lit(a)])
    s.add_clause([lit(a, False), lit(b)])
    assert s.solve() is True
    m = s.model()
    assert m[a] and m[b]


def test_trivially_unsat():
    s = SatSolver()
    a = s.new_var()
    s.add_clause([lit(a)])
    assert s.add_clause([lit(a, False)]) is False
    assert s.solve() is False


def test_tautology_clause_ignored():
    s = SatSolver()
    a = s.new_var()
    assert s.add_clause([lit(a), lit(a, False)]) is True
    assert s.solve() is True


def test_empty_clause_via_iterable():
    s = SatSolver()
    s.new_var()
    assert s.add_clause([]) is False
    assert s.solve() is False


def _pigeonhole(pigeons, holes):
    s = SatSolver()
    v = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause([lit(v[p][h]) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([lit(v[p1][h], False), lit(v[p2][h], False)])
    return s


def test_pigeonhole_unsat():
    assert _pigeonhole(5, 4).solve() is False


def test_pigeonhole_sat():
    s = _pigeonhole(4, 4)
    assert s.solve() is True


def test_pigeonhole_larger_unsat():
    assert _pigeonhole(7, 6).solve() is False


def test_assumptions_sat_then_blocked():
    s = SatSolver()
    x, y = s.new_var(), s.new_var()
    s.add_clause([lit(x, False), lit(y)])
    assert s.solve([lit(x)]) is True
    assert s.model()[y] is True
    s.add_clause([lit(y, False)])
    assert s.solve([lit(x)]) is False
    assert s.solve() is True  # still sat without the assumption


def test_add_clause_after_solve_at_root():
    s = SatSolver()
    x = s.new_var()
    assert s.solve() is True
    s.add_clause([lit(x)])
    assert s.solve() is True
    assert s.model()[x] is True


def test_conflict_budget_returns_none():
    s = _pigeonhole(8, 7)
    assert s.solve(conflict_budget=3) is None
    # and the solver remains usable afterwards
    assert s.solve() is False


@pytest.mark.parametrize("seed", range(4))
def test_random_3sat_against_brute_force(seed):
    rng = random.Random(seed)
    for _ in range(120):
        nv = rng.randint(3, 9)
        nc = rng.randint(3, 40)
        clauses = [[lit(v, rng.random() < .5)
                    for v in rng.sample(range(nv), 3)] for _ in range(nc)]
        s = SatSolver()
        for _ in range(nv):
            s.new_var()
        ok = all(s.add_clause(list(c)) for c in clauses)
        res = s.solve() if ok else False
        assert res == _brute_force_sat(nv, clauses)
        if res:
            assert _model_satisfies(s.model(), clauses)


def test_statistics_counters_move():
    s = _pigeonhole(6, 5)
    s.solve()
    assert s.num_conflicts > 0
    assert s.num_propagations > 0
