"""Tests for the §3.3 idiom engines: integer_ring, nonlinear_arith, compute."""

import pytest

from repro.smt import terms as T
from repro.smt.compute import ComputeEnv, OutOfFuel, evaluate, prove_by_compute
from repro.smt.nonlinear import prove_nonlinear
from repro.smt.ring import RingError, prove_ring
from repro.smt.sorts import INT

a, b, c, q, x, y, z = (T.Var(n, INT) for n in ("a", "b", "c", "q", "x", "y", "z"))
I = T.IntVal


class TestIntegerRing:
    def test_paper_subtract_mod_eq_zero(self):
        # requires a % c == 0, b % c == 0, ensures (b - a) % c == 0
        hyp = [T.Eq(T.Mod(a, c), I(0)), T.Eq(T.Mod(b, c), I(0))]
        assert prove_ring(hyp, T.Eq(T.Mod(T.Sub(b, a), c), I(0)))

    def test_unprovable_offset_rejected(self):
        hyp = [T.Eq(T.Mod(a, c), I(0)), T.Eq(T.Mod(b, c), I(0))]
        assert not prove_ring(
            hyp, T.Eq(T.Mod(T.Sub(T.Add(b, I(1)), a), c), I(0)))

    def test_constant_modulus(self):
        hyp = [T.Eq(T.Mod(a, I(4)), I(0))]
        assert prove_ring(hyp, T.Eq(T.Mod(T.Mul(I(3), a), I(4)), I(0)))
        assert prove_ring(hyp, T.Eq(T.Mod(T.Mul(a, a), I(16)), I(0)))
        assert not prove_ring(hyp, T.Eq(T.Mod(T.Mul(a, a), I(32)), I(0)))

    def test_binomial_identity(self):
        lhs = T.Mul(T.Add(x, y), T.Add(x, y))
        rhs = T.Add(T.Add(T.Mul(x, x), T.Mul(T.Mul(I(2), x), y)),
                    T.Mul(y, y))
        assert prove_ring([], T.Eq(lhs, rhs))

    def test_wrong_identity_rejected(self):
        lhs = T.Mul(T.Add(x, y), T.Add(x, y))
        assert not prove_ring([], T.Eq(lhs, T.Mul(x, y)))

    def test_equality_hypothesis_squares(self):
        assert prove_ring([T.Eq(a, b)], T.Eq(T.Mul(a, a), T.Mul(b, b)))

    def test_congruence_from_difference(self):
        hyp = [T.Eq(T.Mod(T.Sub(a, b), c), I(0))]
        assert prove_ring(hyp, T.Eq(T.Mod(a, c), T.Mod(b, c)))

    def test_mod_mul_distributes(self):
        goal = T.Eq(T.Mod(T.Mul(T.Mod(a, c), T.Mod(b, c)), c),
                    T.Mod(T.Mul(a, b), c))
        assert prove_ring([], goal)

    def test_mixed_modulus_rejected_as_out_of_fragment(self):
        with pytest.raises(RingError):
            prove_ring([], T.Eq(T.Mod(a, c), T.Mod(a, b)))

    def test_inequality_rejected(self):
        with pytest.raises(RingError):
            prove_ring([T.Le(a, b)], T.Eq(a, b))


class TestNonlinearArith:
    def test_paper_example(self):
        # q > 2 ==> (a*a + 1) * q >= (a*a + 1) * 2
        prem = [T.Gt(q, I(2))]
        aa1 = T.Add(T.Mul(a, a), I(1))
        goal = T.Ge(T.Mul(aa1, q), T.Mul(aa1, I(2)))
        assert prove_nonlinear(prem, goal)

    def test_product_of_nonnegatives(self):
        assert prove_nonlinear([T.Ge(x, I(0)), T.Ge(y, I(0))],
                               T.Ge(T.Mul(x, y), I(0)))

    def test_product_of_positives_strict(self):
        assert prove_nonlinear([T.Gt(x, I(0)), T.Gt(y, I(0))],
                               T.Gt(T.Mul(x, y), I(0)))

    def test_monotonicity(self):
        assert prove_nonlinear([T.Ge(x, I(0)), T.Le(y, z)],
                               T.Le(T.Mul(x, y), T.Mul(x, z)))

    def test_am_gm(self):
        assert prove_nonlinear([], T.Ge(T.Add(T.Mul(x, x), T.Mul(y, y)),
                                        T.Mul(I(2), T.Mul(x, y))))

    def test_square_nonneg(self):
        assert prove_nonlinear([], T.Ge(T.Mul(x, x), I(0)))

    def test_false_goal_not_proved(self):
        assert not prove_nonlinear([], T.Ge(T.Mul(x, y), I(0)))

    def test_distribution_identity(self):
        assert prove_nonlinear([], T.Eq(T.Mul(x, T.Add(y, z)),
                                        T.Add(T.Mul(x, y), T.Mul(x, z))))

    def test_isolation_requires_explicit_premise(self):
        # Without the premise inside the query, the goal must NOT prove —
        # this is the paper's predictability-by-isolation property.
        aa1 = T.Add(T.Mul(a, a), I(1))
        goal = T.Ge(T.Mul(aa1, q), T.Mul(aa1, I(2)))
        assert not prove_nonlinear([], goal)


class TestCompute:
    def test_ground_arith(self):
        t = T.Add(T.Mul(I(6), I(7)), I(0))
        assert evaluate(t) is I(42)

    def test_recursive_definition(self):
        fact = T.FuncDecl("fact", [INT], INT)
        n = T.Var("n", INT)
        env = ComputeEnv()
        env.define(fact, [n],
                   T.Ite(T.Le(n, I(0)), I(1),
                         T.Mul(n, fact(T.Sub(n, I(1))))))
        assert evaluate(fact(I(6)), env) is I(720)

    def test_prove_by_compute_true(self):
        fib = T.FuncDecl("fib", [INT], INT)
        n = T.Var("n", INT)
        env = ComputeEnv()
        env.define(fib, [n],
                   T.Ite(T.Le(n, I(1)), n,
                         T.Add(fib(T.Sub(n, I(1))), fib(T.Sub(n, I(2))))))
        ok, residual = prove_by_compute(T.Eq(fib(I(10)), I(55)), env)
        assert ok and residual is None

    def test_prove_by_compute_false_residual(self):
        ok, residual = prove_by_compute(T.Eq(T.Add(x, I(0)), T.Add(x, I(1))))
        assert not ok
        assert residual is not None

    def test_partial_evaluation_residual(self):
        # x + (2*3) evaluates to x + 6; the residual goes to SMT.
        t = T.Add(x, T.Mul(I(2), I(3)))
        out = evaluate(t)
        assert out is T.Add(x, I(6))

    def test_fuel_exhaustion(self):
        loop = T.FuncDecl("loop", [INT], INT)
        n = T.Var("n", INT)
        env = ComputeEnv()
        env.define(loop, [n], loop(T.Add(n, I(1))))
        with pytest.raises(OutOfFuel):
            evaluate(loop(I(0)), env, fuel=1000)

    def test_bv_folding(self):
        t = T.BvAnd(T.BVVal(0b1100, 8), T.BVVal(0b1010, 8))
        assert evaluate(t).payload == 0b1000

    def test_crc_style_table_check(self):
        # A miniature of the paper's CRC table anecdote: prove that a
        # precomputed table entry equals the 8-step polynomial division.
        step = T.FuncDecl("crc_step", [INT, INT], INT)
        i_, v_ = T.Var("i", INT), T.Var("v", INT)
        env = ComputeEnv()
        # One reflected CRC-32 step on an integer-modelled register.
        lsb = T.Mod(v_, I(2))
        half = T.Div(v_, I(2))
        poly = I(0xEDB88320)
        xored = T.Add(half, T.Mul(lsb, poly))  # approximation is fine: this
        # test only checks compute-vs-compute consistency, not real CRC.
        env.define(step, [i_, v_],
                   T.Ite(T.Le(i_, I(0)), v_,
                         step(T.Sub(i_, I(1)), xored)))
        expected = evaluate(step(I(8), I(1)), env)
        ok, _ = prove_by_compute(T.Eq(step(I(8), I(1)), expected), env)
        assert ok
