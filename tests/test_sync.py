"""Tests for VerusSync: obligations, runtime tokens, atomics, RA laws."""

import pytest
from hypothesis import given, strategies as st

from repro.lang import *
from repro.sync import (AtomicGhost, ProtocolViolation, SyncError,
                        SyncSystem, start)
from repro.sync.ra import (BOT, algebra_for, check_monoid_laws)


def _agreement_system():
    sys_ = SyncSystem("ts_agreement")
    sys_.field("a", "variable", vtype=INT)
    sys_.field("b", "variable", vtype=INT)
    sys_.init("initialize").init_field("a", 0).init_field("b", 0)
    val = sys_.param("val", INT)
    sys_.transition("update", params=[("val", INT)]) \
        .update("a", val).update("b", val)
    sys_.property_("agreement").assert_(sys_.pre("a").eq(sys_.pre("b")))
    sys_.invariant("agree", lambda sv: sv("a").eq(sv("b")))
    return sys_


class TestObligations:
    def test_figure4_agreement_verifies(self):
        res = _agreement_system().check()
        assert res.ok
        names = {f.name for f in res.functions}
        assert names == {"initialize#establishes", "update#preserves",
                         "agreement#property"}

    def test_non_inductive_invariant_fails(self):
        sys_ = SyncSystem("ts_broken")
        sys_.field("a", "variable", vtype=INT)
        sys_.field("b", "variable", vtype=INT)
        sys_.init("initialize").init_field("a", 0).init_field("b", 0)
        val = sys_.param("val", INT)
        sys_.transition("update", params=[("val", INT)]).update("a", val)
        sys_.invariant("agree", lambda sv: sv("a").eq(sv("b")))
        res = sys_.check()
        assert not res.ok

    def test_init_establishes_checked(self):
        sys_ = SyncSystem("ts_badinit")
        sys_.field("a", "variable", vtype=INT)
        sys_.init("initialize").init_field("a", 5)
        sys_.invariant("zero", lambda sv: sv("a").eq(0))
        res = sys_.check()
        assert not res.ok
        assert any("establishes" in f.name for f in res.functions
                   if not f.ok)

    def test_uninitialized_field_rejected(self):
        sys_ = SyncSystem("ts_uninit")
        sys_.field("a", "variable", vtype=INT)
        sys_.field("b", "variable", vtype=INT)
        sys_.init("initialize").init_field("a", 0)
        with pytest.raises(SyncError):
            sys_.check()

    def test_constant_update_rejected(self):
        sys_ = SyncSystem("ts_const")
        sys_.field("size", "constant", vtype=INT)
        t = sys_.transition("t")
        with pytest.raises(SyncError):
            t.update("size", 3)

    def test_map_remove_add_with_freshness(self):
        St = EnumType("TsExec").declare(
            {"Idle": [], "Busy": [("j", INT)]})
        sys_ = SyncSystem("ts_map")
        sys_.field("executor", "map", key=INT, value=St)
        sys_.init("initialize").init_field("executor",
                                           map_empty(INT, St))
        n = sys_.param("n", INT)
        sys_.transition("go", params=[("n", INT)]) \
            .remove("executor", n, enum(St, "Idle")) \
            .add("executor", n, enum(St, "Busy", j=lit(0)))
        sys_.invariant("trivial", lambda sv: lit(True))
        res = sys_.check()
        assert res.ok
        assert any("fresh" in f.name for f in res.functions)

    def test_count_strategy(self):
        sys_ = SyncSystem("ts_count")
        sys_.field("refs", "count")
        sys_.init("initialize").init_field("refs", 0)
        sys_.transition("acquire").add_count("refs", 1)
        sys_.transition("release").remove_count("refs", 1)
        sys_.invariant("nonneg", lambda sv: sv("refs") >= 0)
        assert sys_.check().ok

    def test_require_becomes_enabling_condition(self):
        sys_ = SyncSystem("ts_req")
        sys_.field("x", "variable", vtype=INT)
        sys_.init("initialize").init_field("x", 0)
        v = sys_.param("v", INT)
        sys_.transition("set_pos", params=[("v", INT)]) \
            .require(v >= 0).update("x", v)
        sys_.invariant("nonneg", lambda sv: sv("x") >= 0)
        assert sys_.check().ok


class TestRuntimeTokens:
    def test_agreement_token_flow(self):
        sys_ = _agreement_system()
        inst, toks = start(sys_)
        new = inst.apply("update", tokens={"a": toks["a"], "b": toks["b"]},
                         val=42)
        assert new["a"].value == 42
        assert not toks["a"].valid

    def test_consumed_token_rejected(self):
        sys_ = _agreement_system()
        inst, toks = start(sys_)
        new = inst.apply("update", tokens={"a": toks["a"], "b": toks["b"]},
                         val=1)
        with pytest.raises(ProtocolViolation):
            inst.apply("update", tokens={"a": toks["a"], "b": new["b"]},
                       val=2)

    def test_cross_instance_token_rejected(self):
        sys_ = _agreement_system()
        inst1, toks1 = start(sys_)
        inst2, toks2 = start(sys_)
        with pytest.raises(ProtocolViolation):
            inst1.apply("update", tokens={"a": toks2["a"], "b": toks1["b"]},
                        val=3)

    def test_require_checked_at_runtime(self):
        sys_ = SyncSystem("ts_rt_req")
        sys_.field("x", "variable", vtype=INT)
        sys_.init("initialize").init_field("x", 0)
        v = sys_.param("v", INT)
        sys_.transition("set_pos", params=[("v", INT)]) \
            .require(v >= 0).update("x", v)
        inst, toks = start(sys_)
        with pytest.raises(ProtocolViolation):
            inst.apply("set_pos", tokens={"x": toks["x"]}, v=-1)
        # failed apply must not consume the token
        assert toks["x"].valid
        inst.apply("set_pos", tokens={"x": toks["x"]}, v=5)

    def test_map_freshness_at_runtime(self):
        St = EnumType("TsExecRt").declare({"Idle": []})
        sys_ = SyncSystem("ts_rt_map")
        sys_.field("m", "map", key=INT, value=St)
        sys_.init("initialize").init_field("m", map_empty(INT, St))
        n = sys_.param("n", INT)
        sys_.transition("register", params=[("n", INT)]) \
            .add("m", n, enum(St, "Idle"))
        inst, _ = start(sys_)
        inst.apply("register", n=0)
        with pytest.raises(ProtocolViolation):
            inst.apply("register", n=0)

    def test_remove_wrong_value_rejected(self):
        St = EnumType("TsExecRt2").declare(
            {"Idle": [], "Busy": [("j", INT)]})
        sys_ = SyncSystem("ts_rt_map2")
        sys_.field("m", "map", key=INT, value=St)
        sys_.init("initialize").init_field("m", map_empty(INT, St))
        n = sys_.param("n", INT)
        sys_.transition("register", params=[("n", INT)]) \
            .add("m", n, enum(St, "Busy", j=lit(7)))
        sys_.transition("finish", params=[("n", INT)]) \
            .remove("m", n, enum(St, "Idle"))  # expects Idle, holds Busy
        inst, _ = start(sys_)
        tok = inst.apply("register", n=0)["m"]
        with pytest.raises(ProtocolViolation):
            inst.apply("finish", tokens={"m": tok}, n=0)

    def test_invariant_checked_dynamically(self):
        # An unverified system whose transition breaks the invariant is
        # caught at runtime (this is the point of ghost checking).
        sys_ = SyncSystem("ts_rt_inv")
        sys_.field("a", "variable", vtype=INT)
        sys_.field("b", "variable", vtype=INT)
        sys_.init("initialize").init_field("a", 0).init_field("b", 0)
        v = sys_.param("v", INT)
        sys_.transition("desync", params=[("v", INT)]).update("a", v)
        sys_.invariant("agree", lambda sv: sv("a").eq(sv("b")))
        inst, toks = start(sys_)
        with pytest.raises(ProtocolViolation):
            inst.apply("desync", tokens={"a": toks["a"]}, v=9)


class TestAtomicGhost:
    def test_pairing_invariant_enforced(self):
        sys_ = _agreement_system()
        inst, toks = start(sys_)
        cell = AtomicGhost(0, toks["a"],
                           pairing=lambda v, tok: tok.value == v)
        assert cell.load() == 0

    def test_store_with_ghost_update(self):
        sys_ = _agreement_system()
        inst, toks = start(sys_)
        cell = AtomicGhost(0, toks["a"],
                           pairing=lambda v, tok: tok.value == v)
        holder = {"b": toks["b"]}

        def ghost(tok):
            new = inst.apply("update", tokens={"a": tok, "b": holder["b"]},
                             val=5)
            holder["b"] = new["b"]
            return new["a"]

        cell.store(5, ghost)
        assert cell.load() == 5
        assert cell.token.value == 5

    def test_broken_pairing_detected(self):
        sys_ = _agreement_system()
        inst, toks = start(sys_)
        with pytest.raises(ProtocolViolation):
            AtomicGhost(1, toks["a"],  # token holds 0, value says 1
                        pairing=lambda v, tok: tok.value == v)

    def test_cas(self):
        cell = AtomicGhost(10)
        ok, old_v = cell.compare_exchange(10, 20)
        assert ok and old_v == 10
        ok, old_v = cell.compare_exchange(10, 30)
        assert not ok and old_v == 20


class TestResourceAlgebraLaws:
    SAMPLES = {
        "variable": [None, ("v", 1), ("v", 2)],
        "constant": [None, ("c", 1), ("c", 2)],
        "map": [{}, {1: "a"}, {2: "b"}, {1: "a", 2: "b"}],
        "set": [frozenset(), frozenset({1}), frozenset({2}),
                frozenset({1, 2})],
        "count": [0, 1, 2, 5],
    }

    @pytest.mark.parametrize("strategy", list(SAMPLES))
    def test_monoid_laws(self, strategy):
        ra = algebra_for(strategy)
        assert check_monoid_laws(ra, self.SAMPLES[strategy]) == []

    def test_variable_exclusivity(self):
        ra = algebra_for("variable")
        assert ra.compose(("v", 1), ("v", 1)) is BOT

    def test_constant_duplicable(self):
        ra = algebra_for("constant")
        assert ra.compose(("c", 1), ("c", 1)) == ("c", 1)
        assert ra.compose(("c", 1), ("c", 2)) is BOT

    def test_map_disjointness(self):
        ra = algebra_for("map")
        assert ra.compose({1: "a"}, {1: "b"}) is BOT
        assert ra.compose({1: "a"}, {2: "b"}) == {1: "a", 2: "b"}

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_count_associativity_hypothesis(self, a, b, c):
        ra = algebra_for("count")
        assert ra.compose(ra.compose(a, b), c) == ra.compose(a, ra.compose(b, c))

    @given(st.sets(st.integers(0, 10)), st.sets(st.integers(0, 10)))
    def test_set_commutativity_hypothesis(self, a, b):
        ra = algebra_for("set")
        x = ra.compose(frozenset(a), frozenset(b))
        y = ra.compose(frozenset(b), frozenset(a))
        assert (x is BOT and y is BOT) or x == y
