"""Tests for trigger selection and E-matching (§3.1's decisive axis)."""

import pytest

from repro.smt import terms as T
from repro.smt.euf import EufSolver
from repro.smt.quant import (BROAD, CONSERVATIVE, EMatcher, TriggerError,
                             select_triggers)
from repro.smt.sorts import BOOL, INT, uninterpreted

S = uninterpreted("S")
f = T.FuncDecl("f", [S], S)
g = T.FuncDecl("g", [S, S], S)
p = T.FuncDecl("p", [S], BOOL)
h = T.FuncDecl("h", [INT], INT)


def _q(bound, body, triggers=None):
    return T.ForAll(bound, body, triggers)


class TestTriggerSelection:
    def test_explicit_triggers_win(self):
        x = T.Var("x", S)
        q = _q([x], T.Eq(f(x), x), triggers=[[f(x)]])
        assert select_triggers(q, CONSERVATIVE) == ((f(x),),)
        assert select_triggers(q, BROAD) == ((f(x),),)

    def test_conservative_picks_minimal_alternatives(self):
        x = T.Var("x", S)
        # both f(x) and f(f(x)) cover x; only the minimal f(x) is kept
        q = _q([x], T.Eq(f(f(x)), x))
        groups = select_triggers(q, CONSERVATIVE)
        assert (f(x),) in groups
        assert all(len(grp) == 1 for grp in groups)
        assert (f(f(x)),) not in groups

    def test_alternative_full_coverage_patterns(self):
        x = T.Var("x", S)
        # two independent minimal patterns: each becomes an alternative
        q = _q([x], T.Implies(p(x), T.Eq(f(x), x)))
        groups = select_triggers(q, CONSERVATIVE)
        roots = {grp[0].payload.name for grp in groups}
        assert roots == {"p", "f"}

    def test_multipattern_when_no_single_covers(self):
        x, y = T.Var("x", S), T.Var("y", S)
        q = _q([x, y], T.Implies(T.And(p(x), p(y)), T.Eq(x, y)))
        groups = select_triggers(q, CONSERVATIVE)
        assert len(groups) == 1
        assert {t.payload.name for t in groups[0]} == {"p"}
        assert len(groups[0]) == 2

    def test_broad_has_at_least_as_many_groups(self):
        x = T.Var("x", S)
        q = _q([x], T.Implies(p(x), T.Eq(f(g(x, x)), x)))
        cons = select_triggers(q, CONSERVATIVE)
        broad = select_triggers(q, BROAD)
        assert len(broad) >= len(cons)

    def test_uncovered_variable_raises(self):
        x, y = T.Var("x", S), T.Var("y", S)
        q = _q([x, y], T.Implies(p(x), T.Eq(y, y) if False else p(x)))
        with pytest.raises(TriggerError):
            select_triggers(q, CONSERVATIVE)

    def test_interpreted_roots_not_patterns(self):
        i = T.Var("i", INT)
        # h(i) is matchable; i+1 is not a pattern root
        q = _q([i], T.Gt(h(i), T.Add(i, T.IntVal(1))))
        groups = select_triggers(q, CONSERVATIVE)
        assert all(grp[0].kind == T.APP for grp in groups)


class TestEMatching:
    def _euf_with(self, *terms):
        euf = EufSolver()
        for t in terms:
            euf.add_term(t)
        euf.flush()
        return euf

    def test_simple_match(self):
        a = T.Var("a", S)
        x = T.Var("x", S)
        euf = self._euf_with(f(a))
        matcher = EMatcher(euf)
        subs = matcher.match_group([f(x)], (x,))
        assert [s[x] for s in subs] == [a]

    def test_match_modulo_congruence(self):
        a, b = T.Var("a", S), T.Var("b", S)
        x = T.Var("x", S)
        euf = EufSolver()
        euf.add_term(f(a))
        euf.assert_eq(a, b, "r")
        matcher = EMatcher(euf)
        # pattern g(f(x), x): term g(f(a), b) matches with x -> a (~ b)
        euf.add_term(g(f(a), b))
        euf.flush()
        subs = matcher.match_group([g(f(x), x)], (x,))
        assert len(subs) == 1

    def test_multipattern_joins_bindings(self):
        a, b = T.Var("a", S), T.Var("b", S)
        x, y = T.Var("x", S), T.Var("y", S)
        euf = self._euf_with(f(a), f(b))
        matcher = EMatcher(euf)
        subs = matcher.match_group([f(x), f(y)], (x, y))
        pairs = {(s[x], s[y]) for s in subs}
        assert pairs == {(a, a), (a, b), (b, a), (b, b)}

    def test_constant_subpattern_requires_equality(self):
        a, c = T.Var("a", S), T.Var("c", S)
        x = T.Var("x", S)
        euf = self._euf_with(g(a, c), g(a, a))
        matcher = EMatcher(euf)
        # pattern g(x, c): only g(a, c) matches (c is a free constant)
        subs = matcher.match_group([g(x, c)], (x,))
        assert len(subs) == 1 and subs[0][x] is a

    def test_no_match_returns_empty(self):
        a = T.Var("a", S)
        x = T.Var("x", S)
        euf = self._euf_with(a)
        matcher = EMatcher(euf)
        assert matcher.match_group([f(x)], (x,)) == []

    def test_dedup_by_congruence_class(self):
        a, b = T.Var("a", S), T.Var("b", S)
        x = T.Var("x", S)
        euf = EufSolver()
        euf.add_term(f(a))
        euf.add_term(f(b))
        euf.assert_eq(a, b, "r")
        matcher = EMatcher(euf)
        subs = matcher.match_group([f(x)], (x,))
        assert len(subs) == 1  # a ~ b: one class, one instantiation
