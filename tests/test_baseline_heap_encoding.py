"""Focused tests for the explicit-heap encoding used by the baselines."""

import pytest

from repro.baselines.heap import HeapVcGen
from repro.baselines.pipelines import FStarVcGen, PrustiVcGen
from repro.lang import *
from repro.vc.wp import VcConfig


def _two_lists_module():
    """Updates to one list must not affect facts about another."""
    SeqI = SeqType(INT)
    mod = Module("heap_two_lists")
    a, b = var("a", SeqI), var("b", SeqI)
    exec_fn(mod, "update_one",
            [("a", SeqI), ("b", SeqI)],
            requires=[a.length() > 0, b.length() > 2],
            body=[
                let_("a2", a.update(0, lit(7))),
                # frame: b is untouched by the write to a
                assert_(b.length() > 2, label="b unchanged"),
                assert_(var("a2", SeqI).index(0).eq(7), label="a updated"),
            ])
    return mod


class TestHeapEncoding:
    def test_frame_reasoning_succeeds(self):
        res = HeapVcGen(_two_lists_module()).verify_module()
        assert res.ok, res.report()

    def test_mutation_visible_through_heap(self):
        SeqI = SeqType(INT)
        mod = Module("heap_mutation")
        a = var("a", SeqI)
        exec_fn(mod, "write_read", [("a", SeqI)],
                requires=[a.length() > 1],
                body=[
                    assign("a", a.update(0, lit(3))),
                    assign("a", a.update(1, lit(4))),
                    assert_(a.index(0).eq(3)),
                    assert_(a.index(1).eq(4)),
                ])
        res = HeapVcGen(mod).verify_module()
        assert res.ok, res.report()

    def test_heap_encoding_rejects_bugs(self):
        SeqI = SeqType(INT)
        mod = Module("heap_bug")
        a = var("a", SeqI)
        exec_fn(mod, "wrong", [("a", SeqI)],
                requires=[a.length() > 0],
                body=[
                    assign("a", a.update(0, lit(3))),
                    assert_(a.index(0).eq(4)),  # wrong value
                ])
        res = HeapVcGen(mod).verify_module()
        assert not res.ok

    def test_old_reads_entry_heap(self):
        SeqI = SeqType(INT)
        mod = Module("heap_old")
        a = var("a", SeqI)
        exec_fn(mod, "mutate", [("a", SeqI)], mut=["a"],
                requires=[a.length() > 0],
                ensures=[a.length().eq(old("a", SeqI).length())],
                body=[assign("a", a.update(0, lit(1)))])
        res = HeapVcGen(mod).verify_module()
        assert res.ok, res.report()

    def test_query_growth_vs_value_encoding(self):
        from repro.vc.wp import VcGen
        mod = _two_lists_module()
        value_res = VcGen(mod).verify_module()
        heap_res = HeapVcGen(_two_lists_module()).verify_module()
        assert heap_res.query_bytes > value_res.query_bytes


class TestFStarPipelineInternals:
    def test_fuel_retry_on_failure(self):
        SeqI = SeqType(INT)
        mod = Module("fstar_fail")
        a = var("a", SeqI)
        exec_fn(mod, "wrong", [("a", SeqI)],
                requires=[a.length() > 0],
                body=[assert_(a.index(0).eq(99))])
        config = VcConfig()
        res = FStarVcGen(mod, config).verify_module()
        assert not res.ok
        # the retry loop re-ships the query, inflating query bytes
        from repro.vc.wp import VcGen
        plain = VcGen(_rebuild_fstar_fail()).verify_module()
        assert res.query_bytes > plain.query_bytes


def _rebuild_fstar_fail():
    SeqI = SeqType(INT)
    mod = Module("fstar_fail_plain")
    a = var("a", SeqI)
    exec_fn(mod, "wrong", [("a", SeqI)],
            requires=[a.length() > 0],
            body=[assert_(a.index(0).eq(99))])
    return mod


class TestPrustiPipelineInternals:
    def test_permission_obligations_generated(self):
        res = PrustiVcGen(_two_lists_module(), VcConfig()).verify_module()
        assert res.ok, res.report()
        labels = [o.kind for f in res.functions for o in f.obligations]
        assert "permission" in labels
