"""The verification service daemon: repro.server end to end.

Unit layers first (protocol, fair queue, quota ledger, warm solver
pool, Session lifecycle), then the daemon itself running on a real
socket in a background thread, driven through :class:`ServerClient`.

The acceptance bar mirrors the batch pipeline's: a daemon serving
concurrent clients must produce verdicts byte-identical (modulo timing
fields, per ``tests.test_incremental._normalize``) to plain
``Session.verify_module`` runs, and a re-submitted module with one
edited function must re-solve only the changed-fingerprint functions —
asserted via the per-request solver-construction counts the server
reports.
"""

import asyncio
import importlib
import json
import random
import threading
import time
import types

import pytest

from repro.api import Session, VerifyConfig
from repro.server import ServerClient, ServerConfig, SolverPool, VerifyServer
from repro.server import protocol
from repro.server.daemon import PATH_COLD, PATH_DELTA, PATH_JOURNAL
from repro.server.queue import FairQueue, FairQueueCore, QueueFull
from repro.server.quota import QuotaExceeded, QuotaLedger, steps_spent
from repro.smt import terms as T
from repro.smt.solver import SolverConfig, solver_constructions

from tests.test_incremental import _normalize

#: The five shipped case studies, in the protocol's builder form.
CASE_STUDIES = [
    "repro.systems.ironkv.delegation_map:build_default_module",
    "repro.systems.nr.model:build_nr_core_module",
    "repro.systems.pagetable.view_verified:build_view_module",
    "repro.systems.mimalloc.verified:build_bit_tricks_module",
    "repro.systems.plog.crc_verified:build_crc_table_module",
]

MODULE_V1 = '''
from repro.lang import Module, U64, exec_fn, lit, ret, var

def build():
    mod = Module("served_mod")
    x = var("x", U64)
    exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
            requires=[x < lit(1000)],
            ensures=[var("r", U64).eq(x + lit(1))],
            body=[ret(x + lit(1))])
    exec_fn(mod, "dbl", [("x", U64)], ret=("r", U64),
            requires=[x < lit(500)],
            ensures=[var("r", U64).eq(x + x)],
            body=[ret(x + x)])
    return mod
'''

# The edit: dbl's contract bound changes; inc's fingerprint is untouched.
MODULE_V2 = MODULE_V1.replace("lit(500)", "lit(400)")

BROKEN_SRC = '''
from repro.lang import Module, U64, exec_fn, lit, ret, var

def build():
    mod = Module("broken_post")
    x = var("x", U64)
    exec_fn(mod, "bad", [("x", U64)], ret=("r", U64),
            requires=[x < lit(10)],
            ensures=[var("r", U64).eq(x + lit(2))],
            body=[ret(x + lit(1))])
    return mod
'''

SLOW_SRC = '''
import time
from repro.lang import Module, U64, exec_fn, lit, ret, var

def build():
    time.sleep({delay})
    mod = Module("slow_mod_{tag}")
    x = var("x", U64)
    exec_fn(mod, "inc", [("x", U64)], ret=("r", U64),
            requires=[x < lit(100)],
            ensures=[var("r", U64).eq(x + lit(1))],
            body=[ret(x + lit(1))])
    return mod
'''


def _build(dotted: str):
    mod_path, _, attr = dotted.partition(":")
    return getattr(importlib.import_module(mod_path), attr)()


# ---------------------------------------------------------------- protocol


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        obj = {"id": "r1", "verb": "status", "nested": {"a": [1, 2]}}
        frame = protocol.encode(obj)
        assert frame.endswith(b"\n") and b"\n" not in frame[:-1]
        assert protocol.decode_line(frame) == obj

    def test_validate_fills_defaults(self):
        req = protocol.validate_request(
            {"id": 7, "verb": "verify",
             "module": {"builder": "pkg.mod:build"}})
        assert req["client"] == protocol.DEFAULT_CLIENT
        assert req["priority"] == 0
        assert req["config"] == {}
        assert req["module"] == {"builder": "pkg.mod:build"}

    @pytest.mark.parametrize("bad", [
        {"verb": "verify", "module": {"builder": "a:b"}},       # no id
        {"id": "r", "verb": "frobnicate"},                      # bad verb
        {"id": "r", "verb": "verify", "module": {"builder": "a:b"},
         "client": ""},                                         # empty client
        {"id": "r", "verb": "verify", "module": {"builder": "a:b"},
         "priority": True},                                     # bool priority
        {"id": "r", "verb": "verify"},                          # no module
        {"id": "r", "verb": "verify",
         "module": {"builder": "no_colon"}},                    # bad builder
        {"id": "r", "verb": "verify", "module": {"source": "x = 1"}},
    ])
    def test_validate_rejects(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(bad)

    def test_server_owned_config_fields_rejected(self):
        for field in ("cache_dir", "jobs", "fault_plan", "journal_dir"):
            with pytest.raises(protocol.ProtocolError) as exc:
                protocol.validate_request(
                    {"id": "r", "verb": "verify",
                     "module": {"builder": "a:b"},
                     "config": {field: "x"}})
            assert field in str(exc.value)

    def test_allowed_overrides_pass(self):
        req = protocol.validate_request(
            {"id": "r", "verb": "verify", "module": {"builder": "a:b"},
             "config": {"max_steps": 10, "diagnostics": True}})
        assert req["config"] == {"max_steps": 10, "diagnostics": True}

    def test_build_module_dotted(self):
        mod = protocol.build_module(
            {"builder": CASE_STUDIES[4]})
        assert mod.name

    def test_build_module_source(self):
        mod = protocol.build_module({"source": MODULE_V1, "builder": "build"})
        assert mod.name == "served_mod"

    @pytest.mark.parametrize("spec", [
        {"builder": "repro.no_such_module:build"},
        {"builder": "repro.api:no_such_attr"},
        {"source": "def build():\n    raise RuntimeError('boom')",
         "builder": "build"},
        {"source": "x = 1", "builder": "build"},
    ])
    def test_build_module_failures_are_protocol_errors(self, spec):
        with pytest.raises(protocol.ProtocolError):
            protocol.build_module(spec)


# --------------------------------------------------------------- fair queue


class TestFairQueue:
    def test_priority_bands_strict(self):
        q = FairQueueCore(depth=10)
        q.push(0, "a", "low-1")
        q.push(5, "a", "high-1")
        q.push(0, "a", "low-2")
        q.push(5, "b", "high-2")
        assert [q.pop() for _ in range(4)] == \
            ["high-1", "high-2", "low-1", "low-2"]

    def test_round_robin_within_band(self):
        q = FairQueueCore(depth=10)
        for i in range(3):
            q.push(0, "streamer", f"s{i}")
        q.push(0, "visitor", "v0")
        # The visitor waits one rotation, not three slots.
        assert [q.pop() for _ in range(4)] == ["s0", "v0", "s1", "s2"]

    def test_fifo_within_client(self):
        q = FairQueueCore(depth=10)
        for i in range(4):
            q.push(0, "a", i)
        assert [q.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_queue_full(self):
        q = FairQueueCore(depth=2)
        q.push(0, "a", 1)
        q.push(0, "b", 2)
        with pytest.raises(QueueFull):
            q.push(0, "c", 3)
        assert q.pop() == 1
        q.push(0, "c", 3)           # capacity freed

    def test_pop_empty_is_none(self):
        assert FairQueueCore(depth=2).pop() is None

    def test_snapshot(self):
        q = FairQueueCore(depth=8)
        q.push(0, "a", 1)
        q.push(0, "a", 2)
        q.push(3, "b", 3)
        snap = q.snapshot()
        assert snap == {"depth": 3, "capacity": 8,
                        "by_band": {"0": {"a": 2}, "3": {"b": 1}}}

    def test_async_close_drains_then_none(self):
        async def scenario():
            q = FairQueue(depth=4)
            await q.push(0, "a", "item")
            await q.close()
            first = await q.pop()
            second = await q.pop()
            with pytest.raises(QueueFull):
                await q.push(0, "a", "late")
            return first, second
        assert asyncio.run(scenario()) == ("item", None)


# ------------------------------------------------------------ quota ledger


class TestQuotaLedger:
    def test_disabled_passes_through(self):
        ledger = QuotaLedger(0)
        assert not ledger.enabled
        assert ledger.admit("a", 123) == 123
        assert ledger.admit("a", None) is None
        assert ledger.remaining("a") is None

    def test_effective_cap_is_stable_across_spend(self):
        # The admission cap must be a *constant* per client (min of the
        # request and the full budget) — never the running balance.
        # Budgets participate in proof-cache and delta fingerprints, so
        # a balance-derived cap would give every request a different
        # config and no repeat request would ever hit a cache again.
        ledger = QuotaLedger(100)
        assert ledger.admit("a", None) == 100
        assert ledger.admit("a", 10 ** 9) == 100
        assert ledger.admit("a", 5) == 5
        ledger.charge("a", 90)
        assert ledger.admit("a", None) == 100      # not 10
        assert ledger.remaining("a") == 10

    def test_exhaustion_refuses_and_counts(self):
        ledger = QuotaLedger(50)
        ledger.charge("greedy", 50)
        with pytest.raises(QuotaExceeded) as exc:
            ledger.admit("greedy", None)
        assert exc.value.used == 50 and exc.value.budget == 50
        snap = ledger.snapshot()
        assert snap["clients"]["greedy"]["refused"] == 1
        assert snap["clients"]["greedy"]["remaining"] == 0
        # Other clients are unaffected.
        assert ledger.admit("polite", None) == 50

    def test_steps_spent_sums_solver_counters(self):
        stats = {"conflicts": 3, "rounds": 4, "instantiations": 5,
                 "mbqi_instantiations": 1, "cache_hits": 99}
        assert steps_spent(stats) == 13
        assert steps_spent({}) == 0


# ------------------------------------------------------------- solver pool


class _FakeSolver:
    def __init__(self, max_instantiations=0, instantiations=0):
        self.config = types.SimpleNamespace(
            max_instantiations=max_instantiations)
        self.stats = types.SimpleNamespace(instantiations=instantiations)


class TestSolverPool:
    def test_group_key_content_addressed(self):
        cfg = SolverConfig()
        x = T.Const("x", T.INT)
        a1 = [T.Eq(x, T.IntVal(1))]
        a2 = [T.Eq(x, T.IntVal(2))]
        k1 = SolverPool.group_key(a1, cfg)
        assert k1 == SolverPool.group_key(list(a1), cfg)
        assert k1 != SolverPool.group_key(a2, cfg)
        assert k1 != SolverPool.group_key(a1, SolverConfig(max_rounds=7))

    def test_acquire_miss_then_hit_is_exclusive(self):
        pool = SolverPool(budget_bytes=1000)
        assert pool.acquire("k") is None
        s = _FakeSolver()
        pool.release("k", s, 100, module="m")
        assert len(pool) == 1
        got, qbytes = pool.acquire("k")
        assert got is s and qbytes == 100
        assert pool.acquire("k") is None          # checked out = removed
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["entries"] == 0 and stats["bytes"] == 0

    def test_lru_eviction_under_byte_budget(self):
        pool = SolverPool(budget_bytes=100)
        pool.release("old", _FakeSolver(), 60)
        pool.release("new", _FakeSolver(), 60)    # 120 > 100: evict LRU
        assert len(pool) == 1
        assert pool.acquire("old") is None
        assert pool.acquire("new") is not None
        assert pool.stats()["evictions"] == 1

    def test_wear_retirement(self):
        pool = SolverPool(budget_bytes=1000)
        worn = _FakeSolver(max_instantiations=100, instantiations=50)
        pool.release("k", worn, 10)
        assert len(pool) == 0
        assert pool.stats()["retired"] == 1
        fresh = _FakeSolver(max_instantiations=100, instantiations=49)
        pool.release("k", fresh, 10)
        assert len(pool) == 1

    def test_oversize_entry_retired(self):
        pool = SolverPool(budget_bytes=100)
        pool.release("k", _FakeSolver(), 101)
        assert len(pool) == 0 and pool.stats()["retired"] == 1

    def test_close_refuses_release(self):
        pool = SolverPool(budget_bytes=1000)
        pool.release("k", _FakeSolver(), 10)
        pool.close()
        assert len(pool) == 0
        pool.release("k2", _FakeSolver(), 10)
        assert len(pool) == 0


# -------------------------------------------------- session + pool residency


class TestSessionResidency:
    def test_context_manager_closes_owned_pool(self):
        with Session(VerifyConfig(incremental=True), warm_pool=True) as s:
            s.verify_module(_build(CASE_STUDIES[0]))
            pool = s.warm_pool
            assert len(pool) > 0
        assert s.warm_pool is None and len(pool) == 0

    def test_borrowed_pool_survives_session_close(self):
        pool = SolverPool()
        with Session(VerifyConfig(incremental=True), warm_pool=pool) as s:
            s.verify_module(_build(CASE_STUDIES[0]))
        assert len(pool) > 0
        pool.close()

    def test_warm_reuse_builds_no_solver_and_matches_fresh(self):
        dotted = CASE_STUDIES[0]
        with Session(VerifyConfig(incremental=True)) as fresh:
            expected = _normalize(fresh.verify_module(_build(dotted))
                                  .to_json())
        pool = SolverPool()
        try:
            with Session(VerifyConfig(incremental=True),
                         warm_pool=pool) as s1:
                first = s1.verify_module(_build(dotted))
            built0 = solver_constructions()
            with Session(VerifyConfig(incremental=True),
                         warm_pool=pool) as s2:
                second = s2.verify_module(_build(dotted))
            built = solver_constructions() - built0
        finally:
            pool.close()
        assert built == 0, "every warm group should check out a pooled solver"
        assert second.stats.get("warm_pool_hits", 0) > 0
        assert _normalize(first.to_json()) == expected
        assert _normalize(second.to_json()) == expected


# ------------------------------------------------------------------ daemon


class _Daemon:
    """A live VerifyServer on an ephemeral port, in a background thread."""

    def __init__(self, server_cfg=None, verify_cfg=None):
        self.server = VerifyServer(
            server_cfg or ServerConfig(port=0, workers=2),
            verify_cfg if verify_cfg is not None else VerifyConfig())
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            await self.server.start()
            self._started.set()
            await self.server.serve_forever()
        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(15), "daemon failed to start"
        return self

    def client(self, name="anon", timeout=180.0):
        return ServerClient("127.0.0.1", self.server.port,
                            client=name, timeout=timeout)

    def __exit__(self, exc_type, exc, tb):
        if self._thread.is_alive():
            try:
                with self.client("teardown") as c:
                    c.shutdown()
            except Exception:
                pass
            self._thread.join(30)
        assert not self._thread.is_alive(), "daemon thread did not exit"


class TestDaemon:
    def test_cold_delta_edit_lifecycle(self, tmp_path):
        """Cold solve → identical re-submission rides the delta path with
        zero solver constructions → a one-function edit re-solves only
        the changed fingerprint.  Verdicts stay byte-identical.

        Triage off: the fixture's obligations must actually reach the
        solver so cold-vs-delta solver constructions witness the path."""
        cfg = VerifyConfig(cache_dir=str(tmp_path / "cache"),
                           triage="off")
        with _Daemon(verify_cfg=cfg) as d, d.client("editor") as c:
            cold = c.verify(source=MODULE_V1, builder="build")
            assert cold["status"] == "ok" and cold["result"]["ok"]
            assert cold["server"]["path"] == PATH_COLD
            assert cold["server"]["solvers_built"] > 0
            assert cold["server"]["queued_ms"] >= 0

            again = c.verify(source=MODULE_V1, builder="build")
            assert again["server"]["path"] == PATH_DELTA
            assert again["server"]["solvers_built"] == 0
            assert again["server"]["delta_skips"] == 2
            assert _normalize(again["result"]) == _normalize(cold["result"])

            edited = c.verify(source=MODULE_V2, builder="build")
            assert edited["result"]["ok"]
            assert edited["server"]["delta_skips"] == 1, \
                "only the edited function may re-solve"
            assert edited["server"]["solvers_built"] > 0

            status = c.status()["result"]
            assert status["paths"]["cold"] == 1
            assert status["paths"]["delta"] >= 1
            assert status["requests"]["verify"] == 3
            assert status["warm"]["entries"] > 0
            assert status["cache"]["dir"] == cfg.cache_dir

    def test_eight_concurrent_clients_match_batch(self, tmp_path):
        """Acceptance: 8 concurrent clients submitting the five shipped
        case studies get verdicts byte-identical to batch Session runs."""
        with Session(VerifyConfig(incremental=True)) as batch:
            expected = {dotted: _normalize(batch.verify_module(
                _build(dotted)).to_json()) for dotted in CASE_STUDIES}

        cfg = VerifyConfig(cache_dir=str(tmp_path / "cache"))
        failures = []

        def one_client(idx):
            order = list(CASE_STUDIES)
            random.Random(idx).shuffle(order)
            try:
                with d.client(f"client-{idx}") as c:
                    for dotted in order:
                        reply = c.verify(builder=dotted)
                        if reply["status"] != "ok":
                            failures.append((idx, dotted, reply))
                        elif _normalize(reply["result"]) != expected[dotted]:
                            failures.append((idx, dotted, "verdict diverged"))
            except Exception as exc:       # pragma: no cover - diagnostics
                failures.append((idx, "transport", repr(exc)))

        with _Daemon(ServerConfig(port=0, workers=4),
                     verify_cfg=cfg) as d:
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(600)
            status = d.client("observer").status()["result"]

        assert not failures, failures[:3]
        assert status["requests"]["verify"] == 40
        # 40 requests over 5 distinct modules: shared residency means most
        # requests ride a fast path.  Concurrent first submissions of the
        # same module can race past the delta recording (both solve cold),
        # so the bound is loose — but the steady state must be delta.
        assert status["paths"]["cold"] <= 20
        assert status["paths"]["delta"] >= 10
        assert sum(status["paths"].values()) == 40

    def test_per_request_overrides_and_rejection(self, tmp_path):
        with _Daemon() as d, d.client() as c:
            plain = c.verify(source=BROKEN_SRC, builder="build")
            assert plain["status"] == "ok" and not plain["result"]["ok"]
            assert all(f.get("diag") is None
                       for f in plain["result"]["failures"])

            diag = c.verify(source=BROKEN_SRC, builder="build",
                            config={"diagnostics": True})
            assert not diag["result"]["ok"]
            assert any(f.get("diag") for f in diag["result"]["failures"])

            rejected = c.request("verify",
                                 module={"source": BROKEN_SRC,
                                         "builder": "build"},
                                 config={"cache_dir": str(tmp_path)})
            assert rejected["status"] == "error"
            assert "cache_dir" in rejected["error"]

            bad_builder = c.verify(builder="repro.api:no_such_builder")
            assert bad_builder["status"] == "error"

    def test_analyze_verb(self):
        with _Daemon() as d, d.client() as c:
            reply = c.analyze(builder=CASE_STUDIES[4])
            assert reply["status"] == "ok"
            assert reply["result"]["ok"]
            assert reply["server"]["path"] == "analyze"
            assert reply["server"]["solvers_built"] == 0

    def test_quota_exhaustion_busy(self):
        server_cfg = ServerConfig(port=0, workers=1, client_quota=5)
        # Triage off: quotas charge solver steps, which statically
        # discharged obligations never spend.
        with _Daemon(server_cfg,
                     verify_cfg=VerifyConfig(triage="off")) as d:
            with d.client("greedy") as c:
                replies = []
                for i in range(10):
                    replies.append(c.verify(source=MODULE_V1.replace(
                        "lit(1000)", f"lit({1000 + i})"), builder="build"))
                    if replies[-1]["status"] == "busy":
                        break
                busy = replies[-1]
                assert busy["status"] == "busy"
                assert busy["reason"] == "quota"
                assert busy["used"] >= busy["budget"] == 5
            # A different client still gets service.
            with d.client("polite") as c2:
                ok = c2.verify(source=MODULE_V1, builder="build")
                assert ok["status"] == "ok" and ok["result"]["ok"]
                status = c2.status()["result"]
            assert status["quota"]["clients"]["greedy"]["refused"] >= 1

    def test_queue_full_busy(self):
        server_cfg = ServerConfig(port=0, workers=1, queue_depth=1)
        with _Daemon(server_cfg) as d:
            replies = {}

            def submit(tag, delay):
                with d.client(f"c-{tag}") as c:
                    replies[tag] = c.verify(
                        source=SLOW_SRC.format(delay=delay, tag=tag),
                        builder="build")

            t1 = threading.Thread(target=submit, args=("first", 2.0))
            t1.start()
            time.sleep(0.5)       # worker is now sleeping in the build
            t2 = threading.Thread(target=submit, args=("second", 0))
            t2.start()
            time.sleep(0.5)       # queue now holds the second request
            submit("third", 0)    # depth 1 exceeded -> BUSY
            t1.join(60)
            t2.join(60)
            assert replies["third"]["status"] == "busy"
            assert replies["third"]["reason"] == "queue-full"
            assert replies["third"]["capacity"] == 1
            assert replies["first"]["status"] == "ok"
            assert replies["second"]["status"] == "ok"

    def test_journal_resume_across_daemon_restarts(self, tmp_path):
        journal_dir = tmp_path / "journal"
        cfg = VerifyConfig(journal_dir=str(journal_dir))
        with _Daemon(verify_cfg=cfg) as d, d.client() as c:
            first = c.verify(source=MODULE_V1, builder="build")
            assert first["result"]["ok"]
            assert first["server"]["path"] == PATH_COLD
        assert (journal_dir / "served_mod.journal").exists()

        # A new daemon over the same journal directory: the request is
        # resumable, and re-submission replays every journaled goal
        # without constructing a single solver.
        with _Daemon(verify_cfg=cfg) as d2, d2.client() as c2:
            status = c2.status()["result"]
            assert "served_mod" in status["resumable"]
            replay = c2.verify(source=MODULE_V1, builder="build")
            assert replay["result"]["ok"]
            assert replay["server"]["path"] == PATH_JOURNAL
            assert replay["server"]["solvers_built"] == 0
            assert _normalize(replay["result"]) == \
                _normalize(first["result"])

    def test_priority_bands_order_service(self):
        """With one worker wedged on a slow request, queued requests are
        served by priority band, not arrival order."""
        server_cfg = ServerConfig(port=0, workers=1, queue_depth=8)
        done = []
        with _Daemon(server_cfg) as d:
            def submit(tag, priority, delay=0.0):
                with d.client(f"c-{tag}") as c:
                    reply = c.verify(
                        source=SLOW_SRC.format(delay=delay, tag=tag),
                        builder="build", priority=priority)
                    done.append((tag, reply["status"]))

            wedge = threading.Thread(target=submit, args=("wedge", 0, 1.5))
            wedge.start()
            time.sleep(0.5)
            low = threading.Thread(target=submit, args=("low", 0))
            low.start()
            time.sleep(0.2)
            high = threading.Thread(target=submit, args=("high", 9))
            high.start()
            for t in (wedge, low, high):
                t.join(60)
        order = [tag for tag, _ in done]
        assert order.index("high") < order.index("low")
        assert all(status == "ok" for _, status in done)

    def test_malformed_line_gets_error_reply(self):
        with _Daemon() as d:
            import socket
            with socket.create_connection(("127.0.0.1", d.server.port),
                                          timeout=10) as sock:
                sock.sendall(b"this is not json\n")
                data = b""
                while b"\n" not in data:
                    data += sock.recv(4096)
            reply = json.loads(data)
            assert reply["status"] == "error"
            assert "JSON" in reply["error"]

    def test_shutdown_releases_residency(self, tmp_path):
        # Triage off so the verify actually populates the warm pool.
        cfg = VerifyConfig(cache_dir=str(tmp_path / "cache"),
                           triage="off")
        d = _Daemon(verify_cfg=cfg)
        with d, d.client() as c:
            c.verify(source=MODULE_V1, builder="build")
            assert len(d.server.pool) > 0
            reply = c.shutdown()
            assert reply["status"] == "ok"
        assert len(d.server.pool) == 0
