"""Static proving tier tests (repro.analysis.absint).

Four layers, mirroring the tier's soundness argument:

1. **domain lattices** — interval/constant/congruence algebra: join is
   an upper bound, meet is sound (never loses members of both sides),
   widening reaches a post-fixpoint, narrowing refines without losing
   the concrete value, and the abstract arithmetic over-approximates
   the concrete arithmetic on sampled members;
2. **term-level differential** — whenever ``entails`` claims an
   obligation, a fresh :class:`SmtSolver` on ``assumptions ∧ ¬goal``
   must answer UNSAT (the tier is a sound pre-filter, never a
   disagreeing oracle), fuzzed over randomized integer-fragment
   obligations;
3. **AST-level differential** — the engine's abstract ``eval`` must
   contain the concrete ``Interp`` value on random environments drawn
   from the abstract state;
4. **scheduler integration** — verdict signatures are byte-identical
   with triage on vs off, serial vs jobs=2, cold vs cache-warm; static
   cache entries replay only in ``on`` mode; shadow mode actually runs
   the solver and raises ``TriageDisagreement`` when a (fault-injected)
   tier claim meets a solver refutation.
"""

import random

import pytest

from repro.analysis.absint import (Triage, TriageDisagreement,
                                   triage_preview)
from repro.analysis.absint.domains import (BOT_VAL, TOP_VAL, Congruence,
                                           Const, Interval, Val, cmp_eq,
                                           cmp_le, cmp_lt)
from repro.analysis.absint.engine import AbsState, AbstractInterp
from repro.analysis.absint.transfer import build_env, entails
from repro.api import Session, VerifyConfig
from repro.lang import *
from repro.smt import terms as T
from repro.smt.solver import (SAT, UNSAT, SmtSolver,
                              total_solver_constructions)
from repro.smt.sorts import INT as SINT
from repro.vc.errors import PROVED, STATIC_PROVED
from repro.vc.interp import Interp

# ---------------------------------------------------------------------------
# 1. domain lattices
# ---------------------------------------------------------------------------

SAMPLES = [-7, -4, -1, 0, 1, 2, 3, 4, 5, 8, 12, 100]


def _members(itv, lo=-20, hi=20):
    return [v for v in range(lo, hi + 1) if itv.contains(v)]


def test_interval_join_upper_bound():
    rng = random.Random(7)
    for _ in range(200):
        a = Interval(rng.randint(-10, 5), rng.randint(-4, 15))
        b = Interval(rng.randint(-10, 5), rng.randint(-4, 15))
        j = a.join(b)
        assert a.le(j) and b.le(j)
        for v in _members(a) + _members(b):
            assert j.contains(v)


def test_interval_meet_exact():
    a, b = Interval(0, 10), Interval(5, None)
    m = a.meet(b)
    assert m == Interval(5, 10)
    assert Interval(0, 3).meet(Interval(5, 9)).is_empty


def test_interval_widen_post_fixpoint():
    a, b = Interval(0, 5), Interval(0, 9)
    w = a.widen(b)
    # Widening jumps the unstable bound to infinity and is a post-
    # fixpoint of both arguments.
    assert a.le(w) and b.le(w)
    assert w.hi is None and w.lo == 0
    # Narrowing may pull an infinite bound back but never drops members
    # of the (smaller) narrowing argument.
    n = w.narrow(Interval(0, 9))
    assert Interval(0, 9).le(n)


def test_interval_euclidean_mod_nonnegative():
    # Euclidean a mod b lands in [0, |b|-1] regardless of signs.
    m = Interval(-9, 9).mod(Interval(4, 4))
    for a in range(-9, 10):
        assert m.contains(a % 4)
    assert m.lo >= 0 and m.hi <= 3


def test_interval_mod_divisor_straddling_zero_is_top():
    # The solver's divmod axioms are guarded by b>=1 / b<=-1; a divisor
    # range containing 0 leaves mod uninterpreted, so the abstract
    # result must be top — never [0, max|b|-1].
    assert Interval(-9, 9).mod(Interval(0, 3)) == Interval()
    assert Interval(-9, 9).mod(Interval(-3, 3)) == Interval()
    assert Interval(-9, 9).mod(Interval(0, 0)) == Interval()
    assert Interval(-9, 9).mod(Interval(None, 3)) == Interval()
    assert Interval(-9, 9).mod(Interval(-3, None)) == Interval()
    assert Interval(-9, 9).mod(Interval(None, None)) == Interval()
    # Sign-fixed divisors stay bounded (and sound on members).
    assert Interval(-9, 9).mod(Interval(1, 3)) == Interval(0, 2)
    assert Interval(-9, 9).mod(Interval(2, None)) == Interval(0, None)
    m = Interval(-9, 9).mod(Interval(-5, -2))
    for a in range(-9, 10):
        for b in (-5, -4, -3, -2):
            assert m.contains(a % abs(b))
    assert m == Interval(0, 4)
    assert Interval(-9, 9).mod(Interval(None, -2)) == Interval(0, None)


def test_congruence_join_gcd_meet_crt():
    a, b = Congruence(4, 1), Congruence(6, 3)
    j = a.join(b)
    for v in range(-50, 50):
        if a.contains(v) or b.contains(v):
            assert j.contains(v)
    # CRT meet: x ≡ 1 mod 4 and x ≡ 3 mod 6 → x ≡ 9 mod 12.
    m = a.meet(b)
    for v in range(-50, 50):
        assert m.contains(v) == (v % 4 == 1 and v % 6 == 3)
    # Incompatible residues meet to bottom.
    assert Congruence(4, 1).meet(Congruence(4, 2)).is_bottom


def test_val_arithmetic_over_approximates():
    rng = random.Random(11)
    ops = [("add", lambda x, y: x + y),
           ("sub", lambda x, y: x - y),
           ("mul", lambda x, y: x * y)]
    for _ in range(300):
        xa, xb = sorted(rng.sample(range(-12, 13), 2))
        ya, yb = sorted(rng.sample(range(-12, 13), 2))
        av, bv = Val.range(xa, xb), Val.range(ya, yb)
        x, y = rng.randint(xa, xb), rng.randint(ya, yb)
        for name, conc in ops:
            out = getattr(av, name)(bv)
            got = conc(x, y)
            assert out.itv.contains(got), (name, x, y, out)
            assert out.cong.contains(got), (name, x, y, out)


def test_val_const_and_cmp_three_valued():
    assert Val.const(5).as_const() == 5
    assert cmp_le(Val.range(0, 3), Val.range(3, None)) is True
    assert cmp_lt(Val.range(0, 3), Val.range(4, None)) is True
    assert cmp_lt(Val.range(0, 3), Val.range(3, None)) is None
    assert cmp_eq(Val.const(2), Val.const(2)) is True
    assert cmp_eq(Val.const(2), Val.const(3)) is False
    # Bottom is vacuously anything.
    assert cmp_le(BOT_VAL, Val.const(0)) is True


def test_val_reduce_congruence_tightens_interval():
    # x in [1, 6] with x ≡ 0 mod 4 reduces to the constant 4.
    v = Val(Interval(1, 6), Const("top"), Congruence(4, 0)).reduce()
    assert v.as_const() == 4


# ---------------------------------------------------------------------------
# 2. term-level differential: entails ⇒ solver UNSAT on ¬goal
# ---------------------------------------------------------------------------

def _random_obligation(rng):
    """(assumptions, goal) over a couple of integer variables."""
    x = T.Var("x", SINT)
    y = T.Var("y", SINT)
    lo, hi = sorted(rng.sample(range(-8, 33), 2))
    k = rng.choice([2, 3, 4, 8])
    r = rng.randrange(k)
    assumptions = [T.Le(T.IntVal(lo), x), T.Lt(x, T.IntVal(hi))]
    if rng.random() < 0.6:
        assumptions.append(T.Eq(T.Mod(x, T.IntVal(k)), T.IntVal(r)))
    if rng.random() < 0.5:
        assumptions.append(T.Eq(y, T.Add(x, T.IntVal(rng.randint(0, 5)))))
    else:
        assumptions.append(T.Le(x, y))
    rng.shuffle(assumptions)
    goals = [
        T.Le(T.IntVal(lo), x),
        T.Lt(x, T.IntVal(hi + rng.randint(0, 3))),
        T.Le(T.IntVal(lo - rng.randint(0, 3)), y),
        T.And(T.Le(T.IntVal(lo), x), T.Lt(x, T.IntVal(hi))),
        T.Eq(T.Mod(x, T.IntVal(k)), T.IntVal(r)),
        T.Implies(T.Lt(x, T.IntVal(lo)), T.FALSE),
        # Variable divisor whose range may straddle 0 (mod is then
        # uninterpreted in the solver): claimable only when the
        # assumptions force y >= 1.
        T.Le(T.IntVal(0), T.Mod(x, y)),
        # Deliberately unprovable sometimes: tier must just decline.
        T.Lt(y, T.IntVal(rng.randint(-5, 5))),
        T.Eq(x, T.IntVal(rng.randint(lo, hi - 1))),
    ]
    return assumptions, rng.choice(goals)


def test_entails_never_disagrees_with_solver():
    rng = random.Random(1234)
    claimed = 0
    for _ in range(120):
        assumptions, goal = _random_obligation(rng)
        proved, _passes = entails(assumptions, goal)
        if not proved:
            continue
        claimed += 1
        s = SmtSolver()
        for a in assumptions:
            s.add(a)
        s.add(T.Not(goal))
        assert s.check() == UNSAT, (assumptions, goal)
    # The generator is tilted so a healthy share is actually provable;
    # a tier that never claims would vacuously pass the loop above.
    assert claimed >= 20


def test_entails_declines_falsifiable_goals():
    x = T.Var("x", SINT)
    proved, _ = entails([T.Le(T.IntVal(0), x)], T.Lt(x, T.IntVal(10)))
    assert not proved
    # ... and the solver confirms the negation is satisfiable.
    s = SmtSolver()
    s.add(T.Le(T.IntVal(0), x))
    s.add(T.Not(T.Lt(x, T.IntVal(10))))
    assert s.check() == SAT


def test_entails_declines_mod_with_divisor_straddling_zero():
    # Reviewer repro: with 0 <= b <= 3 the divisor may be 0, where the
    # solver's mod is uninterpreted — the tier must not claim
    # 0 <= a mod b, and the solver indeed finds a countermodel (b=0).
    a = T.Var("a", SINT)
    b = T.Var("b", SINT)
    assumptions = [T.Le(T.IntVal(0), b), T.Le(b, T.IntVal(3))]
    goal = T.Le(T.IntVal(0), T.Mod(a, b))
    proved, _ = entails(assumptions, goal)
    assert not proved
    s = SmtSolver()
    for t in assumptions:
        s.add(t)
    s.add(T.Not(goal))
    assert s.check() == SAT
    # Excluding 0 restores the guarded axiom, and the claim is sound.
    proved, _ = entails([T.Le(T.IntVal(1), b), T.Le(b, T.IntVal(3))], goal)
    assert proved
    s = SmtSolver()
    s.add(T.Le(T.IntVal(1), b))
    s.add(T.Le(b, T.IntVal(3)))
    s.add(T.Not(goal))
    assert s.check() == UNSAT


def test_entails_bottom_assumptions_prove_anything():
    x = T.Var("x", SINT)
    contradiction = [T.Le(T.IntVal(5), x), T.Lt(x, T.IntVal(5))]
    proved, _ = entails(contradiction, T.Eq(x, T.IntVal(777)))
    assert proved
    s = SmtSolver()
    for a in contradiction:
        s.add(a)
    assert s.check() == UNSAT


def test_build_env_congruence_refinement():
    x = T.Var("x", SINT)
    env, _passes = build_env([
        T.Le(T.IntVal(0), x),
        T.Lt(x, T.IntVal(64)),
        T.Eq(T.Mod(x, T.IntVal(8)), T.IntVal(0)),
    ])
    v = env.eval(x)
    # The reduced product snaps the upper bound to the largest multiple
    # of 8 below 64.
    assert v.itv.lo == 0 and v.itv.hi == 56
    assert v.cong.contains(56) and not v.cong.contains(57)


# ---------------------------------------------------------------------------
# 3. AST-level differential: abstract eval contains concrete eval
# ---------------------------------------------------------------------------

def _random_int_expr(rng, names, depth):
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return var(rng.choice(names), INT)
        return lit(rng.randint(-6, 6))
    a = _random_int_expr(rng, names, depth - 1)
    b = _random_int_expr(rng, names, depth - 1)
    op = rng.choice(["+", "-", "*", "/", "%", "ite"])
    if op == "ite":
        c = _random_bool_expr(rng, names, depth - 1)
        return ite(c, a, b)
    if op in ("/", "%"):
        # Keep divisors concrete and non-zero so the concrete interpreter
        # cannot fault; the abstract side handles arbitrary divisors.
        b = lit(rng.choice([2, 3, 4, -3, 5]))
    return a + b if op == "+" else (
        a - b if op == "-" else (
            a * b if op == "*" else (
                a // b if op == "/" else a % b)))


def _random_bool_expr(rng, names, depth):
    a = _random_int_expr(rng, names, max(depth - 1, 0))
    b = _random_int_expr(rng, names, max(depth - 1, 0))
    return rng.choice([a < b, a <= b, a.eq(b)])


def test_engine_eval_contains_concrete_eval():
    rng = random.Random(99)
    names = ["p", "q", "r"]
    for _ in range(250):
        expr = _random_int_expr(rng, names, 3)
        # Concrete env drawn from the abstract one.
        state = AbsState()
        env = {}
        for n in names:
            lo, hi = sorted(rng.sample(range(-9, 10), 2))
            state.set(n, Val.range(lo, hi))
            env[n] = rng.randint(lo, hi)
        concrete = Interp().eval(expr, env)
        abstract = AbstractInterp().eval(expr, state)
        assert abstract.itv.contains(concrete), (expr, env, abstract)
        assert abstract.cong.contains(concrete), (expr, env, abstract)
        if abstract.as_const() is not None:
            assert abstract.as_const() == concrete


def test_engine_loop_invariant_bounds():
    # The fixpoint over a counted loop must respect declared invariants:
    # after `while i < n invariant 0 <= i <= n`, i == n is containable.
    mod = Module("absint_loop")
    n = var("n", INT)
    i = var("i", INT)
    exec_fn(mod, "count", [("n", INT)], ret=("r", INT),
            requires=[n >= lit(0), n <= lit(100)],
            ensures=[var("r", INT).eq(n)],
            body=[
                let_("i", lit(0)),
                while_(i < n, [i >= lit(0), i <= n],
                       [assign("i", i + 1)]),
                ret(i),
            ])
    from repro.analysis.absint.engine import analyze_function
    fn = mod.functions["count"]
    report = analyze_function(mod, fn)
    iv = report.state.get("i")
    assert not iv.is_bottom
    assert iv.itv.lo is not None and iv.itv.lo >= 0
    assert report.loop_iters >= 1


# ---------------------------------------------------------------------------
# 4. scheduler integration
# ---------------------------------------------------------------------------

def _case_module():
    """A module the tier can partially discharge: bounds + parity goals."""
    mod = Module("absint_sched")
    x = var("x", U64)
    r = var("res", U64)
    exec_fn(mod, "clamp", [("x", U64)], ret=("res", U64),
            requires=[x < lit(1000)],
            ensures=[r < lit(2000), r >= lit(0)],
            body=[ret(x + x)])
    exec_fn(mod, "step4", [("x", U64)], ret=("res", U64),
            requires=[x % lit(4) == lit(0), x < lit(100)],
            ensures=[r % lit(4) == lit(0)],
            body=[ret(x + lit(4))])
    return mod


def _signature(res):
    return [(f.name, o.label, o.kind, o.status)
            for f in res.functions for o in f.obligations]


def _verify(mod_builder, **cfg):
    with Session(VerifyConfig(**cfg)) as session:
        return session.verify_module(mod_builder())


def test_triage_discharges_and_matches_off():
    on = _verify(_case_module, triage="on")
    off = _verify(_case_module, triage="off")
    assert on.ok and off.ok
    assert _signature(on) == _signature(off)
    assert on.stats.get("static_proved", 0) >= 1
    assert (on.stats.get("solver_constructions_avoided", 0)
            == on.stats.get("static_proved", 0))
    # Static verdicts surface as PROVED with the tier marker in stats.
    marked = [o for f in on.functions for o in f.obligations
              if o.stats.get("tier") == STATIC_PROVED]
    assert len(marked) == on.stats["static_proved"]
    assert all(o.status == PROVED for o in marked)


def test_triage_serial_vs_jobs2_identical():
    serial = _verify(_case_module, triage="on", jobs=1)
    par = _verify(_case_module, triage="on", jobs=2)
    assert _signature(serial) == _signature(par)
    assert (serial.stats.get("static_proved", 0)
            == par.stats.get("static_proved", 0) >= 1)


def test_triage_cache_warm_replays_static(tmp_path):
    cache = str(tmp_path / "pv_cache")
    cold = _verify(_case_module, triage="on", cache_dir=cache)
    before = total_solver_constructions()
    warm = _verify(_case_module, triage="on", cache_dir=cache)
    assert total_solver_constructions() == before  # zero solvers built
    assert _signature(cold) == _signature(warm)
    assert (warm.stats.get("static_proved", 0)
            == cold.stats.get("static_proved", 0) >= 1)


def test_static_cache_entry_is_miss_when_triage_off(tmp_path):
    cache = str(tmp_path / "pv_cache")
    cold = _verify(_case_module, triage="on", cache_dir=cache)
    n_static = cold.stats["static_proved"]
    assert n_static >= 1
    # Triage off must NOT replay static-provenance entries: the solver
    # re-proves them (constructions observable), verdicts unchanged.
    before = total_solver_constructions()
    off = _verify(_case_module, triage="off", cache_dir=cache)
    assert total_solver_constructions() - before >= n_static
    assert _signature(off) == _signature(cold)
    assert off.stats.get("static_proved", 0) == 0
    # The solver verdict overwrote the entry: a second off-run is now a
    # pure cache replay again.
    before = total_solver_constructions()
    off2 = _verify(_case_module, triage="off", cache_dir=cache)
    assert total_solver_constructions() == before
    assert _signature(off2) == _signature(cold)


def test_static_journal_entry_is_miss_when_triage_off(tmp_path):
    jdir = str(tmp_path / "journals")
    cold = _verify(_case_module, triage="on", journal_dir=jdir)
    n_static = cold.stats["static_proved"]
    assert n_static >= 1
    # A triage-off resume must not replay static-kinded journal records
    # with no solver: they get re-proved (constructions observable).
    before = total_solver_constructions()
    off = _verify(_case_module, triage="off", journal_dir=jdir)
    assert total_solver_constructions() - before >= n_static
    assert off.stats.get("static_proved", 0) == 0
    assert _signature(off) == _signature(cold)
    # The re-proved records overwrote the static ones, so a further
    # resume replays everything solver-free again.
    before = total_solver_constructions()
    replay = _verify(_case_module, triage="off", journal_dir=jdir)
    assert total_solver_constructions() == before
    assert _signature(replay) == _signature(cold)


def test_delta_replay_drops_static_provenance_when_triage_off(tmp_path):
    cache = str(tmp_path / "pv_cache")
    cold = _verify(_case_module, triage="on", cache_dir=cache, delta=True)
    assert cold.stats["static_proved"] >= 1
    # A triage-off warm run hits the delta entries (verdicts are sound
    # either way) but must report exactly what a triage-off cold run
    # would — no static provenance.
    off = _verify(_case_module, triage="off", cache_dir=cache, delta=True)
    assert off.stats.get("delta_skips", 0) >= 1
    assert not any(o.stats.get("tier") == STATIC_PROVED
                   for f in off.functions for o in f.obligations)
    # An on-mode warm run keeps the provenance byte-identical to cold.
    on = _verify(_case_module, triage="on", cache_dir=cache, delta=True)
    assert on.stats.get("delta_skips", 0) >= 1
    assert any(o.stats.get("tier") == STATIC_PROVED
               for f in on.functions for o in f.obligations)


def test_shadow_mode_runs_solver_and_agrees():
    before = total_solver_constructions()
    off = _verify(_case_module, triage="off")
    off_built = total_solver_constructions() - before
    before = total_solver_constructions()
    shadow = _verify(_case_module, triage="shadow")
    shadow_built = total_solver_constructions() - before
    assert shadow.ok
    assert shadow_built == off_built  # shadow never skips the solver
    assert shadow.stats.get("static_proved", 0) >= 1
    assert shadow.stats.get("solver_constructions_avoided", 0) == 0
    assert _signature(shadow) == _signature(off)


def test_shadow_mode_raises_on_forced_disagreement(monkeypatch):
    # Fault-inject the tier: claim every obligation, including ones the
    # solver refutes.  Shadow mode must catch the lie loudly.
    import repro.analysis.absint as absint
    monkeypatch.setattr(absint.Triage, "check",
                        lambda self, item: (True, 1))
    mod = Module("absint_lie")
    x = var("x", INT)
    exec_fn(mod, "bad", [("x", INT)], ret=("r", INT),
            ensures=[var("r", INT).eq(x + 1)],
            body=[ret(x)])
    with pytest.raises(TriageDisagreement) as exc:
        _verify(lambda: mod, triage="shadow")
    assert "bad" in str(exc.value)


def test_triage_preview_counts():
    preview = triage_preview(_case_module())
    assert preview["module"] == "absint_sched"
    assert preview["obligations"] >= preview["static_proved"] >= 1
    assert preview["plan_errors"] == 0
    assert 0.0 <= preview["rate"] <= 1.0
    assert {f["function"] for f in preview["functions"]} \
        == {"clamp", "step4"}


def test_triage_mode_validation():
    with pytest.raises(ValueError):
        Triage("sideways")
    assert Triage("on").active and Triage("shadow").active
    assert not Triage("off").active


def test_render_marks_static_obligations():
    from repro.diag.render import module_to_json
    on = _verify(_case_module, triage="on")
    payload = module_to_json(on)
    assert payload["schema_version"] == 2
    flags = [o["static"] for f in payload["functions"]
             for o in f["obligations"]]
    assert any(flags)
    assert sum(flags) == on.stats["static_proved"]
