"""Tests for #[epr_mode] (§3.2): checking + complete automation."""

import pytest

from repro.epr import EprError, check_epr_module, verify_epr_module
from repro.lang import *

Node = StructType("TENode")
State = StructType("TEState")


def _lock_module():
    mod = Module("te_lock", epr_mode=True)
    mod.add(Function("holds", "spec",
                     [Param("s", State), Param("n", Node)],
                     ("result", BOOL)))
    s, s2 = var("s", State), var("s2", State)
    n1, n2 = var("n1", Node), var("n2", Node)

    def inv(st):
        return forall([("a", Node), ("b", Node)],
                      and_all(call(mod, "holds", st, var("a", Node)),
                              call(mod, "holds", st, var("b", Node))
                              ).implies(var("a", Node).eq(var("b", Node))))

    step = and_all(
        call(mod, "holds", s, n1),
        call(mod, "holds", s2, n2),
        forall([("m", Node)],
               call(mod, "holds", s2, var("m", Node)).implies(
                   var("m", Node).eq(n2))))
    proof_fn(mod, "step_preserves_mutex",
             [("s", State), ("s2", State), ("n1", Node), ("n2", Node)],
             requires=[inv(s), step], ensures=[inv(s2)], body=[])
    return mod, inv, step


def test_lock_invariant_fully_automatic():
    mod, _, _ = _lock_module()
    res = verify_epr_module(mod)
    assert res.ok


def test_broken_invariant_fails():
    mod = Module("te_lock_bad", epr_mode=True)
    mod.add(Function("holds", "spec",
                     [Param("s", State), Param("n", Node)],
                     ("result", BOOL)))
    s, s2 = var("s", State), var("s2", State)
    n2 = var("n2", Node)
    # "step" that only adds a holder without removing others
    step = call(mod, "holds", s2, n2)

    def inv(st):
        return forall([("a", Node), ("b", Node)],
                      and_all(call(mod, "holds", st, var("a", Node)),
                              call(mod, "holds", st, var("b", Node))
                              ).implies(var("a", Node).eq(var("b", Node))))

    proof_fn(mod, "bad_step", [("s", State), ("s2", State), ("n2", Node)],
             requires=[inv(s), step], ensures=[inv(s2)], body=[])
    # Small budgets: the complete-instantiation loop finds the countermodel
    # quickly; the default allowance is for hard *provable* goals.
    from repro.smt.solver import SolverConfig
    from repro.vc.wp import VcConfig
    res = verify_epr_module(mod, VcConfig(
        mbqi=True, solver_config=SolverConfig(
            mbqi=True, max_rounds=40, max_instantiations=3000,
            mbqi_max_universe=8)))
    assert not res.ok


def test_arithmetic_rejected():
    mod = Module("te_arith", epr_mode=True)
    x = var("x", INT)
    proof_fn(mod, "p", [("x", INT)], requires=[x > 0], ensures=[x >= 1],
             body=[])
    violations = check_epr_module(mod)
    assert violations
    with pytest.raises(EprError):
        verify_epr_module(mod)


def test_seq_rejected():
    SeqT = SeqType(INT)
    mod = Module("te_seq", epr_mode=True)
    s = var("s", SeqT)
    proof_fn(mod, "p", [("s", SeqT)], ensures=[s.length() >= 0], body=[])
    assert check_epr_module(mod)


def test_function_cycle_rejected():
    A_ = StructType("TEA")
    B_ = StructType("TEB")
    mod = Module("te_cycle", epr_mode=True)
    mod.add(Function("f", "spec", [Param("a", A_)], ("result", B_)))
    mod.add(Function("g", "spec", [Param("b", B_)], ("result", A_)))
    violations = check_epr_module(mod)
    assert any("cycle" in v.reason for v in violations)


def test_quantifier_alternation_cycle():
    # forall a:A exists b:B ... in one fn, forall b:B exists a:A in another.
    A_ = StructType("TEA2")
    B_ = StructType("TEB2")
    mod = Module("te_qcycle", epr_mode=True)
    mod.add(Function("r", "spec", [Param("a", A_), Param("b", B_)],
                     ("result", BOOL)))
    f1 = forall([("a", A_)],
                exists([("b", B_)],
                       call(mod, "r", var("a", A_), var("b", B_))))
    f2 = forall([("b", B_)],
                exists([("a", A_)],
                       call(mod, "r", var("a", A_), var("b", B_))))
    proof_fn(mod, "p", [], requires=[f1, f2], ensures=[lit(True)], body=[])
    violations = check_epr_module(mod)
    assert any("cycle" in v.reason for v in violations)


def test_single_alternation_direction_allowed():
    A_ = StructType("TEA3")
    B_ = StructType("TEB3")
    mod = Module("te_qok", epr_mode=True)
    mod.add(Function("r", "spec", [Param("a", A_), Param("b", B_)],
                     ("result", BOOL)))
    f1 = forall([("a", A_)],
                exists([("b", B_)],
                       call(mod, "r", var("a", A_), var("b", B_))))
    proof_fn(mod, "p", [], requires=[f1], ensures=[lit(True)], body=[])
    assert check_epr_module(mod) == []


def test_transitivity_total_order_proof():
    # A totally ordered abstraction (how the delegation map abstracts keys).
    K = StructType("TEKey")
    mod = Module("te_order", epr_mode=True)
    mod.add(Function("lte", "spec", [Param("a", K), Param("b", K)],
                     ("result", BOOL)))
    a, b, c = var("a", K), var("b", K), var("c", K)

    def lte(x, y):
        return call(mod, "lte", x, y)

    total_order = [
        forall([("a", K), ("b", K), ("c", K)],
               and_all(lte(var("a", K), var("b", K)),
                       lte(var("b", K), var("c", K))).implies(
                   lte(var("a", K), var("c", K)))),
        forall([("a", K), ("b", K)],
               and_all(lte(var("a", K), var("b", K)),
                       lte(var("b", K), var("a", K))).implies(
                   var("a", K).eq(var("b", K)))),
        forall([("a", K), ("b", K)],
               or_all(lte(var("a", K), var("b", K)),
                      lte(var("b", K), var("a", K)))),
    ]
    proof_fn(mod, "antisym_consequence", [("a", K), ("b", K)],
             requires=total_order + [lte(a, b), lte(b, a)],
             ensures=[a.eq(b)], body=[])
    res = verify_epr_module(mod)
    assert res.ok
