"""Tests for the NR case study (§4.2.2)."""

import threading

import pytest

from repro.sync import ProtocolViolation
from repro.systems.nr.log import NodeReplicated, NrLog, Replica, SequentialDS
from repro.systems.nr.model import build_nr_system


class TestSequentialDS:
    def test_ops(self):
        ds = SequentialDS()
        ds.apply_write(("set", "k", 1))
        assert ds.read("k") == 1
        ds.apply_write(("del", "k", None))
        assert ds.read("k") is None

    def test_clone_isolated(self):
        ds = SequentialDS()
        ds.apply_write(("set", "k", 1))
        c = ds.clone()
        c.apply_write(("set", "k", 2))
        assert ds.read("k") == 1


class TestNrRuntime:
    def test_basic_replication(self):
        nr = NodeReplicated(num_replicas=2, ghost=True)
        nr.write(0, ("set", "a", 1))
        assert nr.read(1, "a") == 1

    def test_reads_after_writes_linearize(self):
        nr = NodeReplicated(num_replicas=3, ghost=True)
        for i in range(20):
            nr.write(i % 3, ("set", f"k{i}", i))
        for r in range(3):
            for i in range(20):
                assert nr.read(r, f"k{i}") == i

    def test_concurrent_convergence(self):
        nr = NodeReplicated(num_replicas=4, ghost=True)
        errors = []

        def writer(rid):
            try:
                for j in range(25):
                    nr.write(rid, ("set", f"k{rid}_{j}", j))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(r,))
                   for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for r in range(4):
            nr.replicas[r].sync_up()
        states = [nr.replicas[r].ds.state for r in range(4)]
        assert all(s == states[0] for s in states)
        assert len(states[0]) == 100

    def test_ghost_tail_never_lags_physical_tail(self):
        """Regression: append must admit the ghost tail before bumping the
        physical one — combiners snapshot `log.tail` without the log lock,
        and a stale ghost tail makes reader_version's `end <= tail`
        require fail.  Aggressive GIL switching reproduced this reliably
        before the ordering fix."""
        import sys
        old = sys.getswitchinterval()
        sys.setswitchinterval(0.0001)
        try:
            for _ in range(4):
                nr = NodeReplicated(num_replicas=3, ghost=True)
                errors = []

                def writer(rid):
                    try:
                        for j in range(30):
                            nr.write(rid, ("set", f"k{rid}_{j}", j))
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [threading.Thread(target=writer, args=(r,))
                           for r in range(3)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert not errors, errors
        finally:
            sys.setswitchinterval(old)

    def test_ghost_versions_track_log(self):
        nr = NodeReplicated(num_replicas=2, ghost=True)
        nr.write(0, ("set", "x", 1))
        nr.write(0, ("set", "y", 2))
        replica = nr.replicas[0]
        assert replica.version == nr.log.tail
        assert replica._version_token.value == replica.version

    def test_unregistered_token_rejected(self):
        log = NrLog(ghost=True)
        Replica(0, log)
        with pytest.raises(ProtocolViolation):
            # registering the same node twice violates map freshness
            Replica(0, log)


class TestNrModelObligations:
    """Verify a representative subset of the VerusSync obligations.

    The full model (all 7 transitions × 4 invariants) is checked by the
    Figure 9 macrobenchmark; here we keep the quick core.
    """

    @pytest.fixture(scope="class")
    def module(self):
        from repro.vc.wp import VcGen
        sys_ = build_nr_system()
        mod = sys_.obligations_module()
        return mod, VcGen(mod)

    @pytest.mark.parametrize("fn_name", [
        "initialize#establishes",
        "register_node#preserves_versions_bounded",
        "register_node#fresh",
        "append#preserves_tail_nonneg",
        "append#preserves_versions_bounded",
        "reader_finish#fresh",
        "version_in_log#property",
    ])
    def test_obligation(self, module, fn_name):
        mod, gen = module
        assert fn_name in mod.functions
        result = gen.verify_function(mod.functions[fn_name])
        assert result.ok, result.failures()

    def test_broken_variant_caught(self):
        # A finish that publishes an unbounded version must break the
        # versions-bounded invariant.
        from repro.lang import INT, forall, map_empty, var
        from repro.sync import SyncSystem

        sys_ = SyncSystem("nr_broken")
        sys_.field("tail", "variable", vtype=INT)
        sys_.field("local_versions", "map", key=INT, value=INT)
        node = sys_.param("node_id", INT)
        end = sys_.param("end", INT)
        sys_.init("initialize") \
            .init_field("tail", 0) \
            .init_field("local_versions", map_empty(INT, INT))
        sys_.transition("publish_unchecked",
                        params=[("node_id", INT), ("end", INT)]) \
            .remove("local_versions", node) \
            .add("local_versions", node, end)  # no bound on end!
        sys_.invariant(
            "versions_bounded",
            lambda sv: forall(
                [("nn", INT)],
                sv("local_versions").contains_key(var("nn", INT)).implies(
                    sv("local_versions").map_index(var("nn", INT))
                    <= sv("tail"))))
        # small budgets: concluding "not provable" should not burn the
        # full instantiation allowance
        from repro.smt.solver import SolverConfig
        from repro.vc.wp import VcConfig
        res = sys_.check(VcConfig(solver_config=SolverConfig(
            max_rounds=12, max_instantiations=600)))
        assert not res.ok
