"""Tests for the runtime substrates: CRC, pmem, network, DES scheduler."""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.crc import TABLE, crc32, crc32_bitwise
from repro.runtime.des import Resource, Simulator
from repro.runtime.network import Network
from repro.runtime.pmem import CACHELINE, PmemCrash, PmemDevice


class TestCrc32:
    def test_against_zlib(self):
        import zlib
        for data in (b"", b"a", b"hello world", bytes(range(256)) * 3):
            assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=500))
    @settings(max_examples=100)
    def test_table_matches_bitwise(self, data):
        assert crc32(data) == crc32_bitwise(data)

    def test_table_entries_precomputed(self):
        # the by(compute) anecdote: every table entry equals the 8-step
        # polynomial division
        from repro.runtime.crc import _table_entry
        assert TABLE == tuple(_table_entry(i) for i in range(256))

    def test_detects_single_bit_flip(self):
        data = bytearray(b"some metadata record")
        baseline = crc32(bytes(data))
        data[3] ^= 0x10
        assert crc32(bytes(data)) != baseline


class TestPmem:
    def test_write_read(self):
        dev = PmemDevice(4096)
        dev.write(100, b"hello")
        assert dev.read(100, 5) == b"hello"

    def test_unflushed_lost_on_crash(self):
        dev = PmemDevice(4096)
        dev.write(0, b"persist-me")
        dev.flush(0, 10)
        dev.write(200, b"volatile")
        dev.crash()
        assert dev.read_persistent(0, 10) == b"persist-me"
        assert dev.read_persistent(200, 8) == b"\x00" * 8

    def test_flush_granularity_is_cacheline(self):
        dev = PmemDevice(4096)
        dev.write(0, b"A" * CACHELINE)
        dev.write(CACHELINE, b"B" * CACHELINE)
        dev.flush(0, 1)  # only the first line
        dev.crash()
        assert dev.read_persistent(0, 1) == b"A"
        assert dev.read_persistent(CACHELINE, 1) == b"\x00"

    def test_scheduled_crash_raises(self):
        dev = PmemDevice(4096)
        dev.schedule_crash(after_writes=2)
        dev.write(0, b"x")
        with pytest.raises(PmemCrash):
            dev.write(64, b"y")

    def test_corrupt_flips_persistent_bits(self):
        dev = PmemDevice(4096)
        dev.write(0, b"\x00")
        dev.flush(0, 1)
        dev.corrupt(0, 1)
        assert dev.read_persistent(0, 1) != b"\x00"

    def test_bounds_checked(self):
        dev = PmemDevice(128)
        with pytest.raises(ValueError):
            dev.write(120, b"0123456789")

    def test_cost_model_accumulates(self):
        dev = PmemDevice(4096)
        dev.write(0, b"x" * 100)
        dev.flush(0, 100)
        assert dev.elapsed_ns >= 100 * dev.write_ns_per_byte + dev.flush_ns


class TestNetwork:
    def test_send_recv(self):
        net = Network()
        a, b = net.endpoint("a"), net.endpoint("b")
        a.send("b", b"ping")
        assert b.recv(timeout=1.0) == ("a", b"ping")

    def test_unknown_destination_dropped(self):
        net = Network()
        a = net.endpoint("a")
        a.send("nobody", b"lost")
        assert net.stats["dropped"] == 1

    def test_drop_injection(self):
        net = Network(drop_rate=1.0)
        a, b = net.endpoint("a"), net.endpoint("b")
        a.send("b", b"gone")
        assert b.try_recv() is None
        assert net.stats["dropped"] == 1

    def test_duplication_injection(self):
        net = Network(dup_rate=1.0)
        a, b = net.endpoint("a"), net.endpoint("b")
        a.send("b", b"twice")
        assert b.recv(timeout=1.0) is not None
        assert b.recv(timeout=1.0) is not None

    def test_concurrent_senders(self):
        net = Network()
        dst = net.endpoint("dst")
        senders = [threading.Thread(
            target=lambda i=i: net.endpoint(f"s{i}").send("dst", bytes([i])))
            for i in range(8)]
        for t in senders:
            t.start()
        for t in senders:
            t.join()
        got = {dst.recv(timeout=1.0)[1] for _ in range(8)}
        assert len(got) == 8

    def test_recv_survives_spurious_wakeup(self):
        # A notify with an empty queue must re-wait for the remaining
        # time, not return None early — the message sent after several
        # spurious pokes is still received within the original timeout.
        net = Network()
        a, b = net.endpoint("a"), net.endpoint("b")

        def poke_then_send():
            for _ in range(5):
                with b._cv:
                    b._cv.notify_all()      # queue still empty
                time.sleep(0.01)
            a.send("b", b"real")

        t = threading.Thread(target=poke_then_send)
        t.start()
        got = b.recv(timeout=2.0)
        t.join()
        assert got == ("a", b"real")

    def test_recv_timeout_is_a_lower_bound(self):
        net = Network()
        b = net.endpoint("b")
        stop = threading.Event()

        def poke():
            while not stop.is_set():
                with b._cv:
                    b._cv.notify_all()
                time.sleep(0.005)

        t = threading.Thread(target=poke)
        t.start()
        t0 = time.monotonic()
        try:
            assert b.recv(timeout=0.1) is None
            assert time.monotonic() - t0 >= 0.1
        finally:
            stop.set()
            t.join()

    def test_duplication_accounting_consistent_under_concurrency(self):
        # delivered is counted under the same lock hold that decided the
        # copy count, so it can never transiently under-report relative
        # to duplicated, even with racing senders.
        net = Network(dup_rate=1.0)
        dst = net.endpoint("dst")
        n = 16
        senders = [threading.Thread(
            target=lambda i=i: net.endpoint(f"s{i}").send("dst", bytes([i])))
            for i in range(n)]
        for t in senders:
            t.start()
        for t in senders:
            t.join()
        assert net.stats["sent"] == n
        assert net.stats["duplicated"] == n
        assert net.stats["delivered"] == 2 * n
        assert dst.pending() == 2 * n


class TestSimulator:
    def test_single_thread_ops(self):
        sim = Simulator()

        def body(thread):
            while True:
                yield ("op_done", 1.0)

        sim.thread("t0", 0, body)
        stats = sim.run(horizon=100.0)
        assert 90 <= stats["ops"] <= 101

    def test_parallel_scaling_without_contention(self):
        def make(n):
            sim = Simulator()

            def body(thread):
                while True:
                    yield ("op_done", 1.0)

            for i in range(n):
                sim.thread(f"t{i}", i % 4, body)
            return sim.run(horizon=100.0)["ops"]

        assert make(8) >= make(2) * 3.5

    def test_resource_serializes(self):
        sim = Simulator()
        shared = Resource(sim, "lock")

        def body(thread):
            while True:
                release = shared.acquire_at(thread.now, 1.0)
                yield ("op_done", max(0.0, release - thread.now))

        for i in range(8):
            sim.thread(f"t{i}", 0, body)
        stats = sim.run(horizon=100.0)
        # the resource allows ~100 total holds regardless of thread count
        assert stats["ops"] <= 130

    def test_cross_socket_penalty(self):
        sim = Simulator(remote_penalty=3.0)
        assert sim.cross_socket_cost(0, 0, 2.0) == 2.0
        assert sim.cross_socket_cost(0, 1, 2.0) == 6.0
