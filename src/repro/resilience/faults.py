"""Deterministic, seeded fault injection for the verification pipeline.

Every recovery path in the pipeline — retry escalation, cache
quarantine, the parallel scheduler's crashed-worker fallback, IronKV
retransmission — is only trustworthy if it can be exercised on demand,
repeatably.  This module provides that: a :class:`FaultPlan` arms a set
of *named fault points* with *fault kinds*, and components call
:func:`maybe_fault` at those points.  Whether a given arming fires is a
pure function of the plan string (counters plus a seeded RNG), so a
failing chaos run reproduces from nothing but ``REPRO_FAULT_PLAN``.

Fault points and the kinds each one honors:

========================  =====================================================
point                     kinds
========================  =====================================================
``solver.check``          ``resource_out`` (budget-exhausted verdict),
                          ``crash`` (raise :class:`InjectedCrash`)
``pool.worker``           ``crash`` (raise inside the worker),
                          ``exit`` (``os._exit`` — a hard worker death that
                          surfaces as ``BrokenProcessPool``)
``cache.lookup``          ``io`` (:class:`InjectedIOError`),
                          ``corrupt`` (:class:`InjectedCorruption`)
``cache.store``           ``io``
``net.send``              ``drop`` (datagram silently discarded)
``cache.net``             ``drop`` (cache request datagram discarded —
                          the client waits out its deadline),
                          ``timeout`` (request abandoned immediately, as
                          if the deadline already expired),
                          ``corrupt`` (reply payload tampered in flight —
                          checksum validation must quarantine it)
``cache.replica``         ``crash`` (the serving replica drops the
                          request and stops serving until revived)
========================  =====================================================

Plan strings are ``;``-separated clauses::

    seed=7; pool.worker:crash@1; cache.store:io@2; net.send:drop%0.1x5

* ``point:kind@N``   — fire on the Nth arming of ``point`` (1-based).
* ``point:kind@NxM`` — fire on armings N, N+1, ... until M total fires.
* ``point:kind%P``   — fire with probability P per arming (seeded RNG).
* ``point:kind%PxM`` — as above, at most M fires.
* ``seed=N``         — seed for the probabilistic clauses (default 0).

Activation is explicit: the scheduler installs the plan from
``VerifyConfig.fault_plan`` (itself fed by ``REPRO_FAULT_PLAN``) for the
duration of one ``run_module``.  :func:`active` never reads the
environment — worker processes inherit ``REPRO_FAULT_PLAN`` but must
not arm their own copy of the counters, or the "Nth arming" would stop
being well defined; the parent decides worker faults at submit time
instead (see ``vc/scheduler.py``).
"""

from __future__ import annotations

import random
from typing import Optional

FAULT_POINTS = ("solver.check", "pool.worker", "cache.lookup",
                "cache.store", "net.send", "cache.net", "cache.replica")

_KINDS_BY_POINT = {
    "solver.check": ("resource_out", "crash"),
    "pool.worker": ("crash", "exit"),
    "cache.lookup": ("io", "corrupt"),
    "cache.store": ("io",),
    "net.send": ("drop",),
    "cache.net": ("drop", "timeout", "corrupt"),
    "cache.replica": ("crash",),
}


class InjectedFault(Exception):
    """Marker base class for all injected failures."""


class InjectedCrash(InjectedFault, RuntimeError):
    """An injected process/solver crash (a ``RuntimeError``, so the
    parallel scheduler's crashed-worker path handles it like any real
    worker death)."""


class InjectedIOError(InjectedFault, OSError):
    """An injected I/O failure (an ``OSError``, so best-effort cache
    paths treat it like a real disk error)."""


class InjectedCorruption(InjectedFault, ValueError):
    """An injected malformed-payload error (a ``ValueError``, so cache
    validation quarantines the entry like real corruption)."""


class FaultSpec:
    """One armed fault: where, what, and the deterministic firing rule."""

    __slots__ = ("point", "kind", "at", "prob", "times", "fired")

    def __init__(self, point: str, kind: str, at: Optional[int] = None,
                 prob: Optional[float] = None, times: Optional[int] = None):
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r} "
                             f"(expected one of {FAULT_POINTS})")
        if kind not in _KINDS_BY_POINT[point]:
            raise ValueError(f"fault point {point!r} does not support kind "
                             f"{kind!r} (supports {_KINDS_BY_POINT[point]})")
        if (at is None) == (prob is None):
            raise ValueError("exactly one of @count / %probability required")
        if at is not None and at < 1:
            raise ValueError("@count is 1-based and must be >= 1")
        if prob is not None and not 0.0 <= prob <= 1.0:
            raise ValueError("%probability must be within [0, 1]")
        self.point = point
        self.kind = kind
        self.at = at
        self.prob = prob
        # Max fires: counted clauses default to one fire, probabilistic
        # clauses to unlimited.
        self.times = times if times is not None else (1 if at else None)
        self.fired = 0

    def should_fire(self, arm_count: int, rng: random.Random) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.at is not None:
            return arm_count >= self.at
        return rng.random() < self.prob

    def clause(self) -> str:
        trigger = (f"@{self.at}" if self.at is not None
                   else f"%{self.prob:g}")
        default_times = 1 if self.at is not None else None
        suffix = f"x{self.times}" if self.times != default_times else ""
        return f"{self.point}:{self.kind}{trigger}{suffix}"

    def __repr__(self) -> str:
        return f"<FaultSpec {self.clause()} fired={self.fired}>"


class FaultPlan:
    """A parsed, stateful fault plan: specs + arming counters + RNG."""

    def __init__(self, specs: list, seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._arm_counts: dict = {p: 0 for p in FAULT_POINTS}
        self.total_fired = 0

    # ------------------------------------------------------------- parsing

    @classmethod
    def from_string(cls, text: str) -> Optional["FaultPlan"]:
        """Parse ``seed=N; point:kind@N; point:kind%PxM`` (None if empty)."""
        seed = 0
        specs = []
        for raw in text.replace(",", ";").split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            try:
                point, rest = clause.split(":", 1)
            except ValueError:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected point:kind@N, "
                    f"point:kind%P, or seed=N") from None
            if "@" in rest:
                kind, _, trigger = rest.partition("@")
                trigger, times = cls._split_times(trigger)
                specs.append(FaultSpec(point.strip(), kind.strip(),
                                       at=int(trigger), times=times))
            elif "%" in rest:
                kind, _, trigger = rest.partition("%")
                trigger, times = cls._split_times(trigger)
                specs.append(FaultSpec(point.strip(), kind.strip(),
                                       prob=float(trigger), times=times))
            else:
                raise ValueError(f"bad fault clause {clause!r}: "
                                 f"missing @count or %probability")
        if not specs:
            return None
        return cls(specs, seed=seed)

    @staticmethod
    def _split_times(trigger: str) -> tuple:
        """Split the optional ``xM`` max-fires suffix off a trigger
        (only after ``@``/``%``, so kind names like ``exit`` are safe)."""
        if "x" in trigger:
            head, _, times_text = trigger.rpartition("x")
            return head, int(times_text)
        return trigger, None

    def to_string(self) -> str:
        clauses = [f"seed={self.seed}"] if self.seed else []
        clauses.extend(s.clause() for s in self.specs)
        return "; ".join(clauses)

    # -------------------------------------------------------------- arming

    def arm(self, point: str) -> Optional[FaultSpec]:
        """One arming of ``point``; the spec that fires, or None.

        At most one spec fires per arming (first match in plan order), so
        overlapping clauses stay deterministic.
        """
        self._arm_counts[point] += 1
        count = self._arm_counts[point]
        for spec in self.specs:
            if spec.point != point:
                continue
            if spec.should_fire(count, self._rng):
                spec.fired += 1
                self.total_fired += 1
                return spec
        return None

    def arm_count(self, point: str) -> int:
        return self._arm_counts[point]

    def __repr__(self) -> str:
        return f"<FaultPlan {self.to_string()!r} fired={self.total_fired}>"


# ------------------------------------------------------------ installation

_active: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide active plan.

    Returns the previously active plan so callers can restore it —
    the scheduler brackets ``run_module`` with install/restore.
    """
    global _active
    previous = _active
    _active = plan
    return previous


def uninstall() -> None:
    install(None)


def active() -> Optional[FaultPlan]:
    """The installed plan, if any.  Never consults the environment:
    activation flows through ``VerifyConfig``/``Scheduler`` only."""
    return _active


def maybe_fault(point: str) -> Optional[FaultSpec]:
    """Arm ``point`` against the active plan; the firing spec or None.

    Instrumented components call this at their fault point and interpret
    the returned spec's ``kind`` (raise, drop, degrade).  With no plan
    installed this is a near-free no-op, so production paths pay nothing.
    """
    plan = _active
    if plan is None:
        return None
    return plan.arm(point)
