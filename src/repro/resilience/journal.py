"""Crash-resumable run journal: append-only log of discharged goals.

A verification run killed halfway (OOM killer, ctrl-C, a worker taking
the parent down) loses all completed work unless the proof cache was
enabled — and even then only for obligations whose *entries* made it to
disk.  The journal is a cheaper, run-scoped safety net: one append-only
JSONL file per module recording the content digest and verdict of every
obligation the scheduler finished.  ``Session.verify_module(resume=...)``
replays it and re-solves only what is missing.

Design points, mirroring ``ProofCache``:

* **Atomic appends.**  Each record is a single ``os.write`` to an
  ``O_APPEND`` descriptor — one line per record, so a crash can at worst
  truncate the final line, never interleave two.
* **Tolerant replay.**  :meth:`load` skips malformed lines (the torn
  tail of a killed process) instead of failing the resume.
* **Only final verdicts.**  ``proved``/``failed`` are journaled;
  deadline and ``resource-out`` verdicts are re-solved on resume, the
  same rule the proof cache applies via its valid-status filter.
* **Content-addressed.**  Records are keyed by the same
  ``obligation_digest`` the cache uses, so a journal is only consulted
  when assertions, solver config, and strategy all match — a resumed
  run with different knobs re-solves everything, as it must.
"""

from __future__ import annotations

import json
import os
from typing import Optional

SCHEMA_VERSION = 1

# Verdicts worth replaying on resume — mirrors vc.errors.PROVED/FAILED,
# spelled out locally because this module sits below the vc package in
# the import graph (smt.solver pulls in repro.resilience).  Everything
# else (deadline, resource-out, pending) must be re-solved.
_RECORDABLE = ("proved", "failed")


class RunJournal:
    """Append-only journal of completed obligation digests for one run."""

    def __init__(self, path: str, module: str = ""):
        self.path = path
        self.module = module
        self.skips = 0            # lookup hits (goals not re-solved)
        self.records = 0          # records appended by this process
        self.corrupt_lines = 0    # malformed lines skipped during load
        self._entries: dict = {}
        self._fd: Optional[int] = None
        self.load()

    # -------------------------------------------------------------- replay

    def load(self) -> int:
        """(Re)read the journal from disk; the number of usable entries.

        Malformed lines — typically the torn final line of a killed
        writer — are counted and skipped.  Later records for the same
        digest win, so a retried obligation replays its final verdict.
        """
        self._entries = {}
        self.corrupt_lines = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except (FileNotFoundError, OSError):
            return 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if not isinstance(entry, dict):
                self.corrupt_lines += 1
                continue
            if "journal" in entry:      # header line: informational only
                continue
            digest = entry.get("digest")
            if (not isinstance(digest, str)
                    or entry.get("status") not in _RECORDABLE):
                self.corrupt_lines += 1
                continue
            self._entries[digest] = entry
        return len(self._entries)

    def lookup(self, digest: str) -> Optional[dict]:
        """The journaled entry for ``digest``, counting it as a skip."""
        entry = self._entries.get(digest)
        if entry is not None:
            self.skips += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    # ------------------------------------------------------------- writing

    def record(self, digest: str, status: str, stats: Optional[dict] = None,
               query_bytes: int = 0, label: str = "",
               kind: Optional[str] = None) -> bool:
        """Append one completed obligation; False if not journalable.

        Best effort like ``ProofCache.store``: an unwritable journal
        degrades resumability, never the verification run itself.
        ``kind`` marks non-solver provenance (mirroring
        ``ProofCache.store``) so a resumed run only replays such
        entries when the producing tier is still enabled.
        """
        if status not in _RECORDABLE:
            return False
        entry = {"digest": digest, "status": status,
                 "query_bytes": int(query_bytes), "label": label,
                 "stats": _plain_stats(stats)}
        if kind is not None:
            entry["kind"] = kind
        try:
            self._append(json.dumps(entry, sort_keys=True))
        except (OSError, ValueError):
            return False
        self._entries[digest] = entry
        self.records += 1
        return True

    def _append(self, line: str) -> None:
        if self._fd is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            fresh = not os.path.exists(self.path)
            self._fd = os.open(self.path,
                               os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            if fresh:
                header = json.dumps({"journal": self.module,
                                     "schema_version": SCHEMA_VERSION})
                os.write(self._fd, (header + "\n").encode("utf-8"))
            else:
                size = os.fstat(self._fd).st_size
                if size and os.pread(self._fd, 1, size - 1) != b"\n":
                    # A killed writer left an unterminated torn tail;
                    # close it off so new records get their own lines
                    # instead of gluing onto the garbage.
                    os.write(self._fd, b"\n")
        # A single write of one whole line: POSIX O_APPEND writes are
        # atomic, so concurrent/killed writers can only truncate the
        # tail, which load() tolerates.
        os.write(self._fd, (line + "\n").encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __repr__(self) -> str:
        return (f"<RunJournal {self.path!r} entries={len(self._entries)} "
                f"skips={self.skips}>")


def _plain_stats(stats: Optional[dict]) -> dict:
    """JSON-safe projection of a stats snapshot (numbers/strings only)."""
    if not stats:
        return {}
    out = {}
    for key, value in stats.items():
        if isinstance(value, (int, float, str, bool)):
            out[key] = value
    return out
