"""Resilience layer: fault injection, resource guards, crash recovery.

Verification as *practical infrastructure* (the paper's framing) has to
survive the failures real fleets see: runaway quantifier instantiation,
worker crashes, corrupted cache entries, and killed runs.  This package
holds the pieces that are independent of any one pipeline stage:

* :mod:`.faults` — a deterministic, seeded :class:`FaultPlan` arming
  named fault points across the solver, scheduler, cache, and simulated
  network (``REPRO_FAULT_PLAN``).
* :mod:`.journal` — the append-only :class:`RunJournal` behind
  ``Session.verify_module(resume=...)``.

The remaining resilience machinery lives where it must: resource
budgets in ``smt/solver.py`` (``RESOURCE_OUT`` verdicts), the retry
escalation ladder in ``vc/scheduler.py``, and retransmission in
``systems/ironkv/host.py``.
"""

from .faults import (FAULT_POINTS, FaultPlan, FaultSpec, InjectedCorruption,
                     InjectedCrash, InjectedFault, InjectedIOError, active,
                     install, maybe_fault, uninstall)
from .journal import RunJournal

__all__ = ["FaultPlan", "FaultSpec", "FAULT_POINTS", "InjectedFault",
           "InjectedCrash", "InjectedIOError", "InjectedCorruption",
           "install", "uninstall", "active", "maybe_fault", "RunJournal"]
