"""Verification results and error reporting.

Figure 8 of the paper measures how fast tools localize *failures*; the
per-obligation result objects here carry the label, status, and timing
that the error-feedback benchmark reports.
"""

from __future__ import annotations

from typing import Optional

PROVED = "proved"
FAILED = "failed"
TIMEOUT = "unknown"


class Obligation:
    """One proof obligation with its provenance."""

    def __init__(self, label: str, kind: str):
        self.label = label          # e.g. "pop: ensures#0", "push: overflow +"
        self.kind = kind            # requires/ensures/assert/overflow/...
        self.status: str = "pending"
        self.seconds: float = 0.0
        self.stats: dict = {}

    @property
    def ok(self) -> bool:
        return self.status == PROVED

    def __repr__(self) -> str:
        return f"<Obligation {self.label}: {self.status}>"


class FunctionResult:
    """All obligations of one function."""

    def __init__(self, name: str):
        self.name = name
        self.obligations: list[Obligation] = []
        self.seconds: float = 0.0
        self.query_bytes: int = 0

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.obligations)

    def failures(self) -> list[Obligation]:
        return [o for o in self.obligations if not o.ok]

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (f"<FunctionResult {self.name}: {status}, "
                f"{len(self.obligations)} obligations>")


class ModuleResult:
    """Verification outcome of a whole module."""

    def __init__(self, name: str):
        self.name = name
        self.functions: list[FunctionResult] = []
        self.seconds: float = 0.0
        # Scheduler stats snapshot (cache hits/misses, obligation
        # wall-clock, ...) — empty when verified without a scheduler.
        self.stats: dict = {}

    @property
    def ok(self) -> bool:
        return all(f.ok for f in self.functions)

    @property
    def query_bytes(self) -> int:
        return sum(f.query_bytes for f in self.functions)

    def failures(self) -> list[tuple[str, Obligation]]:
        return [(f.name, o) for f in self.functions for o in f.failures()]

    def first_failure(self) -> Optional[tuple[str, Obligation]]:
        fails = self.failures()
        return fails[0] if fails else None

    def report(self) -> str:
        lines = [f"module {self.name}: "
                 f"{'VERIFIED' if self.ok else 'FAILED'} "
                 f"in {self.seconds:.2f}s ({self.query_bytes} query bytes)"]
        hits = self.stats.get("cache_hits", 0)
        misses = self.stats.get("cache_misses", 0)
        if hits or misses:
            rate = hits / (hits + misses)
            lines.append(f"  proof cache: {hits} hits / {misses} misses "
                         f"({rate:.0%} hit rate)")
        for f in self.functions:
            mark = "✓" if f.ok else "✗"
            lines.append(f"  {mark} {f.name} "
                         f"({len(f.obligations)} obligations, {f.seconds:.2f}s)")
            for o in f.failures():
                lines.append(f"      FAILED: {o.label} [{o.kind}]")
        return "\n".join(lines)


class VerificationFailure(Exception):
    """Raised by check()-style helpers when a module fails to verify."""

    def __init__(self, result: ModuleResult):
        super().__init__(result.report())
        self.result = result
