"""Verification results and error reporting.

Figure 8 of the paper measures how fast tools localize *failures*; the
per-obligation result objects here carry the label, status, timing, and
— since the diagnostics engine (:mod:`repro.diag`) landed — the source
span, taxonomy class, and full diagnostic payload (counterexample
witness, split conjuncts, quantifier-instantiation profile) that the
error-feedback benchmark reports.
"""

from __future__ import annotations

from typing import Optional

PROVED = "proved"
FAILED = "failed"
TIMEOUT = "unknown"
# Structured budget-exhaustion verdict (matching loop, LIA blowup, or an
# explicit REPRO_MAX_STEPS budget): distinct from TIMEOUT because it is
# machine-independent and from FAILED because no countermodel exists.
# Never cached and never journaled — a retry may well succeed.
RESOURCE_OUT = "resource-out"
# Marker for obligations discharged by the abstract-interpretation triage
# tier (repro.analysis.absint) with no solver constructed.  Never a
# visible ``Obligation.status`` — triaged obligations report PROVED so
# verdict signatures stay byte-identical with triage-off runs; the marker
# appears as ``ob.stats["tier"]`` and as the proof-cache entry ``kind``.
STATIC_PROVED = "static-proved"


def status_from_solver(verdict: str, solver) -> str:
    """Map a solver verdict (+ the solver's budget/deadline flags) to an
    obligation status.  The wall-clock deadline outranks resource
    budgets: a deadline verdict is machine-dependent and the callers
    that care (cache, journal) already treat TIMEOUT specially."""
    if verdict == "unsat":
        return PROVED
    if verdict == "sat":
        return FAILED
    if (getattr(solver, "last_resource_out", False)
            and not getattr(solver, "last_deadline_exceeded", False)):
        return RESOURCE_OUT
    return TIMEOUT


class Obligation:
    """One proof obligation with its provenance.

    ``seq`` is the emission index inside the owning function (assigned at
    planning time), so failure ordering is a property of the *program*,
    not of which worker finished first.  ``span`` is the build-site
    provenance captured by the lang helpers; ``diag`` carries the
    :class:`repro.diag.taxonomy.Diagnostic` when diagnostics ran.
    """

    def __init__(self, label: str, kind: str):
        self.label = label          # e.g. "pop: ensures#0", "push: overflow +"
        self.kind = kind            # requires/ensures/assert/overflow/...
        self.status: str = "pending"
        self.seconds: float = 0.0
        self.stats: dict = {}
        self.seq: int = 0           # emission order within the function
        self.span = None            # Optional[repro.vc.ast.Span]
        self.diag = None            # Optional[repro.diag.taxonomy.Diagnostic]

    @property
    def ok(self) -> bool:
        return self.status == PROVED

    @property
    def error_type(self) -> str:
        """Taxonomy class of this obligation's failure (VerusErrorType).

        Prefers the attached diagnostic's class when one ran — splitting
        can upgrade AssertFail to SplitAssertFail.
        """
        if self.diag is not None:
            return self.diag.error_type
        from ..diag.taxonomy import classify
        return classify(self.kind, self.label, self.status).value

    def __repr__(self) -> str:
        return f"<Obligation {self.label}: {self.status}>"


class FunctionResult:
    """All obligations of one function."""

    def __init__(self, name: str):
        self.name = name
        self.obligations: list[Obligation] = []
        self.seconds: float = 0.0
        self.query_bytes: int = 0

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.obligations)

    def failures(self) -> list[Obligation]:
        """Failed obligations in emission order (identical between serial,
        parallel, and cache-warm runs)."""
        return sorted((o for o in self.obligations if not o.ok),
                      key=lambda o: o.seq)

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (f"<FunctionResult {self.name}: {status}, "
                f"{len(self.obligations)} obligations>")


class ModuleResult:
    """Verification outcome of a whole module."""

    def __init__(self, name: str):
        self.name = name
        self.functions: list[FunctionResult] = []
        self.seconds: float = 0.0
        # Scheduler stats snapshot (cache hits/misses, obligation
        # wall-clock, instantiation profile, ...) — empty when verified
        # without a scheduler.
        self.stats: dict = {}
        # Static-analysis gate (repro.analysis): the AnalysisReport when
        # the scheduler ran the analyzer, and whether error findings
        # rejected the module before any solver work.
        self.analysis = None        # Optional[repro.analysis.AnalysisReport]
        self.rejected: bool = False

    @property
    def ok(self) -> bool:
        return not self.rejected and all(f.ok for f in self.functions)

    @property
    def query_bytes(self) -> int:
        return sum(f.query_bytes for f in self.functions)

    def failures(self) -> list[tuple[str, Obligation]]:
        """(function, obligation) pairs in module/emission order."""
        return [(f.name, o) for f in self.functions for o in f.failures()]

    def first_failure(self) -> Optional[tuple[str, Obligation]]:
        fails = self.failures()
        return fails[0] if fails else None

    def report(self, diagnostics: bool = True) -> str:
        """Human-readable report; rich failure sections when available.

        ``diagnostics=False`` restores the bare one-line-per-failure
        output regardless of attached payloads.
        """
        status = ("REJECTED by static analysis" if self.rejected
                  else "VERIFIED" if self.ok else "FAILED")
        lines = [f"module {self.name}: {status} "
                 f"in {self.seconds:.2f}s ({self.query_bytes} query bytes)"]
        if self.analysis is not None and self.analysis.findings:
            lines.extend("  " + al
                         for al in self.analysis.report().splitlines())
        hits = self.stats.get("cache_hits", 0)
        misses = self.stats.get("cache_misses", 0)
        if hits or misses:
            rate = hits / (hits + misses)
            lines.append(f"  proof cache: {hits} hits / {misses} misses "
                         f"({rate:.0%} hit rate)")
        static = self.stats.get("static_proved", 0)
        if static:
            lines.append(f"  static tier: {static} obligation(s) discharged "
                         f"by abstract interpretation (no solver built)")
        for f in self.functions:
            mark = "✓" if f.ok else "✗"
            lines.append(f"  {mark} {f.name} "
                         f"({len(f.obligations)} obligations, {f.seconds:.2f}s)")
            for o in f.failures():
                loc = f" @ {o.span}" if o.span is not None else ""
                lines.append(f"      FAILED: {o.label} "
                             f"[{o.error_type}]{loc}")
                if diagnostics and o.diag is not None:
                    from ..diag.render import render_diagnostic
                    lines.extend(
                        "        " + dl for dl in
                        render_diagnostic(o.diag).splitlines())
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable rendering (repro.diag.render does the work)."""
        from ..diag.render import module_to_json
        return module_to_json(self)


class VerificationFailure(Exception):
    """Raised by check()-style helpers when a module fails to verify."""

    def __init__(self, result: ModuleResult):
        super().__init__(result.report())
        self.result = result
