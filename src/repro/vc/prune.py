"""Per-obligation context pruning (§3.1 query economy).

The per-function pass (:meth:`repro.vc.wp.VcGen.reachable_spec_fns`) ships
each *function* with the definitional axioms its specs and body reach.  This
module sharpens that to the *obligation*: an overflow side condition deep in
a function body rarely mentions every spec function the ensures clauses do.

The soundness argument mirrors the E-matching discipline.  A definitional
axiom's only trigger is the defining application ``f(xs)`` itself, so the
axiom can fire only when an application of ``f`` exists in the e-graph.
Applications enter the e-graph from the goal, the path assumptions, or the
bodies of *other* instantiated axioms — exactly the transitive closure
computed here.  An axiom outside that closure can never contribute an
instance, so dropping it preserves the verdict while shrinking both the
query text and the E-matching universe together.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..smt import terms as T
from ..smt.printer import query_size_bytes


def axiom_decl(ax: T.Term) -> Optional[T.FuncDecl]:
    """A function symbol the axiom cannot fire without, or ``None``.

    Recognized shape: a top-level FORALL with exactly *one* trigger group
    whose first pattern is an application — true of every definitional
    axiom (``forall xs :pattern (f xs). f(xs) == body``) and of the
    encoder's seq/map/datatype axioms.  The root symbol of that pattern
    must have an application in the e-graph before the group can match,
    so it is a sound necessary condition.  Axioms with *alternative*
    trigger groups or no explicit trigger can fire other ways and are
    never pruned.
    """
    if ax.kind == T.FORALL and ax.triggers and len(ax.triggers) == 1:
        group = ax.triggers[0]
        if group and group[0].kind == T.APP:
            return group[0].payload
    return None


def _decls_into(term: T.Term, out: set) -> None:
    for sub in term.subterms():
        if sub.kind == T.APP:
            out.add(sub.payload)


def prune_axioms(axioms: Sequence[T.Term],
                      goal: Optional[T.Term],
                      assumptions: Sequence[T.Term]
                      ) -> tuple[list, list]:
    """Split a context-axiom list into (kept, dropped) for one obligation.

    Seeds are the function symbols of the goal and path assumptions (plus
    any unrecognized axiom, which is always kept); the closure walks
    through the bodies of kept axioms, since the definition of ``f`` may
    mention ``g``.  A dropped axiom's necessary symbol then occurs nowhere
    the obligation can reach, leaving it a fresh unconstrained symbol —
    dropping its axioms is a conservative extension, so the verdict is
    preserved even under MBQI.  ``kept`` preserves the input order so
    warm-context groups keep their shared assertion prefix.
    """
    by_decl: dict[T.FuncDecl, list] = {}
    for ax in axioms:
        decl = axiom_decl(ax)
        if decl is not None:
            by_decl.setdefault(decl, []).append(ax)
    if not by_decl:
        return list(axioms), []
    used: set = set()
    if goal is not None:
        _decls_into(goal, used)
    for a in assumptions:
        _decls_into(a, used)
    for ax in axioms:
        if axiom_decl(ax) is None:
            _decls_into(ax, used)
    work = [d for d in used if d in by_decl]
    reached = set(work)
    while work:
        for ax in by_decl[work.pop()]:
            more: set = set()
            _decls_into(ax, more)
            for d in more:
                if d in by_decl and d not in reached:
                    reached.add(d)
                    work.append(d)
    kept: list = []
    dropped: list = []
    for ax in axioms:
        decl = axiom_decl(ax)
        (kept if decl is None or decl in reached else dropped).append(ax)
    return kept, dropped


def bytes_saved(dropped: Sequence[T.Term]) -> int:
    """Query bytes the dropped axioms would have contributed, using the
    same per-assertion accounting as :meth:`SmtSolver.add`."""
    return sum(query_size_bytes([ax]) for ax in dropped)
