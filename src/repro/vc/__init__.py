"""Verification-condition generation for the verified language."""

from .errors import (FunctionResult, ModuleResult, Obligation,
                     VerificationFailure)
from .wp import VcConfig, VcGen

__all__ = ["VcConfig", "VcGen", "ModuleResult", "FunctionResult",
           "Obligation", "VerificationFailure"]
