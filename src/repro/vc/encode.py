"""Encoding of the verified language into SMT terms.

Design follows the paper's §3.1 economy principles:

* spec functions are pure & total → encoded directly as SMT functions,
* no heap: values are encoded functionally (the Dafny/F* baselines override
  this with an explicit heap to reproduce their cost),
* collection and datatype theories are *axiomatized on demand*: only the
  operations a query actually uses pull in their axioms, with conservative
  triggers.

The Encoder instance accumulates the axioms needed by everything it
translated; the WP engine ships exactly those to the solver.
"""

from __future__ import annotations

from typing import Optional

from ..smt import terms as T
from ..smt.sorts import BOOL as SBOOL, INT as SINT, Sort, uninterpreted
from . import ast as A
from . import types as VT


class EncodeError(Exception):
    pass


def _sort_tag(t: VT.VType) -> str:
    """A short, unique, identifier-safe tag for a type."""
    return (t.name.replace("<", "_").replace(">", "")
            .replace(",", "_").replace(" ", ""))


class Encoder:
    """Translate types/expressions; collect the axioms they rely on."""

    def __init__(self, type_invariants: bool = True):
        self.axioms: list[T.Term] = []
        self._axiom_keys: set = set()
        self.type_invariants = type_invariants
        self._decl_cache: dict[tuple, T.FuncDecl] = {}

    # ------------------------------------------------------------- sorts

    def sort_of(self, t: VT.VType) -> Sort:
        if isinstance(t, (VT.IntType, VT.NatType, VT.BoundedIntType)):
            return SINT
        if isinstance(t, VT.BoolType):
            return SBOOL
        if isinstance(t, (VT.SeqType, VT.MapType, VT.StructType,
                          VT.EnumType)):
            return uninterpreted(_sort_tag(t))
        raise EncodeError(f"no SMT sort for type {t!r}")

    # ----------------------------------------------------------- helpers

    def _axiom(self, key, term: T.Term) -> None:
        if key in self._axiom_keys:
            return
        self._axiom_keys.add(key)
        self.axioms.append(term)

    def fn(self, name: str, arg_sorts, ret_sort) -> T.FuncDecl:
        key = (name, tuple(arg_sorts), ret_sort)
        decl = self._decl_cache.get(key)
        if decl is None:
            decl = T.FuncDecl(name, list(arg_sorts), ret_sort)
            self._decl_cache[key] = decl
        return decl

    def range_assumption(self, t: VT.VType, term: T.Term) -> Optional[T.Term]:
        bounds = VT.range_bounds(t)
        if bounds is None:
            return None
        lo, hi = bounds
        parts = [T.Ge(term, T.IntVal(lo))]
        if hi is not None:
            parts.append(T.Le(term, T.IntVal(hi)))
        return T.And(*parts)

    def _maybe_range_axiom(self, elem: VT.VType, app: T.Term, bound) -> None:
        """Type invariant: values extracted from containers stay in range."""
        if not self.type_invariants:
            return
        rng = self.range_assumption(elem, app)
        if rng is not None:
            self._axiom(("rng", app.payload),  # keyed by the FuncDecl
                        T.ForAll(bound, rng, triggers=[[app]]))

    # --------------------------------------------------------------- Seq

    def seq_fns(self, t: VT.SeqType) -> dict:
        tag = _sort_tag(t)
        s = self.sort_of(t)
        e = self.sort_of(t.elem)
        fns = {
            "len": self.fn(f"{tag}.len", [s], SINT),
            "index": self.fn(f"{tag}.index", [s, SINT], e),
            "empty": self.fn(f"{tag}.empty", [], s),
            "singleton": self.fn(f"{tag}.singleton", [e], s),
            "update": self.fn(f"{tag}.update", [s, SINT, e], s),
            "concat": self.fn(f"{tag}.concat", [s, s], s),
            "skip": self.fn(f"{tag}.skip", [s, SINT], s),
            "take": self.fn(f"{tag}.take", [s, SINT], s),
            "ext": self.fn(f"{tag}.ext", [s, s], SBOOL),
        }
        self._seq_axioms(t, fns)
        return fns

    def _seq_axioms(self, t: VT.SeqType, f: dict) -> None:
        key = ("seq", _sort_tag(t))
        if key in self._axiom_keys:
            return
        self._axiom_keys.add(key)
        s = self.sort_of(t)
        e = self.sort_of(t.elem)
        a, b = T.Var("seq!a", s), T.Var("seq!b", s)
        i, j, n = T.Var("seq!i", SINT), T.Var("seq!j", SINT), T.Var("seq!n", SINT)
        v = T.Var("seq!v", e)
        L = lambda x: f["len"](x)
        ix = lambda x, k: f["index"](x, k)
        ax = self.axioms.append

        # len >= 0
        ax(T.ForAll([a], T.Ge(L(a), T.IntVal(0)), triggers=[[L(a)]]))
        # empty
        ax(T.Eq(L(f["empty"]()), T.IntVal(0)))
        # singleton
        ax(T.ForAll([v], T.Eq(L(f["singleton"](v)), T.IntVal(1)),
                    triggers=[[f["singleton"](v)]]))
        ax(T.ForAll([v], T.Eq(ix(f["singleton"](v), T.IntVal(0)), v),
                    triggers=[[f["singleton"](v)]]))
        # update
        upd = f["update"](a, i, v)
        ax(T.ForAll([a, i, v], T.Eq(L(upd), L(a)), triggers=[[upd]]))
        ax(T.ForAll([a, i, v],
                    T.Implies(T.And(T.Le(T.IntVal(0), i), T.Lt(i, L(a))),
                              T.Eq(ix(upd, i), v)),
                    triggers=[[upd]]))
        ax(T.ForAll([a, i, v, j],
                    T.Implies(T.Ne(i, j), T.Eq(ix(upd, j), ix(a, j))),
                    triggers=[[ix(upd, j)]]))
        # concat
        cat = f["concat"](a, b)
        ax(T.ForAll([a, b], T.Eq(L(cat), T.Add(L(a), L(b))),
                    triggers=[[cat]]))
        ax(T.ForAll([a, b, i],
                    T.Implies(T.And(T.Le(T.IntVal(0), i), T.Lt(i, L(a))),
                              T.Eq(ix(cat, i), ix(a, i))),
                    triggers=[[ix(cat, i)]]))
        ax(T.ForAll([a, b, i],
                    T.Implies(T.And(T.Le(L(a), i),
                                    T.Lt(i, T.Add(L(a), L(b)))),
                              T.Eq(ix(cat, i), ix(b, T.Sub(i, L(a))))),
                    triggers=[[ix(cat, i)]]))
        # skip
        sk = f["skip"](a, n)
        ax(T.ForAll([a, n],
                    T.Implies(T.And(T.Le(T.IntVal(0), n), T.Le(n, L(a))),
                              T.Eq(L(sk), T.Sub(L(a), n))),
                    triggers=[[sk]]))
        ax(T.ForAll([a, n, i],
                    T.Implies(T.And(T.Le(T.IntVal(0), n),
                                    T.Le(T.IntVal(0), i),
                                    T.Lt(i, T.Sub(L(a), n))),
                              T.Eq(ix(sk, i), ix(a, T.Add(i, n)))),
                    triggers=[[ix(sk, i)]]))
        # take
        tk = f["take"](a, n)
        ax(T.ForAll([a, n],
                    T.Implies(T.And(T.Le(T.IntVal(0), n), T.Le(n, L(a))),
                              T.Eq(L(tk), n)),
                    triggers=[[tk]]))
        ax(T.ForAll([a, n, i],
                    T.Implies(T.And(T.Le(T.IntVal(0), i), T.Lt(i, n),
                                    T.Le(n, L(a))),
                              T.Eq(ix(tk, i), ix(a, i))),
                    triggers=[[ix(tk, i)]]))
        # extensional equality (the =~= operator)
        ext = f["ext"](a, b)
        pointwise = T.ForAll(
            [j], T.Implies(T.And(T.Le(T.IntVal(0), j), T.Lt(j, L(a))),
                           T.Eq(ix(a, j), ix(b, j))),
            triggers=[[ix(a, j)], [ix(b, j)]])
        ax(T.ForAll([a, b],
                    T.Eq(ext, T.And(T.Eq(L(a), L(b)), pointwise)),
                    triggers=[[ext]]))
        ax(T.ForAll([a, b], T.Implies(ext, T.Eq(a, b)), triggers=[[ext]]))
        # element type invariant
        self._maybe_range_axiom(t.elem, ix(a, i), [a, i])

    # --------------------------------------------------------------- Map

    def map_fns(self, t: VT.MapType) -> dict:
        tag = _sort_tag(t)
        s = self.sort_of(t)
        k_sort = self.sort_of(t.key)
        v_sort = self.sort_of(t.value)
        fns = {
            "has": self.fn(f"{tag}.has", [s, k_sort], SBOOL),
            "get": self.fn(f"{tag}.get", [s, k_sort], v_sort),
            "empty": self.fn(f"{tag}.empty", [], s),
            "insert": self.fn(f"{tag}.insert", [s, k_sort, v_sort], s),
            "remove": self.fn(f"{tag}.remove", [s, k_sort], s),
        }
        self._map_axioms(t, fns)
        return fns

    def _map_axioms(self, t: VT.MapType, f: dict) -> None:
        key = ("map", _sort_tag(t))
        if key in self._axiom_keys:
            return
        self._axiom_keys.add(key)
        s = self.sort_of(t)
        ks = self.sort_of(t.key)
        vs = self.sort_of(t.value)
        m = T.Var("map!m", s)
        k1, k2 = T.Var("map!k1", ks), T.Var("map!k2", ks)
        v = T.Var("map!v", vs)
        ax = self.axioms.append

        ax(T.ForAll([k1], T.Not(f["has"](f["empty"](), k1)),
                    triggers=[[f["has"](f["empty"](), k1)]]))
        ins = f["insert"](m, k1, v)
        ax(T.ForAll([m, k1, v], f["has"](ins, k1), triggers=[[ins]]))
        ax(T.ForAll([m, k1, v], T.Eq(f["get"](ins, k1), v), triggers=[[ins]]))
        ax(T.ForAll([m, k1, v, k2],
                    T.Implies(T.Ne(k1, k2),
                              T.Eq(f["has"](ins, k2), f["has"](m, k2))),
                    triggers=[[f["has"](ins, k2)]]))
        ax(T.ForAll([m, k1, v, k2],
                    T.Implies(T.Ne(k1, k2),
                              T.Eq(f["get"](ins, k2), f["get"](m, k2))),
                    triggers=[[f["get"](ins, k2)]]))
        rem = f["remove"](m, k1)
        ax(T.ForAll([m, k1], T.Not(f["has"](rem, k1)), triggers=[[rem]]))
        ax(T.ForAll([m, k1, k2],
                    T.Implies(T.Ne(k1, k2),
                              T.Eq(f["has"](rem, k2), f["has"](m, k2))),
                    triggers=[[f["has"](rem, k2)]]))
        ax(T.ForAll([m, k1, k2],
                    T.Implies(T.Ne(k1, k2),
                              T.Eq(f["get"](rem, k2), f["get"](m, k2))),
                    triggers=[[f["get"](rem, k2)]]))
        self._maybe_range_axiom(t.value, f["get"](m, k1), [m, k1])

    # ----------------------------------------------------------- structs

    def struct_fns(self, t: VT.StructType) -> dict:
        tag = _sort_tag(t)
        s = self.sort_of(t)
        field_sorts = [self.sort_of(ft) for ft in t.fields.values()]
        fns = {"mk": self.fn(f"{tag}.mk", field_sorts, s)}
        for fname, ftype in t.fields.items():
            fns[f"sel_{fname}"] = self.fn(f"{tag}.{fname}", [s],
                                          self.sort_of(ftype))
        self._struct_axioms(t, fns)
        return fns

    def _struct_axioms(self, t: VT.StructType, f: dict) -> None:
        key = ("struct", _sort_tag(t))
        if key in self._axiom_keys:
            return
        self._axiom_keys.add(key)
        s = self.sort_of(t)
        args = [T.Var(f"st!{name}", self.sort_of(ft))
                for name, ft in t.fields.items()]
        made = f["mk"](*args)
        ax = self.axioms.append
        for (fname, ftype), arg in zip(t.fields.items(), args):
            ax(T.ForAll(args, T.Eq(f[f"sel_{fname}"](made), arg),
                        triggers=[[made]]))
        x = T.Var("st!x", s)
        sels = [f[f"sel_{fname}"](x) for fname in t.fields]
        if sels:
            ax(T.ForAll([x], T.Eq(f["mk"](*sels), x), triggers=[[sels[0]]]))
        for fname, ftype in t.fields.items():
            self._maybe_range_axiom(ftype, f[f"sel_{fname}"](x), [x])

    # ------------------------------------------------------------- enums

    def enum_fns(self, t: VT.EnumType) -> dict:
        tag = _sort_tag(t)
        s = self.sort_of(t)
        fns = {"tag": self.fn(f"{tag}.tag", [s], SINT)}
        for vi, (vname, fields) in enumerate(t.variants.items()):
            field_sorts = [self.sort_of(ft) for ft in fields.values()]
            fns[f"mk_{vname}"] = self.fn(f"{tag}.mk.{vname}", field_sorts, s)
            for fname, ftype in fields.items():
                fns[f"sel_{vname}_{fname}"] = self.fn(
                    f"{tag}.{vname}.{fname}", [s], self.sort_of(ftype))
        self._enum_axioms(t, fns)
        return fns

    def variant_tag(self, t: VT.EnumType, variant: str) -> int:
        return list(t.variants).index(variant)

    def _enum_axioms(self, t: VT.EnumType, f: dict) -> None:
        key = ("enum", _sort_tag(t))
        if key in self._axiom_keys:
            return
        self._axiom_keys.add(key)
        s = self.sort_of(t)
        ax = self.axioms.append
        x = T.Var("en!x", s)
        nvars = len(t.variants)
        ax(T.ForAll([x], T.And(T.Ge(f["tag"](x), T.IntVal(0)),
                               T.Lt(f["tag"](x), T.IntVal(nvars))),
                    triggers=[[f["tag"](x)]]))
        for vi, (vname, fields) in enumerate(t.variants.items()):
            args = [T.Var(f"en!{vname}!{fn_}", self.sort_of(ft))
                    for fn_, ft in fields.items()]
            made = f[f"mk_{vname}"](*args)
            if args:
                ax(T.ForAll(args, T.Eq(f["tag"](made), T.IntVal(vi)),
                            triggers=[[made]]))
                for (fname, ftype), arg in zip(fields.items(), args):
                    ax(T.ForAll(args,
                                T.Eq(f[f"sel_{vname}_{fname}"](made), arg),
                                triggers=[[made]]))
            else:
                ax(T.Eq(f["tag"](made), T.IntVal(vi)))
            # Inversion: tag says which constructor rebuilt the value.
            sels = [f[f"sel_{vname}_{fname}"](x) for fname in fields]
            ax(T.ForAll([x],
                        T.Implies(T.Eq(f["tag"](x), T.IntVal(vi)),
                                  T.Eq(f[f"mk_{vname}"](*sels), x)),
                        triggers=[[f["tag"](x)]]))
            for fname, ftype in fields.items():
                self._maybe_range_axiom(
                    ftype, f[f"sel_{vname}_{fname}"](x), [x])

    # ----------------------------------------------- bit ops (default mode)

    def bitop_fn(self, op: str, bits: int) -> T.FuncDecl:
        """Uninterpreted int-level bit operator (& | ^ << >>).

        Default mode leaves these uninterpreted apart from a range axiom;
        real reasoning goes through `assert ... by(bit_vector)` (§3.3).
        """
        name = {"&": "bvand", "|": "bvor", "^": "bvxor",
                "<<": "bvshl", ">>": "bvlshr"}[op] + str(bits)
        decl = self.fn(name, [SINT, SINT], SINT)
        key = ("bitop", name)
        if key not in self._axiom_keys:
            self._axiom_keys.add(key)
            x, y = T.Var("bv!x", SINT), T.Var("bv!y", SINT)
            app = decl(x, y)
            self.axioms.append(T.ForAll(
                [x, y],
                T.And(T.Ge(app, T.IntVal(0)),
                      T.Le(app, T.IntVal((1 << bits) - 1))),
                triggers=[[app]]))
            if op == "&":
                # Masking can only shrink a non-negative operand.
                self.axioms.append(T.ForAll(
                    [x, y],
                    T.Implies(T.And(T.Ge(x, T.IntVal(0)), T.Ge(y, T.IntVal(0))),
                              T.And(T.Le(app, x), T.Le(app, y))),
                    triggers=[[app]]))
        return decl
