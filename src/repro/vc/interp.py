"""A concrete interpreter for the verified language's expressions.

Used by:

* VerusSync's runtime token machinery, which dynamically *checks* that
  executable code follows the verified protocol (ghost-state checking),
* tests, which cross-validate verified functions against their specs on
  concrete inputs.

Value representation: ints/bools are Python ints/bools, Seq is a tuple,
Map is an immutable dict snapshot (we copy on update), structs are
:class:`StructVal`, enums are :class:`EnumVal`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from . import ast as A
from . import types as VT


class StructVal:
    __slots__ = ("vtype", "fields")

    def __init__(self, vtype: VT.StructType, fields: dict):
        self.vtype = vtype
        self.fields = dict(fields)

    def __eq__(self, other):
        return (isinstance(other, StructVal) and self.vtype is other.vtype
                and self.fields == other.fields)

    def __hash__(self):
        return hash((self.vtype.name, tuple(sorted(self.fields.items(),
                                                   key=lambda kv: kv[0]))))

    def __repr__(self):
        inner = ", ".join(f"{k}: {v!r}" for k, v in self.fields.items())
        return f"{self.vtype.name}{{{inner}}}"


class EnumVal:
    __slots__ = ("vtype", "variant", "fields")

    def __init__(self, vtype: VT.EnumType, variant: str, fields: dict):
        self.vtype = vtype
        self.variant = variant
        self.fields = dict(fields)

    def __eq__(self, other):
        return (isinstance(other, EnumVal) and self.vtype is other.vtype
                and self.variant == other.variant
                and self.fields == other.fields)

    def __hash__(self):
        return hash((self.vtype.name, self.variant,
                     tuple(sorted(self.fields.items(),
                                  key=lambda kv: kv[0]))))

    def __repr__(self):
        inner = ", ".join(f"{k}: {v!r}" for k, v in self.fields.items())
        return f"{self.vtype.name}::{self.variant}{{{inner}}}"


class InterpError(Exception):
    pass


class Interp:
    """Expression evaluator with an environment of concrete values.

    ``spec_fns`` maps function names to Python callables or to
    :class:`~repro.vc.ast.Function` spec definitions interpreted
    recursively.
    """

    def __init__(self, module: Optional[A.Module] = None,
                 spec_fns: Optional[dict[str, Callable]] = None):
        self.module = module
        self.spec_fns = spec_fns or {}

    def eval(self, e: A.Expr, env: dict[str, Any]) -> Any:
        method = getattr(self, f"_ev_{type(e).__name__}", None)
        if method is None:
            raise InterpError(f"cannot interpret {type(e).__name__}")
        return method(e, env)

    # -- leaves ---------------------------------------------------------------

    def _ev_Lit(self, e: A.Lit, env):
        return e.value

    def _ev_VarE(self, e: A.VarE, env):
        try:
            return env[e.name]
        except KeyError:
            raise InterpError(f"unbound variable {e.name}") from None

    def _ev_Old(self, e: A.Old, env):
        try:
            return env[f"old!{e.name}"]
        except KeyError:
            raise InterpError(f"old({e.name}) not available") from None

    # -- operators ---------------------------------------------------------------

    def _ev_BinOp(self, e: A.BinOp, env):
        op = e.op
        if op == "&&":
            return bool(self.eval(e.lhs, env)) and bool(self.eval(e.rhs, env))
        if op == "||":
            return bool(self.eval(e.lhs, env)) or bool(self.eval(e.rhs, env))
        if op == "==>":
            return (not self.eval(e.lhs, env)) or bool(self.eval(e.rhs, env))
        if op == "<==>":
            return bool(self.eval(e.lhs, env)) == bool(self.eval(e.rhs, env))
        a = self.eval(e.lhs, env)
        b = self.eval(e.rhs, env)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise InterpError("division by zero")
            q = a // b if b > 0 else -(a // -b)
            return q
        if op == "%":
            if b == 0:
                raise InterpError("modulo by zero")
            return a % abs(b)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op in ("==", "=~="):
            return a == b
        if op == "!=":
            return a != b
        raise InterpError(f"unknown operator {op}")

    def _ev_UnOp(self, e: A.UnOp, env):
        v = self.eval(e.operand, env)
        return (not v) if e.op == "!" else (-v)

    def _ev_IteE(self, e: A.IteE, env):
        return (self.eval(e.then, env) if self.eval(e.cond, env)
                else self.eval(e.els, env))

    def _ev_LetE(self, e: A.LetE, env):
        env2 = dict(env)
        env2[e.name] = self.eval(e.value, env)
        return self.eval(e.body, env2)

    def _ev_Call(self, e: A.Call, env):
        args = [self.eval(a, env) for a in e.args]
        fn = self.spec_fns.get(e.fn_name)
        if callable(fn):
            return fn(*args)
        if self.module is not None:
            decl = self.module.lookup(e.fn_name)
            if decl.is_spec and decl.body is not None:
                inner = {p.name: v for p, v in zip(decl.params, args)}
                return self.eval(decl.body, inner)
        raise InterpError(f"no interpretation for function {e.fn_name}")

    # -- structs / enums -------------------------------------------------------------

    def _ev_FieldGet(self, e: A.FieldGet, env):
        base = self.eval(e.base, env)
        return base.fields[e.fieldname]

    def _ev_StructLit(self, e: A.StructLit, env):
        return StructVal(e.vtype,
                         {k: self.eval(v, env) for k, v in e.fields.items()})

    def _ev_StructUpdate(self, e: A.StructUpdate, env):
        base = self.eval(e.base, env)
        fields = dict(base.fields)
        for k, v in e.updates.items():
            fields[k] = self.eval(v, env)
        return StructVal(e.vtype, fields)

    def _ev_EnumLit(self, e: A.EnumLit, env):
        return EnumVal(e.vtype, e.variant,
                       {k: self.eval(v, env) for k, v in e.fields.items()})

    def _ev_IsVariant(self, e: A.IsVariant, env):
        return self.eval(e.base, env).variant == e.variant

    def _ev_VariantGet(self, e: A.VariantGet, env):
        base = self.eval(e.base, env)
        if base.variant != e.variant:
            raise InterpError(f"get {e.variant}.{e.fieldname} on "
                              f"{base.variant} value")
        return base.fields[e.fieldname]

    # -- Seq ---------------------------------------------------------------------------

    def _ev_SeqLit(self, e: A.SeqLit, env):
        return tuple(self.eval(i, env) for i in e.items)

    def _ev_SeqLen(self, e: A.SeqLen, env):
        return len(self.eval(e.seq, env))

    def _ev_SeqIndex(self, e: A.SeqIndex, env):
        s = self.eval(e.seq, env)
        i = self.eval(e.idx, env)
        if not 0 <= i < len(s):
            raise InterpError(f"sequence index {i} out of range {len(s)}")
        return s[i]

    def _ev_SeqUpdate(self, e: A.SeqUpdate, env):
        s = list(self.eval(e.seq, env))
        i = self.eval(e.idx, env)
        s[i] = self.eval(e.value, env)
        return tuple(s)

    def _ev_SeqConcat(self, e: A.SeqConcat, env):
        return tuple(self.eval(e.lhs, env)) + tuple(self.eval(e.rhs, env))

    def _ev_SeqSkip(self, e: A.SeqSkip, env):
        return tuple(self.eval(e.seq, env))[self.eval(e.n, env):]

    def _ev_SeqTake(self, e: A.SeqTake, env):
        return tuple(self.eval(e.seq, env))[: self.eval(e.n, env)]

    # -- Map ---------------------------------------------------------------------------

    def _ev_MapEmpty(self, e: A.MapEmpty, env):
        return {}

    def _ev_MapHas(self, e: A.MapHas, env):
        return self.eval(e.key, env) in self.eval(e.m, env)

    def _ev_MapGet(self, e: A.MapGet, env):
        m = self.eval(e.m, env)
        k = self.eval(e.key, env)
        if k not in m:
            raise InterpError(f"map key {k!r} absent")
        return m[k]

    def _ev_MapInsert(self, e: A.MapInsert, env):
        m = dict(self.eval(e.m, env))
        m[self.eval(e.key, env)] = self.eval(e.value, env)
        return m

    def _ev_MapRemove(self, e: A.MapRemove, env):
        m = dict(self.eval(e.m, env))
        m.pop(self.eval(e.key, env), None)
        return m

    # -- quantifiers (finite domains only) -------------------------------------------

    def _ev_ForAllE(self, e: A.ForAllE, env):
        return self._quant(e, env, all)

    def _ev_ExistsE(self, e: A.ExistsE, env):
        return self._quant(e, env, any)

    def _quant(self, e, env, agg):
        domain = env.get("$domains", {})

        def expand(bound, env2):
            if not bound:
                yield env2
                return
            (name, vtype), *rest = bound
            dom = domain.get(vtype) or domain.get(vtype.name)
            if dom is None:
                raise InterpError(
                    f"cannot evaluate quantifier over {vtype.name}: provide "
                    f"env['$domains'][{vtype.name!r}]")
            for value in dom:
                env3 = dict(env2)
                env3[name] = value
                yield env3

        return agg(bool(self.eval(e.body, env2))
                   for env2 in expand(list(e.bound), env))
