"""Parallel obligation scheduler for the VC pipeline.

The paper's headline claim (§3.1, Fig 9) is *query economy*: each SMT
obligation is small and self-contained, so proof work parallelizes across
obligations and modules ("1/8 cores" in Fig 9) and unchanged obligations
never need re-solving.  This layer supplies both halves:

* :class:`Scheduler` consumes the self-contained obligation jobs emitted
  by :meth:`repro.vc.wp.VcGen.plan_function` and discharges them through a
  pluggable executor — in-process serial by default (byte-identical to the
  historical eager behavior), or a ``ProcessPoolExecutor`` fan-out across
  obligations with per-job timeouts and a graceful serial fallback.

* Before any solving, each job is looked up in the content-addressed
  proof cache (:mod:`repro.vc.cache`) keyed on the canonical SMT-LIB2
  query text plus solver knobs, so cache-warm re-verification skips the
  solver entirely.

Environment knobs (all optional):

* ``REPRO_JOBS`` — default worker count (``1`` = serial).
* ``REPRO_CACHE_DIR`` — enable the proof cache at this directory.
* ``REPRO_JOB_TIMEOUT`` — per-job timeout in seconds for parallel runs.

:func:`run_builder_jobs` is the coarse-grained companion used by the
Fig 9 macrobenchmark: whole-module verification jobs named by dotted
builder paths, fanned out across processes with the same fallback story.
"""

from __future__ import annotations

import concurrent.futures as _cf
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from ..smt import terms as T
from ..smt.fingerprint import (deserialize_terms, obligation_digest,
                               serialize_terms, solver_config_key)
from ..smt.solver import SAT, SmtSolver, SolverConfig, Stats, UNSAT
from .cache import ProofCache
from .errors import FAILED, PROVED, TIMEOUT, ModuleResult

JOBS_ENV = "REPRO_JOBS"
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
DIAG_ENV = "REPRO_DIAG"


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (1 = serial, the default)."""
    raw = os.environ.get(JOBS_ENV)
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def default_diagnostics() -> bool:
    """Diagnostics default from ``$REPRO_DIAG`` (off unless truthy)."""
    raw = os.environ.get(DIAG_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def _default_timeout() -> Optional[float]:
    raw = os.environ.get(JOB_TIMEOUT_ENV)
    try:
        return float(raw) if raw else None
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# Obligation jobs (picklable, self-contained)
# ---------------------------------------------------------------------------

class ObligationJob:
    """A self-contained solver job that can cross a process boundary.

    Carries the serialized assertion list (context axioms + path
    assumptions + negated goal, in solver ``add`` order) and the solver
    knobs — everything a fresh worker needs to reproduce the default
    discharge exactly.
    """

    __slots__ = ("payload", "config_dict", "label")

    def __init__(self, payload: tuple, config_dict: dict, label: str):
        self.payload = payload
        self.config_dict = config_dict
        self.label = label

    def run(self) -> tuple:
        """Solve; returns ``(status, stats_snapshot, query_bytes, secs)``."""
        t0 = time.perf_counter()
        assertions = deserialize_terms(self.payload)
        solver = SmtSolver(SolverConfig(**self.config_dict))
        for a in assertions:
            solver.add(a)
        verdict = solver.check()
        status = (PROVED if verdict == UNSAT
                  else FAILED if verdict == SAT else TIMEOUT)
        return (status, solver.stats.snapshot(), solver.stats.query_bytes,
                time.perf_counter() - t0)


def _execute_job(job: ObligationJob) -> tuple:
    # Top-level so ProcessPoolExecutor can pickle it by reference.
    return job.run()


class _Task:
    """Scheduler-internal handle pairing a pending obligation with its
    (lazily computed) assertions, digest, and owning function plan."""

    __slots__ = ("item", "plan", "assertions", "config", "digest", "done",
                 "qbytes")

    def __init__(self, item, plan):
        self.item = item
        self.plan = plan
        self.assertions: Optional[list] = None
        self.config: Optional[SolverConfig] = None
        self.digest: Optional[str] = None
        self.done = False
        self.qbytes = 0


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

class Scheduler:
    """Discharges emitted obligations through cache + executor.

    ``jobs``: worker processes (default ``$REPRO_JOBS`` or 1 = serial).
    ``cache``: a :class:`ProofCache`, a directory path, ``False`` to
    disable even if ``$REPRO_CACHE_DIR`` is set, or ``None`` for the
    env default.  ``timeout``: per-job seconds for parallel execution.
    ``diagnostics``: run the :mod:`repro.diag` engine on every failed
    obligation (default ``$REPRO_DIAG`` or off).  Diagnosis happens
    post hoc in the parent process — each failure is re-solved with a
    fresh solver over the same assertions — so the diagnostic output is
    identical whether the verdict came from a worker process, the
    serial path, or a warm cache entry.
    """

    def __init__(self, jobs: Optional[int] = None, cache=None,
                 timeout: Optional[float] = None,
                 diagnostics: Optional[bool] = None):
        self.jobs = max(1, int(jobs)) if jobs is not None else default_jobs()
        if cache is None:
            cache = ProofCache.from_env()
        elif cache is False:
            cache = None
        elif isinstance(cache, str):
            cache = ProofCache(cache)
        self.cache: Optional[ProofCache] = cache
        self.timeout = timeout if timeout is not None else _default_timeout()
        self.diagnostics = (diagnostics if diagnostics is not None
                            else default_diagnostics())
        self.stats = Stats()

    # ------------------------------------------------------------- public

    def run_module(self, gen) -> ModuleResult:
        """Plan, discharge, and assemble results for a whole module."""
        from . import ast as A
        t0 = time.perf_counter()
        hits0, misses0 = ((self.cache.hits, self.cache.misses)
                          if self.cache is not None else (0, 0))
        result = ModuleResult(gen.module.name)
        plans = []
        tasks: list[_Task] = []
        # Planning runs the §3.3 idiom engines eagerly; hand them the
        # cache so e.g. bit-blasting verdicts are reused on warm runs.
        gen.proof_cache = self.cache
        try:
            for fn in gen.module.functions.values():
                if fn.mode in (A.EXEC, A.PROOF) and fn.body is not None:
                    plan = gen.plan_function(fn)
                    plans.append(plan)
                    result.functions.append(plan.result)
                    tasks.extend(self._plan_tasks(gen, plan))
            self._run_tasks(gen, tasks)
            if self.diagnostics:
                self._diagnose_failures(gen, tasks)
        finally:
            gen.proof_cache = None
        if self.cache is not None:
            self.stats.cache_hits += self.cache.hits - hits0
            self.stats.cache_misses += self.cache.misses - misses0
        for plan in plans:
            plan.result.seconds = plan.gen_seconds + sum(
                o.seconds for o in plan.result.obligations)
        self.stats.wall_seconds += time.perf_counter() - t0
        result.seconds = time.perf_counter() - t0
        result.stats = self.stats.snapshot()
        return result

    # ----------------------------------------------------------- planning

    def _offloadable(self, gen) -> bool:
        """Cross-process dispatch replicates only the *default* discharge;
        pipelines that override the retry strategy stay in-process."""
        from .wp import VcGen
        return type(gen)._solve_obligation is VcGen._solve_obligation

    def _plan_tasks(self, gen, plan) -> list[_Task]:
        tasks = []
        ctx_axioms = None
        cfg = None
        need_assertions = (self.cache is not None
                           or (self.jobs > 1 and self._offloadable(gen)))
        for item in plan.pending:
            ob = item.obligation
            plan.result.obligations.append(ob)
            if item.direct_result is not None:
                # Idiom engines (§3.3) decided eagerly during planning.
                ob.status = PROVED if item.direct_result else FAILED
                ob.seconds = 0.0
                if not ob.ok and self.diagnostics:
                    from ..diag import diagnose_obligation
                    ob.diag = diagnose_obligation(ob, None, [], [])
                continue
            task = _Task(item, plan)
            if need_assertions:
                if ctx_axioms is None:
                    ctx_axioms = list(gen.context_axioms(plan.encoder,
                                                         plan.spec_axioms))
                    cfg = gen.config.make_solver_config()
                task.assertions = (ctx_axioms + list(item.assumptions)
                                   + [T.Not(item.goal)])
                task.config = cfg
            tasks.append(task)
        return tasks

    # ---------------------------------------------------------- execution

    def _run_tasks(self, gen, tasks: list[_Task]) -> None:
        unsolved = []
        strategy = type(gen).__qualname__
        for task in tasks:
            if self.cache is not None:
                task.digest = obligation_digest(
                    task.assertions, solver_config_key(task.config), strategy)
                entry = self.cache.lookup(task.digest)
                if entry is not None:
                    if (self.diagnostics and entry["status"] != PROVED
                            and entry.get("diag") is None):
                        # A pre-diagnostics entry for a failure: the
                        # verdict alone is not what the user asked for,
                        # so re-solve (and re-store with the payload).
                        self.cache.hits -= 1
                        self.cache.misses += 1
                    else:
                        stats = dict(entry.get("stats") or {})
                        if self.diagnostics and entry.get("diag"):
                            from ..diag import Diagnostic
                            task.item.obligation.diag = \
                                Diagnostic.from_dict(entry["diag"])
                        self._apply(task, entry["status"], stats,
                                    entry.get("query_bytes", 0), 0.0,
                                    from_cache=True)
                        continue
            unsolved.append(task)
        if len(unsolved) > 1 and self.jobs > 1 and self._offloadable(gen):
            unsolved = self._run_parallel(unsolved)
        for task in unsolved:
            self._run_serial(gen, task)

    def _run_serial(self, gen, task: _Task) -> None:
        t0 = time.perf_counter()
        status, stats, qbytes = gen._solve_obligation(
            task.item, task.plan.encoder, task.plan.spec_axioms)
        seconds = time.perf_counter() - t0
        self._apply(task, status, stats, qbytes, seconds)
        self._store(task, status, stats, qbytes)

    def _run_parallel(self, tasks: list[_Task]) -> list[_Task]:
        """Fan tasks out across processes; returns tasks that still need
        the in-process serial fallback."""
        try:
            jobs = [ObligationJob(serialize_terms(task.assertions),
                                  dict(vars(task.config)),
                                  task.item.obligation.label)
                    for task in tasks]
        except (ValueError, TypeError, pickle.PicklingError):
            return tasks  # unserializable content: solve in-process
        leftovers: list[_Task] = []
        try:
            workers = min(self.jobs, len(tasks))
            with _cf.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(task, pool.submit(_execute_job, job))
                           for task, job in zip(tasks, jobs)]
                for task, fut in futures:
                    try:
                        status, stats, qbytes, secs = fut.result(
                            timeout=self.timeout)
                    except _cf.TimeoutError:
                        fut.cancel()
                        # A killed job is not a solver verdict: report
                        # TIMEOUT but never cache it.
                        self._apply(task, TIMEOUT, {"job_timeouts": 1},
                                    0, self.timeout or 0.0)
                        continue
                    except (BrokenProcessPool, OSError, RuntimeError):
                        leftovers.append(task)
                        continue
                    self._apply(task, status, stats, qbytes, secs)
                    self._store(task, status, stats, qbytes)
        except (BrokenProcessPool, OSError, RuntimeError):
            pass
        leftovers.extend(t for t in tasks
                         if not t.done and t not in leftovers)
        return leftovers

    # --------------------------------------------------------- diagnosis

    def _diagnose_failures(self, gen, tasks: list[_Task]) -> None:
        """Attach a full Diagnostic to every failed obligation.

        Runs in the parent process after all verdicts are in, re-solving
        each failure from its planned VC — so serial, parallel, and
        cache-warm runs produce identical diagnostics.  Killed parallel
        jobs (wall-clock timeouts) are not re-solved: the in-process
        re-solve has no kill switch.
        """
        from ..diag import diagnose_obligation
        ctx_cache: dict[int, list] = {}
        cfg = None
        for task in tasks:
            ob = task.item.obligation
            if ob.ok or ob.diag is not None:
                continue
            if ob.stats.get("job_timeouts"):
                from ..diag import Diagnostic, VerusErrorType
                ob.diag = Diagnostic.for_obligation(ob)
                ob.diag.error_type = VerusErrorType.RLIMIT_EXCEEDED.value
                ob.diag.notes.append("worker killed by job timeout; "
                                     "not re-solved for diagnosis")
                continue
            plan = task.plan
            ctx = ctx_cache.get(id(plan))
            if ctx is None:
                ctx = list(gen.context_axioms(plan.encoder,
                                              plan.spec_axioms))
                ctx_cache[id(plan)] = ctx
            if cfg is None:
                cfg = gen.config.make_solver_config()
            ob.diag = diagnose_obligation(
                ob, task.item.goal, list(task.item.assumptions), ctx, cfg)
            if self.cache is not None and task.digest is not None:
                # Upgrade the cache entry so warm runs replay the full
                # report without re-solving.
                self.cache.store(task.digest, ob.status,
                                 {k: v for k, v in ob.stats.items()
                                  if k != "cache_hit"},
                                 task.qbytes, label=ob.label,
                                 diag=ob.diag.to_dict())

    # -------------------------------------------------------- bookkeeping

    def _apply(self, task: _Task, status: str, stats: dict, qbytes: int,
               seconds: float, from_cache: bool = False) -> None:
        ob = task.item.obligation
        ob.status = status
        ob.seconds = seconds
        self.stats.merge(stats)
        if from_cache:
            stats = dict(stats)
            stats["cache_hit"] = True
        ob.stats = stats
        task.plan.result.query_bytes += qbytes
        self.stats.obligations += 1
        self.stats.obligation_seconds += seconds
        task.done = True
        task.qbytes = qbytes

    def _store(self, task: _Task, status: str, stats: dict,
               qbytes: int) -> None:
        if self.cache is not None and task.digest is not None:
            self.cache.store(task.digest, status, stats, qbytes,
                             label=task.item.obligation.label)


# ---------------------------------------------------------------------------
# Module-granularity fan-out (Fig 9 "8 cores" column)
# ---------------------------------------------------------------------------

def run_builder_job(job: tuple) -> tuple:
    """Verify one ``(kind, dotted_builder)`` module job in this process.

    ``kind`` selects the machinery: ``"vc"`` (default pipeline, honors
    the env-configured scheduler, so workers share the proof cache),
    ``"epr"`` (§3.2 EPR mode), anything else builds a VerusSync system
    and calls ``check()``.  Returns ``(ok, query_bytes)``.
    """
    import importlib
    kind, dotted = job
    module_path, func_name = dotted.rsplit(".", 1)
    built = getattr(importlib.import_module(module_path), func_name)()
    if kind == "vc":
        from .wp import VcGen
        res = VcGen(built).verify_module()
    elif kind == "epr":
        from ..epr import verify_epr_module
        res = verify_epr_module(built)
    else:  # sync
        res = built.check()
    return res.ok, res.query_bytes


def run_builder_jobs(jobs: Sequence[tuple], max_workers: Optional[int] = None,
                     timeout: Optional[float] = None) -> list[tuple]:
    """Discharge module jobs across a process pool, serial on fallback."""
    jobs = list(jobs)
    max_workers = max_workers if max_workers else default_jobs()
    if max_workers > 1 and len(jobs) > 1:
        try:
            with _cf.ProcessPoolExecutor(
                    max_workers=min(max_workers, len(jobs))) as pool:
                futures = [pool.submit(run_builder_job, j) for j in jobs]
                return [f.result(timeout=timeout) for f in futures]
        except (BrokenProcessPool, OSError, _cf.TimeoutError,
                pickle.PicklingError):
            pass  # fall through to the serial path
    return [run_builder_job(j) for j in jobs]
