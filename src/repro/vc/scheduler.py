"""Parallel obligation scheduler for the VC pipeline.

The paper's headline claim (§3.1, Fig 9) is *query economy*: each SMT
obligation is small and self-contained, so proof work parallelizes across
obligations and modules ("1/8 cores" in Fig 9) and unchanged obligations
never need re-solving.  This layer supplies both halves:

* :class:`Scheduler` consumes the self-contained obligation jobs emitted
  by :meth:`repro.vc.wp.VcGen.plan_function` and discharges them through a
  pluggable executor — in-process serial by default (byte-identical to the
  historical eager behavior), or a ``ProcessPoolExecutor`` fan-out across
  obligations with per-job timeouts and a graceful serial fallback.

* Before any solving, each job is looked up in the content-addressed
  proof cache (:mod:`repro.vc.cache`) keyed on the canonical SMT-LIB2
  query text plus solver knobs, so cache-warm re-verification skips the
  solver entirely.

Two further strategies stack on top (both off by default):

* **Warm contexts** (``incremental=True``) — each function's obligations
  share one pooled :class:`~repro.smt.solver.SmtSolver`: the common
  assertion prefix (context axioms and shared path assumptions) is
  asserted once, and each goal is checked under a ``push()``/``pop()``
  scope, so learned clauses and E-graph merges from earlier goals carry
  forward.

* **Delta re-verification** (``delta=True``, needs the cache) — a
  function whose dependency fingerprint (:mod:`repro.vc.delta`) is
  unchanged since a fully verified run is *not even planned*; its
  recorded result is replayed.

Run-level knobs (``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
``REPRO_JOB_TIMEOUT``, ``REPRO_DIAG``, ``REPRO_INCREMENTAL``,
``REPRO_DELTA``) are parsed exclusively by
:meth:`repro.api.VerifyConfig.from_env`; the ``default_*`` helpers here
are thin compatibility shims over it.

:func:`run_builder_jobs` is the coarse-grained companion used by the
Fig 9 macrobenchmark: whole-module verification jobs named by dotted
builder paths, fanned out across processes with the same fallback story.
"""

from __future__ import annotations

import concurrent.futures as _cf
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from ..api import DIAG_ENV, JOB_TIMEOUT_ENV, JOBS_ENV, VerifyConfig
from ..smt import terms as T
from ..smt.fingerprint import (deserialize_terms, obligation_digest,
                               serialize_terms, solver_config_key)
from ..smt.solver import SAT, SmtSolver, SolverConfig, Stats, UNSAT
from .cache import ProofCache
from .errors import FAILED, PROVED, TIMEOUT, ModuleResult

__all__ = ["Scheduler", "ObligationJob", "default_jobs",
           "default_diagnostics", "run_builder_job", "run_builder_jobs",
           "JOBS_ENV", "JOB_TIMEOUT_ENV", "DIAG_ENV"]


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (1 = serial, the default)."""
    return VerifyConfig.from_env().jobs


def default_diagnostics() -> bool:
    """Diagnostics default from ``$REPRO_DIAG`` (off unless truthy)."""
    return VerifyConfig.from_env().diagnostics


def _default_timeout() -> Optional[float]:
    return VerifyConfig.from_env().job_timeout


# ---------------------------------------------------------------------------
# Obligation jobs (picklable, self-contained)
# ---------------------------------------------------------------------------

class ObligationJob:
    """A self-contained solver job that can cross a process boundary.

    Carries the serialized assertion list (context axioms + path
    assumptions + negated goal, in solver ``add`` order) and the solver
    knobs — everything a fresh worker needs to reproduce the default
    discharge exactly.
    """

    __slots__ = ("payload", "config_dict", "label")

    def __init__(self, payload: tuple, config_dict: dict, label: str):
        self.payload = payload
        self.config_dict = config_dict
        self.label = label

    def run(self) -> tuple:
        """Solve; returns ``(status, stats_snapshot, query_bytes, secs)``."""
        t0 = time.perf_counter()
        assertions = deserialize_terms(self.payload)
        solver = SmtSolver(SolverConfig(**self.config_dict))
        for a in assertions:
            solver.add(a)
        verdict = solver.check()
        status = (PROVED if verdict == UNSAT
                  else FAILED if verdict == SAT else TIMEOUT)
        return (status, solver.stats.snapshot(), solver.stats.query_bytes,
                time.perf_counter() - t0)


def _execute_job(job: ObligationJob) -> tuple:
    # Top-level so ProcessPoolExecutor can pickle it by reference.
    return job.run()


class _Task:
    """Scheduler-internal handle pairing a pending obligation with its
    (lazily computed) assertions, digest, and owning function plan."""

    __slots__ = ("item", "plan", "assertions", "config", "digest", "done",
                 "qbytes")

    def __init__(self, item, plan):
        self.item = item
        self.plan = plan
        self.assertions: Optional[list] = None
        self.config: Optional[SolverConfig] = None
        self.digest: Optional[str] = None
        self.done = False
        self.qbytes = 0


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

class Scheduler:
    """Discharges emitted obligations through cache + executor.

    ``jobs``: worker processes (default ``$REPRO_JOBS`` or 1 = serial).
    ``cache``: a :class:`ProofCache`, a directory path, ``False`` to
    disable even if ``$REPRO_CACHE_DIR`` is set, or ``None`` for the
    env default.  ``timeout``: per-job seconds for parallel execution.
    ``diagnostics``: run the :mod:`repro.diag` engine on every failed
    obligation (default ``$REPRO_DIAG`` or off).  Diagnosis happens
    post hoc in the parent process — each failure is re-solved with a
    fresh solver over the same assertions — so the diagnostic output is
    identical whether the verdict came from a worker process, the
    serial path, or a warm cache entry.

    ``incremental``: warm-context mode — each function's unsolved
    obligations are discharged in one pooled incremental solver under
    push/pop scopes instead of a fresh solver per goal (default
    ``$REPRO_INCREMENTAL`` or off).  ``delta``: skip planning functions
    whose dependency fingerprint is unchanged since a fully verified run
    (default ``$REPRO_DELTA`` or off; needs the cache for storage).

    ``analyze``: run the :mod:`repro.analysis` static passes before
    planning; a module with any error-severity finding is **rejected**
    without constructing a single solver (default ``$REPRO_ANALYZE`` or
    off).
    """

    def __init__(self, jobs: Optional[int] = None, cache=None,
                 timeout: Optional[float] = None,
                 diagnostics: Optional[bool] = None,
                 incremental: Optional[bool] = None,
                 delta: Optional[bool] = None,
                 analyze: Optional[bool] = None):
        env = VerifyConfig.from_env()
        self.jobs = max(1, int(jobs)) if jobs is not None else env.jobs
        if cache is None:
            cache = ProofCache.from_env()
        elif cache is False:
            cache = None
        elif isinstance(cache, str):
            cache = ProofCache(cache)
        self.cache: Optional[ProofCache] = cache
        self.timeout = timeout if timeout is not None else env.job_timeout
        self.diagnostics = (diagnostics if diagnostics is not None
                            else env.diagnostics)
        self.incremental = (incremental if incremental is not None
                            else env.incremental)
        self.delta = delta if delta is not None else env.delta
        self.analyze = analyze if analyze is not None else env.analyze
        self._delta_cache = None
        if self.delta and self.cache is not None:
            from .delta import DeltaCache
            self._delta_cache = DeltaCache(self.cache.root)
        self.stats = Stats()

    # ------------------------------------------------------------- public

    def run_module(self, gen) -> ModuleResult:
        """Plan, discharge, and assemble results for a whole module."""
        from . import ast as A
        t0 = time.perf_counter()
        hits0, misses0 = ((self.cache.hits, self.cache.misses)
                          if self.cache is not None else (0, 0))
        skips0 = (self._delta_cache.skips
                  if self._delta_cache is not None else 0)
        result = ModuleResult(gen.module.name)
        if self.analyze:
            from ..analysis import analyze_module
            report = analyze_module(gen.module, gen.config)
            result.analysis = report
            if report.has_errors:
                # Fail fast: no planning, no solver, zero query bytes.
                result.rejected = True
                result.seconds = time.perf_counter() - t0
                result.stats = self.stats.snapshot()
                return result
        plans = []
        tasks: list[_Task] = []
        # Planning runs the §3.3 idiom engines eagerly; hand them the
        # cache so e.g. bit-blasting verdicts are reused on warm runs.
        gen.proof_cache = self.cache
        delta_digests: dict[int, str] = {}
        try:
            for fn in gen.module.functions.values():
                if fn.mode in (A.EXEC, A.PROOF) and fn.body is not None:
                    if self._delta_cache is not None:
                        from .delta import (function_dependency_digest,
                                            replay_function)
                        digest = function_dependency_digest(gen, fn)
                        entry = self._delta_cache.lookup(digest)
                        if entry is not None:
                            result.functions.append(replay_function(entry))
                            continue
                    plan = gen.plan_function(fn)
                    if self._delta_cache is not None:
                        delta_digests[id(plan)] = digest
                    plans.append(plan)
                    result.functions.append(plan.result)
                    tasks.extend(self._plan_tasks(gen, plan))
            self._run_tasks(gen, tasks)
            if self.diagnostics:
                self._diagnose_failures(gen, tasks)
        finally:
            gen.proof_cache = None
        if self._delta_cache is not None:
            self.stats.merge(
                {"delta_skips": self._delta_cache.skips - skips0})
            for plan in plans:
                # Record only fully verified functions whose verdicts are
                # all cache-safe (a soft-deadline TIMEOUT is not PROVED,
                # so it can never sneak in here).
                if plan.result.ok:
                    self._delta_cache.store(delta_digests[id(plan)],
                                            plan.fn.name, plan.result)
        if self.cache is not None:
            self.stats.cache_hits += self.cache.hits - hits0
            self.stats.cache_misses += self.cache.misses - misses0
        for plan in plans:
            plan.result.seconds = plan.gen_seconds + sum(
                o.seconds for o in plan.result.obligations)
        self.stats.wall_seconds += time.perf_counter() - t0
        result.seconds = time.perf_counter() - t0
        result.stats = self.stats.snapshot()
        return result

    # ----------------------------------------------------------- planning

    def _offloadable(self, gen) -> bool:
        """Cross-process dispatch replicates only the *default* discharge;
        pipelines that override the retry strategy stay in-process."""
        from .wp import VcGen
        return type(gen)._solve_obligation is VcGen._solve_obligation

    def _plan_tasks(self, gen, plan) -> list[_Task]:
        tasks = []
        ctx_axioms = None
        cfg = None
        # Warm contexts and the serial soft deadline replicate the
        # *default* discharge just like cross-process dispatch does, so
        # they too need the explicit assertion lists (and stay disabled
        # for pipelines that override the retry strategy).
        offload = self._offloadable(gen)
        need_assertions = (self.cache is not None
                           or ((self.jobs > 1 or self.incremental
                                or self.timeout is not None) and offload))
        for item in plan.pending:
            ob = item.obligation
            plan.result.obligations.append(ob)
            if item.direct_result is not None:
                # Idiom engines (§3.3) decided eagerly during planning.
                ob.status = PROVED if item.direct_result else FAILED
                ob.seconds = 0.0
                if not ob.ok and self.diagnostics:
                    from ..diag import diagnose_obligation
                    ob.diag = diagnose_obligation(ob, None, [], [])
                continue
            task = _Task(item, plan)
            if need_assertions:
                if ctx_axioms is None:
                    ctx_axioms = list(gen.context_axioms(plan.encoder,
                                                         plan.spec_axioms))
                    cfg = gen.config.make_solver_config()
                task.assertions = (ctx_axioms + list(item.assumptions)
                                   + [T.Not(item.goal)])
                task.config = cfg
            tasks.append(task)
        return tasks

    # ---------------------------------------------------------- execution

    def _run_tasks(self, gen, tasks: list[_Task]) -> None:
        unsolved = []
        strategy = type(gen).__qualname__
        for task in tasks:
            if self.cache is not None:
                task.digest = obligation_digest(
                    task.assertions, solver_config_key(task.config), strategy)
                entry = self.cache.lookup(task.digest)
                if entry is not None:
                    if (self.diagnostics and entry["status"] != PROVED
                            and entry.get("diag") is None):
                        # A pre-diagnostics entry for a failure: the
                        # verdict alone is not what the user asked for,
                        # so re-solve (and re-store with the payload).
                        self.cache.hits -= 1
                        self.cache.misses += 1
                    else:
                        stats = dict(entry.get("stats") or {})
                        if self.diagnostics and entry.get("diag"):
                            from ..diag import Diagnostic
                            task.item.obligation.diag = \
                                Diagnostic.from_dict(entry["diag"])
                        self._apply(task, entry["status"], stats,
                                    entry.get("query_bytes", 0), 0.0,
                                    from_cache=True)
                        continue
            unsolved.append(task)
        if self.incremental and self._offloadable(gen):
            # Warm contexts are in-process by design (the pooled solver
            # is the whole point), so incremental wins over `jobs`.
            groups: dict[int, list[_Task]] = {}
            for task in unsolved:
                groups.setdefault(id(task.plan), []).append(task)
            for group in groups.values():
                self._run_warm_group(group)
            return
        if len(unsolved) > 1 and self.jobs > 1 and self._offloadable(gen):
            unsolved = self._run_parallel(unsolved)
        for task in unsolved:
            self._run_serial(gen, task)

    def _run_serial(self, gen, task: _Task) -> None:
        if (self.timeout is not None and task.assertions is not None
                and self._offloadable(gen)):
            return self._run_fresh(task)
        t0 = time.perf_counter()
        status, stats, qbytes = gen._solve_obligation(
            task.item, task.plan.encoder, task.plan.spec_axioms)
        seconds = time.perf_counter() - t0
        self._apply(task, status, stats, qbytes, seconds)
        self._store(task, status, stats, qbytes)

    def _run_fresh(self, task: _Task) -> None:
        """One fresh-solver discharge from the planned assertion list,
        honoring the soft per-obligation deadline when one is set.

        Serial runs cannot kill a worker process, so the deadline is
        enforced *inside* the solver: the CDCL loop checks wall clock
        between conflict batches and gives up cleanly.  A deadline
        verdict is wall-clock-dependent and is therefore never cached.
        """
        t0 = time.perf_counter()
        solver = SmtSolver(task.config)
        for a in task.assertions:
            solver.add(a)
        verdict = solver.check(timeout=self.timeout)
        status = (PROVED if verdict == UNSAT
                  else FAILED if verdict == SAT else TIMEOUT)
        stats = solver.stats.snapshot()
        qbytes = solver.stats.query_bytes
        seconds = time.perf_counter() - t0
        if solver.last_deadline_exceeded:
            stats["deadline_exceeded"] = 1
            self._apply(task, TIMEOUT, stats, qbytes, seconds)
            return
        self._apply(task, status, stats, qbytes, seconds)
        self._store(task, status, stats, qbytes)

    @staticmethod
    def _common_prefix(lists: list[list]) -> int:
        """Length of the longest shared assertion prefix (hash-consed
        terms make ``is`` the structural-equality check)."""
        n = min(len(lst) for lst in lists)
        first = lists[0]
        for i in range(n):
            a = first[i]
            if any(lst[i] is not a for lst in lists[1:]):
                return i
        return n

    def _run_warm_group(self, tasks: list[_Task]) -> None:
        """Discharge one function's obligations in a pooled warm solver.

        The shared prefix (context axioms + common path assumptions) is
        asserted once at scope 0; each goal's residue is added under a
        push/pop scope.  Learned clauses and E-graph/tableau state from
        earlier goals carry forward — scope-0 consequences survive the
        pop, per-goal ones are retracted.  Reported per-goal stats are
        snapshot deltas plus the shared base's query bytes, so results
        (including ``query_bytes``) are byte-identical to fresh runs.
        """
        if len(tasks) == 1:
            # Nothing to amortize: a lone goal pays the scope-logging
            # overhead for no reuse, so give it a plain fresh solver
            # (identical verdict and stats by construction).
            return self._run_fresh(tasks[0])
        prefix = self._common_prefix([t.assertions for t in tasks])
        solver = SmtSolver(tasks[0].config, incremental=True)
        for a in tasks[0].assertions[:prefix]:
            solver.add(a)
        base_qbytes = solver.stats.query_bytes
        for task in tasks:
            t0 = time.perf_counter()
            before = solver.stats.snapshot()
            solver.push()
            for a in task.assertions[prefix:]:
                solver.add(a)
            verdict = solver.check(timeout=self.timeout)
            status = (PROVED if verdict == UNSAT
                      else FAILED if verdict == SAT else TIMEOUT)
            stats = Stats.diff(before, solver.stats.snapshot())
            qbytes = base_qbytes + stats.get("query_bytes", 0)
            stats["query_bytes"] = qbytes
            seconds = time.perf_counter() - t0
            deadline = solver.last_deadline_exceeded
            if deadline:
                stats["deadline_exceeded"] = 1
                status = TIMEOUT
            self._apply(task, status, stats, qbytes, seconds)
            if not deadline:
                self._store(task, status, stats, qbytes)
            solver.pop()

    def _run_parallel(self, tasks: list[_Task]) -> list[_Task]:
        """Fan tasks out across processes; returns tasks that still need
        the in-process serial fallback."""
        try:
            jobs = [ObligationJob(serialize_terms(task.assertions),
                                  dict(vars(task.config)),
                                  task.item.obligation.label)
                    for task in tasks]
        except (ValueError, TypeError, pickle.PicklingError):
            return tasks  # unserializable content: solve in-process
        leftovers: list[_Task] = []
        try:
            workers = min(self.jobs, len(tasks))
            with _cf.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(task, pool.submit(_execute_job, job))
                           for task, job in zip(tasks, jobs)]
                for task, fut in futures:
                    try:
                        status, stats, qbytes, secs = fut.result(
                            timeout=self.timeout)
                    except _cf.TimeoutError:
                        fut.cancel()
                        # A killed job is not a solver verdict: report
                        # TIMEOUT but never cache it.
                        self._apply(task, TIMEOUT, {"job_timeouts": 1},
                                    0, self.timeout or 0.0)
                        continue
                    except (BrokenProcessPool, OSError, RuntimeError):
                        leftovers.append(task)
                        continue
                    self._apply(task, status, stats, qbytes, secs)
                    self._store(task, status, stats, qbytes)
        except (BrokenProcessPool, OSError, RuntimeError):
            pass
        leftovers.extend(t for t in tasks
                         if not t.done and t not in leftovers)
        return leftovers

    # --------------------------------------------------------- diagnosis

    def _diagnose_failures(self, gen, tasks: list[_Task]) -> None:
        """Attach a full Diagnostic to every failed obligation.

        Runs in the parent process after all verdicts are in, re-solving
        each failure from its planned VC — so serial, parallel, and
        cache-warm runs produce identical diagnostics.  Killed parallel
        jobs (wall-clock timeouts) are not re-solved: the in-process
        re-solve has no kill switch.
        """
        from ..diag import diagnose_obligation
        ctx_cache: dict[int, list] = {}
        cfg = None
        for task in tasks:
            ob = task.item.obligation
            if ob.ok or ob.diag is not None:
                continue
            if (ob.stats.get("job_timeouts")
                    or ob.stats.get("deadline_exceeded")):
                from ..diag import Diagnostic, VerusErrorType
                ob.diag = Diagnostic.for_obligation(ob)
                ob.diag.error_type = VerusErrorType.RLIMIT_EXCEEDED.value
                if ob.stats.get("job_timeouts"):
                    ob.diag.notes.append("worker killed by job timeout; "
                                         "not re-solved for diagnosis")
                else:
                    ob.diag.notes.append("soft deadline exceeded; "
                                         "not re-solved for diagnosis")
                continue
            plan = task.plan
            ctx = ctx_cache.get(id(plan))
            if ctx is None:
                ctx = list(gen.context_axioms(plan.encoder,
                                              plan.spec_axioms))
                ctx_cache[id(plan)] = ctx
            if cfg is None:
                cfg = gen.config.make_solver_config()
            ob.diag = diagnose_obligation(
                ob, task.item.goal, list(task.item.assumptions), ctx, cfg)
            if self.cache is not None and task.digest is not None:
                # Upgrade the cache entry so warm runs replay the full
                # report without re-solving.
                self.cache.store(task.digest, ob.status,
                                 {k: v for k, v in ob.stats.items()
                                  if k != "cache_hit"},
                                 task.qbytes, label=ob.label,
                                 diag=ob.diag.to_dict())

    # -------------------------------------------------------- bookkeeping

    def _apply(self, task: _Task, status: str, stats: dict, qbytes: int,
               seconds: float, from_cache: bool = False) -> None:
        ob = task.item.obligation
        ob.status = status
        ob.seconds = seconds
        self.stats.merge(stats)
        if from_cache:
            stats = dict(stats)
            stats["cache_hit"] = True
        ob.stats = stats
        task.plan.result.query_bytes += qbytes
        self.stats.obligations += 1
        self.stats.obligation_seconds += seconds
        task.done = True
        task.qbytes = qbytes

    def _store(self, task: _Task, status: str, stats: dict,
               qbytes: int) -> None:
        if self.cache is not None and task.digest is not None:
            self.cache.store(task.digest, status, stats, qbytes,
                             label=task.item.obligation.label)


# ---------------------------------------------------------------------------
# Module-granularity fan-out (Fig 9 "8 cores" column)
# ---------------------------------------------------------------------------

def run_builder_job(job: tuple) -> tuple:
    """Verify one ``(kind, dotted_builder)`` module job in this process.

    ``kind`` selects the machinery: ``"vc"`` (default pipeline, honors
    the env-configured scheduler, so workers share the proof cache),
    ``"epr"`` (§3.2 EPR mode), anything else builds a VerusSync system
    and calls ``check()``.  Returns ``(ok, query_bytes)``.
    """
    import importlib
    kind, dotted = job
    module_path, func_name = dotted.rsplit(".", 1)
    built = getattr(importlib.import_module(module_path), func_name)()
    if kind == "vc":
        from .wp import VcGen
        res = VcGen(built).verify_module()
    elif kind == "epr":
        from ..epr import verify_epr_module
        res = verify_epr_module(built)
    else:  # sync
        res = built.check()
    return res.ok, res.query_bytes


def run_builder_jobs(jobs: Sequence[tuple], max_workers: Optional[int] = None,
                     timeout: Optional[float] = None) -> list[tuple]:
    """Discharge module jobs across a process pool, serial on fallback."""
    jobs = list(jobs)
    max_workers = max_workers if max_workers else default_jobs()
    if max_workers > 1 and len(jobs) > 1:
        try:
            with _cf.ProcessPoolExecutor(
                    max_workers=min(max_workers, len(jobs))) as pool:
                futures = [pool.submit(run_builder_job, j) for j in jobs]
                return [f.result(timeout=timeout) for f in futures]
        except (BrokenProcessPool, OSError, _cf.TimeoutError,
                pickle.PicklingError):
            pass  # fall through to the serial path
    return [run_builder_job(j) for j in jobs]
