"""Parallel obligation scheduler for the VC pipeline.

The paper's headline claim (§3.1, Fig 9) is *query economy*: each SMT
obligation is small and self-contained, so proof work parallelizes across
obligations and modules ("1/8 cores" in Fig 9) and unchanged obligations
never need re-solving.  This layer supplies both halves:

* :class:`Scheduler` consumes the self-contained obligation jobs emitted
  by :meth:`repro.vc.wp.VcGen.plan_function` and discharges them through a
  pluggable executor — in-process serial by default (byte-identical to the
  historical eager behavior), or a ``ProcessPoolExecutor`` fan-out across
  obligations with per-job timeouts and a graceful serial fallback.

* Before any solving, each job is looked up in the content-addressed
  proof cache (:mod:`repro.vc.cache`) keyed on the canonical SMT-LIB2
  query text plus solver knobs, so cache-warm re-verification skips the
  solver entirely.

Two further strategies stack on top (both off by default):

* **Warm contexts** (``incremental=True``) — each function's obligations
  share one pooled :class:`~repro.smt.solver.SmtSolver`: the common
  assertion prefix (context axioms and shared path assumptions) is
  asserted once, and each goal is checked under a ``push()``/``pop()``
  scope, so learned clauses and E-graph merges from earlier goals carry
  forward.

* **Delta re-verification** (``delta=True``, needs the cache) — a
  function whose dependency fingerprint (:mod:`repro.vc.delta`) is
  unchanged since a fully verified run is *not even planned*; its
  recorded result is replayed.

Resilience (this layer is where the paper's "practical foundation"
claim meets real fleet failures):

* **Retry escalation ladder** (``retries=N`` / ``REPRO_RETRIES``) — a
  failed, ``RESOURCE_OUT``, or crashed obligation is retried with
  exponential backoff through progressively heavier strategies:
  warm-incremental → fresh context with escalated budgets →
  per-conjunct split (:mod:`repro.diag.split`) → fully serial.  Every
  escalation is recorded in :class:`~repro.smt.solver.Stats` and the
  obligation's stats/diag payload.

* **Fault injection** (``fault_plan=`` / ``REPRO_FAULT_PLAN``) — the
  scheduler installs a :class:`repro.resilience.FaultPlan` around each
  ``run_module`` so chaos runs reproduce from the plan string alone.
  Worker-process faults are decided *in the parent* at submit time
  (workers never arm their own counters).

* **Run journal** (``journal=`` / ``REPRO_JOURNAL_DIR``) — completed
  obligation digests are appended to a per-module
  :class:`repro.resilience.RunJournal`; a killed run resumed through
  ``Session.verify_module(resume=...)`` replays them and re-solves only
  the rest.

Run-level knobs (``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
``REPRO_JOB_TIMEOUT``, ``REPRO_DIAG``, ``REPRO_INCREMENTAL``,
``REPRO_DELTA``, ``REPRO_RETRIES``, ``REPRO_MAX_STEPS``,
``REPRO_FAULT_PLAN``, ``REPRO_JOURNAL_DIR``) are parsed exclusively by
:meth:`repro.api.VerifyConfig.from_env`; the ``default_*`` helpers here
are thin compatibility shims over it.

:func:`run_builder_jobs` is the coarse-grained companion used by the
Fig 9 macrobenchmark: whole-module verification jobs named by dotted
builder paths, fanned out across processes with the same fallback story.
"""

from __future__ import annotations

import concurrent.futures as _cf
import os
import pickle
import random
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from ..api import DIAG_ENV, JOB_TIMEOUT_ENV, JOBS_ENV, VerifyConfig
from ..profiles import escalate_config, get_profile, tuner_fingerprint
from ..resilience import faults as _faults
from ..resilience.faults import FaultPlan, InjectedCrash
from ..resilience.journal import RunJournal
from ..smt import terms as T
from ..smt.fingerprint import (deserialize_terms, obligation_digest,
                               serialize_terms, solver_config_key)
from ..smt.solver import SmtSolver, SolverConfig, Stats
from .cache import ProofCache
from .errors import (FAILED, PROVED, RESOURCE_OUT, STATIC_PROVED, TIMEOUT,
                     ModuleResult, status_from_solver)

__all__ = ["Scheduler", "ObligationJob", "default_jobs",
           "default_diagnostics", "run_builder_job", "run_builder_jobs",
           "JOBS_ENV", "JOB_TIMEOUT_ENV", "DIAG_ENV"]


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (1 = serial, the default)."""
    return VerifyConfig.from_env().jobs


def default_diagnostics() -> bool:
    """Diagnostics default from ``$REPRO_DIAG`` (off unless truthy)."""
    return VerifyConfig.from_env().diagnostics


def _default_timeout() -> Optional[float]:
    return VerifyConfig.from_env().job_timeout


# ---------------------------------------------------------------------------
# Obligation jobs (picklable, self-contained)
# ---------------------------------------------------------------------------

class ObligationJob:
    """A self-contained solver job that can cross a process boundary.

    Carries the serialized assertion list (context axioms + path
    assumptions + negated goal, in solver ``add`` order) and the solver
    knobs — everything a fresh worker needs to reproduce the default
    discharge exactly.

    ``inject`` is the worker-side fault directive (``{point: kind}``)
    decided *by the parent* when a fault plan is armed: worker processes
    never install a plan of their own (the "Nth arming" counters must
    live in exactly one process to stay deterministic).
    """

    __slots__ = ("payload", "config_dict", "label", "inject")

    def __init__(self, payload: tuple, config_dict: dict, label: str,
                 inject: Optional[dict] = None):
        self.payload = payload
        self.config_dict = config_dict
        self.label = label
        self.inject = inject

    def run(self) -> tuple:
        """Solve; returns ``(status, stats_snapshot, query_bytes, secs)``."""
        t0 = time.perf_counter()
        inject = self.inject or {}
        worker_kind = inject.get("pool.worker")
        if worker_kind == "exit":
            os._exit(3)      # a hard worker death: BrokenProcessPool
        if worker_kind is not None:
            raise InjectedCrash(f"pool.worker [{self.label}]")
        assertions = deserialize_terms(self.payload)
        solver = SmtSolver(SolverConfig(**self.config_dict))
        for a in assertions:
            solver.add(a)
        check_kind = inject.get("solver.check")
        if check_kind == "crash":
            raise InjectedCrash(f"solver.check [{self.label}]")
        if check_kind is not None:    # injected resource exhaustion
            stats = solver.stats.snapshot()
            stats["resource_out"] = 1
            return (RESOURCE_OUT, stats, solver.stats.query_bytes,
                    time.perf_counter() - t0)
        verdict = solver.check()
        status = status_from_solver(verdict, solver)
        stats = solver.stats.snapshot()
        if status == RESOURCE_OUT:
            stats["resource_out"] = 1
        return (status, stats, solver.stats.query_bytes,
                time.perf_counter() - t0)


def _execute_job(job: ObligationJob) -> tuple:
    # Top-level so ProcessPoolExecutor can pickle it by reference.
    return job.run()


class _Task:
    """Scheduler-internal handle pairing a pending obligation with its
    (lazily computed) assertions, digest, and owning function plan."""

    __slots__ = ("item", "plan", "assertions", "config", "digest", "done",
                 "qbytes", "crash", "pruned_axioms", "pruned_bytes",
                 "profile", "tuner_hit", "static_claim")

    def __init__(self, item, plan):
        self.item = item
        self.plan = plan
        self.assertions: Optional[list] = None
        self.config: Optional[SolverConfig] = None
        self.digest: Optional[str] = None
        self.done = False
        self.qbytes = 0
        # Per-obligation context pruning (vc/prune.py): how many spec
        # axioms this task's assertion list dropped, and their query
        # bytes — folded into the discharge stats by _apply().
        self.pruned_axioms = 0
        self.pruned_bytes = 0
        # Worker-failure cause ("ExcType: message") when a parallel
        # attempt died; surfaced in Stats/diag and consumed by the
        # retry ladder.
        self.crash: Optional[str] = None
        # Automation-profile name this task's config embodies when it
        # differs from the session primary (a tuner redirect), and
        # whether the tuner chose it — redirected tasks discharge via
        # _run_fresh (their config can't share a warm-group prefix).
        self.profile: Optional[str] = None
        self.tuner_hit = False
        # Shadow triage (REPRO_TRIAGE=shadow): the static tier claimed
        # this obligation; the solver still runs, and a FAILED verdict
        # afterwards is a soundness bug reported loudly.
        self.static_claim = False


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

class Scheduler:
    """Discharges emitted obligations through cache + executor.

    ``jobs``: worker processes (default ``$REPRO_JOBS`` or 1 = serial).
    ``cache``: a :class:`ProofCache`, a directory path, ``False`` to
    disable even if ``$REPRO_CACHE_DIR`` is set, or ``None`` for the
    env default.  ``timeout``: per-job seconds for parallel execution.
    ``diagnostics``: run the :mod:`repro.diag` engine on every failed
    obligation (default ``$REPRO_DIAG`` or off).  Diagnosis happens
    post hoc in the parent process — each failure is re-solved with a
    fresh solver over the same assertions — so the diagnostic output is
    identical whether the verdict came from a worker process, the
    serial path, or a warm cache entry.

    ``incremental``: warm-context mode — each function's unsolved
    obligations are discharged in one pooled incremental solver under
    push/pop scopes instead of a fresh solver per goal (default
    ``$REPRO_INCREMENTAL`` or off).  ``delta``: skip planning functions
    whose dependency fingerprint is unchanged since a fully verified run
    (default ``$REPRO_DELTA`` or off; needs the cache for storage).

    ``analyze``: run the :mod:`repro.analysis` static passes before
    planning; a module with any error-severity finding is **rejected**
    without constructing a single solver (default ``$REPRO_ANALYZE`` or
    off).

    ``retries``: max escalation-ladder attempts per failed/resource-out
    /crashed obligation (default ``$REPRO_RETRIES`` or 0 = off — the
    ladder re-solves, so the default keeps fault-free runs
    byte-identical to earlier releases).  ``max_steps``: per-check
    solver step budget producing ``resource-out`` verdicts (default
    ``$REPRO_MAX_STEPS`` or unbounded).  ``fault_plan``: a
    :class:`~repro.resilience.FaultPlan` or plan string installed
    around each ``run_module`` (default ``$REPRO_FAULT_PLAN``).
    ``journal``: a :class:`~repro.resilience.RunJournal`, a
    ``*.journal`` file path, a journal directory, or ``False`` to
    disable even if ``$REPRO_JOURNAL_DIR`` is set.

    ``profile``: the primary automation profile — a name or an
    :class:`~repro.profiles.AutomationProfile` (default
    ``$REPRO_PROFILE`` or ``default``); its solver knobs layer onto
    every discharge config and its run-level defaults fill
    ``incremental``/``retries``/``max_steps`` left unset.
    ``portfolio``: race width for stubborn obligations — after the main
    pass, each failed/unknown/resource-out obligation is re-discharged
    under that many alternative profiles and a PROVED verdict from any
    of them is adopted (default ``$REPRO_PORTFOLIO`` or 0 = off).
    ``tuner``: a :class:`~repro.profiles.ProfileTuner` recording race
    winners; when present, obligations with a learned winner are
    redirected straight to it *before* digests are computed, so a
    tuner-warm + cache-warm run replays races with zero solver
    constructions.
    """

    #: Escalation order of the retry ladder: cheapest recovery first,
    #: heaviest (and most isolated) last.
    LADDER = ("warm", "fresh", "split", "serial")

    def __init__(self, jobs: Optional[int] = None, cache=None,
                 timeout: Optional[float] = None,
                 diagnostics: Optional[bool] = None,
                 incremental: Optional[bool] = None,
                 delta: Optional[bool] = None,
                 analyze: Optional[bool] = None,
                 retries: Optional[int] = None,
                 max_steps: Optional[int] = None,
                 fault_plan=None,
                 journal=None,
                 retry_backoff: float = 0.01,
                 solver_pool=None,
                 profile=None,
                 portfolio: Optional[int] = None,
                 tuner=None,
                 triage: Optional[str] = None):
        env = VerifyConfig.from_env()
        self.jobs = max(1, int(jobs)) if jobs is not None else env.jobs
        if cache is None:
            # Env default: tiered when $REPRO_CACHE_TIERS asks for it.
            from ..cache.tiers import cache_from_env
            cache = cache_from_env()
        elif cache is False:
            cache = None
        elif isinstance(cache, str):
            cache = ProofCache(cache)
        self.cache: Optional[ProofCache] = cache
        # Primary automation profile + portfolio/tuner wiring.  The
        # tri-state run-level knobs resolve explicit arg -> env ->
        # profile default (exactly VerifyConfig.effective_*, inlined so
        # direct Scheduler construction behaves like Session).
        self.profile = get_profile(profile if profile is not None
                                   else env.profile)
        self.portfolio = (max(0, int(portfolio)) if portfolio is not None
                          else env.portfolio)
        self.tuner = tuner
        self.timeout = timeout if timeout is not None else env.job_timeout
        self.diagnostics = (diagnostics if diagnostics is not None
                            else env.diagnostics)
        if incremental is None:
            incremental = (env.incremental if env.incremental is not None
                           else self.profile.default_incremental)
        self.incremental = incremental
        self.delta = delta if delta is not None else env.delta
        self.analyze = analyze if analyze is not None else env.analyze
        if retries is None:
            retries = (env.retries if env.retries is not None
                       else self.profile.default_retries)
        self.retries = max(0, int(retries))
        if max_steps is None:
            max_steps = (env.max_steps if env.max_steps is not None
                         else self.profile.max_steps)
        self.max_steps = max_steps
        plan = fault_plan if fault_plan is not None else env.fault_plan
        if isinstance(plan, str):
            plan = FaultPlan.from_string(plan)
        self.fault_plan: Optional[FaultPlan] = plan
        if journal is None:
            journal = env.journal_dir
        elif journal is False:
            journal = None
        self._journal_spec = journal
        self._journal: Optional[RunJournal] = None
        # Base delay of the escalation ladder's exponential backoff; the
        # jitter RNG is seeded so chaos runs stay reproducible.
        self.retry_backoff = retry_backoff
        self._retry_rng = random.Random(0x5EED)
        self._delta_cache = None
        if self.delta and self.cache is not None:
            from .delta import DeltaCache
            self._delta_cache = DeltaCache(self.cache.root)
        # Warm solver-context registry (repro.server.warm.SolverPool, or
        # anything with group_key/acquire/release): lets warm groups
        # reuse a scope-0 context built by a *previous* run_module with
        # the same prefix.  None (the default) keeps batch behavior.
        self.solver_pool = solver_pool
        # Static proving tier (repro.analysis.absint): tri-state mode
        # resolved explicit arg -> env -> profile default, like the other
        # run-level knobs.  "on" discharges entailed obligations with no
        # solver; "shadow" runs tier AND solver and fails loudly on
        # disagreement; "off" skips the tier entirely.
        if triage is None:
            triage = (env.triage if env.triage is not None
                      else ("on" if self.profile.default_triage else "off"))
        from ..analysis.absint import TRIAGE_MODES
        if triage not in TRIAGE_MODES:
            raise ValueError(f"triage mode must be one of {TRIAGE_MODES}, "
                             f"got {triage!r}")
        self.triage_mode = triage
        self._module_name: Optional[str] = None
        self.stats = Stats()

    # ------------------------------------------------------------- public

    def run_module(self, gen) -> ModuleResult:
        """Plan, discharge, and assemble results for a whole module."""
        from . import ast as A
        t0 = time.perf_counter()
        hits0, misses0 = ((self.cache.hits, self.cache.misses)
                          if self.cache is not None else (0, 0))
        # A tiered cache additionally breaks hits down per tier; diff
        # its counters around the run like hits/misses below.
        tier_snap0 = (self.cache.tier_snapshot()
                      if hasattr(self.cache, "tier_snapshot") else None)
        skips0 = (self._delta_cache.skips
                  if self._delta_cache is not None else 0)
        result = ModuleResult(gen.module.name)
        self._module_name = gen.module.name
        if self.analyze:
            from ..analysis import analyze_module
            report = analyze_module(gen.module, gen.config)
            result.analysis = report
            if report.has_errors:
                # Fail fast: no planning, no solver, zero query bytes.
                result.rejected = True
                result.seconds = time.perf_counter() - t0
                result.stats = self.stats.snapshot()
                return result
        plans = []
        tasks: list[_Task] = []
        # Profile-driven context pruning: the primary profile may force
        # pruning on/off for this run (restored afterwards — the VcGen
        # config can be shared across schedulers).
        prune_override = self.profile.prune_context
        prev_prune = gen.config.prune_context
        if prune_override is not None:
            gen.config.prune_context = prune_override
        # Fault plan: installed for the duration of this run (previous
        # plan restored after), so every instrumented fault point in
        # this process consults the same deterministic counters.  A
        # plan installed directly via faults.install() is honored too.
        prev_plan = _faults.install(self.fault_plan) \
            if self.fault_plan is not None else None
        active_plan = (self.fault_plan if self.fault_plan is not None
                       else _faults.active())
        fired0 = active_plan.total_fired if active_plan is not None else 0
        journal = self._resolve_journal(gen.module.name)
        self._journal = journal
        jskips0 = journal.skips if journal is not None else 0
        # Planning runs the §3.3 idiom engines eagerly; hand them the
        # cache so e.g. bit-blasting verdicts are reused on warm runs.
        gen.proof_cache = self.cache
        delta_digests: dict[int, str] = {}
        try:
            for fn in gen.module.functions.values():
                if fn.mode in (A.EXEC, A.PROOF) and fn.body is not None:
                    if self._delta_cache is not None:
                        from .delta import (function_dependency_digest,
                                            replay_function)
                        # Key on the scheduler-effective solver config
                        # (max_steps layered on), never the raw base
                        # config: a PROVED under one budget must not be
                        # replayed under another.
                        digest = function_dependency_digest(
                            gen, fn, solver_config=self._solver_config(gen))
                        entry = self._delta_cache.lookup(digest)
                        if entry is not None:
                            result.functions.append(replay_function(
                                entry,
                                triage_on=self.triage_mode == "on"))
                            continue
                    plan = gen.plan_function(fn)
                    if self._delta_cache is not None:
                        delta_digests[id(plan)] = digest
                    plans.append(plan)
                    result.functions.append(plan.result)
                    tasks.extend(self._plan_tasks(gen, plan))
            self._run_tasks(gen, tasks)
            if self.portfolio > 0:
                self._portfolio_pass(gen, tasks)
            if self.retries > 0:
                self._retry_pass(gen, tasks)
            if self.triage_mode == "shadow":
                # Shadow triage: the static tier ran alongside the
                # solver; a claimed obligation the solver *refuted* is
                # an absint soundness bug.  (TIMEOUT/RESOURCE_OUT are
                # not refutations — only a countermodel disagrees.)
                from ..analysis.absint import TriageDisagreement
                for task in tasks:
                    if (task.static_claim
                            and task.item.obligation.status == FAILED):
                        raise TriageDisagreement(
                            task.plan.fn.name, task.item.obligation.label)
            if self.diagnostics:
                self._diagnose_failures(gen, tasks)
        finally:
            gen.proof_cache = None
            if prune_override is not None:
                gen.config.prune_context = prev_prune
            self._journal = None
            if journal is not None and journal is not self._journal_spec:
                journal.close()
            if self.fault_plan is not None:
                _faults.install(prev_plan)
        if journal is not None:
            self.stats.merge({"journal_skips": journal.skips - jskips0})
        if active_plan is not None:
            self.stats.merge(
                {"faults_injected": active_plan.total_fired - fired0})
        if self._delta_cache is not None:
            self.stats.merge(
                {"delta_skips": self._delta_cache.skips - skips0})
            for plan in plans:
                # Record only fully verified functions whose verdicts are
                # all cache-safe (a soft-deadline TIMEOUT is not PROVED,
                # so it can never sneak in here).
                if plan.result.ok:
                    self._delta_cache.store(delta_digests[id(plan)],
                                            plan.fn.name, plan.result)
        if self.cache is not None:
            self.stats.cache_hits += self.cache.hits - hits0
            self.stats.cache_misses += self.cache.misses - misses0
            if tier_snap0 is not None:
                for key, value in self.cache.tier_snapshot().items():
                    setattr(self.stats, key,
                            getattr(self.stats, key, 0)
                            + value - tier_snap0.get(key, 0))
        for plan in plans:
            plan.result.seconds = plan.gen_seconds + sum(
                o.seconds for o in plan.result.obligations)
        self.stats.wall_seconds += time.perf_counter() - t0
        result.seconds = time.perf_counter() - t0
        result.stats = self.stats.snapshot()
        return result

    # ----------------------------------------------------------- planning

    def _offloadable(self, gen) -> bool:
        """Cross-process dispatch replicates only the *default* discharge;
        pipelines that override the retry strategy stay in-process."""
        from .wp import VcGen
        return type(gen)._solve_obligation is VcGen._solve_obligation

    def _resolve_journal(self, module_name: str) -> Optional[RunJournal]:
        """Open this module's run journal from the configured spec.

        A ``*.journal`` path names the file directly; any other string
        is a directory holding one ``<module>.journal`` per module.  An
        already-open :class:`RunJournal` is used as-is (and not closed
        by ``run_module``).
        """
        spec = self._journal_spec
        if spec is None:
            return None
        if isinstance(spec, RunJournal):
            return spec
        path = str(spec)
        if not path.endswith(".journal"):
            path = os.path.join(path, f"{module_name}.journal")
        return RunJournal(path, module=module_name)

    def _solver_config(self, gen) -> SolverConfig:
        """The discharge config: the primary profile's solver knobs,
        then the scheduler's ``max_steps`` budget, layered on a *copy*
        (``make_solver_config`` may hand out a shared instance that
        must not be mutated; the ``default`` profile is an identity, so
        profile-free behavior is byte-identical)."""
        cfg = self.profile.apply_solver(gen.config.make_solver_config())
        if self.max_steps is not None and cfg.max_steps != self.max_steps:
            cfg = SolverConfig(**vars(cfg))
            cfg.max_steps = self.max_steps
        return cfg

    def _race_base(self, gen) -> SolverConfig:
        """The *unprofiled* discharge config race candidates layer their
        knobs onto — shared by the tuner redirect and _portfolio_pass so
        a redirected task's digest is exactly the digest the winning
        race attempt stored its verdict under."""
        return gen.config.make_solver_config()

    def _plan_tasks(self, gen, plan) -> list[_Task]:
        tasks = []
        cfg = None
        # Warm contexts and the serial soft deadline replicate the
        # *default* discharge just like cross-process dispatch does, so
        # they too need the explicit assertion lists (and stay disabled
        # for pipelines that override the retry strategy).
        offload = self._offloadable(gen)
        need_assertions = (self.cache is not None
                           or self._journal is not None
                           or ((self.jobs > 1 or self.incremental
                                or self.timeout is not None
                                or self.max_steps is not None
                                or self.retries > 0
                                or self.portfolio > 0) and offload))
        for item in plan.pending:
            ob = item.obligation
            plan.result.obligations.append(ob)
            if item.direct_result is not None:
                # Idiom engines (§3.3) decided eagerly during planning.
                ob.status = PROVED if item.direct_result else FAILED
                ob.seconds = 0.0
                if not ob.ok and self.diagnostics:
                    from ..diag import diagnose_obligation
                    ob.diag = diagnose_obligation(ob, None, [], [])
                continue
            task = _Task(item, plan)
            if need_assertions:
                if cfg is None:
                    cfg = self._solver_config(gen)
                # Per-obligation pruning must match gen._solve_obligation
                # exactly — digests, warm groups, and the serial fallback
                # all have to see the same assertion list.
                kept, dropped = gen.obligation_context(
                    item, plan.encoder, plan.spec_axioms)
                if dropped:
                    from .prune import bytes_saved
                    task.pruned_axioms = len(dropped)
                    task.pruned_bytes = bytes_saved(dropped)
                task.assertions = (kept + list(item.assumptions)
                                   + [T.Not(item.goal)])
                task.config = cfg
            tasks.append(task)
        return tasks

    # ---------------------------------------------------------- execution

    def _run_tasks(self, gen, tasks: list[_Task]) -> None:
        unsolved = []
        strategy = type(gen).__qualname__
        racing = (self.portfolio > 0 and self.tuner is not None
                  and self._offloadable(gen))
        triage = None
        if self.triage_mode != "off" and self._offloadable(gen):
            from ..analysis.absint import Triage
            triage = Triage(self.triage_mode)
        for task in tasks:
            if racing and task.assertions is not None:
                winner = self.tuner.lookup(
                    tuner_fingerprint(task.assertions, strategy))
                if winner is None:
                    self.stats.tuner_misses += 1
                elif winner != self.profile.name:
                    # Learned redirect: discharge straight under the
                    # recorded race winner.  The digest below becomes
                    # the winner attempt's digest, so a cache-warm run
                    # replays the race outcome with zero solvers.
                    task.config = get_profile(winner).apply_solver(
                        self._race_base(gen))
                    task.profile = winner
                    task.tuner_hit = True
                    self.stats.tuner_hits += 1
                else:
                    # The tuner confirmed the primary profile: no
                    # redirect needed, but it still counts as learned.
                    self.stats.tuner_hits += 1
            if ((self.cache is not None or self._journal is not None)
                    and task.assertions is not None):
                task.digest = obligation_digest(
                    task.assertions, solver_config_key(task.config), strategy)
            if self._journal is not None and task.digest is not None:
                entry = self._journal.lookup(task.digest)
                if (entry is not None
                        and entry.get("kind") == STATIC_PROVED
                        and self.triage_mode != "on"):
                    # A static-tier verdict journaled by a triage-on
                    # run: the tier is not trusted here, so re-solve —
                    # the same gate the proof cache applies.
                    self._journal.skips -= 1
                    entry = None
                if entry is not None:
                    # A goal this (possibly killed) run already finished:
                    # replay the journaled verdict, solve nothing.
                    stats = dict(entry.get("stats") or {})
                    stats["journal_hit"] = True
                    self._apply(task, entry["status"], stats,
                                entry.get("query_bytes", 0), 0.0)
                    continue
            if self.cache is not None and task.digest is not None:
                entry = self.cache.lookup(task.digest)
                if entry is not None:
                    if (entry.get("kind") == STATIC_PROVED
                            and self.triage_mode != "on"):
                        # A static-tier verdict, but the tier is not
                        # trusted this run (off, or shadow — which must
                        # actually solve to compare): treat as a miss;
                        # the fresh solver verdict overwrites the entry.
                        self.cache.hits -= 1
                        self.cache.misses += 1
                    elif (self.diagnostics and entry["status"] != PROVED
                            and entry.get("diag") is None):
                        # A pre-diagnostics entry for a failure: the
                        # verdict alone is not what the user asked for,
                        # so re-solve (and re-store with the payload).
                        self.cache.hits -= 1
                        self.cache.misses += 1
                    else:
                        stats = dict(entry.get("stats") or {})
                        if self.diagnostics and entry.get("diag"):
                            from ..diag import Diagnostic
                            task.item.obligation.diag = \
                                Diagnostic.from_dict(entry["diag"])
                        self._apply(task, entry["status"], stats,
                                    entry.get("query_bytes", 0), 0.0,
                                    from_cache=True)
                        continue
            if triage is not None:
                t0 = time.perf_counter()
                claimed, passes = triage.check(task.item)
                if claimed and triage.mode == "on":
                    # Statically discharged: no solver is constructed.
                    # _apply merges the stats dict into self.stats, which
                    # is the only place these counters are incremented.
                    stats = {"static_proved": 1,
                             "absint_fixpoint_iters": passes,
                             "solver_constructions_avoided": 1,
                             "tier": STATIC_PROVED}
                    seconds = time.perf_counter() - t0
                    self._apply(task, PROVED, stats, 0, seconds)
                    self._store(task, PROVED, stats, 0, kind=STATIC_PROVED)
                    continue
                if claimed:
                    # Shadow: remember the claim, still run the solver.
                    task.static_claim = True
                    self.stats.static_proved += 1
                    self.stats.absint_fixpoint_iters += passes
            unsolved.append(task)
        if self.incremental and self._offloadable(gen):
            # Warm contexts are in-process by design (the pooled solver
            # is the whole point), so incremental wins over `jobs`.
            groups: dict[int, list[_Task]] = {}
            for task in unsolved:
                if task.tuner_hit:
                    # A redirected task runs under a different profile's
                    # config and cannot share the group's warm prefix.
                    self._run_fresh(task)
                    continue
                groups.setdefault(id(task.plan), []).append(task)
            for group in groups.values():
                self._run_warm_group(group)
            return
        if len(unsolved) > 1 and self.jobs > 1 and self._offloadable(gen):
            unsolved = self._run_parallel(unsolved)
        for task in unsolved:
            if self.retries > 0 and task.crash is not None:
                # The retry ladder owns crashed obligations: it records
                # the escalation trail the plain serial fallback cannot.
                continue
            self._run_serial(gen, task)

    def _run_serial(self, gen, task: _Task) -> None:
        if task.tuner_hit or (
                (self.timeout is not None or self.max_steps is not None)
                and task.assertions is not None and self._offloadable(gen)):
            # Tuner-redirected tasks must solve from their redirected
            # config — gen._solve_obligation would rebuild the default.
            return self._run_fresh(task)
        t0 = time.perf_counter()
        # Standard pipelines discharge under the primary profile's
        # solver knobs; baselines (non-offloadable) keep their own
        # retry strategies and ignore the scheduler's profile.
        solver_config = (self._solver_config(gen)
                         if self._offloadable(gen) else None)
        status, stats, qbytes = gen._solve_obligation(
            task.item, task.plan.encoder, task.plan.spec_axioms,
            solver_config=solver_config)
        seconds = time.perf_counter() - t0
        self._apply(task, status, stats, qbytes, seconds)
        self._store(task, status, stats, qbytes)

    def _run_fresh(self, task: _Task) -> None:
        """One fresh-solver discharge from the planned assertion list,
        honoring the soft per-obligation deadline when one is set.

        Serial runs cannot kill a worker process, so the deadline is
        enforced *inside* the solver: the CDCL loop checks wall clock
        between conflict batches and gives up cleanly.  A deadline
        verdict is wall-clock-dependent and is therefore never cached.
        """
        t0 = time.perf_counter()
        solver = SmtSolver(task.config)
        for a in task.assertions:
            solver.add(a)
        verdict = solver.check(timeout=self.timeout)
        status = status_from_solver(verdict, solver)
        stats = solver.stats.snapshot()
        qbytes = solver.stats.query_bytes
        seconds = time.perf_counter() - t0
        if solver.last_deadline_exceeded:
            stats["deadline_exceeded"] = 1
            self._apply(task, TIMEOUT, stats, qbytes, seconds)
            return
        if status == RESOURCE_OUT:
            stats["resource_out"] = 1
        self._apply(task, status, stats, qbytes, seconds)
        self._store(task, status, stats, qbytes)

    @staticmethod
    def _common_prefix(lists: list[list]) -> int:
        """Length of the longest shared assertion prefix (hash-consed
        terms make ``is`` the structural-equality check)."""
        n = min(len(lst) for lst in lists)
        first = lists[0]
        for i in range(n):
            a = first[i]
            if any(lst[i] is not a for lst in lists[1:]):
                return i
        return n

    def _run_warm_group(self, tasks: list[_Task]) -> None:
        """Discharge one function's obligations in a pooled warm solver.

        The shared prefix (context axioms + common path assumptions) is
        asserted once at scope 0; each goal's residue is added under a
        push/pop scope.  Learned clauses and E-graph/tableau state from
        earlier goals carry forward — scope-0 consequences survive the
        pop, per-goal ones are retracted.  Reported per-goal stats are
        snapshot deltas plus the shared base's query bytes, so results
        (including ``query_bytes``) are byte-identical to fresh runs.
        """
        if len(tasks) == 1:
            # Nothing to amortize: a lone goal pays the scope-logging
            # overhead for no reuse, so give it a plain fresh solver
            # (identical verdict and stats by construction).
            return self._run_fresh(tasks[0])
        prefix = self._common_prefix([t.assertions for t in tasks])
        pool = self.solver_pool
        key = None
        pooled = None
        if pool is not None:
            key = pool.group_key(tasks[0].assertions[:prefix],
                                 tasks[0].config)
            pooled = pool.acquire(key)
        if pooled is not None:
            # Residency: the scope-0 context (learned clauses, E-graph,
            # tableau) from an earlier request with the same prefix.
            # base_qbytes is the entry's *original* prefix cost — the
            # live query_bytes counter never decrements across pops, so
            # per-goal reporting must use the recorded value to stay
            # byte-identical to a fresh run.
            solver, base_qbytes = pooled
            self.stats.warm_pool_hits += 1
        else:
            solver = SmtSolver(tasks[0].config, incremental=True)
            for a in tasks[0].assertions[:prefix]:
                solver.add(a)
            base_qbytes = solver.stats.query_bytes
            if pool is not None:
                self.stats.warm_pool_misses += 1
        try:
            for task in tasks:
                t0 = time.perf_counter()
                before = solver.stats.snapshot()
                solver.push()
                for a in task.assertions[prefix:]:
                    solver.add(a)
                verdict = solver.check(timeout=self.timeout)
                status = status_from_solver(verdict, solver)
                stats = Stats.diff(before, solver.stats.snapshot())
                qbytes = base_qbytes + stats.get("query_bytes", 0)
                stats["query_bytes"] = qbytes
                seconds = time.perf_counter() - t0
                deadline = solver.last_deadline_exceeded
                if deadline:
                    stats["deadline_exceeded"] = 1
                    status = TIMEOUT
                elif status == RESOURCE_OUT:
                    stats["resource_out"] = 1
                self._apply(task, status, stats, qbytes, seconds)
                if not deadline:
                    self._store(task, status, stats, qbytes)
                solver.pop()
        except BaseException:
            key = None  # scope state unknown: never repool a damaged solver
            raise
        finally:
            if pool is not None and key is not None:
                # Back at scope 0 with exactly the prefix asserted.
                pool.release(key, solver, base_qbytes,
                             module=self._module_name)

    def _run_parallel(self, tasks: list[_Task]) -> list[_Task]:
        """Fan tasks out across processes; returns tasks that still need
        the in-process serial fallback (or the retry ladder).

        Worker faults are decided here, in the parent, by arming the
        active plan's ``pool.worker``/``solver.check`` points once per
        submitted job: the directive ships inside the job, so the
        deterministic counters never leave this process.  Worker deaths
        are no longer swallowed — the exception type and message are
        recorded on the task (→ ``Stats.pool_failures`` and the diag
        payload) before falling back.
        """
        plan = _faults.active()
        try:
            jobs = []
            for task in tasks:
                inject = None
                if plan is not None:
                    inject = {}
                    spec = plan.arm("pool.worker")
                    if spec is not None:
                        inject["pool.worker"] = spec.kind
                    spec = plan.arm("solver.check")
                    if spec is not None:
                        inject["solver.check"] = spec.kind
                jobs.append(ObligationJob(serialize_terms(task.assertions),
                                          dict(vars(task.config)),
                                          task.item.obligation.label,
                                          inject=inject or None))
        except (ValueError, TypeError, pickle.PicklingError):
            return tasks  # unserializable content: solve in-process
        try:
            workers = min(self.jobs, len(tasks))
            with _cf.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(task, pool.submit(_execute_job, job))
                           for task, job in zip(tasks, jobs)]
                for task, fut in futures:
                    try:
                        status, stats, qbytes, secs = fut.result(
                            timeout=self.timeout)
                    except _cf.TimeoutError:
                        fut.cancel()
                        # A killed job is not a solver verdict: report
                        # TIMEOUT but never cache it.
                        self._apply(task, TIMEOUT, {"job_timeouts": 1},
                                    0, self.timeout or 0.0)
                        continue
                    except (BrokenProcessPool, OSError,
                            RuntimeError) as exc:
                        self._record_pool_failure(task, exc)
                        continue
                    self._apply(task, status, stats, qbytes, secs)
                    self._store(task, status, stats, qbytes)
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            # Pool-level breakage (e.g. the executor dying between
            # submissions): attribute the cause to every stranded task.
            for task in tasks:
                if not task.done:
                    self._record_pool_failure(task, exc)
        return [t for t in tasks if not t.done]

    def _record_pool_failure(self, task: _Task, exc: BaseException) -> None:
        """Record why a parallel attempt died instead of swallowing it."""
        if task.crash is None:
            self.stats.pool_failures += 1
        task.crash = f"{type(exc).__name__}: {exc}"[:300]

    # ------------------------------------------------ portfolio racing

    def _portfolio_pass(self, gen, tasks: list[_Task]) -> None:
        """Race alternative profiles on every stubborn obligation.

        A *stubborn* obligation is one the primary profile left
        FAILED/unknown/resource-out.  Each race candidate
        (:func:`~repro.profiles.portfolio.plan_attempts`) is attempted
        — every one, always, so serial/parallel/cache-warm runs leave
        byte-identical proof-cache state — with its verdict stored
        under the *attempt's own* digest (never the primary's: the
        primary entry keeps recording what the primary profile actually
        concluded).  The lowest-index PROVED attempt wins and its
        verdict is adopted; the tuner (when present) records the winner
        so later runs redirect this obligation before fan-out.

        Runs in the parent process after the main pass and before the
        retry ladder: a race rescue flips the obligation to PROVED, so
        the ladder never sees it.
        """
        if not self._offloadable(gen):
            return
        from ..profiles.portfolio import (elect_winner, plan_attempts,
                                          race_summary, solve_attempt)
        strategy = type(gen).__qualname__
        base_cfg = None
        for task in tasks:
            if (not task.done or task.assertions is None
                    or task.item.direct_result is not None):
                continue        # crashes belong to the retry ladder
            ob = task.item.obligation
            if ob.status not in (FAILED, TIMEOUT, RESOURCE_OUT):
                continue
            if ob.stats.get("job_timeouts"):
                continue        # a killed worker, not a solver verdict
            if base_cfg is None:
                base_cfg = self._race_base(gen)
            primary = task.profile or self.profile.name
            attempts = plan_attempts(primary, self.portfolio, base_cfg,
                                     task.assertions, strategy)
            if not attempts:
                continue
            self.stats.portfolio_races += 1
            for attempt in attempts:
                entry = (self.cache.lookup(attempt.digest)
                         if self.cache is not None else None)
                if entry is not None:
                    stats = dict(entry.get("stats") or {})
                    attempt.record(entry["status"], stats,
                                   entry.get("query_bytes", 0), 0.0,
                                   from_cache=True)
                    continue
                solve_attempt(attempt, task.assertions,
                              timeout=self.timeout)
                self.stats.portfolio_attempts += 1
                self.stats.merge(attempt.stats)
                if not attempt.stats.get("deadline_exceeded") \
                        and attempt.status != RESOURCE_OUT:
                    if self.cache is not None:
                        self.cache.store(attempt.digest, attempt.status,
                                         attempt.stats, attempt.qbytes,
                                         label=ob.label)
            winner = elect_winner(attempts)
            recorded = False
            if winner is not None and self.tuner is not None:
                self.tuner.record_win(
                    tuner_fingerprint(task.assertions, strategy),
                    winner.profile, status=winner.status)
                recorded = True
            summary = race_summary(attempts, winner, recorded)
            race_seconds = sum(a.seconds for a in attempts)
            ob.seconds += race_seconds
            self.stats.obligation_seconds += race_seconds
            live_qbytes = sum(a.qbytes for a in attempts
                              if not a.from_cache)
            task.plan.result.query_bytes += live_qbytes
            if winner is None:
                stats = dict(ob.stats)
                stats["portfolio"] = summary
                ob.stats = stats
                continue
            self.stats.portfolio_wins += 1
            adopted = dict(winner.stats)
            adopted["profile"] = winner.profile
            adopted["portfolio"] = summary
            if winner.from_cache:
                adopted["cache_hit"] = True
            ob.status = winner.status
            ob.stats = adopted
            task.qbytes += winner.qbytes
            if self._journal is not None:
                # Journaled under the winner's digest: a resumed run
                # with a warm tuner redirects to exactly that digest.
                self._journal.record(winner.digest, winner.status,
                                     adopted, winner.qbytes,
                                     label=ob.label)

    # ------------------------------------------------ retry escalation

    def _retry_pass(self, gen, tasks: list[_Task]) -> None:
        """Give failed/resource-out/crashed obligations the escalation
        ladder ("degrading automation in controlled steps"): retries are
        transient-fault recovery, so replayed verdicts (cache/journal
        hits) and wall-clock kills are exempt."""
        for task in tasks:
            if task.item.direct_result is not None:
                continue        # idiom verdicts are deterministic
            ob = task.item.obligation
            if not task.done:
                if task.crash is not None:
                    self._retry_ladder(gen, task)
                continue
            if ob.status not in (FAILED, RESOURCE_OUT):
                continue
            if ob.stats.get("cache_hit") or ob.stats.get("journal_hit"):
                continue        # a replay, not a fresh solver outcome
            self._retry_ladder(gen, task)

    def _retry_ladder(self, gen, task: _Task) -> None:
        """Retry one obligation up the ladder: warm-incremental → fresh
        context with escalated budgets → per-conjunct split → serial.

        Each rung waits out an exponential backoff (seeded jitter), so
        transient environmental faults get time to clear; ``retries``
        caps the total attempts.  The final rung's verdict replaces the
        failed one, with the whole escalation trail recorded in the
        obligation's stats (and later surfaced in its diag payload).
        """
        ob = task.item.obligation
        offload = self._offloadable(gen) and task.assertions is not None
        rungs = [r for r in self.LADDER if offload or r == "serial"]
        escalation: list[str] = []
        final = None
        attempts = 0
        for rung in rungs:
            if attempts >= self.retries:
                break
            if rung == "split" and (self.profile.split_strategy == "off"
                                    or not self._splittable(task)):
                # The profile may veto conjunct splitting outright
                # (frugal runs should not quietly multiply queries).
                continue
            attempts += 1
            self._backoff(attempts)
            outcome = self._run_rung(gen, task, rung)
            escalation.append(rung)
            status = outcome[0]
            self.stats.merge(outcome[1])
            final = outcome
            if status == PROVED:
                break
        self.stats.retries += attempts
        if final is None:
            # retries == 0 for this task (can't happen via _retry_pass)
            # or no applicable rung: fall back to the legacy serial path
            # so a crashed task still gets a verdict.
            if not task.done:
                self._run_serial(gen, task)
            return
        status, stats, qbytes, seconds = final
        stats = dict(stats)
        stats["retries"] = attempts
        stats["escalation"] = list(escalation)
        if "portfolio" in ob.stats:
            # Keep the race record visible even after the ladder
            # replaces the verdict it raced for.
            stats["portfolio"] = ob.stats["portfolio"]
        if task.crash is not None:
            stats["pool_failure"] = task.crash
        if task.done:
            ob.seconds += seconds
        else:
            ob.seconds = seconds
            self.stats.obligations += 1
            task.done = True
        ob.status = status
        ob.stats = stats
        task.plan.result.query_bytes += qbytes
        task.qbytes = qbytes
        self.stats.obligation_seconds += seconds
        if status == PROVED:
            self.stats.retry_recoveries += 1
        elif status == RESOURCE_OUT:
            self.stats.resource_outs += 1
        if not stats.get("deadline_exceeded"):
            # Overwrites any stale FAILED entry from the faulted attempt;
            # the cache/journal themselves filter transient statuses.
            self._store(task, status, stats, qbytes)

    def _splittable(self, task: _Task) -> bool:
        from ..diag.split import split_goal
        return (task.item.goal is not None
                and len(split_goal(task.item.goal)) > 1)

    def _backoff(self, attempt: int) -> None:
        if self.retry_backoff <= 0:
            return
        delay = min(self.retry_backoff * (2 ** (attempt - 1)), 1.0)
        time.sleep(delay * (1.0 + self._retry_rng.random()))

    def _run_rung(self, gen, task: _Task, rung: str) -> tuple:
        """One ladder attempt; ``(status, stats, qbytes, seconds)``."""
        t0 = time.perf_counter()
        if rung == "serial":
            status, stats, qbytes = gen._solve_obligation(
                task.item, task.plan.encoder, task.plan.spec_axioms)
            return status, stats, qbytes, time.perf_counter() - t0
        if rung == "split":
            return self._run_split(task)
        cfg = task.config if rung == "warm" else escalate_config(task.config)
        solver = SmtSolver(cfg, incremental=(rung == "warm"))
        for a in task.assertions:
            solver.add(a)
        verdict = solver.check(timeout=self.timeout)
        status = status_from_solver(verdict, solver)
        stats = solver.stats.snapshot()
        if solver.last_deadline_exceeded:
            stats["deadline_exceeded"] = 1
        elif status == RESOURCE_OUT:
            stats["resource_out"] = 1
        return status, stats, solver.stats.query_bytes, \
            time.perf_counter() - t0

    def _run_split(self, task: _Task) -> tuple:
        """The split rung: prove each conjunct of the goal on its own.

        A conjunctive goal that blows a budget as a whole often
        discharges piecewise — each conjunct's query is smaller, so the
        quantifier/conflict search has less room to diverge.  PROVED
        only if *every* conjunct proves; a countermodel for any conjunct
        is a countermodel for the conjunction, hence FAILED.
        """
        from ..diag.split import split_goal
        t0 = time.perf_counter()
        conjuncts = split_goal(task.item.goal)
        base = task.assertions[:-1]     # everything but the negated goal
        cfg = escalate_config(task.config)
        agg = Stats()
        qbytes = 0
        status = PROVED
        deadline = False
        for conjunct in conjuncts:
            solver = SmtSolver(cfg)
            for a in base:
                solver.add(a)
            solver.add(T.Not(conjunct))
            verdict = solver.check(timeout=self.timeout)
            st = status_from_solver(verdict, solver)
            deadline = deadline or solver.last_deadline_exceeded
            agg.merge(solver.stats.snapshot())
            qbytes += solver.stats.query_bytes
            if st == FAILED:
                status = FAILED
            elif st != PROVED and status == PROVED:
                status = st
        stats = agg.snapshot()
        stats["split_conjuncts"] = len(conjuncts)
        stats["query_bytes"] = qbytes
        if deadline:
            stats["deadline_exceeded"] = 1
        elif status == RESOURCE_OUT:
            stats["resource_out"] = 1
        return status, stats, qbytes, time.perf_counter() - t0

    # --------------------------------------------------------- diagnosis

    def _diagnose_failures(self, gen, tasks: list[_Task]) -> None:
        """Attach a full Diagnostic to every failed obligation.

        Runs in the parent process after all verdicts are in, re-solving
        each failure from its planned VC — so serial, parallel, and
        cache-warm runs produce identical diagnostics.  Killed parallel
        jobs (wall-clock timeouts) are not re-solved: the in-process
        re-solve has no kill switch.
        """
        from ..diag import diagnose_obligation
        cfg = None
        for task in tasks:
            ob = task.item.obligation
            if ob.ok or ob.diag is not None:
                continue
            if (ob.stats.get("job_timeouts")
                    or ob.stats.get("deadline_exceeded")
                    or ob.status == RESOURCE_OUT):
                from ..diag import Diagnostic, VerusErrorType
                ob.diag = Diagnostic.for_obligation(ob)
                if ob.status == RESOURCE_OUT:
                    # Re-solving would exhaust the same budgets again;
                    # report the structured verdict instead.
                    ob.diag.error_type = VerusErrorType.RESOURCE_OUT.value
                    ob.diag.notes.append("solver resource budget "
                                         "exhausted; not re-solved for "
                                         "diagnosis")
                elif ob.stats.get("job_timeouts"):
                    ob.diag.error_type = \
                        VerusErrorType.RLIMIT_EXCEEDED.value
                    ob.diag.notes.append("worker killed by job timeout; "
                                         "not re-solved for diagnosis")
                else:
                    ob.diag.error_type = \
                        VerusErrorType.RLIMIT_EXCEEDED.value
                    ob.diag.notes.append("soft deadline exceeded; "
                                         "not re-solved for diagnosis")
                self._resilience_notes(ob)
                continue
            plan = task.plan
            # Diagnose against the same pruned context the discharge saw.
            ctx, _ = gen.obligation_context(task.item, plan.encoder,
                                            plan.spec_axioms)
            if cfg is None:
                cfg = self._solver_config(gen)
            ob.diag = diagnose_obligation(
                ob, task.item.goal, list(task.item.assumptions), ctx, cfg)
            self._resilience_notes(ob)
            if self.cache is not None and task.digest is not None:
                # Upgrade the cache entry so warm runs replay the full
                # report without re-solving.
                self.cache.store(task.digest, ob.status,
                                 {k: v for k, v in ob.stats.items()
                                  if k != "cache_hit"},
                                 task.qbytes, label=ob.label,
                                 diag=ob.diag.to_dict())

    @staticmethod
    def _resilience_notes(ob) -> None:
        """Surface recorded worker-failure causes and escalation trails
        in the diag payload — the human-readable report is where a
        swallowed BrokenProcessPool used to disappear."""
        if ob.diag is None:
            return
        cause = ob.stats.get("pool_failure")
        if cause:
            ob.diag.notes.append(f"worker pool failure: {cause}")
        trail = ob.stats.get("escalation")
        if trail:
            ob.diag.notes.append(
                "retry escalation: " + " -> ".join(trail)
                + f" ({ob.stats.get('retries', 0)} attempts, "
                  f"final verdict {ob.status})")

    # -------------------------------------------------------- bookkeeping

    def _apply(self, task: _Task, status: str, stats: dict, qbytes: int,
               seconds: float, from_cache: bool = False) -> None:
        ob = task.item.obligation
        ob.status = status
        ob.seconds = seconds
        if task.pruned_axioms and not stats.get("pruned_axioms"):
            # Discharges from a planned assertion list (fresh/warm/pool)
            # never saw the pruning happen; serial in-process solves (and
            # cache replays of either) already carry the counts.
            stats = dict(stats)
            stats["pruned_axioms"] = task.pruned_axioms
            stats["query_bytes_saved"] = task.pruned_bytes
        self.stats.merge(stats)
        if from_cache:
            stats = dict(stats)
            stats["cache_hit"] = True
        if task.crash is not None and "pool_failure" not in stats:
            stats = dict(stats)
            stats["pool_failure"] = task.crash
        if task.profile is not None and "profile" not in stats:
            # A tuner-redirected discharge: record whose profile's
            # verdict this is, matching what the original race adopted.
            stats = dict(stats)
            stats["profile"] = task.profile
        ob.stats = stats
        task.plan.result.query_bytes += qbytes
        self.stats.obligations += 1
        self.stats.obligation_seconds += seconds
        if status == RESOURCE_OUT:
            self.stats.resource_outs += 1
        task.done = True
        task.qbytes = qbytes

    def _store(self, task: _Task, status: str, stats: dict,
               qbytes: int, kind: Optional[str] = None) -> None:
        if task.digest is None:
            return
        if self.cache is not None:
            self.cache.store(task.digest, status, stats, qbytes,
                             label=task.item.obligation.label, kind=kind)
        if self._journal is not None:
            self._journal.record(task.digest, status, stats, qbytes,
                                 label=task.item.obligation.label,
                                 kind=kind)


# ---------------------------------------------------------------------------
# Module-granularity fan-out (Fig 9 "8 cores" column)
# ---------------------------------------------------------------------------

def run_builder_job(job: tuple) -> tuple:
    """Verify one ``(kind, dotted_builder)`` module job in this process.

    ``kind`` selects the machinery: ``"vc"`` (default pipeline, honors
    the env-configured scheduler, so workers share the proof cache),
    ``"epr"`` (§3.2 EPR mode), anything else builds a VerusSync system
    and calls ``check()``.  Returns ``(ok, query_bytes)``.
    """
    import importlib
    kind, dotted = job
    module_path, func_name = dotted.rsplit(".", 1)
    built = getattr(importlib.import_module(module_path), func_name)()
    if kind == "vc":
        from .wp import VcGen
        res = VcGen(built).verify_module()
    elif kind == "epr":
        from ..epr import verify_epr_module
        res = verify_epr_module(built)
    else:  # sync
        res = built.check()
    return res.ok, res.query_bytes


def run_builder_jobs(jobs: Sequence[tuple], max_workers: Optional[int] = None,
                     timeout: Optional[float] = None) -> list[tuple]:
    """Discharge module jobs across a process pool, serial on fallback."""
    jobs = list(jobs)
    max_workers = max_workers if max_workers else default_jobs()
    if max_workers > 1 and len(jobs) > 1:
        try:
            with _cf.ProcessPoolExecutor(
                    max_workers=min(max_workers, len(jobs))) as pool:
                futures = [pool.submit(run_builder_job, j) for j in jobs]
                return [f.result(timeout=timeout) for f in futures]
        except (BrokenProcessPool, OSError, _cf.TimeoutError,
                pickle.PicklingError):
            pass  # fall through to the serial path
    return [run_builder_job(j) for j in jobs]
