"""Content-addressed on-disk proof cache.

Entries are keyed by the sha256 digest computed in
:func:`repro.smt.fingerprint.obligation_digest` — the canonical SMT-LIB2
text of the full query (context axioms + path assumptions + negated
goal), the :class:`~repro.smt.solver.SolverConfig` knobs, and the
discharge strategy.  Any change to a postcondition, a reachable spec
function, or a solver knob changes the digest, so invalidation is
automatic: the stale entry is simply never addressed again.

Writes are atomic (temp file + ``os.replace``) so parallel workers can
share one cache directory without torn entries; corrupt or truncated
entries are detected at lookup, dropped, and rewritten after re-solving.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from ..api import CACHE_DIR_ENV
from ..resilience import faults as _faults
from ..resilience.faults import InjectedCorruption, InjectedIOError
from .errors import FAILED, PROVED, TIMEOUT

DEFAULT_DIRNAME = ".pv_cache"

# RESOURCE_OUT (and anything else transient) is deliberately absent: a
# budget-exhausted verdict must never be replayed from the cache.
_VALID_STATUS = (PROVED, FAILED, TIMEOUT)


class ProofCache:
    """One cache directory plus hit/miss/store/corruption counters."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @classmethod
    def from_env(cls) -> Optional["ProofCache"]:
        """The cache named by ``$REPRO_CACHE_DIR``, or None if unset.

        Environment parsing is centralized in
        :meth:`repro.api.VerifyConfig.from_env`; this shim just asks it.
        """
        from ..api import VerifyConfig
        root = VerifyConfig.from_env().cache_dir
        return cls(root) if root else None

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def lookup(self, digest: str) -> Optional[dict]:
        """Return the stored entry for ``digest``, or None on miss.

        A malformed entry (truncated write, wrong digest, bogus status)
        counts as a miss: it is deleted so the fresh verdict can be
        rewritten cleanly.
        """
        path = self._path(digest)
        try:
            spec = _faults.maybe_fault("cache.lookup")
            if spec is not None:
                if spec.kind == "io":
                    raise InjectedIOError("cache.lookup")
                raise InjectedCorruption("cache.lookup")
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (not isinstance(entry, dict)
                    or entry.get("digest") != digest
                    or entry.get("status") not in _VALID_STATUS
                    or not isinstance(entry.get("query_bytes", 0), int)
                    or not isinstance(entry.get("stats", {}), dict)
                    or not isinstance(entry.get("diag") or {}, dict)):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError, UnicodeDecodeError):
            self.corrupt += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return entry

    def store(self, digest: str, status: str, stats: Optional[dict] = None,
              query_bytes: int = 0, label: str = "",
              diag: Optional[dict] = None,
              kind: Optional[str] = None) -> None:
        """Persist a verdict (atomic; best-effort on filesystem errors).

        ``diag`` is the serialized diagnostic payload for non-PROVED
        verdicts, so cache-warm failures replay the same counterexample
        /split/profile report without re-solving.  ``kind`` marks
        non-solver provenance (``STATIC_PROVED`` for verdicts from the
        abstract-interpretation triage tier); the scheduler gates replay
        of kinded entries on the tier being enabled.
        """
        if status not in _VALID_STATUS:
            return
        path = self._path(digest)
        entry = {"digest": digest, "status": status,
                 "query_bytes": int(query_bytes),
                 "stats": stats or {}, "label": label}
        if diag is not None:
            entry["diag"] = diag
        if kind is not None:
            entry["kind"] = kind
        try:
            spec = _faults.maybe_fault("cache.store")
            if spec is not None:
                raise InjectedIOError("cache.store")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {"cache_hits": self.hits, "cache_misses": self.misses,
                "cache_stores": self.stores, "cache_corrupt": self.corrupt}

    def __repr__(self) -> str:
        return (f"<ProofCache {self.root}: {self.hits} hits, "
                f"{self.misses} misses>")
