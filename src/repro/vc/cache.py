"""Compatibility shim: the proof cache moved to :mod:`repro.cache`.

The flat on-disk store became the *disk tier* of the fault-tolerant
tiered cache (``repro.cache.store.ProofCache`` under
``repro.cache.tiers.TieredProofCache``).  Existing importers of
``repro.vc.cache`` keep working through this re-export.
"""

from ..cache.store import (  # noqa: F401
    CACHE_DIR_ENV, DEFAULT_DIRNAME, _VALID_STATUS, ProofCache,
    entry_checksum, make_entry, validate_entry)

__all__ = ["CACHE_DIR_ENV", "DEFAULT_DIRNAME", "ProofCache",
           "entry_checksum", "make_entry", "validate_entry"]
