"""AST of the verified language (the `verus!{}` surface, embedded in Python).

Expressions support operator overloading so specs read naturally:

    requires=[self_.view().length() > 0]
    ensures=[result() == old("self").view().index(0)]

Statement and function nodes are plain data; the WP engine
(:mod:`repro.vc.wp`) gives them meaning.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from . import types as VT

# Function modes, mirroring Verus.
SPEC = "spec"
PROOF = "proof"
EXEC = "exec"

# `by(...)` proof strategies for assertions (§3.3).
BY_BIT_VECTOR = "bit_vector"
BY_NONLINEAR = "nonlinear_arith"
BY_INTEGER_RING = "integer_ring"
BY_COMPUTE = "compute"


class Span:
    """Source provenance of an AST node (where the builder was called).

    Captured by the :mod:`repro.lang` statement/function helpers and
    threaded onto obligations by :class:`repro.vc.wp.VcGen`, so failure
    diagnostics can point back at the build site — the role Verus error
    spans play in Fig 8's failure-localization story.
    """

    __slots__ = ("file", "line")

    def __init__(self, file: str, line: int):
        self.file = file
        self.line = line

    def __str__(self) -> str:
        import os
        return f"{os.path.basename(self.file)}:{self.line}"

    def __repr__(self) -> str:
        return f"<Span {self}>"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Span)
                and other.file == self.file and other.line == self.line)

    def __hash__(self) -> int:
        return hash((self.file, self.line))

    def to_dict(self) -> dict:
        return {"file": self.file, "line": self.line}

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> Optional["Span"]:
        if not isinstance(d, dict) or "file" not in d:
            return None
        return cls(d["file"], int(d.get("line", 0)))


class Expr:
    """Base expression; overloads build new expressions."""

    vtype: VT.VType
    # Source provenance, when the lang helpers captured one.
    span: Optional[Span] = None

    # -- operator sugar ------------------------------------------------------

    def _coerce(self, other) -> "Expr":
        if isinstance(other, Expr):
            return other
        if isinstance(other, bool):
            return Lit(other, VT.BOOL)
        if isinstance(other, int):
            return Lit(other, VT.INT)
        raise TypeError(f"cannot use {other!r} in a verified expression")

    def __add__(self, other):
        return BinOp("+", self, self._coerce(other))

    def __radd__(self, other):
        return BinOp("+", self._coerce(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._coerce(other))

    def __rsub__(self, other):
        return BinOp("-", self._coerce(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._coerce(other))

    def __rmul__(self, other):
        return BinOp("*", self._coerce(other), self)

    def __floordiv__(self, other):
        return BinOp("/", self, self._coerce(other))

    def __mod__(self, other):
        return BinOp("%", self, self._coerce(other))

    def __and__(self, other):
        return BinOp("&", self, self._coerce(other))

    def __or__(self, other):
        return BinOp("|", self, self._coerce(other))

    def __xor__(self, other):
        return BinOp("^", self, self._coerce(other))

    def __lshift__(self, other):
        return BinOp("<<", self, self._coerce(other))

    def __rshift__(self, other):
        return BinOp(">>", self, self._coerce(other))

    def __lt__(self, other):
        return BinOp("<", self, self._coerce(other))

    def __le__(self, other):
        return BinOp("<=", self, self._coerce(other))

    def __gt__(self, other):
        return BinOp(">", self, self._coerce(other))

    def __ge__(self, other):
        return BinOp(">=", self, self._coerce(other))

    def eq(self, other):
        return BinOp("==", self, self._coerce(other))

    def ne(self, other):
        return BinOp("!=", self, self._coerce(other))

    def implies(self, other):
        return BinOp("==>", self, self._coerce(other))

    def and_(self, other):
        return BinOp("&&", self, self._coerce(other))

    def or_(self, other):
        return BinOp("||", self, self._coerce(other))

    def not_(self):
        return UnOp("!", self)

    def neg(self):
        return UnOp("-", self)

    # -- collection / struct sugar -------------------------------------------

    def field(self, name: str) -> "FieldGet":
        return FieldGet(self, name)

    def length(self) -> "SeqLen":
        return SeqLen(self)

    def index(self, i) -> "SeqIndex":
        return SeqIndex(self, self._coerce(i))

    def update(self, i, v) -> "SeqUpdate":
        return SeqUpdate(self, self._coerce(i), self._coerce(v))

    def skip(self, n) -> "SeqSkip":
        return SeqSkip(self, self._coerce(n))

    def take(self, n) -> "SeqTake":
        return SeqTake(self, self._coerce(n))

    def push(self, v) -> "SeqConcat":
        return SeqConcat(self, SeqLit(self.vtype.elem, [self._coerce(v)]))

    def concat(self, other) -> "SeqConcat":
        return SeqConcat(self, self._coerce(other))

    def contains_key(self, k) -> "MapHas":
        return MapHas(self, self._coerce(k))

    def map_index(self, k) -> "MapGet":
        return MapGet(self, self._coerce(k))

    def insert(self, k, v) -> "MapInsert":
        return MapInsert(self, self._coerce(k), self._coerce(v))

    def remove(self, k) -> "MapRemove":
        return MapRemove(self, self._coerce(k))

    def is_variant(self, variant: str) -> "IsVariant":
        return IsVariant(self, variant)

    def get(self, variant: str, field: str) -> "VariantGet":
        return VariantGet(self, variant, field)


def coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Lit(value, VT.BOOL)
    if isinstance(value, int):
        return Lit(value, VT.INT)
    raise TypeError(f"cannot coerce {value!r} to a verified expression")


class Lit(Expr):
    def __init__(self, value: Union[int, bool], vtype: VT.VType):
        self.value = value
        self.vtype = vtype


class VarE(Expr):
    def __init__(self, name: str, vtype: VT.VType):
        self.name = name
        self.vtype = vtype


class Old(Expr):
    """old(x): parameter value at function entry (for &mut params)."""

    def __init__(self, name: str, vtype: VT.VType):
        self.name = name
        self.vtype = vtype


_INT_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
_CMP_OPS = {"<", "<=", ">", ">="}
_BOOL_OPS = {"&&", "||", "==>", "<==>"}


class BinOp(Expr):
    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        if op in _INT_OPS:
            self.vtype = lhs.vtype
        elif op in _CMP_OPS or op in _BOOL_OPS or op in ("==", "!=", "=~="):
            self.vtype = VT.BOOL
        else:
            raise ValueError(f"unknown binary operator {op!r}")


class UnOp(Expr):
    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand
        self.vtype = VT.BOOL if op == "!" else operand.vtype


class IteE(Expr):
    def __init__(self, cond: Expr, then: Expr, els: Expr):
        self.cond = cond
        self.then = then
        self.els = els
        self.vtype = then.vtype


class Call(Expr):
    """Call of a spec/exec function by name (resolved in the module)."""

    def __init__(self, fn_name: str, args: Sequence[Expr], vtype: VT.VType):
        self.fn_name = fn_name
        self.args = [coerce(a) for a in args]
        self.vtype = vtype


class FieldGet(Expr):
    def __init__(self, base: Expr, field: str):
        if not isinstance(base.vtype, VT.StructType):
            raise TypeError(f"field access on non-struct {base.vtype.name}")
        self.base = base
        self.fieldname = field
        self.vtype = base.vtype.field_type(field)


class StructLit(Expr):
    def __init__(self, vtype: VT.StructType, fields: dict):
        missing = set(vtype.fields) - set(fields)
        extra = set(fields) - set(vtype.fields)
        if missing or extra:
            raise TypeError(f"struct {vtype.name}: missing {missing}, "
                            f"extra {extra}")
        self.vtype = vtype
        self.fields = {k: coerce(v) for k, v in fields.items()}


class StructUpdate(Expr):
    """Functional record update: `S { base with field: value }`."""

    def __init__(self, base: Expr, updates: dict):
        self.base = base
        self.updates = {k: coerce(v) for k, v in updates.items()}
        self.vtype = base.vtype
        for k in updates:
            base.vtype.field_type(k)  # raises for unknown fields


class EnumLit(Expr):
    def __init__(self, vtype: VT.EnumType, variant: str, fields: dict):
        self.vtype = vtype
        self.variant = variant
        expected = vtype.variant_fields(variant)
        if set(expected) != set(fields):
            raise TypeError(f"enum {vtype.name}::{variant}: fields mismatch")
        self.fields = {k: coerce(v) for k, v in fields.items()}


class IsVariant(Expr):
    def __init__(self, base: Expr, variant: str):
        base.vtype.variant_fields(variant)  # type check
        self.base = base
        self.variant = variant
        self.vtype = VT.BOOL


class VariantGet(Expr):
    def __init__(self, base: Expr, variant: str, field: str):
        fields = base.vtype.variant_fields(variant)
        self.base = base
        self.variant = variant
        self.fieldname = field
        self.vtype = fields[field]


# -- Seq operations -----------------------------------------------------------


class SeqLit(Expr):
    def __init__(self, elem: VT.VType, items: Sequence[Expr]):
        self.items = [coerce(i) for i in items]
        self.vtype = VT.SeqType(elem)


class SeqLen(Expr):
    def __init__(self, seq: Expr):
        self.seq = seq
        self.vtype = VT.INT


class SeqIndex(Expr):
    def __init__(self, seq: Expr, idx: Expr):
        self.seq = seq
        self.idx = idx
        self.vtype = seq.vtype.elem


class SeqUpdate(Expr):
    def __init__(self, seq: Expr, idx: Expr, value: Expr):
        self.seq = seq
        self.idx = idx
        self.value = value
        self.vtype = seq.vtype


class SeqConcat(Expr):
    def __init__(self, lhs: Expr, rhs: Expr):
        self.lhs = lhs
        self.rhs = rhs
        self.vtype = lhs.vtype


class SeqSkip(Expr):
    def __init__(self, seq: Expr, n: Expr):
        self.seq = seq
        self.n = n
        self.vtype = seq.vtype


class SeqTake(Expr):
    def __init__(self, seq: Expr, n: Expr):
        self.seq = seq
        self.n = n
        self.vtype = seq.vtype


# -- Map operations -------------------------------------------------------------


class MapEmpty(Expr):
    def __init__(self, vtype: VT.MapType):
        self.vtype = vtype


class MapHas(Expr):
    def __init__(self, m: Expr, key: Expr):
        self.m = m
        self.key = key
        self.vtype = VT.BOOL


class MapGet(Expr):
    def __init__(self, m: Expr, key: Expr):
        self.m = m
        self.key = key
        self.vtype = m.vtype.value


class MapInsert(Expr):
    def __init__(self, m: Expr, key: Expr, value: Expr):
        self.m = m
        self.key = key
        self.value = value
        self.vtype = m.vtype


class MapRemove(Expr):
    def __init__(self, m: Expr, key: Expr):
        self.m = m
        self.key = key
        self.vtype = m.vtype


# -- quantifiers ------------------------------------------------------------------


class ForAllE(Expr):
    def __init__(self, bound: Sequence[tuple[str, VT.VType]], body: Expr,
                 triggers: Optional[Sequence[Sequence[Expr]]] = None):
        self.bound = list(bound)
        self.body = body
        self.triggers = [list(g) for g in triggers] if triggers else None
        self.vtype = VT.BOOL


class ExistsE(Expr):
    def __init__(self, bound: Sequence[tuple[str, VT.VType]], body: Expr,
                 triggers: Optional[Sequence[Sequence[Expr]]] = None):
        self.bound = list(bound)
        self.body = body
        self.triggers = [list(g) for g in triggers] if triggers else None
        self.vtype = VT.BOOL


class LetE(Expr):
    def __init__(self, name: str, value: Expr, body: Expr):
        self.name = name
        self.value = value
        self.body = body
        self.vtype = body.vtype


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    span: Optional[Span] = None


class SLet(Stmt):
    """let name = expr; introduces (or shadows) a local."""

    def __init__(self, name: str, expr: Expr):
        self.name = name
        self.expr = expr


class SAssign(Stmt):
    """name = expr; assignment to an existing local or &mut parameter."""

    def __init__(self, name: str, expr: Expr):
        self.name = name
        self.expr = expr


class SIf(Stmt):
    def __init__(self, cond: Expr, then: Sequence[Stmt],
                 els: Sequence[Stmt] = ()):
        self.cond = cond
        self.then = list(then)
        self.els = list(els)


class SWhile(Stmt):
    def __init__(self, cond: Expr, invariants: Sequence[Expr],
                 body: Sequence[Stmt], decreases: Optional[Expr] = None):
        self.cond = cond
        self.invariants = list(invariants)
        self.body = list(body)
        self.decreases = decreases


class SAssert(Stmt):
    """assert(expr) [by(strategy)] — a checked proof obligation.

    ``by_premises``: for by(nonlinear_arith)/by(integer_ring), the explicit
    premises forwarded into the isolated query (§3.3 'no implicit context').
    """

    def __init__(self, expr: Expr, by: Optional[str] = None,
                 by_premises: Sequence[Expr] = (), label: str = ""):
        self.expr = expr
        self.by = by
        self.by_premises = list(by_premises)
        self.label = label


class SAssume(Stmt):
    """assume(expr) — trusted; used by trusted specs and test harnesses."""

    def __init__(self, expr: Expr):
        self.expr = expr


class SCall(Stmt):
    """Call an exec/proof function for effect: results bound to names.

    ``mut_args`` lists argument *names* passed as `&mut` (updated in place).
    """

    def __init__(self, fn_name: str, args: Sequence[Expr],
                 binds: Sequence[str] = (), mut_args: Sequence[str] = ()):
        self.fn_name = fn_name
        self.args = [coerce(a) for a in args]
        self.binds = list(binds)
        self.mut_args = list(mut_args)


class SReturn(Stmt):
    def __init__(self, expr: Optional[Expr] = None):
        self.expr = expr


# ---------------------------------------------------------------------------
# Functions and modules
# ---------------------------------------------------------------------------


class Param:
    def __init__(self, name: str, vtype: VT.VType, mutable: bool = False):
        self.name = name
        self.vtype = vtype
        self.mutable = mutable  # &mut: callers observe the updated value


class Function:
    """A spec, proof, or exec function."""

    span: Optional[Span] = None

    def __init__(self, name: str, mode: str,
                 params: Sequence[Param],
                 ret: Optional[tuple[str, VT.VType]] = None,
                 requires: Sequence[Expr] = (),
                 ensures: Sequence[Expr] = (),
                 decreases: Optional[Expr] = None,
                 body: Optional[Union[Expr, Sequence[Stmt]]] = None,
                 attrs: Optional[dict] = None):
        self.name = name
        self.mode = mode
        self.params = list(params)
        self.ret = ret
        self.requires = list(requires)
        self.ensures = list(ensures)
        self.decreases = decreases
        self.body = body
        self.attrs = attrs or {}

    @property
    def is_spec(self):
        return self.mode == SPEC

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"{self.name}: no parameter {name!r}")


class Module:
    """A verification module: types + functions + imports.

    Modules are the pruning granularity (§3.1) and the `#[epr_mode]`
    granularity (§3.2).
    """

    def __init__(self, name: str, epr_mode: bool = False,
                 attrs: Optional[dict] = None):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.datatypes: list[VT.VType] = []
        self.imports: list["Module"] = []
        self.epr_mode = epr_mode
        self.attrs = attrs or {}

    def attrs_get(self, key: str, default=None):
        return self.attrs.get(key, default)

    def add(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name} in {self.name}")
        self.functions[fn.name] = fn
        return fn

    def datatype(self, t: VT.VType) -> VT.VType:
        self.datatypes.append(t)
        return t

    def import_module(self, other: "Module") -> None:
        self.imports.append(other)

    def lookup(self, fn_name: str) -> Function:
        fn = self.functions.get(fn_name)
        if fn is not None:
            return fn
        for imp in self.imports:
            try:
                return imp.lookup(fn_name)
            except KeyError:
                continue
        raise KeyError(f"function {fn_name!r} not found from {self.name}")

    def all_functions(self) -> dict[str, Function]:
        out: dict[str, Function] = {}
        for imp in self.imports:
            out.update(imp.all_functions())
        out.update(self.functions)
        return out
