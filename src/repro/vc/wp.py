"""Verification-condition generation by symbolic execution.

For each exec/proof function the engine:

1. binds parameters to fresh SMT constants and assumes their type ranges,
2. symbolically executes the body, maintaining a substitution environment
   and a path-ordered assumption list (if/else merges with ITE, loops use
   invariant havoc — standard Floyd-Hoare),
3. emits one labeled :class:`Obligation` per check — preconditions at call
   sites, overflow/bounds side conditions, asserts, loop invariants,
   postconditions — and discharges each with a fresh DPLL(T) instance that
   receives *only* the axioms the obligation's translation pulled in
   (context pruning, §3.1),
4. dispatches ``assert ... by(...)`` obligations to the §3.3 idiom engines
   instead of the main solver, mirroring Verus's isolation design.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from ..smt import terms as T
from ..smt.bitvec import bv_check_sat
from ..smt.compute import ComputeEnv, OutOfFuel, prove_by_compute
from ..smt.nonlinear import prove_nonlinear
from ..smt.quant import CONSERVATIVE
from ..smt.ring import RingError, prove_ring
from ..smt.solver import SmtSolver, SolverConfig, UNSAT
from ..smt.sorts import bv as bv_sort
from . import ast as A
from . import types as VT
from .encode import EncodeError, Encoder
from .errors import (FAILED, PROVED, RESOURCE_OUT, TIMEOUT, FunctionResult,
                     ModuleResult, Obligation, status_from_solver)


class VcConfig:
    """Verifier configuration; defaults model Verus."""

    def __init__(self,
                 trigger_policy: str = CONSERVATIVE,
                 prune_context: bool = True,
                 solver_config: Optional[SolverConfig] = None,
                 check_overflow: bool = True,
                 mbqi: bool = False):
        self.trigger_policy = trigger_policy
        self.prune_context = prune_context
        self.check_overflow = check_overflow
        self.mbqi = mbqi
        self.solver_config = solver_config

    def make_solver_config(self) -> SolverConfig:
        if self.solver_config is not None:
            return self.solver_config
        return SolverConfig(trigger_policy=self.trigger_policy,
                            mbqi=self.mbqi)


class VcError(Exception):
    """Malformed program (not a failed proof)."""


class _State:
    """Mutable symbolic-execution state."""

    __slots__ = ("env", "assumptions", "returned")

    def __init__(self, env: dict, assumptions: list, returned: bool = False):
        self.env = env
        self.assumptions = assumptions
        self.returned = returned

    def fork(self) -> "_State":
        return _State(dict(self.env), list(self.assumptions), self.returned)


class _PendingObligation:
    __slots__ = ("obligation", "goal", "assumptions", "direct_result")

    def __init__(self, obligation: Obligation, goal: Optional[T.Term],
                 assumptions: list, direct_result: Optional[bool] = None):
        self.obligation = obligation
        self.goal = goal
        self.assumptions = assumptions
        self.direct_result = direct_result  # idiom engines decide eagerly


class FunctionPlan:
    """One function's emitted-but-undischarged obligations.

    ``pending`` carries the labeled goals with their path assumptions;
    ``encoder``/``spec_axioms`` supply the context axioms every job ships
    with.  The scheduler (or the eager :meth:`VcGen.verify_function`
    path) turns the plan into a populated ``result``.
    """

    __slots__ = ("fn", "result", "pending", "encoder", "spec_axioms",
                 "gen_seconds")

    def __init__(self, fn: A.Function, result: FunctionResult,
                 pending: list, encoder: Encoder, spec_axioms: list):
        self.fn = fn
        self.result = result
        self.pending = pending
        self.encoder = encoder
        self.spec_axioms = spec_axioms
        self.gen_seconds = 0.0


class VcGen:
    """Verifies a module function-by-function."""

    # Set (and restored) by the scheduler for the duration of a run, so
    # the §3.3 idiom engines — which resolve eagerly during planning —
    # can reuse cached verdicts through the same content-addressed store
    # as the SMT obligations.
    proof_cache = None

    def __init__(self, module: A.Module, config: Optional[VcConfig] = None):
        self.module = module
        self.config = config or VcConfig()
        self._fresh = [0]

    # ------------------------------------------------------------- public

    def verify_module(self, scheduler=None) -> ModuleResult:
        """Verify every exec/proof function via the obligation scheduler.

        With no ``scheduler`` argument, the env-configured default is
        used: serial in-process discharge (byte-identical to eager
        verification) unless ``REPRO_JOBS``/``REPRO_CACHE_DIR`` request
        parallelism or proof caching.
        """
        from .scheduler import Scheduler
        return (scheduler or Scheduler()).run_module(self)

    CTX_CLS: type  # set below; baseline pipelines substitute their own

    def plan_function(self, fn: A.Function) -> FunctionPlan:
        """Symbolically execute ``fn`` and *emit* its obligations as
        self-contained jobs instead of eagerly discharging them."""
        t0 = time.perf_counter()
        encoder = Encoder()
        ctx = self.CTX_CLS(self, fn, encoder)
        pending = ctx.run()
        spec_axioms = self._spec_axioms(fn, encoder, ctx)
        plan = FunctionPlan(fn, FunctionResult(fn.name), pending, encoder,
                            spec_axioms)
        plan.gen_seconds = time.perf_counter() - t0
        return plan

    def verify_function(self, fn: A.Function) -> FunctionResult:
        """Eagerly plan and discharge one function (serial, cache-less)."""
        t0 = time.perf_counter()
        plan = self.plan_function(fn)
        for item in plan.pending:
            self._discharge(item, plan.encoder, plan.spec_axioms,
                            plan.result)
        plan.result.seconds = time.perf_counter() - t0
        return plan.result

    # --------------------------------------------------------- spec axioms

    def reachable_spec_fns(self, fn: A.Function) -> list[A.Function]:
        """Spec functions reachable from fn's specs/body (context pruning)."""
        all_fns = self.module.all_functions()
        if not self.config.prune_context:
            return [f for f in all_fns.values()
                    if f.is_spec and f.body is not None]
        seen: dict[str, A.Function] = {}
        work: list = []

        def scan_expr(e: A.Expr):
            work.append(e)

        for e in list(fn.requires) + list(fn.ensures):
            scan_expr(e)
        # The function's own decreases clause is part of its verification
        # surface (termination obligations translate it), so spec fns it
        # references need their definitional axioms — and must count as
        # dependencies in the delta fingerprint.
        if isinstance(fn.decreases, A.Expr):
            scan_expr(fn.decreases)
        self._scan_body(fn.body, scan_expr)
        while work:
            e = work.pop()
            for sub in _walk_expr(e):
                if isinstance(sub, A.Call) and sub.fn_name not in seen:
                    try:
                        callee = self.module.lookup(sub.fn_name)
                    except KeyError:
                        continue
                    if callee.is_spec and callee.body is not None:
                        seen[sub.fn_name] = callee
                        work.append(callee.body)
                    elif not callee.is_spec:
                        for spec in list(callee.requires) + list(callee.ensures):
                            work.append(spec)
        return list(seen.values())

    def _scan_body(self, body, sink: Callable) -> None:
        if body is None:
            return
        if isinstance(body, A.Expr):
            sink(body)
            return
        for stmt in body:
            for e in _stmt_exprs(stmt):
                sink(e)
            if isinstance(stmt, A.SIf):
                self._scan_body(stmt.then, sink)
                self._scan_body(stmt.els, sink)
            elif isinstance(stmt, A.SWhile):
                self._scan_body(stmt.body, sink)
            elif isinstance(stmt, A.SCall):
                try:
                    callee = self.module.lookup(stmt.fn_name)
                except KeyError:
                    continue
                for e in list(callee.requires) + list(callee.ensures):
                    sink(e)

    def _spec_axioms(self, fn: A.Function, encoder: Encoder,
                     ctx: "_FnCtx") -> list[T.Term]:
        axioms = []
        for spec in self.reachable_spec_fns(fn):
            axioms.append(self._definitional_axiom(spec, encoder, ctx))
        return axioms

    def _definitional_axiom(self, spec: A.Function, encoder: Encoder,
                            ctx: "_FnCtx") -> T.Term:
        decl = ctx.spec_decl(spec)
        bound = [T.Var(f"def!{spec.name}!{p.name}", encoder.sort_of(p.vtype))
                 for p in spec.params]
        env = {p.name: b for p, b in zip(spec.params, bound)}
        body_t = ctx.tr(spec.body, env, spec_mode=True)
        app = decl(*bound)
        guards = []
        for p, b in zip(spec.params, bound):
            rng = encoder.range_assumption(p.vtype, b)
            if rng is not None:
                guards.append(rng)
        eq = T.Eq(app, body_t)
        formula = T.Implies(T.And(*guards), eq) if guards else eq
        return T.ForAll(bound, formula, triggers=[[app]])

    # ----------------------------------------------------------- dispatch

    def _discharge(self, item: _PendingObligation, encoder: Encoder,
                   spec_axioms: list, fnres: FunctionResult) -> None:
        ob = item.obligation
        t0 = time.perf_counter()
        if item.direct_result is not None:
            ob.status = PROVED if item.direct_result else FAILED
            ob.seconds = time.perf_counter() - t0
            fnres.obligations.append(ob)
            return
        status, stats, query_bytes = self._solve_obligation(
            item, encoder, spec_axioms)
        ob.status = status
        ob.seconds = time.perf_counter() - t0
        ob.stats = stats
        fnres.query_bytes += query_bytes
        fnres.obligations.append(ob)

    def obligation_context(self, item: _PendingObligation, encoder: Encoder,
                           spec_axioms: list) -> tuple[list, list]:
        """Per-obligation context pruning: (kept, dropped) context axioms.

        The function-level reachable set is sharpened per goal — axioms
        (encoder theory axioms and spec-function definitions alike) whose
        necessary trigger symbol is unreachable from this obligation's
        goal and path assumptions (transitively through kept axiom
        bodies) are dropped before encoding.  Disabled along with the
        function-level pass by ``VcConfig.prune_context``.
        """
        ctx = self.context_axioms(encoder, spec_axioms)
        if not self.config.prune_context or item.goal is None:
            return ctx, []
        from .prune import prune_axioms
        return prune_axioms(ctx, item.goal, item.assumptions)

    def _solve_obligation(self, item: _PendingObligation, encoder: Encoder,
                          spec_axioms: list,
                          solver_config: Optional[SolverConfig] = None
                          ) -> tuple[str, dict, int]:
        """Run one solver attempt; baselines override the retry strategy."""
        solver = SmtSolver(solver_config or self.config.make_solver_config())
        kept, dropped = self.obligation_context(item, encoder, spec_axioms)
        if dropped:
            from .prune import bytes_saved
            solver.stats.pruned_axioms += len(dropped)
            solver.stats.query_bytes_saved += bytes_saved(dropped)
        for ax in kept:
            solver.add(ax)
        for assumption in item.assumptions:
            solver.add(assumption)
        solver.add(T.Not(item.goal))
        verdict = solver.check()
        status = status_from_solver(verdict, solver)
        stats = solver.stats.snapshot()
        if status == RESOURCE_OUT:
            stats["resource_out"] = 1
        return status, stats, solver.stats.query_bytes

    def context_axioms(self, encoder: Encoder, spec_axioms: list
                       ) -> list[T.Term]:
        """The axiom context shipped with every query (pruned for Verus)."""
        return list(encoder.axioms) + list(spec_axioms)

    def _idiom_cached(self, engine: str, terms: Sequence[T.Term],
                      compute: Callable[[], bool]) -> bool:
        """Discharge a §3.3 idiom obligation through the proof cache.

        Idiom engines are pure functions of their translated terms, so
        their verdicts are content-addressable exactly like SMT queries.
        With no cache attached this is just ``compute()``.
        """
        cache = self.proof_cache
        if cache is None:
            return compute()
        from ..smt.fingerprint import idiom_digest
        digest = idiom_digest(engine, terms)
        entry = cache.lookup(digest)
        if entry is not None:
            return entry["status"] == PROVED
        ok = compute()
        cache.store(digest, PROVED if ok else FAILED, {"engine": engine}, 0,
                    label=f"by({engine})")
        return ok

    def fresh(self, prefix: str) -> str:
        self._fresh[0] += 1
        return f"{prefix}!{self._fresh[0]}"


# ---------------------------------------------------------------------------
# Per-function symbolic execution
# ---------------------------------------------------------------------------

class _FnCtx:
    def __init__(self, gen: VcGen, fn: A.Function, encoder: Encoder):
        self.gen = gen
        self.fn = fn
        self.encoder = encoder
        self.module = gen.module
        self.pending: list[_PendingObligation] = []
        self.old_env: dict[str, T.Term] = {}
        self._spec_decls: dict[str, T.FuncDecl] = {}
        self._compute_env: Optional[ComputeEnv] = None
        self._local_types: dict[str, VT.VType] = {}
        # Source provenance of the statement being executed; obligations
        # emitted while it is current inherit it (ensures obligations
        # fall back to the function's own span).
        self._cur_span = fn.span

    # -------------------------------------------------------------- setup

    def run(self) -> list[_PendingObligation]:
        fn = self.fn
        env: dict[str, T.Term] = {}
        assumptions: list[T.Term] = []
        self.setup_params(env, assumptions)
        self.old_env = dict(env)
        for req in fn.requires:
            assumptions.append(self.tr(req, env, spec_mode=True))
        state = _State(env, assumptions)
        body = fn.body
        if body is None:
            body = []
        if isinstance(body, A.Expr):
            # expression-bodied exec fn: treat as return expr
            body = [A.SReturn(body)]
        self.exec_block(body, state)
        if not state.returned:
            self._check_ensures(state, ret_term=None)
        return self.pending

    def setup_params(self, env: dict, assumptions: list) -> None:
        for p in self.fn.params:
            v = T.Var(f"{self.fn.name}!{p.name}",
                      self.encoder.sort_of(p.vtype))
            env[p.name] = v
            rng = self.encoder.range_assumption(p.vtype, v)
            if rng is not None:
                assumptions.append(rng)

    def spec_decl(self, spec: A.Function) -> T.FuncDecl:
        decl = self._spec_decls.get(spec.name)
        if decl is None:
            if spec.ret is None:
                raise VcError(f"spec fn {spec.name} needs a return type")
            decl = self.encoder.fn(
                f"spec.{spec.name}",
                [self.encoder.sort_of(p.vtype) for p in spec.params],
                self.encoder.sort_of(spec.ret[1]))
            self._spec_decls[spec.name] = decl
        return decl

    # -------------------------------------------------------- obligations

    def _oblige(self, state: _State, goal: T.Term, label: str,
                kind: str) -> None:
        ob = Obligation(f"{self.fn.name}: {label}", kind)
        ob.seq = len(self.pending)
        ob.span = self._cur_span
        self.pending.append(
            _PendingObligation(ob, goal, list(state.assumptions)))

    def _oblige_direct(self, result: bool, label: str, kind: str) -> None:
        ob = Obligation(f"{self.fn.name}: {label}", kind)
        ob.seq = len(self.pending)
        ob.span = self._cur_span
        self.pending.append(_PendingObligation(ob, None, [], result))

    # --------------------------------------------------------- statements

    def exec_block(self, stmts: Sequence[A.Stmt], state: _State) -> None:
        for stmt in stmts:
            if state.returned:
                return
            self.exec_stmt(stmt, state)

    def exec_stmt(self, stmt: A.Stmt, state: _State) -> None:
        if stmt.span is not None:
            self._cur_span = stmt.span
        if isinstance(stmt, (A.SLet, A.SAssign)):
            value = self.tr_checked(stmt.expr, state)
            self.assign_var(state, stmt.name, value, stmt.expr.vtype)
        elif isinstance(stmt, A.SIf):
            self._exec_if(stmt, state)
        elif isinstance(stmt, A.SWhile):
            self._exec_while(stmt, state)
        elif isinstance(stmt, A.SAssert):
            self._exec_assert(stmt, state)
        elif isinstance(stmt, A.SAssume):
            state.assumptions.append(self.tr(stmt.expr, state.env,
                                             spec_mode=True))
        elif isinstance(stmt, A.SCall):
            self._exec_call(stmt, state)
        elif isinstance(stmt, A.SReturn):
            ret_term = None
            if stmt.expr is not None:
                ret_term = self.tr_checked(stmt.expr, state)
            self._check_ensures(state, ret_term)
            state.returned = True
        else:
            raise VcError(f"unknown statement {stmt!r}")

    def _exec_if(self, stmt: A.SIf, state: _State) -> None:
        cond = self.tr_checked(stmt.cond, state)
        base_len = len(state.assumptions)
        then_state = state.fork()
        then_state.assumptions.append(cond)
        self.exec_block(stmt.then, then_state)
        else_state = state.fork()
        else_state.assumptions.append(T.Not(cond))
        self.exec_block(stmt.els, else_state)

        if then_state.returned and else_state.returned:
            state.returned = True
            return
        if then_state.returned:
            state.env = else_state.env
            state.assumptions = else_state.assumptions
            return
        if else_state.returned:
            state.env = then_state.env
            state.assumptions = then_state.assumptions
            return
        # Merge: ITE on differing variables; guard branch assumptions.
        merged_env: dict[str, T.Term] = {}
        for name in set(then_state.env) | set(else_state.env):
            tv = then_state.env.get(name)
            ev = else_state.env.get(name)
            if tv is None or ev is None:
                merged_env[name] = tv if ev is None else ev
            elif tv is ev:
                merged_env[name] = tv
            else:
                merged_env[name] = T.Ite(cond, tv, ev)
        merged_assumptions = state.assumptions[:base_len]
        for extra in then_state.assumptions[base_len + 1:]:
            merged_assumptions.append(T.Implies(cond, extra))
        for extra in else_state.assumptions[base_len + 1:]:
            merged_assumptions.append(T.Implies(T.Not(cond), extra))
        state.env = merged_env
        state.assumptions = merged_assumptions

    def _assigned_names(self, stmts: Sequence[A.Stmt]) -> set[str]:
        out: set[str] = set()
        for stmt in stmts:
            if isinstance(stmt, (A.SLet, A.SAssign)):
                out.add(stmt.name)
            elif isinstance(stmt, A.SIf):
                out |= self._assigned_names(stmt.then)
                out |= self._assigned_names(stmt.els)
            elif isinstance(stmt, A.SWhile):
                out |= self._assigned_names(stmt.body)
            elif isinstance(stmt, A.SCall):
                out.update(stmt.binds)
                out.update(stmt.mut_args)
        return out

    def _havoc(self, state: _State, names: set[str]) -> None:
        for name in names:
            if name not in state.env:
                continue
            old = state.env[name]
            fresh = T.Var(self.gen.fresh(f"havoc!{name}"), old.sort)
            state.env[name] = fresh
            vtype = self._var_type(name)
            if vtype is not None:
                rng = self.encoder.range_assumption(vtype, fresh)
                if rng is not None:
                    state.assumptions.append(rng)

    def assign_var(self, state: _State, name: str, term: T.Term,
                   vtype: VT.VType) -> None:
        """Bind a local/parameter to a new value (hook for heap baselines)."""
        state.env[name] = term
        self._local_types.setdefault(name, vtype)

    def _var_type(self, name: str) -> Optional[VT.VType]:
        for p in self.fn.params:
            if p.name == name:
                return p.vtype
        return self._local_types.get(name)

    def _exec_while(self, stmt: A.SWhile, state: _State) -> None:
        # 1. Invariants hold on entry.
        for idx, inv in enumerate(stmt.invariants):
            self._oblige(state, self.tr(inv, state.env, spec_mode=True),
                         f"loop invariant #{idx} on entry", "invariant")
        modified = self._assigned_names(stmt.body)
        # 2. Body preserves invariants (arbitrary iteration).
        body_state = state.fork()
        self._havoc(body_state, modified)
        for inv in stmt.invariants:
            body_state.assumptions.append(
                self.tr(inv, body_state.env, spec_mode=True))
        cond = self.tr_checked(stmt.cond, body_state)
        body_state.assumptions.append(cond)
        dec0 = None
        if stmt.decreases is not None:
            dec0 = self.tr(stmt.decreases, body_state.env, spec_mode=True)
            self._oblige(body_state, T.Ge(dec0, T.IntVal(0)),
                         "loop decreases is non-negative", "termination")
        self.exec_block(stmt.body, body_state)
        if not body_state.returned:
            for idx, inv in enumerate(stmt.invariants):
                self._oblige(body_state,
                             self.tr(inv, body_state.env, spec_mode=True),
                             f"loop invariant #{idx} preserved", "invariant")
            if dec0 is not None:
                dec1 = self.tr(stmt.decreases, body_state.env, spec_mode=True)
                self._oblige(body_state, T.Lt(dec1, dec0),
                             "loop decreases strictly", "termination")
        # 3. Continue after the loop: havoc again, assume inv + !cond.
        self._havoc(state, modified)
        for inv in stmt.invariants:
            state.assumptions.append(self.tr(inv, state.env, spec_mode=True))
        exit_cond = self.tr_checked(stmt.cond, state)
        state.assumptions.append(T.Not(exit_cond))

    def _exec_assert(self, stmt: A.SAssert, state: _State) -> None:
        label = stmt.label or "assert"
        if stmt.by is None:
            goal = self.tr(stmt.expr, state.env, spec_mode=True)
            self._oblige(state, goal, label, "assert")
            state.assumptions.append(goal)
            return
        # §3.3 idiom strategies: isolated queries.
        if stmt.by == A.BY_BIT_VECTOR:
            ok = self._check_bit_vector(stmt.expr, state)
            self._oblige_direct(ok, f"{label} by(bit_vector)", "assert")
        elif stmt.by == A.BY_NONLINEAR:
            premises = [self.tr(p, state.env, spec_mode=True)
                        for p in stmt.by_premises]
            for i, p in enumerate(stmt.by_premises):
                self._oblige(state, self.tr(p, state.env, spec_mode=True),
                             f"{label} by(nonlinear_arith) premise #{i}",
                             "assert")
            goal = self.tr(stmt.expr, state.env, spec_mode=True)
            ok = self.gen._idiom_cached(
                A.BY_NONLINEAR, premises + [goal],
                lambda: prove_nonlinear(premises, goal))
            self._oblige_direct(ok, f"{label} by(nonlinear_arith)", "assert")
        elif stmt.by == A.BY_INTEGER_RING:
            premises = [self.tr(p, state.env, spec_mode=True)
                        for p in stmt.by_premises]
            for i, p in enumerate(stmt.by_premises):
                self._oblige(state, self.tr(p, state.env, spec_mode=True),
                             f"{label} by(integer_ring) premise #{i}",
                             "assert")
            goal = self.tr(stmt.expr, state.env, spec_mode=True)
            try:
                ok = self.gen._idiom_cached(
                    A.BY_INTEGER_RING, premises + [goal],
                    lambda: prove_ring(premises, goal))
            except RingError as err:
                raise VcError(f"{self.fn.name}: {label}: {err}") from err
            self._oblige_direct(ok, f"{label} by(integer_ring)", "assert")
        elif stmt.by == A.BY_COMPUTE:
            goal = self.tr(stmt.expr, state.env, spec_mode=True)
            try:
                ok, residual = prove_by_compute(goal, self._get_compute_env())
            except OutOfFuel:
                ok, residual = False, goal
            if ok:
                self._oblige_direct(True, f"{label} by(compute)", "assert")
            else:
                # Residual goes to the SMT path (paper: "sends any
                # remainder to SMT").
                self._oblige(state, residual if residual is not None else goal,
                             f"{label} by(compute) residual", "assert")
        else:
            raise VcError(f"unknown proof strategy by({stmt.by})")
        state.assumptions.append(self.tr(stmt.expr, state.env,
                                         spec_mode=True))

    def _get_compute_env(self) -> ComputeEnv:
        if self._compute_env is None:
            env = ComputeEnv()
            for spec in self.module.all_functions().values():
                if spec.is_spec and spec.body is not None:
                    decl = self.spec_decl(spec)
                    bound = [T.Var(f"cmp!{spec.name}!{p.name}",
                                   self.encoder.sort_of(p.vtype))
                             for p in spec.params]
                    body_env = {p.name: b
                                for p, b in zip(spec.params, bound)}
                    env.define(decl, bound,
                               self.tr(spec.body, body_env, spec_mode=True))
            self._compute_env = env
        return self._compute_env

    def _check_bit_vector(self, expr: A.Expr, state: _State) -> bool:
        """Translate the assertion to pure BV terms and refute its negation."""
        translator = _BvTranslator(self)
        formula = translator.tr(expr, state.env)
        return self.gen._idiom_cached(
            A.BY_BIT_VECTOR, [formula],
            lambda: bv_check_sat(T.Not(formula)) is False)

    def _exec_call(self, stmt: A.SCall, state: _State) -> None:
        callee = self.module.lookup(stmt.fn_name)
        if callee.is_spec:
            raise VcError(f"cannot exec-call spec fn {stmt.fn_name}")
        args = [self.tr_checked(a, state) for a in stmt.args]
        call_env = {p.name: a for p, a in zip(callee.params, args)}
        # Check preconditions.
        for idx, req in enumerate(callee.requires):
            self._oblige(state, self.tr(req, call_env, spec_mode=True),
                         f"precondition #{idx} of {callee.name}", "requires")
        # Havoc &mut args and bind results.
        old_call_env = dict(call_env)
        post_env = dict(call_env)
        for p in callee.params:
            if p.mutable:
                fresh = T.Var(self.gen.fresh(f"{callee.name}!{p.name}!out"),
                              self.encoder.sort_of(p.vtype))
                post_env[p.name] = fresh
                rng = self.encoder.range_assumption(p.vtype, fresh)
                if rng is not None:
                    state.assumptions.append(rng)
        ret_term = None
        if callee.ret is not None:
            ret_name, ret_type = callee.ret
            ret_term = T.Var(self.gen.fresh(f"{callee.name}!ret"),
                             self.encoder.sort_of(ret_type))
            post_env[ret_name] = ret_term
            rng = self.encoder.range_assumption(ret_type, ret_term)
            if rng is not None:
                state.assumptions.append(rng)
        # Assume postconditions.
        for ens in callee.ensures:
            state.assumptions.append(
                self.tr(ens, post_env, spec_mode=True,
                        old_env=old_call_env))
        # Write back &mut args and result bindings into caller state.
        mut_params = [p for p in callee.params if p.mutable]
        for caller_name, p in zip(stmt.mut_args, mut_params):
            self.assign_var(state, caller_name, post_env[p.name], p.vtype)
        if stmt.binds:
            if ret_term is None:
                raise VcError(f"{callee.name} returns nothing to bind")
            self.assign_var(state, stmt.binds[0], ret_term, callee.ret[1])

    def _check_ensures(self, state: _State, ret_term: Optional[T.Term]
                       ) -> None:
        env = dict(state.env)
        if self.fn.ret is not None and ret_term is not None:
            env[self.fn.ret[0]] = ret_term
        # Ensures clauses belong to the signature, not the return site.
        saved_span = self._cur_span
        for idx, ens in enumerate(self.fn.ensures):
            self._cur_span = ens.span if ens.span is not None \
                else self.fn.span
            goal = self.tr(ens, env, spec_mode=True)
            self._oblige(state, goal, f"ensures #{idx}", "ensures")
        self._cur_span = saved_span

    # ------------------------------------------------------- expressions

    def tr_checked(self, expr: A.Expr, state: _State) -> T.Term:
        """Translate an exec-mode expression, emitting side obligations."""
        sink: list[tuple[T.Term, str, str]] = []
        term = self.tr(expr, state.env, spec_mode=False, side_sink=sink)
        for goal, label, kind in sink:
            self._oblige(state, goal, label, kind)
            state.assumptions.append(goal)
        return term

    TRANSLATOR_CLS: type  # set below; heap baselines substitute their own

    def tr(self, expr: A.Expr, env: dict, spec_mode: bool,
           old_env: Optional[dict] = None,
           side_sink: Optional[list] = None) -> T.Term:
        return self.TRANSLATOR_CLS(self, env,
                                   old_env if old_env is not None
                                   else self.old_env,
                                   spec_mode, side_sink).tr(expr)


# ---------------------------------------------------------------------------
# Expression translation
# ---------------------------------------------------------------------------

_ARITH = {"+": T.Add, "-": T.Sub, "*": T.Mul}
_CMP = {"<": T.Lt, "<=": T.Le, ">": T.Gt, ">=": T.Ge}


class _ExprTranslator:
    def __init__(self, ctx: _FnCtx, env: dict, old_env: dict,
                 spec_mode: bool, side_sink: Optional[list]):
        self.ctx = ctx
        self.env = env
        self.old_env = old_env
        self.spec_mode = spec_mode
        self.side_sink = side_sink
        self.encoder = ctx.encoder

    def _side(self, goal: T.Term, label: str, kind: str) -> None:
        if not self.spec_mode and self.side_sink is not None:
            self.side_sink.append((goal, label, kind))

    def tr(self, e: A.Expr) -> T.Term:
        method = getattr(self, f"_tr_{type(e).__name__}", None)
        if method is None:
            raise EncodeError(f"cannot translate {type(e).__name__}")
        return method(e)

    # -- leaves --------------------------------------------------------------

    def _tr_Lit(self, e: A.Lit) -> T.Term:
        if isinstance(e.vtype, VT.BoolType):
            return T.BoolVal(bool(e.value))
        return T.IntVal(int(e.value))

    def _tr_VarE(self, e: A.VarE) -> T.Term:
        term = self.env.get(e.name)
        if term is None:
            raise EncodeError(f"unbound variable {e.name!r}")
        return term

    def _tr_Old(self, e: A.Old) -> T.Term:
        term = self.old_env.get(e.name)
        if term is None:
            raise EncodeError(f"old({e.name}): not a parameter")
        return term

    # -- operators -------------------------------------------------------------

    def _guarded_rhs(self, guard: T.Term, rhs: A.Expr) -> T.Term:
        """Translate rhs with its side conditions guarded (short-circuit)."""
        if self.spec_mode or self.side_sink is None:
            return self.tr(rhs)
        outer = self.side_sink
        inner: list = []
        self.side_sink = inner
        try:
            term = self.tr(rhs)
        finally:
            self.side_sink = outer
        for goal, label, kind in inner:
            outer.append((T.Implies(guard, goal), label, kind))
        return term

    def _tr_BinOp(self, e: A.BinOp) -> T.Term:
        op = e.op
        if op in ("&&",):
            lhs = self.tr(e.lhs)
            return T.And(lhs, self._guarded_rhs(lhs, e.rhs))
        if op in ("||",):
            lhs = self.tr(e.lhs)
            return T.Or(lhs, self._guarded_rhs(T.Not(lhs), e.rhs))
        if op == "==>":
            lhs = self.tr(e.lhs)
            return T.Implies(lhs, self._guarded_rhs(lhs, e.rhs))
        if op == "<==>":
            return T.Eq(self.tr(e.lhs), self.tr(e.rhs))
        lhs = self.tr(e.lhs)
        rhs = self.tr(e.rhs)
        if op == "==":
            return T.Eq(lhs, rhs)
        if op == "!=":
            return T.Ne(lhs, rhs)
        if op == "=~=":
            return self._ext_equal(e, lhs, rhs)
        if op in _CMP:
            return _CMP[op](lhs, rhs)
        if op in _ARITH:
            out = _ARITH[op](lhs, rhs)
            self._overflow_check(e, out)
            return out
        if op == "/":
            self._side(T.Ne(rhs, T.IntVal(0)),
                       "division by zero", "overflow")
            return T.Div(lhs, rhs)
        if op == "%":
            self._side(T.Ne(rhs, T.IntVal(0)),
                       "modulo by zero", "overflow")
            return T.Mod(lhs, rhs)
        if op in ("&", "|", "^", "<<", ">>"):
            bits = (e.lhs.vtype.bits
                    if isinstance(e.lhs.vtype, VT.BoundedIntType) else 64)
            decl = self.encoder.bitop_fn(op, bits)
            return decl(lhs, rhs)
        raise EncodeError(f"unknown operator {op}")

    def _overflow_check(self, e: A.BinOp, out: T.Term) -> None:
        if (self.spec_mode or not self.ctx.gen.config.check_overflow
                or not isinstance(e.vtype, VT.BoundedIntType)):
            if (not self.spec_mode and isinstance(e.vtype, VT.NatType)
                    and e.op == "-"):
                self._side(T.Ge(out, T.IntVal(0)),
                           "nat subtraction underflow", "overflow")
            return
        rng = self.encoder.range_assumption(e.vtype, out)
        if rng is not None:
            self._side(rng, f"arithmetic overflow in {e.op}", "overflow")

    def _ext_equal(self, e: A.BinOp, lhs: T.Term, rhs: T.Term) -> T.Term:
        vt = e.lhs.vtype
        if isinstance(vt, VT.SeqType):
            return self.encoder.seq_fns(vt)["ext"](lhs, rhs)
        # For other types =~= is plain equality.
        return T.Eq(lhs, rhs)

    def _tr_UnOp(self, e: A.UnOp) -> T.Term:
        if e.op == "!":
            return T.Not(self.tr(e.operand))
        if e.op == "-":
            return T.Neg(self.tr(e.operand))
        raise EncodeError(f"unknown unary {e.op}")

    def _tr_IteE(self, e: A.IteE) -> T.Term:
        return T.Ite(self.tr(e.cond), self.tr(e.then), self.tr(e.els))

    def _tr_LetE(self, e: A.LetE) -> T.Term:
        value = self.tr(e.value)
        saved = self.env.get(e.name)
        self.env[e.name] = value
        try:
            return self.tr(e.body)
        finally:
            if saved is None:
                del self.env[e.name]
            else:
                self.env[e.name] = saved

    # -- calls -----------------------------------------------------------------

    def _tr_Call(self, e: A.Call) -> T.Term:
        callee = self.ctx.module.lookup(e.fn_name)
        if not callee.is_spec:
            raise EncodeError(
                f"exec fn {e.fn_name} cannot be called in an expression; "
                f"use SCall")
        decl = self.ctx.spec_decl(callee)
        return decl(*[self.tr(a) for a in e.args])

    # -- structs / enums ----------------------------------------------------------

    def _tr_FieldGet(self, e: A.FieldGet) -> T.Term:
        fns = self.encoder.struct_fns(e.base.vtype)
        return fns[f"sel_{e.fieldname}"](self.tr(e.base))

    def _tr_StructLit(self, e: A.StructLit) -> T.Term:
        fns = self.encoder.struct_fns(e.vtype)
        args = [self.tr(e.fields[name]) for name in e.vtype.fields]
        return fns["mk"](*args)

    def _tr_StructUpdate(self, e: A.StructUpdate) -> T.Term:
        fns = self.encoder.struct_fns(e.vtype)
        base = self.tr(e.base)
        args = []
        for name in e.vtype.fields:
            if name in e.updates:
                args.append(self.tr(e.updates[name]))
            else:
                args.append(fns[f"sel_{name}"](base))
        return fns["mk"](*args)

    def _tr_EnumLit(self, e: A.EnumLit) -> T.Term:
        fns = self.encoder.enum_fns(e.vtype)
        fields = e.vtype.variant_fields(e.variant)
        args = [self.tr(e.fields[name]) for name in fields]
        return fns[f"mk_{e.variant}"](*args)

    def _tr_IsVariant(self, e: A.IsVariant) -> T.Term:
        fns = self.encoder.enum_fns(e.base.vtype)
        tag = self.encoder.variant_tag(e.base.vtype, e.variant)
        return T.Eq(fns["tag"](self.tr(e.base)), T.IntVal(tag))

    def _tr_VariantGet(self, e: A.VariantGet) -> T.Term:
        fns = self.encoder.enum_fns(e.base.vtype)
        return fns[f"sel_{e.variant}_{e.fieldname}"](self.tr(e.base))

    # -- Seq ------------------------------------------------------------------------

    def _tr_SeqLit(self, e: A.SeqLit) -> T.Term:
        fns = self.encoder.seq_fns(e.vtype)
        out = fns["empty"]()
        for item in e.items:
            out = fns["concat"](out, fns["singleton"](self.tr(item)))
        return out

    def _tr_SeqLen(self, e: A.SeqLen) -> T.Term:
        fns = self.encoder.seq_fns(e.seq.vtype)
        return fns["len"](self.tr(e.seq))

    def _tr_SeqIndex(self, e: A.SeqIndex) -> T.Term:
        fns = self.encoder.seq_fns(e.seq.vtype)
        seq = self.tr(e.seq)
        idx = self.tr(e.idx)
        self._side(T.And(T.Le(T.IntVal(0), idx),
                         T.Lt(idx, fns["len"](seq))),
                   "sequence index in bounds", "bounds")
        return fns["index"](seq, idx)

    def _tr_SeqUpdate(self, e: A.SeqUpdate) -> T.Term:
        fns = self.encoder.seq_fns(e.seq.vtype)
        seq = self.tr(e.seq)
        idx = self.tr(e.idx)
        self._side(T.And(T.Le(T.IntVal(0), idx),
                         T.Lt(idx, fns["len"](seq))),
                   "sequence update in bounds", "bounds")
        return fns["update"](seq, idx, self.tr(e.value))

    def _tr_SeqConcat(self, e: A.SeqConcat) -> T.Term:
        fns = self.encoder.seq_fns(e.vtype)
        return fns["concat"](self.tr(e.lhs), self.tr(e.rhs))

    def _tr_SeqSkip(self, e: A.SeqSkip) -> T.Term:
        fns = self.encoder.seq_fns(e.vtype)
        return fns["skip"](self.tr(e.seq), self.tr(e.n))

    def _tr_SeqTake(self, e: A.SeqTake) -> T.Term:
        fns = self.encoder.seq_fns(e.vtype)
        return fns["take"](self.tr(e.seq), self.tr(e.n))

    # -- Map ------------------------------------------------------------------------

    def _tr_MapEmpty(self, e: A.MapEmpty) -> T.Term:
        return self.encoder.map_fns(e.vtype)["empty"]()

    def _tr_MapHas(self, e: A.MapHas) -> T.Term:
        fns = self.encoder.map_fns(e.m.vtype)
        return fns["has"](self.tr(e.m), self.tr(e.key))

    def _tr_MapGet(self, e: A.MapGet) -> T.Term:
        fns = self.encoder.map_fns(e.m.vtype)
        m = self.tr(e.m)
        k = self.tr(e.key)
        self._side(fns["has"](m, k), "map key present", "bounds")
        return fns["get"](m, k)

    def _tr_MapInsert(self, e: A.MapInsert) -> T.Term:
        fns = self.encoder.map_fns(e.m.vtype)
        return fns["insert"](self.tr(e.m), self.tr(e.key), self.tr(e.value))

    def _tr_MapRemove(self, e: A.MapRemove) -> T.Term:
        fns = self.encoder.map_fns(e.m.vtype)
        return fns["remove"](self.tr(e.m), self.tr(e.key))

    # -- quantifiers -----------------------------------------------------------------

    def _quant(self, e, mk) -> T.Term:
        bound_terms = []
        saved: dict[str, Optional[T.Term]] = {}
        guards = []
        for name, vtype in e.bound:
            v = T.Var(f"q!{name}", self.encoder.sort_of(vtype))
            bound_terms.append(v)
            saved[name] = self.env.get(name)
            self.env[name] = v
            rng = self.encoder.range_assumption(vtype, v)
            if rng is not None:
                guards.append(rng)
        try:
            body = self.tr(e.body)
            triggers = None
            if e.triggers:
                triggers = [[self.tr(p) for p in grp] for grp in e.triggers]
        finally:
            for name, old in saved.items():
                if old is None:
                    self.env.pop(name, None)
                else:
                    self.env[name] = old
        if guards:
            guard = T.And(*guards)
            body = (T.Implies(guard, body) if mk is T.ForAll
                    else T.And(guard, body))
        return mk(bound_terms, body, triggers)

    def _tr_ForAllE(self, e: A.ForAllE) -> T.Term:
        return self._quant(e, T.ForAll)

    def _tr_ExistsE(self, e: A.ExistsE) -> T.Term:
        return self._quant(e, T.Exists)


# ---------------------------------------------------------------------------
# by(bit_vector) translation
# ---------------------------------------------------------------------------

class _BvTranslator:
    """Translate a (bounded-int) assertion into pure bit-vector terms.

    Inside the assertion, every u{N} variable becomes a BV(N) variable —
    the paper's "inside the assertion, x is a bit vector" semantics.
    """

    WIDTH = 64  # bit_vector asserts run at machine-word width

    def __init__(self, ctx: _FnCtx):
        self.ctx = ctx
        self._vars: dict[T.Term, T.Term] = {}
        self._scopes = 0

    def tr(self, e: A.Expr, env: dict) -> T.Term:
        return self._tr(e, env)

    def _tr(self, e: A.Expr, env: dict) -> T.Term:
        if isinstance(e, A.Lit):
            if isinstance(e.vtype, VT.BoolType):
                return T.BoolVal(bool(e.value))
            return T.BVVal(int(e.value), self.WIDTH)
        if isinstance(e, A.VarE):
            base = env.get(e.name)
            if base is None:
                raise EncodeError(f"unbound {e.name} in bit_vector assert")
            bv_var = self._vars.get(base)
            if bv_var is None:
                bv_var = T.Var(f"bv!{e.name}", bv_sort(self.WIDTH))
                self._vars[base] = bv_var
            return bv_var
        if isinstance(e, A.BinOp):
            if e.op in ("&&", "||", "==>"):
                a, b = self._tr(e.lhs, env), self._tr(e.rhs, env)
                return {"&&": T.And, "||": T.Or,
                        "==>": T.Implies}[e.op](a, b)
            a, b = self._tr(e.lhs, env), self._tr(e.rhs, env)
            table = {
                "&": T.BvAnd, "|": T.BvOr, "^": T.BvXor,
                "+": T.BvAdd, "-": T.BvSub, "*": T.BvMul,
                "/": T.BvUDiv, "%": T.BvURem,
                "<<": T.BvShl, ">>": T.BvLshr,
                "==": T.Eq, "!=": T.Ne,
                "<=": T.BvULe, "<": T.BvULt,
            }
            if e.op in (">=", ">"):
                return (T.BvULe(b, a) if e.op == ">=" else T.BvULt(b, a))
            if e.op not in table:
                raise EncodeError(f"bit_vector mode: operator {e.op}")
            return table[e.op](a, b)
        if isinstance(e, A.UnOp) and e.op == "!":
            return T.Not(self._tr(e.operand, env))
        if isinstance(e, A.IteE):
            return T.Ite(self._tr(e.cond, env), self._tr(e.then, env),
                         self._tr(e.els, env))
        if isinstance(e, A.ForAllE):
            # Bound BV variables: scope them through env with fresh markers.
            saved = {}
            self._scopes += 1
            for name, _vtype in e.bound:
                # Deterministic scope counter (not id()): the translated
                # formula's text is the idiom cache key, so names must be
                # reproducible across runs and processes.
                marker = T.Var(f"bvscope!{name}!{self._scopes}",
                               bv_sort(self.WIDTH))
                saved[name] = env.get(name)
                env[name] = marker
            try:
                body = self._tr(e.body, env)
            finally:
                for name, old in saved.items():
                    if old is None:
                        env.pop(name, None)
                    else:
                        env[name] = old
            # A BV-sorted universal over a finite domain: leave the bound
            # variables as free BV vars — refuting the negation then checks
            # all values, which is exactly ∀-validity.
            return body
        raise EncodeError(
            f"bit_vector mode cannot translate {type(e).__name__}")


# ---------------------------------------------------------------------------
# AST walking helpers
# ---------------------------------------------------------------------------

def _walk_expr(e: A.Expr):
    stack = [e]
    while stack:
        cur = stack.pop()
        yield cur
        for attr in ("lhs", "rhs", "operand", "cond", "then", "els", "base",
                     "seq", "idx", "value", "n", "m", "key", "body"):
            child = getattr(cur, attr, None)
            if isinstance(child, A.Expr):
                stack.append(child)
        for attr in ("args", "items"):
            children = getattr(cur, attr, None)
            if children:
                stack.extend(c for c in children if isinstance(c, A.Expr))
        fields = getattr(cur, "fields", None)
        if isinstance(fields, dict):
            stack.extend(v for v in fields.values() if isinstance(v, A.Expr))
        updates = getattr(cur, "updates", None)
        if isinstance(updates, dict):
            stack.extend(v for v in updates.values() if isinstance(v, A.Expr))


def _stmt_exprs(stmt: A.Stmt):
    for attr in ("expr", "cond", "decreases"):
        e = getattr(stmt, attr, None)
        if isinstance(e, A.Expr):
            yield e
    for attr in ("invariants", "args", "by_premises"):
        es = getattr(stmt, attr, None)
        if es:
            yield from (e for e in es if isinstance(e, A.Expr))


# Default wiring; baseline pipelines substitute subclasses.
VcGen.CTX_CLS = _FnCtx
_FnCtx.TRANSLATOR_CLS = _ExprTranslator
