"""The verified language's type system.

Mirrors the Verus surface types our case studies need:

* mathematical ``int`` and ``nat`` (unbounded; ``nat`` adds ``>= 0``),
* bounded executable integers ``u8/u16/u32/u64/usize`` (SMT ints plus range
  side-conditions and overflow proof obligations, exactly as Verus maps Rust
  integers to SMT ints and demands overflow proofs),
* ``bool``,
* mathematical collections ``Seq<T>`` and ``Map<K,V>``,
* user-defined structs and enums (algebraic datatypes).

Ownership discipline: the language is functional-on-values — no aliasing is
expressible, which models the paper's point that Rust's type system removes
the need for heap encodings in the default pipeline (the Dafny/F* baselines
re-introduce a heap on purpose).
"""

from __future__ import annotations

from typing import Optional, Sequence


class VType:
    """Base class of verified-language types; instances are interned."""

    _interned: dict[tuple, "VType"] = {}

    def __new__(cls, *key):
        full_key = (cls, *key)
        existing = VType._interned.get(full_key)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        VType._interned[full_key] = obj
        return obj

    def is_integral(self) -> bool:
        return False

    @property
    def name(self) -> str:
        raise NotImplementedError


class IntType(VType):
    """Mathematical integers (Verus `int`)."""

    def __new__(cls):
        return super().__new__(cls)

    @property
    def name(self):
        return "int"

    def is_integral(self):
        return True


class NatType(VType):
    """Non-negative mathematical integers (Verus `nat`)."""

    def __new__(cls):
        return super().__new__(cls)

    @property
    def name(self):
        return "nat"

    def is_integral(self):
        return True


class BoundedIntType(VType):
    """Fixed-width executable integer (u8..u64/usize)."""

    def __new__(cls, bits: int, label: Optional[str] = None):
        obj = super().__new__(cls, bits)
        obj.bits = bits
        obj._label = label or f"u{bits}"
        return obj

    @property
    def name(self):
        return self._label

    def is_integral(self):
        return True

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1


class BoolType(VType):
    def __new__(cls):
        return super().__new__(cls)

    @property
    def name(self):
        return "bool"


class SeqType(VType):
    """Mathematical sequence Seq<T>."""

    def __new__(cls, elem: VType):
        obj = super().__new__(cls, elem)
        obj.elem = elem
        return obj

    @property
    def name(self):
        return f"Seq<{self.elem.name}>"


class MapType(VType):
    """Mathematical map Map<K, V> (partial: has-key + select)."""

    def __new__(cls, key: VType, value: VType):
        obj = super().__new__(cls, key, value)
        obj.key = key
        obj.value = value
        return obj

    @property
    def name(self):
        return f"Map<{self.key.name},{self.value.name}>"


class StructType(VType):
    """A named struct with ordered, typed fields."""

    def __new__(cls, name: str):
        obj = super().__new__(cls, name)
        if not hasattr(obj, "_name"):
            obj._name = name
            obj.fields: dict[str, VType] = {}
            obj._sealed = False
        return obj

    def declare(self, fields: Sequence[tuple[str, VType]]) -> "StructType":
        if self._sealed and list(self.fields.items()) != list(fields):
            raise ValueError(f"struct {self._name} redeclared differently")
        self.fields = dict(fields)
        self._sealed = True
        return self

    @property
    def name(self):
        return self._name

    def field_type(self, field: str) -> VType:
        try:
            return self.fields[field]
        except KeyError:
            raise KeyError(f"struct {self._name} has no field {field!r}") \
                from None


class EnumType(VType):
    """A named tagged union; each variant has ordered, typed fields."""

    def __new__(cls, name: str):
        obj = super().__new__(cls, name)
        if not hasattr(obj, "_name"):
            obj._name = name
            obj.variants: dict[str, dict[str, VType]] = {}
            obj._sealed = False
        return obj

    def declare(self, variants: dict[str, Sequence[tuple[str, VType]]]
                ) -> "EnumType":
        if self._sealed:
            return self
        self.variants = {v: dict(fields) for v, fields in variants.items()}
        self._sealed = True
        return self

    @property
    def name(self):
        return self._name

    def variant_fields(self, variant: str) -> dict[str, VType]:
        try:
            return self.variants[variant]
        except KeyError:
            raise KeyError(f"enum {self._name} has no variant {variant!r}") \
                from None


INT = IntType()
NAT = NatType()
BOOL = BoolType()
U8 = BoundedIntType(8)
U16 = BoundedIntType(16)
U32 = BoundedIntType(32)
U64 = BoundedIntType(64)
USIZE = BoundedIntType(64, "usize")


def range_bounds(t: VType) -> Optional[tuple[int, Optional[int]]]:
    """(lo, hi) range invariant for integral types; None when unconstrained."""
    if isinstance(t, NatType):
        return (0, None)
    if isinstance(t, BoundedIntType):
        return (0, t.max_value)
    return None
