"""Function-level delta re-verification (dependency fingerprints).

The obligation-level proof cache (:mod:`repro.vc.cache`) already skips
the *solver* on unchanged queries, but planning a function — symbolic
execution, axiom generation, idiom engines — still runs every time.
This module skips planning too: each function gets a **dependency
fingerprint** covering everything its verification outcome can depend
on — its own AST (contracts, body, spans), the module's datatype
declarations, the definitions of every transitively reachable spec
function, the contracts of every function it calls, and the solver
knobs/strategy.  When the fingerprint of a fully-PROVED function is
unchanged, ``run_module`` replays the recorded per-obligation metadata
without re-planning or re-solving.

Only fully verified functions are recorded: failures must re-run so the
diagnostics pipeline sees live solver state.  Anything the fingerprint
cannot see (a custom ``VcGen`` subclass hook, say) is covered by the
``strategy`` component, which names the pipeline class.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from ..smt.fingerprint import function_fingerprint, solver_config_key
from . import ast as A
from . import types as VT
from .errors import PROVED, STATIC_PROVED, FunctionResult, Obligation

DELTA_DIRNAME = "fn"


# ---------------------------------------------------------------------------
# Canonical AST rendering
# ---------------------------------------------------------------------------

def _render_type(t, busy: set) -> str:
    """Deterministic text of a VType, structure included.

    Struct/enum types render their full field/variant layout (a changed
    field type must change the fingerprint); recursive datatypes are cut
    off by name on re-entry.
    """
    if not isinstance(t, VT.VType):
        return repr(t)
    if id(t) in busy:
        return f"rec:{t.name}"
    if isinstance(t, VT.StructType):
        busy.add(id(t))
        try:
            fields = ",".join(
                f"{fname}:{_render_type(ft, busy)}"
                for fname, ft in (t.fields or {}).items())
        finally:
            busy.discard(id(t))
        return f"struct:{t.name}{{{fields}}}"
    if isinstance(t, VT.EnumType):
        busy.add(id(t))
        try:
            variants = ";".join(
                f"{v}({','.join(f'{fn}:{_render_type(ft, busy)}' for fn, ft in fields.items())})"
                for v, fields in (t.variants or {}).items())
        finally:
            busy.discard(id(t))
        return f"enum:{t.name}{{{variants}}}"
    return t.name


def canonical_node(node, _memo: Optional[dict] = None) -> str:
    """Deterministic text rendering of any AST node (tree, recursively).

    Covers every attribute the node carries — including source spans, so
    a function that merely *moved* re-verifies rather than replaying
    stale locations from the delta cache.
    """
    if _memo is None:
        _memo = {}
    if node is None:
        return "~"
    if isinstance(node, (str, int, float, bool)):
        return repr(node)
    if isinstance(node, A.Span):
        return f"@{node.file}:{node.line}"
    if isinstance(node, VT.VType):
        return _render_type(node, set())
    if isinstance(node, dict):
        inner = ",".join(f"{k!r}:{canonical_node(v, _memo)}"
                         for k, v in sorted(node.items(), key=lambda kv:
                                            repr(kv[0])))
        return "{" + inner + "}"
    if isinstance(node, (list, tuple)):
        return "[" + ",".join(canonical_node(x, _memo) for x in node) + "]"
    key = id(node)
    hit = _memo.get(key)
    if hit is not None:
        return hit
    attrs = vars(node)
    inner = ",".join(f"{k}={canonical_node(v, _memo)}"
                     for k, v in sorted(attrs.items()))
    # `span` lives on the class (default None) when no builder set it.
    if "span" not in attrs and getattr(node, "span", None) is not None:
        inner += f",span={canonical_node(node.span, _memo)}"
    text = f"{type(node).__name__}({inner})"
    _memo[key] = text
    return text


def _called_functions(fn: A.Function, module: A.Module) -> list[A.Function]:
    """Non-spec callees of fn's body, by contract dependency.

    Exec/proof calls are modular: the caller's verification depends only
    on the callee's *signature and contracts*, which is exactly what the
    fingerprint includes for them (spec functions are handled separately,
    definitions included, via ``reachable_spec_fns``).
    """
    names: list[str] = []
    seen: set[str] = set()

    def visit_stmts(stmts):
        for s in stmts or ():
            if isinstance(s, A.SCall) and s.fn_name not in seen:
                seen.add(s.fn_name)
                names.append(s.fn_name)
            elif isinstance(s, A.SIf):
                visit_stmts(s.then)
                visit_stmts(s.els)
            elif isinstance(s, A.SWhile):
                visit_stmts(s.body)

    if isinstance(fn.body, list):
        visit_stmts(fn.body)
    all_fns = module.all_functions()
    return [all_fns[n] for n in names if n in all_fns]


def _contract_text(fn: A.Function) -> str:
    """Signature + contracts only (no body): the modular dependency."""
    memo: dict = {}
    parts = [fn.name, fn.mode,
             canonical_node(list(fn.params), memo),
             canonical_node(fn.ret, memo),
             canonical_node(list(fn.requires), memo),
             canonical_node(list(fn.ensures), memo),
             canonical_node(fn.decreases, memo)]
    return "|".join(parts)


def function_dependency_digest(gen, fn: A.Function,
                               solver_config=None) -> str:
    """Content address of everything fn's verification depends on.

    ``solver_config`` is the *effective* solver configuration the
    obligations will run under.  The scheduler layers knobs (notably the
    ``max_steps`` resource budget) on top of ``gen.config``'s base config,
    and a verdict proved under one budget says nothing about another —
    callers that apply overrides must pass the layered config or the
    digest would alias across budgets and replay stale verdicts.
    """
    module = gen.module
    chunks = [f"module:{module.name}:epr={module.epr_mode}",
              canonical_node(module.attrs),
              canonical_node(fn)]
    for dt in module.datatypes:
        chunks.append(_render_type(dt, set()))
    for spec in sorted(gen.reachable_spec_fns(fn), key=lambda f: f.name):
        chunks.append(canonical_node(spec))
    for callee in sorted(_called_functions(fn, module),
                         key=lambda f: f.name):
        chunks.append(_contract_text(callee))
    if solver_config is None:
        solver_config = gen.config.make_solver_config()
    return function_fingerprint(chunks,
                                solver_config_key(solver_config),
                                type(gen).__qualname__)


# ---------------------------------------------------------------------------
# The on-disk function cache
# ---------------------------------------------------------------------------

class DeltaCache:
    """Per-function verdict store under ``<proof cache root>/fn/``.

    Entries record the per-obligation metadata of a *fully verified*
    function (labels, kinds, seqs, spans, query bytes) keyed by its
    dependency fingerprint; a hit replays the function result without
    planning or solving.  Writes are atomic like the proof cache's.
    """

    def __init__(self, root: str):
        self.root = os.path.join(os.path.abspath(root), DELTA_DIRNAME)
        self.skips = 0
        self.misses = 0
        self.stores = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def lookup(self, digest: str) -> Optional[dict]:
        try:
            with open(self._path(digest), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (not isinstance(entry, dict)
                    or entry.get("digest") != digest
                    or not isinstance(entry.get("obligations"), list)):
                raise ValueError("malformed delta entry")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError, UnicodeDecodeError):
            self.misses += 1
            try:
                os.remove(self._path(digest))
            except OSError:
                pass
            return None
        self.skips += 1
        return entry

    def store(self, digest: str, function: str, result: FunctionResult) -> None:
        """Record a fully verified function's obligation metadata."""
        if not result.ok:
            return
        entry = {
            "digest": digest,
            "function": function,
            "query_bytes": result.query_bytes,
            "obligations": [
                {"label": o.label, "kind": o.kind, "seq": o.seq,
                 "span": o.span.to_dict() if o.span is not None else None,
                 # Static-tier provenance survives the delta skip so a
                 # replayed report is byte-identical to the cold one.
                 "static": o.stats.get("tier") == STATIC_PROVED}
                for o in result.obligations
            ],
        }
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh)
                os.replace(tmp, self._path(digest))
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.stores += 1


def replay_function(entry: dict, triage_on: bool = True) -> FunctionResult:
    """Rebuild a FunctionResult from a delta-cache hit (all PROVED).

    Static-tier provenance is restored only when ``triage_on`` — a
    triage-off warm run must report exactly what a triage-off cold run
    would, and that run never produces static verdicts.
    """
    result = FunctionResult(entry["function"])
    result.query_bytes = int(entry.get("query_bytes", 0))
    result.seconds = 0.0
    for rec in entry["obligations"]:
        ob = Obligation(rec["label"], rec["kind"])
        ob.status = PROVED
        ob.seq = int(rec.get("seq", 0))
        ob.stats = {"delta_skipped": True}
        if rec.get("static") and triage_on:
            ob.stats["tier"] = STATIC_PROVED
        span = rec.get("span")
        if span:
            ob.span = A.Span.from_dict(span)
        result.obligations.append(ob)
    return result
