"""PyVerus — a Python reproduction of *Verus: A Practical Foundation for
Systems Verification* (SOSP 2024).

Layers (bottom-up):

* :mod:`repro.smt` — a from-scratch SMT stack (SAT/EUF/LIA/BV/quantifiers)
  standing in for Z3,
* :mod:`repro.vc` — the verified language, VC generation, context pruning,
* :mod:`repro.lang` — the developer-facing `verus!{}`-style surface,
* :mod:`repro.epr` — `#[epr_mode]` (§3.2),
* :mod:`repro.sync` — VerusSync (§3.4),
* :mod:`repro.baselines` — Dafny/F*/Creusot/Prusti/Ivy-style pipelines for
  the millibenchmark comparisons (§4.1),
* :mod:`repro.systems` — the five case studies (§4.2),
* :mod:`repro.runtime` — executable substrates (network/pmem/scheduler).

:mod:`repro.api` is the programmatic front door: ``Session`` +
``VerifyConfig`` bundle parallelism, caching, diagnostics, and the
incremental/delta solving strategies behind one surface.
"""

__version__ = "1.0.0"
