"""In-process network simulation for the IronKV harness (§4.2.1).

Models a UDP-ish datagram fabric: named endpoints, per-endpoint receive
queues, optional delivery latency, drop and duplication injection.  The
IronKV client/server processes exchange *marshalled byte buffers* through
it, so the marshalling library is exercised on every message exactly as
the paper's test harness exercises the real sockets.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Optional

from ..resilience import faults as _faults


class Endpoint:
    """One addressable endpoint with a FIFO receive queue."""

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self._queue: deque[tuple[str, bytes]] = deque()
        self._cv = threading.Condition()

    def send(self, dst: str, payload: bytes) -> None:
        self.network.deliver(self.name, dst, payload)

    def recv(self, timeout: Optional[float] = None
             ) -> Optional[tuple[str, bytes]]:
        """(source, payload) or None on timeout.

        Waits in a deadline loop: a spurious (or stolen) condition
        wakeup re-waits for the *remaining* time instead of returning
        None early, so ``timeout`` is a real lower bound on how long an
        empty recv blocks.
        """
        with self._cv:
            if timeout is None:
                while not self._queue:
                    self._cv.wait()
            else:
                deadline = time.monotonic() + timeout
                while not self._queue:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cv.wait(remaining)
            return self._queue.popleft()

    def try_recv(self) -> Optional[tuple[str, bytes]]:
        with self._cv:
            return self._queue.popleft() if self._queue else None

    def _enqueue(self, src: str, payload: bytes) -> None:
        with self._cv:
            self._queue.append((src, payload))
            self._cv.notify()

    def pending(self) -> int:
        with self._cv:
            return len(self._queue)


class Network:
    """A datagram fabric with fault injection."""

    def __init__(self, drop_rate: float = 0.0, dup_rate: float = 0.0,
                 seed: int = 0):
        self._endpoints: dict[str, Endpoint] = {}
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self._rng = random.Random(seed)
        self.stats = {"sent": 0, "delivered": 0, "dropped": 0,
                      "duplicated": 0, "bytes": 0}
        self._lock = threading.Lock()

    def endpoint(self, name: str) -> Endpoint:
        with self._lock:
            ep = self._endpoints.get(name)
            if ep is None:
                ep = Endpoint(name, self)
                self._endpoints[name] = ep
            return ep

    def deliver(self, src: str, dst: str, payload: bytes) -> None:
        with self._lock:
            self.stats["sent"] += 1
            self.stats["bytes"] += len(payload)
            target = self._endpoints.get(dst)
            if target is None:
                self.stats["dropped"] += 1
                return
            # Plan-directed drops ride alongside the probabilistic
            # drop_rate: `net.send:drop@N` kills exactly the Nth send.
            if _faults.maybe_fault("net.send") is not None:
                self.stats["dropped"] += 1
                self.stats["injected_drops"] = (
                    self.stats.get("injected_drops", 0) + 1)
                return
            if self._rng.random() < self.drop_rate:
                self.stats["dropped"] += 1
                return
            copies = 1
            if self._rng.random() < self.dup_rate:
                copies = 2
                self.stats["duplicated"] += 1
            # Count deliveries under the same lock hold that decided
            # them: re-acquiring per copy let a concurrent deliver
            # interleave between enqueue and count, transiently
            # under-reporting, and made delivered/duplicated drift
            # observable.  Every copy of a duplicated datagram counts
            # as delivered, always consistently with `duplicated`.
            self.stats["delivered"] += copies
        for _ in range(copies):
            target._enqueue(src, payload)
