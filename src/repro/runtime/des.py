"""A discrete-event concurrency simulator with a NUMA cost model.

Figure 11 of the paper measures NR throughput on a 4-socket, 192-thread
Xeon; no such hardware exists here, and the GIL would flatten any real
Python threading experiment.  Instead the NR benchmark drives its (real,
ghost-checked) data-structure code through this simulator: each simulated
thread executes its actual operation logic, and only *time* is modeled —
local work, remote-socket cache transfers, and contention on shared
atomics.

The cost model captures the three effects the NR paper leans on:

* reads hit the local replica (cheap, embarrassingly parallel),
* writes serialize through the shared log (flat combining: one combiner
  per replica does a batch while others wait),
* cross-socket traffic costs more than local traffic.

Simulated wall-clock throughput then shows the paper's shape: read-heavy
workloads scale with threads; write-heavy ones plateau early.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    __slots__ = ("time", "seq", "action")

    def __init__(self, time: float, seq: int, action: Callable):
        self.time = time
        self.seq = seq
        self.action = action

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Resource:
    """A mutually exclusive resource (lock/combiner slot) in sim-time."""

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.acquisitions = 0

    def acquire_at(self, now: float, hold: float) -> float:
        """Serve a request arriving at `now` holding for `hold`.

        Returns the release time (requests queue FIFO by arrival).
        """
        start = max(now, self.busy_until)
        self.busy_until = start + hold
        self.total_busy += hold
        self.acquisitions += 1
        return self.busy_until


class SimThread:
    """A simulated thread: a generator yielding costs/waits."""

    def __init__(self, sim: "Simulator", name: str, socket: int,
                 body: Callable):
        self.sim = sim
        self.name = name
        self.socket = socket
        self.body = body       # generator function(thread) -> yields floats
        self.now = 0.0
        self.ops_done = 0


class Simulator:
    """Coordinates simulated threads until a time horizon."""

    def __init__(self, sockets: int = 4, cores_per_socket: int = 48,
                 remote_penalty: float = 3.0):
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.remote_penalty = remote_penalty
        self.threads: list[SimThread] = []
        self._events: list[Event] = []
        self._seq = 0
        self.now = 0.0

    def thread(self, name: str, socket: int, body: Callable) -> SimThread:
        t = SimThread(self, name, socket, body)
        self.threads.append(t)
        return t

    def cross_socket_cost(self, a: int, b: int, base: float) -> float:
        return base if a == b else base * self.remote_penalty

    def run(self, horizon: float) -> dict:
        """Run all threads until the sim-time horizon; return stats."""
        for t in self.threads:
            gen = t.body(t)
            self._schedule(0.0, t, gen)
        while self._events:
            event = heapq.heappop(self._events)
            if event.time > horizon:
                break
            self.now = event.time
            event.action()
        total_ops = sum(t.ops_done for t in self.threads)
        return {"ops": total_ops, "horizon": horizon,
                "throughput": total_ops / horizon if horizon else 0.0}

    def _schedule(self, time: float, thread: SimThread, gen) -> None:
        def step():
            thread.now = max(thread.now, time)
            try:
                cost = next(gen)
            except StopIteration:
                return
            if isinstance(cost, tuple) and cost[0] == "op_done":
                thread.ops_done += 1
                cost = cost[1]
            thread.now += cost
            self._schedule(thread.now, thread, gen)

        self._seq += 1
        heapq.heappush(self._events, Event(time, self._seq, step))
