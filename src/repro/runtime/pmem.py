"""A byte-addressable persistent-memory model with crash & corruption
injection.

Stands in for the paper's Optane PMM device (§4.2.5).  The model captures
exactly the hazards the verified log defends against:

* **small persistence granularity**: stores are buffered per 64-byte
  cacheline and only reach "persistent" state on flush; a crash drops any
  unflushed line, and a *partially* flushed store can tear at cacheline
  boundaries,
* **fine-grained media errors / random bit flips / stray writes**: fault
  injection can corrupt persistent bytes behind the application's back.

Costs are modeled so that benchmarks see realistic *relative* behavior:
writes cost per-byte plus a per-flush latency, which is what makes the
paper's "initial version copies twice" vs "latest writes in place"
difference reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

CACHELINE = 64


class PmemCrash(Exception):
    """Raised when a simulated crash point triggers."""


class PmemDevice:
    """Simulated persistent memory with a volatile write buffer."""

    def __init__(self, size: int, *,
                 write_ns_per_byte: float = 1.0,
                 flush_ns: float = 100.0,
                 read_ns_per_byte: float = 0.25,
                 seed: int = 0):
        self.size = size
        self._persistent = bytearray(size)
        self._buffer: dict[int, bytearray] = {}  # line index -> contents
        self.write_ns_per_byte = write_ns_per_byte
        self.flush_ns = flush_ns
        self.read_ns_per_byte = read_ns_per_byte
        self.elapsed_ns = 0.0
        self.stats = {"writes": 0, "flushes": 0, "reads": 0,
                      "bytes_written": 0}
        self._rng = random.Random(seed)
        self._crash_countdown: Optional[int] = None

    # -- fault injection -------------------------------------------------------

    def schedule_crash(self, after_writes: int) -> None:
        """Crash (drop unflushed lines) after N more write operations."""
        self._crash_countdown = after_writes

    def corrupt(self, offset: int, nbytes: int = 1) -> None:
        """Flip random bits in persistent bytes (media error model)."""
        for i in range(nbytes):
            pos = offset + i
            if 0 <= pos < self.size:
                self._persistent[pos] ^= 1 << self._rng.randrange(8)

    def stray_write(self, offset: int, data: bytes) -> None:
        """A rogue store that bypasses the log's discipline."""
        self._persistent[offset:offset + len(data)] = data

    def crash(self) -> None:
        """Power failure: all unflushed buffered lines are lost."""
        self._buffer.clear()

    # -- the device API ----------------------------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Buffered store; NOT persistent until the range is flushed."""
        if offset < 0 or offset + len(data) > self.size:
            raise ValueError(f"write out of range: {offset}+{len(data)}")
        self.stats["writes"] += 1
        self.stats["bytes_written"] += len(data)
        self.elapsed_ns += len(data) * self.write_ns_per_byte
        pos = offset
        remaining = data
        while remaining:
            line = pos // CACHELINE
            line_off = pos % CACHELINE
            chunk = remaining[: CACHELINE - line_off]
            buf = self._buffer.get(line)
            if buf is None:
                start = line * CACHELINE
                end = min(start + CACHELINE, self.size)
                buf = bytearray(self._persistent[start:end])
                self._buffer[line] = buf
            buf[line_off:line_off + len(chunk)] = chunk
            pos += len(chunk)
            remaining = remaining[len(chunk):]
        if self._crash_countdown is not None:
            self._crash_countdown -= 1
            if self._crash_countdown <= 0:
                self._crash_countdown = None
                self.crash()
                raise PmemCrash(f"crash after write at {offset}")

    def flush(self, offset: int, length: int) -> None:
        """Persist all buffered lines overlapping [offset, offset+length)."""
        self.stats["flushes"] += 1
        self.elapsed_ns += self.flush_ns
        first = offset // CACHELINE
        last = (offset + max(length, 1) - 1) // CACHELINE
        for line in range(first, last + 1):
            buf = self._buffer.pop(line, None)
            if buf is not None:
                start = line * CACHELINE
                self._persistent[start:start + len(buf)] = buf

    def read(self, offset: int, length: int) -> bytes:
        """Read persistent + buffered state (what the CPU would see)."""
        self.stats["reads"] += 1
        self.elapsed_ns += length * self.read_ns_per_byte
        out = bytearray(self._persistent[offset:offset + length])
        first = offset // CACHELINE
        last = (offset + max(length, 1) - 1) // CACHELINE
        for line in range(first, last + 1):
            buf = self._buffer.get(line)
            if buf is None:
                continue
            start = line * CACHELINE
            for i, b in enumerate(buf):
                pos = start + i
                if offset <= pos < offset + length:
                    out[pos - offset] = b
        return bytes(out)

    def read_persistent(self, offset: int, length: int) -> bytes:
        """What a post-crash recovery would read (persistent state only)."""
        return bytes(self._persistent[offset:offset + length])
