"""CRC-32 (reflected, polynomial 0xEDB88320), implemented from scratch.

The persistent log (§4.2.5) protects its metadata "up to CRC"; this is the
checksum it uses.  The lookup table is precomputed the same way the
paper's `by(compute)` anecdote describes — and the test-suite *proves* the
table correct by recomputing entries with the verifier's compute engine.
"""

from __future__ import annotations

POLY = 0xEDB88320


def _table_entry(index: int) -> int:
    value = index
    for _ in range(8):
        if value & 1:
            value = (value >> 1) ^ POLY
        else:
            value >>= 1
    return value


TABLE = tuple(_table_entry(i) for i in range(256))


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of ``data`` (matching zlib.crc32 semantics)."""
    crc = seed ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_bitwise(data: bytes, seed: int = 0) -> int:
    """Reference bit-at-a-time implementation (for cross-validation)."""
    crc = seed ^ 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (POLY if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF
