"""Executable substrates: CRC32, pmem model, network sim, DES scheduler."""

from .crc import crc32, crc32_bitwise
from .des import Resource, SimThread, Simulator
from .network import Endpoint, Network
from .pmem import CACHELINE, PmemCrash, PmemDevice

__all__ = ["crc32", "crc32_bitwise", "Simulator", "SimThread", "Resource",
           "Network", "Endpoint", "PmemDevice", "PmemCrash", "CACHELINE"]
