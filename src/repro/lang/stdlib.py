"""A vstd-style library of verified utility lemmas.

Verus ships a "standard library" of verified utility code and lemmas that
user proofs call (the paper mentions it when wiring VerusSync tokens to
atomics).  This module provides the analogue for our surface: a module of
proof functions over Seq/Map/arithmetic, each verified once by the default
pipeline and callable from user code via ``call_stmt`` (lemma invocation).

Build it with :func:`build_stdlib` and import it into user modules:

    std = build_stdlib()
    my_module.import_module(std)
    ...
    call_stmt("lemma_seq_push_len", [s, v])
"""

from __future__ import annotations

from . import (INT, MapType, Module, SeqType, and_all, assert_, ext_eq,
               forall, lit, proof_fn, var)

SeqI = SeqType(INT)
MapII = MapType(INT, INT)


def build_stdlib() -> Module:
    """The verified lemma library (verify once, import everywhere)."""
    std = Module("vstd")
    s, t = var("s", SeqI), var("t", SeqI)
    v, i, n = var("v", INT), var("i", INT), var("n", INT)
    m = var("m", MapII)
    k, k2, val = var("k", INT), var("k2", INT), var("val", INT)

    # ---- Seq lemmas --------------------------------------------------------

    proof_fn(std, "lemma_seq_push_len", [("s", SeqI), ("v", INT)],
             ensures=[s.push(v).length().eq(s.length() + 1)], body=[])

    proof_fn(std, "lemma_seq_push_last", [("s", SeqI), ("v", INT)],
             ensures=[s.push(v).index(s.length()).eq(v)], body=[])

    proof_fn(std, "lemma_seq_push_prefix", [("s", SeqI), ("v", INT),
                                            ("i", INT)],
             requires=[lit(0) <= i, i < s.length()],
             ensures=[s.push(v).index(i).eq(s.index(i))], body=[])

    proof_fn(std, "lemma_seq_update_same", [("s", SeqI), ("i", INT),
                                            ("v", INT)],
             requires=[lit(0) <= i, i < s.length()],
             ensures=[s.update(i, v).index(i).eq(v),
                      s.update(i, v).length().eq(s.length())], body=[])

    proof_fn(std, "lemma_seq_update_other", [("s", SeqI), ("i", INT),
                                             ("n", INT), ("v", INT)],
             requires=[lit(0) <= i, i < s.length(),
                       lit(0) <= n, n < s.length(), i.ne(n)],
             ensures=[s.update(i, v).index(n).eq(s.index(n))], body=[])

    proof_fn(std, "lemma_seq_concat_len", [("s", SeqI), ("t", SeqI)],
             ensures=[s.concat(t).length().eq(s.length() + t.length())],
             body=[])

    proof_fn(std, "lemma_seq_concat_index_left",
             [("s", SeqI), ("t", SeqI), ("i", INT)],
             requires=[lit(0) <= i, i < s.length()],
             ensures=[s.concat(t).index(i).eq(s.index(i))], body=[])

    proof_fn(std, "lemma_seq_concat_index_right",
             [("s", SeqI), ("t", SeqI), ("i", INT)],
             requires=[s.length() <= i,
                       i < s.length() + t.length()],
             ensures=[s.concat(t).index(i).eq(t.index(i - s.length()))],
             body=[])

    proof_fn(std, "lemma_seq_take_skip_cover",
             [("s", SeqI), ("n", INT), ("i", INT)],
             requires=[lit(0) <= n, n <= s.length()],
             ensures=[
                 s.take(n).length().eq(n),
                 s.skip(n).length().eq(s.length() - n),
                 and_all(lit(0) <= i, i < n).implies(
                     s.take(n).index(i).eq(s.index(i))),
                 and_all(lit(0) <= i, i < s.length() - n).implies(
                     s.skip(n).index(i).eq(s.index(i + n))),
             ], body=[])

    proof_fn(std, "lemma_seq_take_full", [("s", SeqI)],
             ensures=[ext_eq(s.take(s.length()), s)], body=[])

    proof_fn(std, "lemma_seq_skip_zero", [("s", SeqI)],
             ensures=[ext_eq(s.skip(0), s)], body=[])

    proof_fn(std, "lemma_seq_ext_symmetric", [("s", SeqI), ("t", SeqI)],
             requires=[s.length().eq(t.length()),
                       forall([("q", INT)],
                              and_all(lit(0) <= var("q", INT),
                                      var("q", INT) < s.length()).implies(
                                  s.index(var("q", INT)).eq(
                                      t.index(var("q", INT)))))],
             # s == t follows from s =~= t only once the `ext` term exists
             # in the query — the body's assert introduces it, the same way
             # Verus proofs write `assert(s =~= t)` before using `s == t`.
             ensures=[ext_eq(s, t), s.eq(t)],
             body=[assert_(ext_eq(s, t))])

    # ---- Map lemmas -----------------------------------------------------------

    proof_fn(std, "lemma_map_insert_same", [("m", MapII), ("k", INT),
                                            ("val", INT)],
             ensures=[m.insert(k, val).contains_key(k),
                      m.insert(k, val).map_index(k).eq(val)], body=[])

    proof_fn(std, "lemma_map_insert_other",
             [("m", MapII), ("k", INT), ("k2", INT), ("val", INT)],
             requires=[k.ne(k2)],
             ensures=[
                 m.insert(k, val).contains_key(k2).eq(m.contains_key(k2)),
                 m.contains_key(k2).implies(
                     m.insert(k, val).map_index(k2).eq(m.map_index(k2))),
             ], body=[])

    proof_fn(std, "lemma_map_remove", [("m", MapII), ("k", INT),
                                       ("k2", INT)],
             requires=[k.ne(k2)],
             ensures=[
                 m.remove(k).contains_key(k).not_(),
                 m.remove(k).contains_key(k2).eq(m.contains_key(k2)),
             ], body=[])

    proof_fn(std, "lemma_map_insert_remove_roundtrip",
             [("m", MapII), ("k", INT), ("val", INT), ("k2", INT)],
             requires=[m.contains_key(k).not_(), k.ne(k2)],
             ensures=[
                 m.insert(k, val).remove(k).contains_key(k2).eq(
                     m.contains_key(k2)),
             ], body=[])

    # ---- arithmetic lemmas -------------------------------------------------------

    proof_fn(std, "lemma_div_mod_decomposition", [("i", INT), ("n", INT)],
             requires=[n > 0],
             ensures=[((i // n) * n + (i % n)).eq(i),
                      (i % n) >= 0, (i % n) < n], body=[])

    proof_fn(std, "lemma_mod_bounds", [("i", INT), ("n", INT)],
             requires=[n > 0],
             ensures=[(i % n) >= 0, (i % n) < n], body=[])

    # Products need by(nonlinear_arith); vstd's mul lemmas are the model.
    proof_fn(std, "lemma_mul_nonneg", [("i", INT), ("n", INT)],
             requires=[i >= 0, n >= 0],
             ensures=[i * n >= 0],
             body=[assert_(i * n >= 0, by="nonlinear_arith",
                           premises=[i >= 0, n >= 0])])

    proof_fn(std, "lemma_mul_strictly_ordered", [("i", INT), ("n", INT),
                                                 ("k", INT)],
             requires=[i < n, k > 0],
             ensures=[i * k < n * k],
             body=[assert_(i * k < n * k, by="nonlinear_arith",
                           premises=[i < n, k > 0])])

    proof_fn(std, "lemma_div_floor", [("i", INT), ("n", INT)],
             requires=[n > 0, i >= 0],
             ensures=[(i // n) * n <= i],
             body=[assert_((i // n) * n <= i, by="nonlinear_arith",
                           premises=[n > 0, i >= 0])])

    return std
