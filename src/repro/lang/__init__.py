"""The developer-facing surface of the verifier (the `verus!{}` macro's role).

Typical usage::

    from repro.lang import *

    mod = Module("demo")
    a, b = var("a", U64), var("b", U64)
    res = var("res", U64)

    spec_fn(mod, "max2", [("a", INT), ("b", INT)], INT,
            body=ite(var("a", INT) >= var("b", INT),
                     var("a", INT), var("b", INT)))

    exec_fn(mod, "max_exec", [("a", U64), ("b", U64)], ret=("res", U64),
            ensures=[res.eq(call(mod, "max2", a, b))],
            body=[if_(a >= b, [ret(a)], [ret(b)])])

    from repro.api import Session
    Session().verify(mod)   # raises VerificationFailure on failure

This module builds *programs*; running the verifier is
:class:`repro.api.Session`'s job (the historical ``lang.verify`` /
``lang.verify_module`` / ``lang.diagnose`` shims were removed after a
deprecation cycle).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, Union

from ..vc import ast as A
from ..vc import types as VT
from ..vc.errors import ModuleResult, VerificationFailure
from ..vc.wp import VcConfig, VcGen
from ..smt.quant import BROAD, CONSERVATIVE


def _span() -> Optional[A.Span]:
    """Source span of the user code calling a lang helper.

    Walks out of this module so nested helpers (and future wrappers here)
    still attribute the construct to the user's file/line.
    """
    try:
        frame = sys._getframe(1)
    except Exception:  # pragma: no cover - _getframe is CPython-specific
        return None
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return None
    return A.Span(frame.f_code.co_filename, frame.f_lineno)


def _with_span(node):
    if node.span is None:
        node.span = _span()
    return node

# Re-export the type vocabulary.
INT = VT.INT
NAT = VT.NAT
BOOL = VT.BOOL
U8 = VT.U8
U16 = VT.U16
U32 = VT.U32
U64 = VT.U64
USIZE = VT.USIZE
SeqType = VT.SeqType
MapType = VT.MapType
StructType = VT.StructType
EnumType = VT.EnumType

Module = A.Module
Function = A.Function
Param = A.Param

BY_BIT_VECTOR = A.BY_BIT_VECTOR
BY_NONLINEAR = A.BY_NONLINEAR
BY_INTEGER_RING = A.BY_INTEGER_RING
BY_COMPUTE = A.BY_COMPUTE


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def var(name: str, vtype: VT.VType) -> A.VarE:
    return A.VarE(name, vtype)


def old(name: str, vtype: VT.VType) -> A.Old:
    return A.Old(name, vtype)


def lit(value: Union[int, bool], vtype: Optional[VT.VType] = None) -> A.Lit:
    if vtype is None:
        vtype = VT.BOOL if isinstance(value, bool) else VT.INT
    return A.Lit(value, vtype)


def ite(cond, then, els) -> A.IteE:
    return A.IteE(A.coerce(cond), A.coerce(then), A.coerce(els))


def call(mod: A.Module, fn_name: str, *args) -> A.Call:
    fn = mod.lookup(fn_name)
    if fn.ret is None:
        raise ValueError(f"{fn_name} has no return value")
    return A.Call(fn_name, [A.coerce(a) for a in args], fn.ret[1])


def rec_call(fn_name: str, ret_type: VT.VType, *args) -> A.Call:
    """Call by name with an explicit return type.

    Needed for recursive spec functions, whose body is built before the
    function is registered in the module.
    """
    return A.Call(fn_name, [A.coerce(a) for a in args], ret_type)


def forall(bound: Sequence[tuple[str, VT.VType]], body,
           triggers=None) -> A.ForAllE:
    return A.ForAllE(bound, A.coerce(body), triggers)


def exists(bound: Sequence[tuple[str, VT.VType]], body,
           triggers=None) -> A.ExistsE:
    return A.ExistsE(bound, A.coerce(body), triggers)


def let(name: str, value, body) -> A.LetE:
    return A.LetE(name, A.coerce(value), A.coerce(body))


def seq_lit(elem: VT.VType, *items) -> A.SeqLit:
    return A.SeqLit(elem, [A.coerce(i) for i in items])


def seq_empty(elem: VT.VType) -> A.SeqLit:
    return A.SeqLit(elem, [])


def map_empty(key: VT.VType, value: VT.VType) -> A.MapEmpty:
    return A.MapEmpty(VT.MapType(key, value))


def struct(vtype: VT.StructType, **fields) -> A.StructLit:
    return A.StructLit(vtype, fields)


def struct_update(base, **updates) -> A.StructUpdate:
    return A.StructUpdate(A.coerce(base), updates)


def enum(vtype: VT.EnumType, variant: str, **fields) -> A.EnumLit:
    return A.EnumLit(vtype, variant, fields)


def ext_eq(a, b) -> A.BinOp:
    """`a =~= b`: extensional equality (invokes the ext axiom for Seq)."""
    return A.BinOp("=~=", A.coerce(a), A.coerce(b))


def and_all(*parts) -> A.Expr:
    parts = [A.coerce(p) for p in parts]
    if not parts:
        return lit(True)
    out = parts[0]
    for p in parts[1:]:
        out = out.and_(p)
    return out


def or_all(*parts) -> A.Expr:
    parts = [A.coerce(p) for p in parts]
    if not parts:
        return lit(False)
    out = parts[0]
    for p in parts[1:]:
        out = out.or_(p)
    return out


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def let_(name: str, value) -> A.SLet:
    return _with_span(A.SLet(name, A.coerce(value)))


def assign(name: str, value) -> A.SAssign:
    return _with_span(A.SAssign(name, A.coerce(value)))


def if_(cond, then: Sequence[A.Stmt], els: Sequence[A.Stmt] = ()) -> A.SIf:
    return _with_span(A.SIf(A.coerce(cond), then, els))


def while_(cond, invariants: Sequence, body: Sequence[A.Stmt],
           decreases=None) -> A.SWhile:
    return _with_span(
        A.SWhile(A.coerce(cond), [A.coerce(i) for i in invariants], body,
                 A.coerce(decreases) if decreases is not None else None))


def assert_(expr, by: Optional[str] = None, premises: Sequence = (),
            label: str = "") -> A.SAssert:
    return _with_span(A.SAssert(A.coerce(expr), by,
                                [A.coerce(p) for p in premises], label))


def assume_(expr) -> A.SAssume:
    return _with_span(A.SAssume(A.coerce(expr)))


def call_stmt(fn_name: str, args: Sequence = (), binds: Sequence[str] = (),
              mut_args: Sequence[str] = ()) -> A.SCall:
    return _with_span(
        A.SCall(fn_name, [A.coerce(a) for a in args], binds, mut_args))


def ret(expr=None) -> A.SReturn:
    return _with_span(
        A.SReturn(A.coerce(expr) if expr is not None else None))


# ---------------------------------------------------------------------------
# Function declaration helpers
# ---------------------------------------------------------------------------

def _params(params: Sequence, mut: Sequence[str] = ()) -> list[A.Param]:
    out = []
    for p in params:
        if isinstance(p, A.Param):
            out.append(p)
        else:
            name, vtype = p
            out.append(A.Param(name, vtype, mutable=name in mut))
    return out


def spec_fn(mod: A.Module, name: str, params: Sequence, ret_type: VT.VType,
            body: A.Expr, decreases=None) -> A.Function:
    fn = A.Function(name, A.SPEC, _params(params), ("result", ret_type),
                    body=A.coerce(body),
                    decreases=A.coerce(decreases) if decreases is not None
                    else None)
    return mod.add(_with_span(fn))


def exec_fn(mod: A.Module, name: str, params: Sequence,
            ret: Optional[tuple[str, VT.VType]] = None,
            requires: Sequence = (), ensures: Sequence = (),
            body: Optional[Sequence[A.Stmt]] = None,
            mut: Sequence[str] = (), attrs: Optional[dict] = None
            ) -> A.Function:
    fn = A.Function(name, A.EXEC, _params(params, mut), ret,
                    requires=[A.coerce(r) for r in requires],
                    ensures=[A.coerce(e) for e in ensures],
                    body=body, attrs=attrs)
    return mod.add(_with_span(fn))


def proof_fn(mod: A.Module, name: str, params: Sequence,
             requires: Sequence = (), ensures: Sequence = (),
             body: Optional[Sequence[A.Stmt]] = None,
             ret: Optional[tuple[str, VT.VType]] = None) -> A.Function:
    fn = A.Function(name, A.PROOF, _params(params), ret,
                    requires=[A.coerce(r) for r in requires],
                    ensures=[A.coerce(e) for e in ensures],
                    body=body if body is not None else [])
    return mod.add(_with_span(fn))


# ---------------------------------------------------------------------------
# Reporting helpers
# ---------------------------------------------------------------------------

def count_idioms(mod: A.Module) -> dict[str, int]:
    """Count by(...) idiom invocations in a module (paper reports these)."""
    counts = {A.BY_BIT_VECTOR: 0, A.BY_NONLINEAR: 0,
              A.BY_INTEGER_RING: 0, A.BY_COMPUTE: 0}

    def scan(stmts):
        for s in stmts or ():
            if isinstance(s, A.SAssert) and s.by in counts:
                counts[s.by] += 1
            elif isinstance(s, A.SIf):
                scan(s.then)
                scan(s.els)
            elif isinstance(s, A.SWhile):
                scan(s.body)

    for fn in mod.functions.values():
        if isinstance(fn.body, list):
            scan(fn.body)
    return counts


__all__ = [
    "INT", "NAT", "BOOL", "U8", "U16", "U32", "U64", "USIZE",
    "SeqType", "MapType", "StructType", "EnumType",
    "Module", "Function", "Param", "VcConfig", "ModuleResult",
    "VerificationFailure", "BROAD", "CONSERVATIVE",
    "BY_BIT_VECTOR", "BY_NONLINEAR", "BY_INTEGER_RING", "BY_COMPUTE",
    "var", "old", "lit", "ite", "call", "rec_call", "forall", "exists",
    "let",
    "seq_lit", "seq_empty", "map_empty", "struct", "struct_update", "enum",
    "ext_eq", "and_all", "or_all",
    "let_", "assign", "if_", "while_", "assert_", "assume_", "call_stmt",
    "ret",
    "spec_fn", "exec_fn", "proof_fn",
    "count_idioms",
]
