"""Atomic cells carrying ghost shards (the paper's Figure 6 pattern).

Verus's standard library pairs an ``AtomicU64`` with a ghost shard and an
``invariant on ... is ...`` predicate connecting the physical value to the
shard.  Executable code updates the physical value and the shard *in one
atomic step*, preserving the pairing predicate.

Here :class:`AtomicGhost` provides the same discipline dynamically: every
load/store/CAS runs under the cell's lock, and stores must provide a
callback that advances the ghost state (applies a VerusSync transition)
such that the pairing predicate still holds afterwards.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from .tokens import ProtocolViolation, Token


class AtomicGhost:
    """An atomic integer paired with a ghost token.

    ``pairing``: predicate (physical_value, token) -> bool, the
    ``invariant on`` clause.  Checked after construction and after every
    mutation when ``check`` is True.
    """

    def __init__(self, value: int, token: Optional[Token] = None,
                 pairing: Optional[Callable[[int, Optional[Token]], bool]]
                 = None,
                 check: bool = True):
        self._value = value
        self.token = token
        self.pairing = pairing
        self.check = check
        self._lock = threading.Lock()
        self._assert_pairing()

    def _assert_pairing(self) -> None:
        if self.check and self.pairing is not None:
            if not self.pairing(self._value, self.token):
                raise ProtocolViolation(
                    f"atomic pairing invariant violated: value="
                    f"{self._value!r}, token={self.token!r}")

    def load(self) -> int:
        with self._lock:
            return self._value

    def store(self, value: int,
              ghost: Optional[Callable[[Optional[Token]], Optional[Token]]]
              = None) -> None:
        """Atomically store; `ghost` maps the old token to the new one."""
        with self._lock:
            self._value = value
            if ghost is not None:
                self.token = ghost(self.token)
            self._assert_pairing()

    def fetch_add(self, delta: int,
                  ghost: Optional[Callable] = None) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            if ghost is not None:
                self.token = ghost(self.token)
            self._assert_pairing()
            return old

    def compare_exchange(self, expected: int, new: int,
                         ghost: Optional[Callable] = None
                         ) -> tuple[bool, int]:
        """CAS; ghost callback runs only on success."""
        with self._lock:
            old = self._value
            if old != expected:
                return False, old
            self._value = new
            if ghost is not None:
                self.token = ghost(self.token)
            self._assert_pairing()
            return True, old

    def with_token(self, fn: Callable[[int, Optional[Token]], Any]) -> Any:
        """Run a read-only closure over (value, token) atomically."""
        with self._lock:
            return fn(self._value, self.token)
