"""Resource-algebra metatheory for VerusSync sharding strategies (§3.4).

The paper's soundness argument: a well-formed VerusSync system always
corresponds to a resource algebra (a partial commutative monoid with a
validity predicate).  This module makes the correspondence concrete:

* each sharding strategy induces a shard monoid (:class:`ShardAlgebra`),
* :func:`check_monoid_laws` property-checks associativity, commutativity,
  unit, and validity-monotonicity on sampled shard values (the tests drive
  this with hypothesis),
* :func:`algebra_for` maps strategy names to their algebras, used by the
  test-suite to validate every strategy VerusSync offers.

Shard representation per strategy:

* ``variable``: ``None`` (no shard) or ``("v", value)``; two value shards
  never compose (exclusive ownership).
* ``constant``: ``None`` or ``("c", value)``; composition requires equal
  values (duplicable knowledge).
* ``map``: dict key->value; composition requires disjoint keys.
* ``set``: frozenset; composition requires disjointness.
* ``count``: non-negative int; composition adds.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Invalid:
    """The invalid element ⊥ of a resource algebra."""

    _instance: Optional["Invalid"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "⊥"


BOT = Invalid()


class ShardAlgebra:
    """A resource algebra: unit, composition, validity."""

    def __init__(self, name: str, unit, compose: Callable[[Any, Any], Any],
                 valid: Callable[[Any], bool]):
        self.name = name
        self.unit = unit
        self._compose = compose
        self._valid = valid

    def compose(self, a, b):
        if a is BOT or b is BOT:
            return BOT
        return self._compose(a, b)

    def valid(self, a) -> bool:
        if a is BOT:
            return False
        return self._valid(a)


def _variable_compose(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return BOT  # two exclusive shards never compose


def _constant_compose(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a if a == b else BOT  # shared knowledge must agree


def _map_compose(a: dict, b: dict):
    if set(a) & set(b):
        return BOT
    out = dict(a)
    out.update(b)
    return out


def _set_compose(a: frozenset, b: frozenset):
    if a & b:
        return BOT
    return a | b


def _count_compose(a: int, b: int):
    return a + b


VARIABLE_RA = ShardAlgebra("variable", None, _variable_compose,
                           lambda a: True)
CONSTANT_RA = ShardAlgebra("constant", None, _constant_compose,
                           lambda a: True)
MAP_RA = ShardAlgebra("map", {}, _map_compose, lambda a: True)
SET_RA = ShardAlgebra("set", frozenset(), _set_compose, lambda a: True)
COUNT_RA = ShardAlgebra("count", 0, _count_compose, lambda a: a >= 0)


def algebra_for(strategy: str) -> ShardAlgebra:
    return {"variable": VARIABLE_RA, "constant": CONSTANT_RA,
            "map": MAP_RA, "set": SET_RA, "count": COUNT_RA}[strategy]


def check_monoid_laws(ra: ShardAlgebra, samples: list) -> list[str]:
    """Check RA laws on the given samples; return violations (ideally [])."""
    problems: list[str] = []

    def eq(x, y):
        return (x is BOT and y is BOT) or x == y

    for a in samples:
        if not eq(ra.compose(a, ra.unit), a):
            problems.append(f"unit law fails for {a!r}")
        for b in samples:
            ab = ra.compose(a, b)
            ba = ra.compose(b, a)
            if not eq(ab, ba):
                problems.append(f"commutativity fails for {a!r}, {b!r}")
            # Validity monotonicity: valid(a·b) implies valid(a).
            if ra.valid(ab) and not ra.valid(a):
                problems.append(f"validity not monotone at {a!r}, {b!r}")
            for c in samples:
                abc1 = ra.compose(ab, c)
                abc2 = ra.compose(a, ra.compose(b, c))
                if not eq(abc1, abc2):
                    problems.append(
                        f"associativity fails for {a!r}, {b!r}, {c!r}")
    return problems
