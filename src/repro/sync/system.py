"""VerusSync (§3.4): a transition-system DSL for sharded ghost state.

The developer declares *fields* with sharding strategies, *transitions*
(`init!` / `transition!` / `property!` blocks), and *invariants*.  The
framework then generates the paper's proof obligations:

* every `init!` establishes every invariant,
* every `transition!` preserves every invariant (assuming the enabling
  conditions — `require`, `remove`, `have`),
* every `add` is *fresh* (the shard being created does not already exist —
  the well-formedness condition that makes the sharding a resource algebra),
* every `property!`'s asserts follow from the invariants.

Obligations are ordinary proof functions dispatched through the default
verification pipeline, so "VerusSync is a special case of state-machine
reasoning" holds here exactly as in the paper.

Sharding strategies: ``variable``, ``constant``, ``map``, ``set``,
``count`` (the paper's examples use the first three).  ``option`` and
``storage`` strategies are documented as future work, as in our DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..vc import ast as A
from ..vc import types as VT
from ..vc.errors import ModuleResult
from ..vc.wp import VcConfig, VcGen

VARIABLE = "variable"
CONSTANT = "constant"
MAP = "map"
SET = "set"
COUNT = "count"

_STRATEGIES = {VARIABLE, CONSTANT, MAP, SET, COUNT}


class SyncError(Exception):
    """Malformed VerusSync system declaration."""


class Field:
    def __init__(self, name: str, strategy: str,
                 vtype: Optional[VT.VType] = None,
                 key: Optional[VT.VType] = None,
                 value: Optional[VT.VType] = None):
        if strategy not in _STRATEGIES:
            raise SyncError(f"unknown sharding strategy {strategy!r}")
        self.name = name
        self.strategy = strategy
        if strategy in (VARIABLE, CONSTANT):
            if vtype is None:
                raise SyncError(f"field {name}: variable/constant need vtype")
            self.vtype = vtype
        elif strategy == MAP:
            if key is None or value is None:
                raise SyncError(f"field {name}: map needs key and value")
            self.key = key
            self.value = value
            self.vtype = VT.MapType(key, value)
        elif strategy == SET:
            if key is None:
                raise SyncError(f"field {name}: set needs key (element) type")
            self.key = key
            self.vtype = VT.MapType(key, VT.BOOL)
        elif strategy == COUNT:
            self.vtype = VT.NAT


class _Op:
    def __init__(self, kind: str, field: Optional[str] = None,
                 exprs: Optional[dict] = None):
        self.kind = kind
        self.field = field
        self.exprs = exprs or {}


class Transition:
    """One init!/transition!/property! block, built by method chaining."""

    def __init__(self, system: "SyncSystem", name: str, kind: str,
                 params: Sequence[tuple[str, VT.VType]]):
        self.system = system
        self.name = name
        self.kind = kind  # "init" | "transition" | "property"
        self.params = list(params)
        self.ops: list[_Op] = []

    # -- builder API --------------------------------------------------------

    def require(self, cond) -> "Transition":
        self.ops.append(_Op("require", exprs={"cond": A.coerce(cond)}))
        return self

    def update(self, field: str, value) -> "Transition":
        f = self.system.fields[field]
        if f.strategy == CONSTANT and self.kind != "init":
            raise SyncError(f"constant field {field} cannot be updated")
        if f.strategy not in (VARIABLE, CONSTANT):
            raise SyncError(f"update only applies to variable fields, "
                            f"{field} is {f.strategy}")
        self.ops.append(_Op("update", field, {"value": A.coerce(value)}))
        return self

    def init_field(self, field: str, value) -> "Transition":
        if self.kind != "init":
            raise SyncError("init_field only valid in init! blocks")
        self.ops.append(_Op("init", field, {"value": A.coerce(value)}))
        return self

    def remove(self, field: str, key, value=None) -> "Transition":
        """`remove f -= [key => value]`: consume a shard."""
        f = self.system.fields[field]
        exprs = {"key": A.coerce(key)}
        if value is not None:
            exprs["value"] = A.coerce(value)
        if f.strategy not in (MAP, SET):
            raise SyncError(f"remove applies to map/set fields")
        self.ops.append(_Op("remove", field, exprs))
        return self

    def add(self, field: str, key, value=None) -> "Transition":
        """`add f += [key => value]`: create a shard (must be fresh)."""
        f = self.system.fields[field]
        exprs = {"key": A.coerce(key)}
        if f.strategy == MAP:
            if value is None:
                raise SyncError(f"add to map field {field} needs a value")
            exprs["value"] = A.coerce(value)
        elif f.strategy != SET:
            raise SyncError("add applies to map/set fields")
        self.ops.append(_Op("add", field, exprs))
        return self

    def have(self, field: str, key, value=None) -> "Transition":
        """`have f >= [key => value]`: read a shard without consuming it."""
        exprs = {"key": A.coerce(key)}
        if value is not None:
            exprs["value"] = A.coerce(value)
        self.ops.append(_Op("have", field, exprs))
        return self

    def add_count(self, field: str, n=1) -> "Transition":
        self.ops.append(_Op("add_count", field, {"n": A.coerce(n)}))
        return self

    def remove_count(self, field: str, n=1) -> "Transition":
        self.ops.append(_Op("remove_count", field, {"n": A.coerce(n)}))
        return self

    def assert_(self, cond) -> "Transition":
        if self.kind != "property":
            raise SyncError("assert_ only valid in property! blocks")
        self.ops.append(_Op("assert", exprs={"cond": A.coerce(cond)}))
        return self

    # -- symbolic semantics ---------------------------------------------------

    def symbolic(self, pre_env: dict[str, A.Expr]
                 ) -> tuple[list[A.Expr], dict[str, A.Expr],
                            list[A.Expr], list[A.Expr]]:
        """(enabling, post_state, freshness_obligations, asserts).

        ``pre_env`` maps field names to their pre-state expressions (empty
        for init).  Ops are interpreted in order against a running state.
        """
        state = dict(pre_env)
        enabling: list[A.Expr] = []
        fresh: list[A.Expr] = []
        asserts: list[A.Expr] = []
        for op in self.ops:
            if op.kind == "require":
                enabling.append(op.exprs["cond"])
            elif op.kind in ("update", "init"):
                state[op.field] = op.exprs["value"]
            elif op.kind == "remove":
                cur = state[op.field]
                key = op.exprs["key"]
                enabling.append(cur.contains_key(key))
                if "value" in op.exprs:
                    f = self.system.fields[op.field]
                    if f.strategy == MAP:
                        enabling.append(
                            cur.map_index(key).eq(op.exprs["value"]))
                state[op.field] = cur.remove(key)
            elif op.kind == "add":
                cur = state[op.field]
                key = op.exprs["key"]
                fresh.append(cur.contains_key(key).not_())
                f = self.system.fields[op.field]
                value = (op.exprs["value"] if f.strategy == MAP
                         else A.coerce(True))
                state[op.field] = cur.insert(key, value)
            elif op.kind == "have":
                cur = state[op.field]
                key = op.exprs["key"]
                enabling.append(cur.contains_key(key))
                if "value" in op.exprs:
                    enabling.append(cur.map_index(key).eq(op.exprs["value"]))
            elif op.kind == "add_count":
                state[op.field] = state[op.field] + op.exprs["n"]
            elif op.kind == "remove_count":
                enabling.append(state[op.field] >= op.exprs["n"])
                state[op.field] = state[op.field] - op.exprs["n"]
            elif op.kind == "assert":
                asserts.append(op.exprs["cond"])
            else:
                raise SyncError(f"unknown op {op.kind}")
        return enabling, state, fresh, asserts


class StateView:
    """Lets invariants reference fields: ``sv("tail")`` is an expression."""

    def __init__(self, env: dict[str, A.Expr]):
        self._env = env

    def __call__(self, field: str) -> A.Expr:
        try:
            return self._env[field]
        except KeyError:
            raise SyncError(f"unknown field {field!r}") from None


class SyncSystem:
    """A VerusSync system declaration."""

    def __init__(self, name: str, module: Optional[A.Module] = None):
        self.name = name
        self.fields: dict[str, Field] = {}
        self.transitions: dict[str, Transition] = {}
        self.invariants: list[tuple[str, Callable[[StateView], A.Expr]]] = []
        self.user_module = module  # for spec fns referenced in expressions

    # -- declaration ---------------------------------------------------------

    def field(self, name: str, strategy: str, vtype=None, key=None,
              value=None) -> Field:
        if name in self.fields:
            raise SyncError(f"duplicate field {name}")
        f = Field(name, strategy, vtype, key, value)
        self.fields[name] = f
        return f

    def pre(self, field: str) -> A.Expr:
        """Pre-state expression for use in transition conditions."""
        f = self.fields[field]
        return A.VarE(f"pre!{field}", f.vtype)

    def param(self, name: str, vtype: VT.VType) -> A.Expr:
        return A.VarE(name, vtype)

    def init(self, name: str, params: Sequence = ()) -> Transition:
        return self._add_transition(name, "init", params)

    def transition(self, name: str, params: Sequence = ()) -> Transition:
        return self._add_transition(name, "transition", params)

    def property_(self, name: str, params: Sequence = ()) -> Transition:
        return self._add_transition(name, "property", params)

    def _add_transition(self, name, kind, params) -> Transition:
        if name in self.transitions:
            raise SyncError(f"duplicate transition {name}")
        t = Transition(self, name, kind, params)
        self.transitions[name] = t
        return t

    def invariant(self, name: str,
                  predicate: Callable[[StateView], A.Expr],
                  depends_on: Optional[Sequence[str]] = None) -> None:
        """Declare an inductive invariant.

        ``depends_on`` lists the *other* invariants whose pre-state facts
        this invariant's preservation proof may assume (None = all).
        Narrowing dependencies keeps each generated obligation small — the
        VerusSync analogue of selecting lemma hypotheses.
        """
        self.invariants.append((name, predicate, depends_on))

    # -- proof obligations ------------------------------------------------------

    def obligations_module(self) -> A.Module:
        """Build the module of generated proof functions."""
        mod = A.Module(f"sync.{self.name}")
        if self.user_module is not None:
            mod.import_module(self.user_module)
        pre_env = {name: A.VarE(f"pre!{name}", f.vtype)
                   for name, f in self.fields.items()}
        field_params = [A.Param(f"pre!{name}", f.vtype)
                        for name, f in self.fields.items()]

        by_name = {name: pred for name, pred, _ in self.invariants}

        def pre_facts(sv_pre, name: str, depends) -> list[A.Expr]:
            if depends is None:
                return [pred(sv_pre) for _, pred, _ in self.invariants]
            names = [name] + [d for d in depends if d != name]
            return [by_name[d](sv_pre) for d in names]

        for t in self.transitions.values():
            t_params = [A.Param(n, vt) for n, vt in t.params]
            if t.kind == "init":
                enabling, post, fresh, _ = t.symbolic({})
                missing = set(self.fields) - set(post)
                if missing:
                    raise SyncError(
                        f"init {t.name} leaves fields uninitialized: "
                        f"{sorted(missing)}")
                sv = StateView(post)
                ensures = [pred(sv) for _, pred, _ in self.invariants]
                mod.add(A.Function(
                    f"{t.name}#establishes", A.PROOF, t_params,
                    requires=enabling, ensures=ensures, body=[]))
                continue

            enabling, post, fresh, asserts = t.symbolic(pre_env)
            sv_pre = StateView(pre_env)
            all_pre = [pred(sv_pre) for _, pred, _ in self.invariants]
            if t.kind == "transition":
                sv_post = StateView(post)
                narrowed = any(dep is not None
                               for _, _, dep in self.invariants)
                if narrowed:
                    # one obligation per invariant, with only the declared
                    # dependencies as hypotheses (smaller queries)
                    for name, pred, depends in self.invariants:
                        mod.add(A.Function(
                            f"{t.name}#preserves_{name}", A.PROOF,
                            field_params + t_params,
                            requires=pre_facts(sv_pre, name, depends)
                            + enabling,
                            ensures=[pred(sv_post)], body=[]))
                else:
                    ensures = [pred(sv_post)
                               for _, pred, _ in self.invariants]
                    mod.add(A.Function(
                        f"{t.name}#preserves", A.PROOF,
                        field_params + t_params,
                        requires=all_pre + enabling,
                        ensures=ensures, body=[]))
                if fresh:
                    mod.add(A.Function(
                        f"{t.name}#fresh", A.PROOF,
                        field_params + t_params,
                        requires=all_pre + enabling,
                        ensures=fresh, body=[]))
            else:  # property
                mod.add(A.Function(
                    f"{t.name}#property", A.PROOF,
                    field_params + t_params,
                    requires=all_pre + enabling,
                    ensures=asserts, body=[]))
        return mod

    def check(self, config: Optional[VcConfig] = None) -> ModuleResult:
        """Generate and discharge all VerusSync proof obligations."""
        mod = self.obligations_module()
        return VcGen(mod, config).verify_module()
