"""Runtime ghost tokens for VerusSync systems.

In Verus, a verified VerusSync system yields *tokens* (ghost shards) that
executable code manipulates to prove it follows the protocol; the checks
happen at compile time and the tokens vanish from the binary.

In this reproduction the executable case studies run as ordinary Python,
so the token API enforces the protocol *dynamically*: every transition
application re-checks enabling conditions, consumes the exact shards the
transition removes, mints the shards it adds, and (optionally) re-checks
the system invariants.  Benchmarks toggle ``check_invariants`` to measure
ghost-checking overhead — the runtime analogue of "erased in release".

Token duplication is impossible by construction: consuming a token marks
it invalid, and a map/set key can only ever have one live token (the
freshness obligation proved by :meth:`SyncSystem.check` guarantees the
verified protocol never needs two).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from ..vc.interp import Interp, InterpError
from .system import (CONSTANT, COUNT, MAP, SET, VARIABLE, SyncError,
                     SyncSystem, Transition)


class ProtocolViolation(Exception):
    """Executable code attempted a step the protocol does not allow."""


class Token:
    """A ghost shard. Invalidated when consumed by a transition."""

    __slots__ = ("instance", "field", "key", "value", "valid")

    def __init__(self, instance: "Instance", field: str, key, value):
        self.instance = instance
        self.field = field
        self.key = key
        self.value = value
        self.valid = True

    def __repr__(self) -> str:
        state = "live" if self.valid else "consumed"
        if self.key is None:
            return f"<Token {self.field}={self.value!r} ({state})>"
        return f"<Token {self.field}[{self.key!r}]={self.value!r} ({state})>"


class Instance:
    """A running instance of a VerusSync system (ghost aggregate state).

    The aggregate exists only to *check* executable code; it corresponds
    to the mathematical composition of all live shards.
    """

    def __init__(self, system: SyncSystem, check_invariants: bool = True):
        self.system = system
        self.check_invariants = check_invariants
        self.state: dict[str, Any] = {}
        self._live_tokens: dict[tuple, Token] = {}
        self._lock = threading.Lock()
        self._interp = Interp(module=system.user_module)

    # -- token bookkeeping -----------------------------------------------------

    def _mint(self, field: str, key, value) -> Token:
        tok = Token(self, field, key, value)
        self._live_tokens[(field, key)] = tok
        return tok

    def _consume(self, tok: Token, field: str, key=None) -> Any:
        if not tok.valid:
            raise ProtocolViolation(f"token already consumed: {tok!r}")
        if tok.instance is not self:
            raise ProtocolViolation("token belongs to another instance")
        if tok.field != field:
            raise ProtocolViolation(
                f"wrong token: expected field {field}, got {tok.field}")
        if key is not None and tok.key != key:
            raise ProtocolViolation(
                f"wrong token key: expected {key!r}, got {tok.key!r}")
        tok.valid = False
        self._live_tokens.pop((tok.field, tok.key), None)
        return tok.value

    # -- transition application ---------------------------------------------------

    def apply(self, name: str, tokens: Optional[dict[str, Token]] = None,
              **params) -> dict[str, Token]:
        """Apply a transition atomically.

        ``tokens`` maps field names to the tokens the transition consumes
        (for ``remove``/``update`` ops) or reads (``have``).  Returns the
        newly minted tokens keyed the same way (``"field"`` or
        ``"field[i]"`` style keys are up to the caller — we key by field
        name, with map adds keyed ``field`` as well; multiple adds to one
        field return numbered keys).
        """
        tokens = tokens or {}
        transition = self.system.transitions.get(name)
        if transition is None:
            raise SyncError(f"no transition named {name}")
        if transition.kind == "property":
            raise SyncError("properties are proofs, not runtime steps")
        with self._lock:
            return self._apply_locked(transition, tokens, params)

    def _apply_locked(self, transition: Transition, tokens: dict,
                      params: dict) -> dict[str, Token]:
        env = dict(params)
        for fname, value in self.state.items():
            env[f"pre!{fname}"] = value
        state = dict(self.state)
        minted: dict[str, Token] = {}
        consumed: list[Token] = []

        def ev(expr):
            local_env = dict(env)
            for fname, value in state.items():
                local_env[f"pre!{fname}"] = value
            return self._interp.eval(expr, local_env)

        try:
            for op in transition.ops:
                self._apply_op(transition, op, state, tokens, minted,
                               consumed, ev)
        except (InterpError, ProtocolViolation):
            for tok in consumed:  # roll back token consumption
                tok.valid = True
                self._live_tokens[(tok.field, tok.key)] = tok
            raise
        self.state = state
        if self.check_invariants:
            self._check_invariants()
        return minted

    def _apply_op(self, transition, op, state, tokens, minted, consumed,
                  ev) -> None:
        field = self.system.fields.get(op.field) if op.field else None
        if op.kind == "require":
            if not ev(op.exprs["cond"]):
                raise ProtocolViolation(
                    f"{transition.name}: require failed")
        elif op.kind == "init":
            state[op.field] = ev(op.exprs["value"])
            if field.strategy in (VARIABLE,):
                minted[op.field] = self._mint(op.field, None,
                                              state[op.field])
            elif field.strategy == CONSTANT:
                minted[op.field] = self._mint(op.field, None,
                                              state[op.field])
        elif op.kind == "update":
            tok = tokens.get(op.field)
            if tok is None:
                raise ProtocolViolation(
                    f"{transition.name}: update {op.field} needs its "
                    f"variable token")
            self._consume(tok, op.field)
            consumed.append(tok)
            state[op.field] = ev(op.exprs["value"])
            minted[op.field] = self._mint(op.field, None, state[op.field])
        elif op.kind == "remove":
            key = ev(op.exprs["key"])
            tok = tokens.get(op.field)
            if tok is None:
                raise ProtocolViolation(
                    f"{transition.name}: remove {op.field}[{key!r}] needs "
                    f"its shard token")
            value = self._consume(tok, op.field, key)
            consumed.append(tok)
            cur = state[op.field]
            if key not in cur:
                raise ProtocolViolation(
                    f"{transition.name}: {op.field}[{key!r}] absent")
            if "value" in op.exprs and field.strategy == MAP:
                expected = ev(op.exprs["value"])
                if cur[key] != expected:
                    raise ProtocolViolation(
                        f"{transition.name}: {op.field}[{key!r}] is "
                        f"{cur[key]!r}, transition expects {expected!r}")
            new = dict(cur)
            del new[key]
            state[op.field] = new
        elif op.kind == "add":
            key = ev(op.exprs["key"])
            cur = state[op.field]
            if key in cur:
                raise ProtocolViolation(
                    f"{transition.name}: add {op.field}[{key!r}] not fresh")
            value = (ev(op.exprs["value"]) if field.strategy == MAP
                     else True)
            new = dict(cur)
            new[key] = value
            state[op.field] = new
            mint_key = op.field if op.field not in minted \
                else f"{op.field}#{len(minted)}"
            minted[mint_key] = self._mint(op.field, key, value)
        elif op.kind == "have":
            key = ev(op.exprs["key"])
            tok = tokens.get(op.field)
            if tok is None or not tok.valid or tok.key != key:
                raise ProtocolViolation(
                    f"{transition.name}: have {op.field}[{key!r}] needs a "
                    f"live shard token")
            if "value" in op.exprs:
                expected = ev(op.exprs["value"])
                if tok.value != expected:
                    raise ProtocolViolation(
                        f"{transition.name}: have {op.field}[{key!r}] "
                        f"expected {expected!r}, token holds {tok.value!r}")
        elif op.kind == "add_count":
            n = ev(op.exprs["n"])
            state[op.field] = state[op.field] + n
            minted[op.field] = self._mint(op.field, object(), n)
        elif op.kind == "remove_count":
            n = ev(op.exprs["n"])
            tok = tokens.get(op.field)
            if tok is None or not tok.valid or tok.value < n:
                raise ProtocolViolation(
                    f"{transition.name}: remove_count needs a count token "
                    f"of at least {n}")
            self._consume(tok, op.field, tok.key)
            consumed.append(tok)
            if tok.value > n:  # change
                minted[op.field] = self._mint(op.field, object(),
                                              tok.value - n)
            state[op.field] = state[op.field] - n
        else:
            raise SyncError(f"unknown op {op.kind}")

    # -- invariant checking ----------------------------------------------------------

    def _check_invariants(self) -> None:
        from .system import StateView
        from ..vc import ast as A

        class _ConcreteView:
            def __init__(self, state):
                self.state = state

        # Build expressions against pre! names, then evaluate.
        env = {f"pre!{k}": v for k, v in self.state.items()}
        view = StateView({name: A.VarE(f"pre!{name}", f.vtype)
                          for name, f in self.system.fields.items()})
        for name, pred, _depends in self.system.invariants:
            expr = pred(view)
            try:
                ok = self._interp.eval(expr, env)
            except InterpError:
                continue  # quantified invariants over infinite domains
            if not ok:
                raise ProtocolViolation(
                    f"invariant {name} violated: state={self.state!r}")


def start(system: SyncSystem, init_name: str = "initialize",
          check_invariants: bool = True, **params
          ) -> tuple[Instance, dict[str, Token]]:
    """Run an init! transition: returns the instance and its first tokens."""
    inst = Instance(system, check_invariants)
    transition = system.transitions.get(init_name)
    if transition is None or transition.kind != "init":
        raise SyncError(f"{init_name} is not an init! transition")
    with inst._lock:
        minted = inst._apply_locked(transition, {}, params)
    return inst, minted
