"""VerusSync (§3.4): transition-system DSL, proof obligations, ghost tokens.

* :mod:`~repro.sync.system` — the `fields{}/init!/transition!/property!`
  DSL and the generated inductiveness obligations,
* :mod:`~repro.sync.tokens` — runtime ghost shards for executable code,
* :mod:`~repro.sync.atomic` — atomics paired with ghost state (Figure 6),
* :mod:`~repro.sync.ra` — the resource-algebra metatheory behind sharding.
"""

from .system import (CONSTANT, COUNT, MAP, SET, VARIABLE, StateView,
                     SyncError, SyncSystem, Transition)
from .tokens import Instance, ProtocolViolation, Token, start
from .atomic import AtomicGhost

__all__ = [
    "SyncSystem", "Transition", "StateView", "SyncError",
    "VARIABLE", "CONSTANT", "MAP", "SET", "COUNT",
    "Instance", "Token", "ProtocolViolation", "start", "AtomicGhost",
]
