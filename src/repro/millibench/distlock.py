"""§4.1 millibenchmark: the distributed lock, proved two ways.

A lock travels between nodes by epoch-stamped ``transfer`` messages; a
node acquiring the lock at epoch ``e`` announces ``locked(e, n)``.  The
safety property is mutual exclusion per epoch: ``locked(e, n1) ∧
locked(e, n2) → n1 = n2``.

Two proofs, mirroring the paper:

* **Default mode** (:func:`build_default_module`): epochs are integers
  (``ep`` is a counter; freshness is ``+1``), and the inductive invariant
  is stated directly — the analogue of the ~25-line Dafny-style proof.
* **EPR mode** (:func:`build_epr_module`): epochs are abstracted into a
  totally ordered uninterpreted sort.  The price is the boilerplate of
  spelling out the order axioms and freshness hypotheses (the paper's
  "~100 lines of straightforward boilerplate"); the payoff is a fully
  automatic, decidable invariant check.

Both modules prove: init establishes the invariant, ``grant`` and
``accept`` preserve it, and mutual exclusion follows from it.
"""

from __future__ import annotations

from ..lang import *

State = StructType("DLState")
Node = StructType("DLNode")
Epoch = StructType("DLEpoch")


def _default_relations(mod: Module):
    mod.add(Function("holds", "spec",
                     [Param("s", State), Param("n", Node)],
                     ("result", BOOL)))
    mod.add(Function("transfer", "spec",
                     [Param("s", State), Param("e", INT), Param("n", Node)],
                     ("result", BOOL)))
    mod.add(Function("locked", "spec",
                     [Param("s", State), Param("e", INT), Param("n", Node)],
                     ("result", BOOL)))
    mod.add(Function("ep", "spec", [Param("s", State)], ("result", INT)))


def build_default_module() -> Module:
    """Default-mode proof: integer epochs, explicit inductive invariant."""
    mod = Module("distlock_default")
    _default_relations(mod)

    def holds(s, n):
        return call(mod, "holds", s, n)

    def transfer(s, e, n):
        return call(mod, "transfer", s, e, n)

    def locked(s, e, n):
        return call(mod, "locked", s, e, n)

    def ep(s):
        return call(mod, "ep", s)

    def inv(s):
        """The inductive invariant (the paper's ~25 proof lines)."""
        n1, n2 = ("in1", Node), ("in2", Node)
        e1, e2 = ("ie1", INT), ("ie2", INT)
        vn1, vn2 = var("in1", Node), var("in2", Node)
        ve1, ve2 = var("ie1", INT), var("ie2", INT)
        return and_all(
            # A: at most one holder
            forall([n1, n2], and_all(holds(s, vn1), holds(s, vn2)).implies(
                vn1.eq(vn2))),
            # B: a holder excludes current-epoch transfers
            forall([n1, n2],
                   and_all(holds(s, vn1),
                           transfer(s, ep(s), vn2)).implies(lit(False))),
            # C: at most one transfer per epoch
            forall([e1, n1, n2],
                   and_all(transfer(s, ve1, vn1),
                           transfer(s, ve1, vn2)).implies(vn1.eq(vn2))),
            # D: transfers never exceed the current epoch
            forall([e1, n1],
                   transfer(s, ve1, vn1).implies(ve1 <= ep(s))),
            # E: at most one locked announcement per epoch
            forall([e1, n1, n2],
                   and_all(locked(s, ve1, vn1),
                           locked(s, ve1, vn2)).implies(vn1.eq(vn2))),
            # H: a locked epoch has no in-flight transfer
            forall([e1, n1, n2],
                   and_all(locked(s, ve1, vn1),
                           transfer(s, ve1, vn2)).implies(lit(False))),
            # I: locked epochs never exceed the current epoch
            forall([e1, n1],
                   locked(s, ve1, vn1).implies(ve1 <= ep(s))),
        )

    s, s2 = var("s", State), var("s2", State)
    n1, n2, n = var("n1", Node), var("n2", Node), var("n", Node)
    qe, qn, qm = ("qe", INT), ("qn", Node), ("qm", Node)
    ve, vn, vm = var("qe", INT), var("qn", Node), var("qm", Node)

    # init: first holder, no messages, epoch 0
    init_def = and_all(
        exists([("first", Node)],
               forall([qn],
                      holds(s, vn).eq(vn.eq(var("first", Node))))),
        forall([qe, qn], transfer(s, ve, vn).not_()),
        forall([qe, qn], locked(s, ve, vn).not_()),
        ep(s).eq(0),
    )
    proof_fn(mod, "init_establishes", [("s", State)],
             requires=[init_def], ensures=[inv(s)], body=[])

    # grant(n1 -> n2): release, send transfer at ep+1, bump epoch
    grant_def = and_all(
        holds(s, n1),
        forall([qn], holds(s2, vn).not_()),
        ep(s2).eq(ep(s) + 1),
        forall([qe, qn],
               transfer(s2, ve, vn).eq(
                   or_all(transfer(s, ve, vn),
                          and_all(ve.eq(ep(s) + 1), vn.eq(n2))))),
        forall([qe, qn], locked(s2, ve, vn).eq(locked(s, ve, vn))),
    )
    proof_fn(mod, "grant_preserves",
             [("s", State), ("s2", State), ("n1", Node), ("n2", Node)],
             requires=[inv(s), grant_def], ensures=[inv(s2)], body=[])

    # accept(n): consume the current-epoch transfer, hold, announce locked
    accept_def = and_all(
        transfer(s, ep(s), n),
        ep(s2).eq(ep(s)),
        forall([qn], holds(s2, vn).eq(vn.eq(n))),
        forall([qe, qn],
               transfer(s2, ve, vn).eq(
                   and_all(transfer(s, ve, vn),
                           or_all(ve.ne(ep(s)), vn.ne(n))))),
        forall([qe, qn],
               locked(s2, ve, vn).eq(
                   or_all(locked(s, ve, vn),
                          and_all(ve.eq(ep(s)), vn.eq(n))))),
    )
    proof_fn(mod, "accept_preserves",
             [("s", State), ("s2", State), ("n", Node)],
             requires=[inv(s), accept_def], ensures=[inv(s2)], body=[])

    # Mutual exclusion follows from the invariant.
    proof_fn(mod, "mutual_exclusion",
             [("s", State), ("e", INT), ("n1", Node), ("n2", Node)],
             requires=[inv(s),
                       call(mod, "locked", s, var("e", INT), n1),
                       call(mod, "locked", s, var("e", INT), n2)],
             ensures=[n1.eq(n2)], body=[])
    return mod


def build_epr_module() -> Module:
    """EPR-mode proof: epochs abstracted to a totally ordered sort.

    Everything below the transitions is boilerplate: the order axioms and
    the freshness hypotheses that integer arithmetic gave us for free.
    """
    mod = Module("distlock_epr", epr_mode=True)
    mod.add(Function("holds", "spec",
                     [Param("s", State), Param("n", Node)],
                     ("result", BOOL)))
    mod.add(Function("transfer", "spec",
                     [Param("s", State), Param("e", Epoch),
                      Param("n", Node)], ("result", BOOL)))
    mod.add(Function("locked", "spec",
                     [Param("s", State), Param("e", Epoch),
                      Param("n", Node)], ("result", BOOL)))
    mod.add(Function("lte", "spec",
                     [Param("a", Epoch), Param("b", Epoch)],
                     ("result", BOOL)))
    mod.add(Function("cur", "spec",
                     [Param("s", State), Param("e", Epoch)],
                     ("result", BOOL)))  # cur(s,e): e is the current epoch

    def holds(s, n):
        return call(mod, "holds", s, n)

    def transfer(s, e, n):
        return call(mod, "transfer", s, e, n)

    def locked(s, e, n):
        return call(mod, "locked", s, e, n)

    def lte(a, b):
        return call(mod, "lte", a, b)

    def cur(s, e):
        return call(mod, "cur", s, e)

    # ---- boilerplate: total order on the abstract Epoch sort -------------
    qa, qb, qc = ("oa", Epoch), ("ob", Epoch), ("oc", Epoch)
    va, vb, vc = var("oa", Epoch), var("ob", Epoch), var("oc", Epoch)
    order_axioms = [
        forall([qa], lte(va, va)),
        forall([qa, qb, qc],
               and_all(lte(va, vb), lte(vb, vc)).implies(lte(va, vc))),
        forall([qa, qb],
               and_all(lte(va, vb), lte(vb, va)).implies(va.eq(vb))),
        forall([qa, qb], or_all(lte(va, vb), lte(vb, va))),
    ]
    # current epoch exists uniquely per state (boilerplate stand-in for the
    # integer counter)
    s_b = ("bs", State)
    vs = var("bs", State)
    cur_axioms = [
        forall([s_b, qa, qb],
               and_all(cur(vs, va), cur(vs, vb)).implies(va.eq(vb))),
    ]
    boilerplate = order_axioms + cur_axioms

    def lt(a, b):
        return and_all(lte(a, b), a.ne(b))

    def inv(s):
        n1, n2 = ("in1", Node), ("in2", Node)
        e1 = ("ie1", Epoch)
        vn1, vn2 = var("in1", Node), var("in2", Node)
        ve1 = var("ie1", Epoch)
        ecur = ("iec", Epoch)
        vec = var("iec", Epoch)
        return and_all(
            forall([n1, n2], and_all(holds(s, vn1), holds(s, vn2)).implies(
                vn1.eq(vn2))),
            forall([n1, ecur, n2],
                   and_all(holds(s, vn1), cur(s, vec),
                           transfer(s, vec, vn2)).implies(lit(False))),
            forall([e1, n1, n2],
                   and_all(transfer(s, ve1, vn1),
                           transfer(s, ve1, vn2)).implies(vn1.eq(vn2))),
            forall([e1, n1, ecur],
                   and_all(transfer(s, ve1, vn1), cur(s, vec)).implies(
                       lte(ve1, vec))),
            forall([e1, n1, n2],
                   and_all(locked(s, ve1, vn1),
                           locked(s, ve1, vn2)).implies(vn1.eq(vn2))),
            forall([e1, n1, n2],
                   and_all(locked(s, ve1, vn1),
                           transfer(s, ve1, vn2)).implies(lit(False))),
            forall([e1, n1, ecur],
                   and_all(locked(s, ve1, vn1), cur(s, vec)).implies(
                       lte(ve1, vec))),
        )

    s, s2 = var("s", State), var("s2", State)
    n1, n2, n = var("n1", Node), var("n2", Node), var("n", Node)
    e_new, e_old = var("e_new", Epoch), var("e_old", Epoch)
    qe, qn = ("qe", Epoch), ("qn", Node)
    ve, vn = var("qe", Epoch), var("qn", Node)

    grant_def = and_all(
        holds(s, n1),
        cur(s, e_old), cur(s2, e_new),
        lt(e_old, e_new),
        # freshness boilerplate: the new epoch strictly dominates all
        # transfer/locked epochs (integers got this from +1)
        forall([qe, qn], transfer(s, ve, vn).implies(lt(ve, e_new))),
        forall([qe, qn], locked(s, ve, vn).implies(lt(ve, e_new))),
        forall([qn], holds(s2, vn).not_()),
        forall([qe, qn],
               transfer(s2, ve, vn).eq(
                   or_all(transfer(s, ve, vn),
                          and_all(ve.eq(e_new), vn.eq(n2))))),
        forall([qe, qn], locked(s2, ve, vn).eq(locked(s, ve, vn))),
    )
    proof_fn(mod, "grant_preserves",
             [("s", State), ("s2", State), ("n1", Node), ("n2", Node),
              ("e_old", Epoch), ("e_new", Epoch)],
             requires=boilerplate + [inv(s), grant_def],
             ensures=[inv(s2)], body=[])

    accept_def = and_all(
        cur(s, e_old), cur(s2, e_old),
        transfer(s, e_old, n),
        forall([qn], holds(s2, vn).eq(vn.eq(n))),
        forall([qe, qn],
               transfer(s2, ve, vn).eq(
                   and_all(transfer(s, ve, vn),
                           or_all(ve.ne(e_old), vn.ne(n))))),
        forall([qe, qn],
               locked(s2, ve, vn).eq(
                   or_all(locked(s, ve, vn),
                          and_all(ve.eq(e_old), vn.eq(n))))),
    )
    proof_fn(mod, "accept_preserves",
             [("s", State), ("s2", State), ("n", Node), ("e_old", Epoch)],
             requires=boilerplate + [inv(s), accept_def],
             ensures=[inv(s2)], body=[])

    proof_fn(mod, "mutual_exclusion",
             [("s", State), ("e", Epoch), ("n1", Node), ("n2", Node)],
             requires=boilerplate + [
                 inv(s),
                 call(mod, "locked", s, var("e", Epoch), n1),
                 call(mod, "locked", s, var("e", Epoch), n2)],
             ensures=[n1.eq(n2)], body=[])
    return mod
