"""§4.1 millibenchmark programs: lists, memory reasoning, distributed lock."""
