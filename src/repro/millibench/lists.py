"""§4.1 millibenchmarks: singly/doubly linked lists and memory reasoning.

The paper's list benchmarks verify that a linked list implements an
abstract sequence.  Our verified language is ownership-functional (like
Verus-on-Rust), so the list is a struct whose contents view as a
mathematical ``Seq``; the verified API matches the paper's: push at the
head, pop at the tail, indexing, and iteration — the doubly linked variant
adds pushing/popping at both ends.

The same module builders run through every baseline pipeline.  Heap
pipelines route each list variable through ``read``/``write`` heap
functions with frame axioms, which is where the Figure 7 cost differences
come from.
"""

from __future__ import annotations

from ..lang import *

U64_MAX = (1 << 64) - 1
SeqU = SeqType(U64)


def build_singly_linked_module() -> Module:
    """Singly linked list verified against its Seq view."""
    mod = Module("singly_linked_list")
    List = StructType("SList").declare([("cells", SeqU)])
    mod.datatype(List)

    l = var("l", List)
    v = var("v", U64)
    out = var("out", List)

    # view: the abstract sequence
    spec_fn(mod, "view", [("l", List)], SeqU, body=l.field("cells"))

    # push at the head
    exec_fn(mod, "push_head", [("l", List), ("v", U64)], ret=("out", List),
            ensures=[
                ext_eq(call(mod, "view", out),
                       seq_lit(U64, v).concat(call(mod, "view", l))),
                call(mod, "view", out).length().eq(
                    call(mod, "view", l).length() + 1),
            ],
            body=[
                ret(struct(List,
                           cells=seq_lit(U64, v).concat(l.field("cells")))),
            ])

    # pop at the tail
    PopOut = StructType("SListPop").declare([("value", U64),
                                             ("rest", List)])
    mod.datatype(PopOut)
    exec_fn(mod, "pop_tail", [("l", List)], ret=("out", PopOut),
            requires=[call(mod, "view", l).length() > 0],
            ensures=[
                var("out", PopOut).field("value").eq(
                    call(mod, "view", l).index(
                        call(mod, "view", l).length() - 1)),
                ext_eq(call(mod, "view",
                            var("out", PopOut).field("rest")),
                       call(mod, "view", l).take(
                           call(mod, "view", l).length() - 1)),
            ],
            body=[
                let_("n", l.field("cells").length()),
                let_("last", l.field("cells").index(var("n", INT) - 1)),
                let_("rest", l.field("cells").take(var("n", INT) - 1)),
                ret(struct(PopOut, value=var("last", U64),
                           rest=struct(List, cells=var("rest", SeqU)))),
            ])

    # indexing
    i = var("i", U64)
    exec_fn(mod, "index", [("l", List), ("i", U64)], ret=("r", U64),
            requires=[i < call(mod, "view", l).length()],
            ensures=[var("r", U64).eq(call(mod, "view", l).index(i))],
            body=[ret(l.field("cells").index(i))])

    # iteration: sum of elements (walks the list with a loop)
    acc = var("acc", U64)
    exec_fn(mod, "iter_count_below",
            [("l", List), ("bound", U64)], ret=("r", U64),
            requires=[call(mod, "view", l).length() <= lit(U64_MAX)],
            ensures=[var("r", U64) <= call(mod, "view", l).length()],
            body=[
                let_("i", lit(0, INT)),
                let_("acc", lit(0, U64)),
                while_(var("i", INT) < l.field("cells").length(),
                       invariants=[
                           lit(0) <= var("i", INT),
                           var("i", INT) <= l.field("cells").length(),
                           acc <= var("i", INT),
                       ],
                       body=[
                           if_(l.field("cells").index(var("i", INT))
                               < var("bound", U64),
                               [assign("acc", acc + 1)]),
                           assign("i", var("i", INT) + 1),
                       ],
                       decreases=l.field("cells").length() - var("i", INT)),
                ret(acc),
            ])
    return mod


def build_doubly_linked_module() -> Module:
    """Doubly linked list: both-end pushes/pops + iteration.

    Marked ``uses_cyclic`` — the real structure needs cyclic pointers
    (unsafe Rust in the paper), which Prusti cannot express.
    """
    mod = Module("doubly_linked_list", attrs={"uses_cyclic": True})
    List = StructType("DList").declare([("cells", SeqU)])
    mod.datatype(List)

    l = var("l", List)
    v = var("v", U64)
    out = var("out", List)

    spec_fn(mod, "dview", [("l", List)], SeqU, body=l.field("cells"))

    exec_fn(mod, "push_front", [("l", List), ("v", U64)],
            ret=("out", List),
            ensures=[
                ext_eq(call(mod, "dview", out),
                       seq_lit(U64, v).concat(call(mod, "dview", l))),
            ],
            body=[ret(struct(List,
                             cells=seq_lit(U64, v).concat(
                                 l.field("cells"))))])

    exec_fn(mod, "push_back", [("l", List), ("v", U64)],
            ret=("out", List),
            ensures=[
                ext_eq(call(mod, "dview", out),
                       call(mod, "dview", l).push(v)),
                call(mod, "dview", out).length().eq(
                    call(mod, "dview", l).length() + 1),
                call(mod, "dview", out).index(
                    call(mod, "dview", l).length()).eq(v),
            ],
            body=[ret(struct(List, cells=l.field("cells").push(v)))])

    PopF = StructType("DListPopF").declare([("value", U64), ("rest", List)])
    mod.datatype(PopF)
    exec_fn(mod, "pop_front", [("l", List)], ret=("out", PopF),
            requires=[call(mod, "dview", l).length() > 0],
            ensures=[
                var("out", PopF).field("value").eq(
                    call(mod, "dview", l).index(0)),
                ext_eq(call(mod, "dview", var("out", PopF).field("rest")),
                       call(mod, "dview", l).skip(1)),
            ],
            body=[
                ret(struct(PopF,
                           value=l.field("cells").index(0),
                           rest=struct(List,
                                       cells=l.field("cells").skip(1)))),
            ])

    PopB = StructType("DListPopB").declare([("value", U64), ("rest", List)])
    mod.datatype(PopB)
    exec_fn(mod, "pop_back", [("l", List)], ret=("out", PopB),
            requires=[call(mod, "dview", l).length() > 0],
            ensures=[
                var("out", PopB).field("value").eq(
                    call(mod, "dview", l).index(
                        call(mod, "dview", l).length() - 1)),
                ext_eq(call(mod, "dview", var("out", PopB).field("rest")),
                       call(mod, "dview", l).take(
                           call(mod, "dview", l).length() - 1)),
            ],
            body=[
                let_("n", l.field("cells").length()),
                ret(struct(PopB,
                           value=l.field("cells").index(var("n", INT) - 1),
                           rest=struct(List,
                                       cells=l.field("cells").take(
                                           var("n", INT) - 1)))),
            ])

    # Iterate both directions: reverse copy verified element-wise.
    exec_fn(mod, "reverse", [("l", List)], ret=("out", List),
            ensures=[
                call(mod, "dview", out).length().eq(
                    call(mod, "dview", l).length()),
                forall([("k", INT)],
                       and_all(lit(0) <= var("k", INT),
                               var("k", INT) < call(mod, "dview", l)
                               .length()).implies(
                           call(mod, "dview", out).index(var("k", INT)).eq(
                               call(mod, "dview", l).index(
                                   call(mod, "dview", l).length() - 1
                                   - var("k", INT))))),
            ],
            body=[
                let_("i", lit(0, INT)),
                let_("acc", seq_empty(U64)),
                while_(var("i", INT) < l.field("cells").length(),
                       invariants=[
                           lit(0) <= var("i", INT),
                           var("i", INT) <= l.field("cells").length(),
                           var("acc", SeqU).length().eq(var("i", INT)),
                           forall([("k", INT)],
                                  and_all(lit(0) <= var("k", INT),
                                          var("k", INT) < var("i", INT))
                                  .implies(
                                      var("acc", SeqU).index(var("k", INT))
                                      .eq(l.field("cells").index(
                                          l.field("cells").length() - 1
                                          - var("k", INT))))),
                       ],
                       body=[
                           assign("acc",
                                  var("acc", SeqU).push(
                                      l.field("cells").index(
                                          l.field("cells").length() - 1
                                          - var("i", INT)))),
                           assign("i", var("i", INT) + 1),
                       ],
                       decreases=l.field("cells").length() - var("i", INT)),
                ret(struct(List, cells=var("acc", SeqU))),
            ])
    return mod


def build_memory_reasoning_module(pushes: int) -> Module:
    """Figure 7b: interleaved updates to four lists, then assertions.

    The function pushes ``pushes`` values onto each of four singly linked
    lists round-robin, then asserts facts about each list's contents.  A
    value encoding discharges the asserts directly; a heap encoding must
    prove non-interference through 4×``pushes`` writes via frame axioms.
    """
    mod = Module(f"memory_reasoning_{pushes}")
    List = StructType("SList").declare([("cells", SeqU)])
    mod.datatype(List)
    spec_fn(mod, "mview", [("l", List)], SeqU,
            body=var("l", List).field("cells"))

    params = [(f"l{k}", List) for k in range(4)]
    body = []
    for k in range(4):
        body.append(let_(f"x{k}", var(f"l{k}", List)))
    for i in range(pushes):
        for k in range(4):
            cur = var(f"x{k}", List)
            body.append(assign(
                f"x{k}",
                struct(List,
                       cells=cur.field("cells").push(
                           lit(4 * i + k, U64)))))
    # Assert basic facts about every list's elements.
    checks = []
    for k in range(4):
        final = var(f"x{k}", List)
        init = var(f"l{k}", List)
        checks.append(assert_(
            final.field("cells").length().eq(
                init.field("cells").length() + pushes),
            label=f"len of list {k}"))
        checks.append(assert_(
            final.field("cells").index(
                init.field("cells").length()).eq(lit(k, U64)),
            label=f"first pushed element of list {k}"))
    body.extend(checks)
    exec_fn(mod, "update_four_lists", params, body=body)
    return mod
