"""The tiered proof cache: memory → disk → networked replicas.

:class:`TieredProofCache` is drop-in compatible with the flat
:class:`~repro.cache.store.ProofCache` the scheduler has always used —
same ``lookup``/``store``/``snapshot`` surface, same ``root`` attribute
(the delta engine keys off it) — but layers the lookup path:

1. **Memory**: an LRU dict under a byte budget.  Free hits for the hot
   working set; promoted into on every lower-tier hit.
2. **Disk**: the existing atomic content-addressed store, unchanged.
3. **Network**: a :class:`~repro.cache.replica.CacheReplica` reached
   through a :class:`~repro.cache.replica.ReplicaClient` — deadline per
   request, retry ladder, and a per-replica circuit breaker so a dead
   replica costs a few timeouts and then *nothing*.

Every tier boundary re-verifies the entry before trusting it: memory
entries are structurally revalidated, disk entries pass the store's
digest/status checks, and network entries must additionally match their
``sum`` content checksum.  Anything that fails is quarantined — counted,
dropped, treated as a miss — and never promoted upward, so a corrupt
replica can cost latency but can never change a verdict.

Degradation is the design center, not an afterthought: a breaker-open
(or absent, or fully partitioned) network tier makes lookups fall
through to local tiers and queues stores for a later flush, which is
*exactly* ``REPRO_CACHE_DIR``-only behavior.  Verdicts are therefore
byte-identical whether the replica set is healthy, flaky, or gone.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from .breaker import CircuitBreaker
from .replica import (DEFAULT_RETRIES, DEFAULT_TIMEOUT, ReplicaClient,
                      entry_is_sound, seal_entry, unseal_entry)
from .store import (ProofCache, entry_nbytes, make_entry, validate_entry)

DEFAULT_TIERS = "mem,disk"
DEFAULT_MEM_BUDGET = 4 * 1024 * 1024     # bytes of entry JSON in memory
PENDING_LIMIT = 512                      # queued stores while degraded

_KNOWN_TIERS = ("mem", "disk", "net")


def parse_tiers(spec: Optional[str]) -> Tuple[str, ...]:
    """Normalize a ``"mem,disk,net"`` spec; disk is always present."""
    names = []
    for raw in (spec or DEFAULT_TIERS).replace(";", ",").split(","):
        name = raw.strip().lower()
        if not name:
            continue
        if name not in _KNOWN_TIERS:
            raise ValueError(f"unknown cache tier {name!r} "
                             f"(expected one of {_KNOWN_TIERS})")
        if name not in names:
            names.append(name)
    if "disk" not in names:
        names.insert(0, "disk")
    return tuple(n for n in _KNOWN_TIERS if n in names)


class TieredProofCache:
    """ProofCache-compatible tiered lookup/store with fault tolerance."""

    def __init__(self, root: str, tiers: Optional[str] = None,
                 mem_budget: Optional[int] = None,
                 network=None, replica_name: str = "cache0",
                 client_name: str = "cache-client",
                 net_timeout: Optional[float] = None,
                 net_retries: int = DEFAULT_RETRIES,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 5.0):
        self.tiers = parse_tiers(tiers)
        self.disk = ProofCache(root)
        self.root = self.disk.root
        budget = DEFAULT_MEM_BUDGET if mem_budget is None else int(mem_budget)
        self.mem_budget = budget if "mem" in self.tiers else 0
        self._mem: OrderedDict = OrderedDict()
        self._mem_bytes = 0
        self.net_timeout = (DEFAULT_TIMEOUT if net_timeout is None
                            else float(net_timeout))
        self.net_retries = net_retries
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown)
        self.client: Optional[ReplicaClient] = None
        self._pending: list = []
        if "net" in self.tiers and network is not None:
            self.attach_network(network, replica_name, client_name)
        # Aggregate counters (the surface the scheduler diffs) ...
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # ... and the per-tier breakdown behind them.
        self.mem_hits = 0
        self.disk_hits = 0
        self.net_hits = 0
        self.net_timeouts = 0
        self.net_retries_used = 0
        self.quarantined = 0

    def attach_network(self, network, replica_name: str,
                       client_name: str) -> None:
        """Wire (or rewire) the network tier onto a live fabric."""
        if "net" not in self.tiers:
            self.tiers = parse_tiers(",".join(self.tiers) + ",net")
        self.client = ReplicaClient(network, replica_name, client_name,
                                    timeout=self.net_timeout,
                                    retries=self.net_retries)

    # ------------------------------------------------------------ mem tier

    def _mem_get(self, digest: str) -> Optional[dict]:
        hit = self._mem.get(digest)
        if hit is None:
            return None
        self._mem.move_to_end(digest)
        return hit[0]

    def _mem_drop(self, digest: str) -> None:
        hit = self._mem.pop(digest, None)
        if hit is not None:
            self._mem_bytes -= hit[1]

    def _mem_put(self, digest: str, entry: dict) -> None:
        if self.mem_budget <= 0:
            return
        self._mem_drop(digest)
        nbytes = entry_nbytes(entry)
        if nbytes > self.mem_budget:
            return
        self._mem[digest] = (entry, nbytes)
        self._mem_bytes += nbytes
        while self._mem_bytes > self.mem_budget and self._mem:
            _, (_, evicted) = self._mem.popitem(last=False)
            self._mem_bytes -= evicted

    # ------------------------------------------------------------ net tier

    def _net_call(self, op: str, **fields) -> Optional[dict]:
        """One breaker-guarded client call; None when degraded/failed."""
        client = self.client
        if client is None or not self.breaker.allow():
            return None
        timeouts0 = client.timeouts
        retried0 = client.retried
        reply = client.call(op, **fields)
        self.net_timeouts += client.timeouts - timeouts0
        self.net_retries_used += client.retried - retried0
        if reply is None:
            self.breaker.record_failure()
            return None
        if self.breaker.record_success():
            self._flush_pending()
        return reply

    def _net_lookup(self, digest: str) -> Optional[dict]:
        reply = self._net_call("get", digest=digest)
        if reply is None:
            return None
        entry = reply.get("entry")
        if entry is None:
            return None                     # clean miss on the replica
        if not isinstance(entry, dict) or not entry_is_sound(entry, digest):
            # Tampered or torn payload: quarantined, treated as a miss,
            # never promoted into the local tiers.
            self.quarantined += 1
            self.corrupt += 1
            return None
        return unseal_entry(entry)

    def _net_store(self, sealed: dict) -> None:
        if self.client is None:
            return
        if not self.breaker.allow():
            self._queue_pending(sealed)
            return
        client = self.client
        timeouts0 = client.timeouts
        retried0 = client.retried
        reply = client.call("put", entry=sealed)
        self.net_timeouts += client.timeouts - timeouts0
        self.net_retries_used += client.retried - retried0
        if reply is None:
            self.breaker.record_failure()
            self._queue_pending(sealed)
            return
        if self.breaker.record_success():
            self._flush_pending()

    def _queue_pending(self, sealed: dict) -> None:
        """Remember a store the replica missed; bounded, oldest dropped
        (anti-entropy repairs whatever the queue sheds)."""
        self._pending.append(sealed)
        if len(self._pending) > PENDING_LIMIT:
            del self._pending[:len(self._pending) - PENDING_LIMIT]

    def _flush_pending(self) -> int:
        """Replay queued stores after the breaker closes; count flushed."""
        flushed = 0
        while self._pending:
            sealed = self._pending[0]
            if self.client is None or not self.breaker.allow():
                break
            reply = self.client.call("put", entry=sealed)
            if reply is None:
                self.breaker.record_failure()
                break
            self.breaker.record_success()
            self._pending.pop(0)
            flushed += 1
        return flushed

    # ------------------------------------------------------- cache surface

    def lookup(self, digest: str) -> Optional[dict]:
        """First validated hit walking mem → disk → net; else a miss."""
        entry = self._mem_get(digest)
        if entry is not None:
            if validate_entry(entry, digest):
                self.mem_hits += 1
                self.hits += 1
                return entry
            # A memory entry that stopped validating (in-process
            # tampering) is quarantined and the walk falls through.
            self._mem_drop(digest)
            self.quarantined += 1
            self.corrupt += 1
        corrupt0 = self.disk.corrupt
        entry = self.disk.lookup(digest)
        disk_corrupt = self.disk.corrupt - corrupt0
        self.corrupt += disk_corrupt
        self.quarantined += disk_corrupt
        if entry is not None:
            self.disk_hits += 1
            self.hits += 1
            self._mem_put(digest, entry)
            return entry
        entry = self._net_lookup(digest)
        if entry is not None:
            self.net_hits += 1
            self.hits += 1
            self.disk.store_entry(entry)     # promote for next time
            self._mem_put(digest, entry)
            return entry
        self.misses += 1
        return None

    def store(self, digest: str, status: str, stats: Optional[dict] = None,
              query_bytes: int = 0, label: str = "",
              diag: Optional[dict] = None,
              kind: Optional[str] = None) -> None:
        """Write through every tier (network best-effort, queued when
        degraded)."""
        entry = make_entry(digest, status, stats, query_bytes, label,
                           diag, kind)
        if entry is None:
            return
        if self.disk.store_entry(entry):
            self.stores += 1
        self._mem_put(digest, entry)
        if self.client is not None:
            self._net_store(seal_entry(entry))

    def flush(self) -> int:
        """Opportunistically replay queued network stores."""
        return self._flush_pending()

    def close(self) -> None:
        self._flush_pending()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def breaker_trips(self) -> int:
        return self.breaker.trips

    @property
    def pending_stores(self) -> int:
        return len(self._pending)

    def tier_snapshot(self) -> dict:
        """Per-tier counters, keyed exactly like the ``Stats`` attrs the
        scheduler merges them into."""
        return {"mem_hits": self.mem_hits,
                "disk_hits": self.disk_hits,
                "net_hits": self.net_hits,
                "net_timeouts": self.net_timeouts,
                "net_retries": self.net_retries_used,
                "breaker_trips": self.breaker.trips,
                "quarantined": self.quarantined}

    def snapshot(self) -> dict:
        snap = {"cache_hits": self.hits, "cache_misses": self.misses,
                "cache_stores": self.stores, "cache_corrupt": self.corrupt}
        snap.update(self.tier_snapshot())
        return snap

    def __repr__(self) -> str:
        tiers = ",".join(self.tiers)
        return (f"<TieredProofCache [{tiers}] {self.root}: "
                f"{self.hits} hits ({self.mem_hits}m/{self.disk_hits}d/"
                f"{self.net_hits}n), {self.misses} misses, "
                f"breaker={self.breaker.state}>")


def cache_from_env():
    """The cache the environment asks for: tiered when
    ``$REPRO_CACHE_TIERS`` is set, the flat disk store otherwise, None
    without a cache directory.  (The network tier starts unattached —
    inert, indistinguishable from absent — until a host like the daemon
    wires a fabric in via :meth:`TieredProofCache.attach_network`.)"""
    from ..api import VerifyConfig
    cfg = VerifyConfig.from_env()
    if not cfg.cache_dir:
        return None
    if cfg.cache_tiers:
        return TieredProofCache(cfg.cache_dir, tiers=cfg.cache_tiers,
                                mem_budget=cfg.cache_mem_budget,
                                net_timeout=cfg.cache_net_timeout)
    return ProofCache(cfg.cache_dir)
