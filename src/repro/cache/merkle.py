"""Merkle commitment over a replica's cache entries, for anti-entropy.

The tree is shallow and fixed-shape, mirroring the on-disk cache layout:
256 shards keyed by the entry digest's 2-hex prefix, one leaf line per
entry (``digest:checksum``), a shard hash over its sorted leaf lines,
and a root hash over the 256 shard hashes in prefix order.  Two replicas
whose roots match hold byte-equivalent entry sets; when roots differ,
comparing the 256 shard hashes localizes the difference, and leaf lists
for just those shards identify the exact entries to ship.  Sync cost is
therefore proportional to the *delta*, not the store.

The leaf commits to :func:`repro.cache.store.entry_checksum` — the
content digest of the whole entry — not merely its key, so a replica
holding a *tampered* entry under the right digest still shows a
differing shard and gets repaired by anti-entropy.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

SHARD_PREFIXES = tuple(f"{i:02x}" for i in range(256))

_EMPTY_SHARD = hashlib.sha256(b"").hexdigest()


def _shard_hash(leaves: Dict[str, str]) -> str:
    if not leaves:
        return _EMPTY_SHARD
    lines = sorted(f"{digest}:{checksum}"
                   for digest, checksum in leaves.items())
    return hashlib.sha256("\n".join(lines).encode("ascii")).hexdigest()


class MerkleIndex:
    """Incremental Merkle commitment over {digest: checksum} leaves."""

    def __init__(self):
        self._shards: Dict[str, Dict[str, str]] = {p: {} for p
                                                   in SHARD_PREFIXES}
        self._shard_cache: Dict[str, str] = dict.fromkeys(SHARD_PREFIXES,
                                                          _EMPTY_SHARD)
        self._dirty: set = set()
        self._root_cache: str = ""

    def put(self, digest: str, checksum: str) -> None:
        prefix = digest[:2]
        shard = self._shards.get(prefix)
        if shard is None:
            raise KeyError(f"digest {digest!r} has no 2-hex shard prefix")
        if shard.get(digest) != checksum:
            shard[digest] = checksum
            self._dirty.add(prefix)
            self._root_cache = ""

    def remove(self, digest: str) -> None:
        shard = self._shards.get(digest[:2])
        if shard and digest in shard:
            del shard[digest]
            self._dirty.add(digest[:2])
            self._root_cache = ""

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards.values())

    def __contains__(self, digest: str) -> bool:
        shard = self._shards.get(digest[:2])
        return bool(shard) and digest in shard

    def checksum_of(self, digest: str):
        shard = self._shards.get(digest[:2])
        return shard.get(digest) if shard else None

    def _refresh(self) -> None:
        for prefix in self._dirty:
            self._shard_cache[prefix] = _shard_hash(self._shards[prefix])
        self._dirty.clear()

    def root(self) -> str:
        """Root hash over all 256 shard hashes in prefix order."""
        if not self._root_cache or self._dirty:
            self._refresh()
            joined = "\n".join(self._shard_cache[p] for p in SHARD_PREFIXES)
            self._root_cache = hashlib.sha256(
                joined.encode("ascii")).hexdigest()
        return self._root_cache

    def shard_hashes(self) -> List[str]:
        """The 256 shard hashes in prefix order (the level-1 exchange)."""
        self._refresh()
        return [self._shard_cache[p] for p in SHARD_PREFIXES]

    def leaves(self, prefix: str) -> Dict[str, str]:
        """{digest: checksum} for one 2-hex shard (the leaf exchange)."""
        return dict(self._shards.get(prefix, {}))


def diff_shards(mine: List[str], theirs: List[str]) -> List[str]:
    """Prefixes whose shard hashes differ — the subtrees worth walking."""
    return [SHARD_PREFIXES[i] for i, (a, b) in enumerate(zip(mine, theirs))
            if a != b]
