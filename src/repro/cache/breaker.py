"""Per-replica circuit breaker: stop hammering a dead cache tier.

Classic three-state breaker.  *Closed*: requests flow; consecutive
failures are counted and ``threshold`` of them trip the breaker.
*Open*: every request is refused without constructing a network message
— lookups fall straight through to local tiers, stores queue for a
later flush.  After ``cooldown`` seconds the breaker *half-opens* and
admits exactly one probe request; if it succeeds the breaker closes
(and the owner flushes its queued stores), if it fails the breaker
re-opens for another cooldown.

The clock is injectable so tests (and the bench emitter) can drive the
probe schedule deterministically instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    def __init__(self, threshold: int = 3, cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self._clock = clock
        self.state = CLOSED
        self.failures = 0          # consecutive failures while closed
        self.trips = 0             # times the breaker opened
        self._opened_at = 0.0
        self._probe_out = False    # a half-open probe is in flight

    def allow(self) -> bool:
        """May a request be constructed right now?

        In the open state this flips to half-open once the cooldown has
        elapsed and admits a single probe; concurrent callers see False
        until that probe reports back.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self._probe_out = False
            else:
                return False
        # half-open: exactly one probe at a time
        if self._probe_out:
            return False
        self._probe_out = True
        return True

    def record_success(self) -> bool:
        """Note a completed request; True if the breaker just closed
        (the owner should flush queued stores)."""
        reopened = self.state != CLOSED
        self.state = CLOSED
        self.failures = 0
        self._probe_out = False
        return reopened

    def record_failure(self) -> bool:
        """Note a failed request; True if the breaker just tripped."""
        if self.state == HALF_OPEN:
            # the probe failed — straight back to open, no new trip count
            self.state = OPEN
            self._opened_at = self._clock()
            self._probe_out = False
            return False
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self.state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return True
        return False

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state} failures={self.failures} "
                f"trips={self.trips}>")
