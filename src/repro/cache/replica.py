"""The networked cache tier: replicas over simulated datagrams.

A :class:`CacheReplica` holds proof-cache entries in memory, serves
them over a :class:`repro.runtime.network.Network` endpoint (the same
datagram fabric the IronKV harness uses), and keeps a
:class:`~repro.cache.merkle.MerkleIndex` over its contents so replicas
can reconcile by anti-entropy: exchange roots, compare the 256 shard
hashes when they differ, walk only the differing shards to leaf
``digest:checksum`` lists, and ship only the missing or conflicting
entries — a replica partitioned for a whole run converges by
transferring deltas, not the world.

:class:`ReplicaClient` is the requesting side: fire one JSON datagram,
wait out a per-request deadline for the rid-matched reply, retry on a
ladder of exponential backoff with seeded jitter (the PR 5 escalation
pattern), and surface *only* validated data.  Fault kinds from the
``cache.net`` point (drop / timeout / corrupt) are honored per attempt;
``cache.replica:crash`` silences the serving side until revived.

Nothing read off the wire is ever trusted raw: every entry carries a
``sum`` content checksum computed at store time, and the receiving side
recomputes it before accepting.  A tampered or torn payload — injected
or real — is quarantined (counted, dropped), never promoted.
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Dict, Iterable, List, Optional

from ..resilience import faults as _faults
from .merkle import MerkleIndex, diff_shards
from .store import entry_checksum, validate_entry

DEFAULT_TIMEOUT = 0.05      # seconds per request attempt
DEFAULT_RETRIES = 2         # additional attempts after the first
DEFAULT_BACKOFF = 0.005     # base backoff between attempts
_JITTER_SEED = 0x5EED       # same seed family as the scheduler's ladder


def seal_entry(entry: dict) -> dict:
    """A copy of ``entry`` carrying its content checksum in ``sum``."""
    sealed = {k: v for k, v in entry.items() if k != "sum"}
    sealed["sum"] = entry_checksum(sealed)
    return sealed


def unseal_entry(entry: dict) -> dict:
    """The transportable entry without its wire checksum."""
    return {k: v for k, v in entry.items() if k != "sum"}


def entry_is_sound(entry, digest: str) -> bool:
    """Full boundary check: structural validity + checksum integrity."""
    return (validate_entry(entry, digest)
            and entry.get("sum") == entry_checksum(entry))


class ReplicaStore:
    """Thread-safe entry map + Merkle index for one replica."""

    def __init__(self):
        self._entries: Dict[str, dict] = {}
        self.index = MerkleIndex()
        self._lock = threading.RLock()
        self.quarantined = 0    # rejected puts (invalid shape/checksum)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, digest: str) -> Optional[dict]:
        with self._lock:
            return self._entries.get(digest)

    def resolve_put(self, entry) -> bool:
        """Store a sealed entry if it wins; the only trusted write path.

        The entry must be structurally valid *and* its ``sum`` must
        match its recomputed content checksum — otherwise it is
        quarantined.  On conflict with an existing entry the rule is
        deterministic and symmetric, so two replicas applying it to each
        other's entries converge: a valid entry beats an invalid one,
        and between two valid entries the lexicographically smaller
        checksum wins (ties keep the incumbent).
        """
        if not isinstance(entry, dict):
            self.quarantined += 1
            return False
        digest = entry.get("digest")
        if not isinstance(digest, str) or not entry_is_sound(entry, digest):
            self.quarantined += 1
            return False
        checksum = entry["sum"]
        with self._lock:
            existing = self._entries.get(digest)
            if existing is not None:
                if entry_is_sound(existing, digest):
                    if checksum >= entry_checksum(existing):
                        return False
                # else: the incumbent is corrupt — the valid
                # newcomer repairs it unconditionally.
            self._entries[digest] = entry
            self.index.put(digest, checksum)
            return True

    def plant(self, entry: dict) -> None:
        """Store WITHOUT validation — a fault/test hook simulating
        bit-rot inside a replica.  The Merkle leaf commits to the
        entry's *recomputed* checksum, so a planted corruption shows up
        as a differing shard and anti-entropy repairs it."""
        with self._lock:
            self._entries[entry["digest"]] = dict(entry)
            self.index.put(entry["digest"], entry_checksum(entry))

    def root(self) -> str:
        with self._lock:
            return self.index.root()

    def shard_hashes(self) -> List[str]:
        with self._lock:
            return self.index.shard_hashes()

    def leaves(self, prefix: str) -> Dict[str, str]:
        with self._lock:
            return self.index.leaves(prefix)

    def digests(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)


class ReplicaClient:
    """Requesting side of the cache protocol, with the fault envelope.

    One attempt = one datagram + one rid-matched reply awaited under a
    deadline (stale replies from earlier timed-out attempts are
    discarded by rid).  Failed attempts climb a retry ladder of
    exponential backoff with seeded jitter.  The client never raises on
    network trouble — :meth:`call` returns None and the caller degrades.
    """

    def __init__(self, network, replica_name: str, client_name: str,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 seed: int = _JITTER_SEED):
        self.network = network
        self.replica_name = replica_name
        self.endpoint = network.endpoint(client_name)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self._rng = random.Random(seed)
        self._rid = 0
        self.requests = 0       # datagram attempts constructed
        self.timeouts = 0       # attempts abandoned at the deadline
        self.retried = 0        # ladder steps taken
        self.corrupt = 0        # undecodable replies discarded

    def call(self, op: str, **fields) -> Optional[dict]:
        """The decoded reply dict, or None once the ladder is exhausted."""
        for attempt in range(self.retries + 1):
            if attempt:
                self.retried += 1
                step = self.backoff * (2 ** (attempt - 1))
                time.sleep(step * (1.0 + 0.25 * self._rng.random()))
            reply = self._attempt(op, fields)
            if reply is not None:
                return reply
        return None

    def _attempt(self, op: str, fields: dict) -> Optional[dict]:
        self.requests += 1
        self._rid += 1
        rid = self._rid
        spec = _faults.maybe_fault("cache.net")
        kind = spec.kind if spec is not None else None
        if kind == "timeout":
            # Injected deadline expiry: the request is abandoned as if
            # the timer had already run out — no datagram, no wait.
            self.timeouts += 1
            return None
        if kind != "drop":
            # An injected drop swallows the request datagram but the
            # client doesn't know that: it still waits out its deadline.
            request = dict(fields)
            request["rid"] = rid
            request["op"] = op
            self.endpoint.send(self.replica_name,
                               json.dumps(request).encode("utf-8"))
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.timeouts += 1
                return None
            got = self.endpoint.recv(remaining)
            if got is None:
                self.timeouts += 1
                return None
            payload = got[1]
            if kind == "corrupt":
                # Tamper the first reply of this attempt in flight.
                payload = (payload[:-2] + b"\xff\x00") if len(payload) > 2 \
                    else b"\xff"
                kind = None
            try:
                reply = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.corrupt += 1
                continue
            if not isinstance(reply, dict) or reply.get("rid") != rid:
                continue        # stale reply from a timed-out attempt
            return reply


class CacheReplica:
    """One serving replica: entry store + request loop + anti-entropy."""

    def __init__(self, name: str, network, poll: float = 0.02):
        self.name = name
        self.network = network
        self.endpoint = network.endpoint(name)
        self.store = ReplicaStore()
        self.poll = poll
        self.served = 0
        self.crashed = False
        self._running = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "CacheReplica":
        if self._thread is None or not self._thread.is_alive():
            self._running = True
            self._thread = threading.Thread(target=self._serve_loop,
                                            name=f"replica-{self.name}",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=self.poll * 10)
            self._thread = None

    def crash(self) -> None:
        """Stop answering (requests are silently swallowed) without
        tearing down the thread — the ``cache.replica:crash`` behavior."""
        self.crashed = True

    def revive(self) -> None:
        self.crashed = False

    # -------------------------------------------------------------- serving

    def _serve_loop(self) -> None:
        while self._running:
            got = self.endpoint.recv(self.poll)
            if got is None:
                continue
            src, payload = got
            if self.crashed:
                continue
            self._handle(src, payload)

    def _handle(self, src: str, payload: bytes) -> None:
        spec = _faults.maybe_fault("cache.replica")
        if spec is not None and spec.kind == "crash":
            self.crashed = True
            return
        try:
            msg = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return
        if not isinstance(msg, dict):
            return
        rid = msg.get("rid")
        op = msg.get("op")
        reply: dict = {"rid": rid, "ok": True}
        if op == "get":
            reply["entry"] = self.store.get(msg.get("digest", ""))
        elif op == "put":
            reply["stored"] = self.store.resolve_put(msg.get("entry"))
        elif op == "root":
            reply["root"] = self.store.root()
        elif op == "shards":
            reply["shards"] = self.store.shard_hashes()
        elif op == "leaves":
            reply["leaves"] = self.store.leaves(msg.get("prefix", ""))
        elif op == "pull":
            digests = msg.get("digests") or []
            reply["entries"] = [e for e in (self.store.get(d)
                                            for d in digests)
                                if e is not None]
        elif op == "push":
            entries = msg.get("entries") or []
            reply["stored"] = sum(1 for e in entries
                                  if self.store.resolve_put(e))
        else:
            reply = {"rid": rid, "ok": False, "error": f"unknown op {op!r}"}
        self.served += 1
        self.endpoint.send(src, json.dumps(reply).encode("utf-8"))

    # --------------------------------------------------------------- seeding

    def seed(self, entries: Iterable[dict]) -> int:
        """Load unsealed entries (e.g. a disk cache scan); count stored."""
        stored = 0
        for entry in entries:
            if self.store.resolve_put(seal_entry(entry)):
                stored += 1
        return stored

    # ---------------------------------------------------------- anti-entropy

    def sync_with(self, peer_name: str,
                  client: Optional[ReplicaClient] = None) -> dict:
        """One anti-entropy round against ``peer_name``; transfer counts.

        Root exchange first — matching roots cost one datagram and ship
        nothing.  Otherwise the peer's 256 shard hashes localize the
        difference, each differing shard's leaf list is fetched, and
        entries are pulled/pushed for exactly the digests that are
        missing or conflicting.  Both sides apply the same
        :meth:`ReplicaStore.resolve_put` rule, so conflicting digests
        are shipped in both directions and each side keeps the winner —
        one round makes the two stores (and hence roots) identical.
        """
        if client is None:
            client = ReplicaClient(self.network, peer_name,
                                   f"{self.name}#sync")
        counts = {"pulled": 0, "pushed": 0, "shards_walked": 0,
                  "quarantined": 0, "reachable": True, "in_sync": False}
        reply = client.call("root")
        if reply is None:
            counts["reachable"] = False
            return counts
        if reply.get("root") == self.store.root():
            counts["in_sync"] = True
            return counts
        reply = client.call("shards")
        if reply is None or not isinstance(reply.get("shards"), list):
            counts["reachable"] = False
            return counts
        prefixes = diff_shards(self.store.shard_hashes(), reply["shards"])
        quarantined0 = self.store.quarantined
        for prefix in prefixes:
            counts["shards_walked"] += 1
            leaf_reply = client.call("leaves", prefix=prefix)
            if leaf_reply is None:
                counts["reachable"] = False
                break
            theirs = leaf_reply.get("leaves") or {}
            mine = self.store.leaves(prefix)
            to_pull = [d for d in sorted(theirs)
                       if theirs[d] != mine.get(d)]
            to_push = [d for d in sorted(mine)
                       if mine[d] != theirs.get(d)]
            if to_pull:
                pull_reply = client.call("pull", digests=to_pull)
                if pull_reply is None:
                    counts["reachable"] = False
                    break
                for entry in pull_reply.get("entries") or []:
                    if self.store.resolve_put(entry):
                        counts["pulled"] += 1
            if to_push:
                entries = [e for e in (self.store.get(d) for d in to_push)
                           if e is not None]
                push_reply = client.call("push", entries=entries)
                if push_reply is None:
                    counts["reachable"] = False
                    break
                counts["pushed"] += int(push_reply.get("stored") or 0)
        counts["quarantined"] = self.store.quarantined - quarantined0
        # ``in_sync`` stays False here even on success: it reports the
        # *entry* state (roots matched, nothing shipped), so a second
        # round observing it proves convergence.
        return counts

    def __repr__(self) -> str:
        return (f"<CacheReplica {self.name} entries={len(self.store)} "
                f"served={self.served}"
                f"{' CRASHED' if self.crashed else ''}>")
