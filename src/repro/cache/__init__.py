"""Tiered, fault-tolerant proof cache (memory → disk → network).

``store`` is the flat on-disk tier (the original ``vc/cache.py``, now
shared infrastructure), ``tiers`` layers memory and network tiers over
it, ``replica`` is the networked side with Merkle anti-entropy
(``merkle``), and ``breaker`` is the per-replica circuit breaker.
"""

from .breaker import CircuitBreaker
from .merkle import MerkleIndex, diff_shards
from .replica import (CacheReplica, ReplicaClient, ReplicaStore,
                      entry_is_sound, seal_entry, unseal_entry)
from .store import (CACHE_DIR_ENV, DEFAULT_DIRNAME, ProofCache,
                    entry_checksum, make_entry, validate_entry)
from .tiers import TieredProofCache, cache_from_env, parse_tiers

__all__ = [
    "CACHE_DIR_ENV", "DEFAULT_DIRNAME",
    "CacheReplica", "CircuitBreaker", "MerkleIndex", "ProofCache",
    "ReplicaClient", "ReplicaStore", "TieredProofCache",
    "cache_from_env", "diff_shards", "entry_checksum", "entry_is_sound",
    "make_entry", "parse_tiers", "seal_entry", "unseal_entry",
    "validate_entry",
]
