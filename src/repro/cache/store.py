"""The on-disk tier: a content-addressed proof-cache directory.

Entries are keyed by the sha256 digest computed in
:func:`repro.smt.fingerprint.obligation_digest` — the canonical SMT-LIB2
text of the full query (context axioms + path assumptions + negated
goal), the :class:`~repro.smt.solver.SolverConfig` knobs, and the
discharge strategy.  Any change to a postcondition, a reachable spec
function, or a solver knob changes the digest, so invalidation is
automatic: the stale entry is simply never addressed again.

Writes are atomic (temp file + ``os.replace``) so parallel workers can
share one cache directory without torn entries; corrupt or truncated
entries are detected at lookup, dropped, and rewritten after re-solving.

This module also owns the *entry shape* every other tier speaks:
:func:`make_entry` builds it, :func:`validate_entry` is the structural
check applied at every tier boundary, and :func:`entry_checksum` is the
content digest network payloads carry (and Merkle leaves commit to) so
a tampered or torn replica payload is detected before it is trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Iterator, Optional

from ..api import CACHE_DIR_ENV  # noqa: F401  (re-exported for callers)
from ..resilience import faults as _faults
from ..resilience.faults import InjectedCorruption, InjectedIOError
from ..vc.errors import FAILED, PROVED, TIMEOUT

DEFAULT_DIRNAME = ".pv_cache"

# RESOURCE_OUT (and anything else transient) is deliberately absent: a
# budget-exhausted verdict must never be replayed from the cache.
_VALID_STATUS = (PROVED, FAILED, TIMEOUT)


def make_entry(digest: str, status: str, stats: Optional[dict] = None,
               query_bytes: int = 0, label: str = "",
               diag: Optional[dict] = None,
               kind: Optional[str] = None) -> Optional[dict]:
    """The canonical entry dict, or None for an uncacheable status."""
    if status not in _VALID_STATUS:
        return None
    entry = {"digest": digest, "status": status,
             "query_bytes": int(query_bytes),
             "stats": stats or {}, "label": label}
    if diag is not None:
        entry["diag"] = diag
    if kind is not None:
        entry["kind"] = kind
    return entry


def validate_entry(entry, digest: str) -> bool:
    """The structural check every tier boundary applies before trusting
    an entry: right shape, right identity, replayable status."""
    return (isinstance(entry, dict)
            and entry.get("digest") == digest
            and entry.get("status") in _VALID_STATUS
            and isinstance(entry.get("query_bytes", 0), int)
            and isinstance(entry.get("stats", {}), dict)
            and isinstance(entry.get("diag") or {}, dict))


def entry_checksum(entry: dict) -> str:
    """Content digest of an entry (canonical JSON, checksum key excluded).

    This is what network payloads carry and what Merkle leaves commit
    to, so two replicas agree on a shard hash iff they hold
    byte-equivalent entries — and a tampered payload never matches.
    """
    body = {k: v for k, v in entry.items() if k != "sum"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def entry_nbytes(entry: dict) -> int:
    """Approximate in-memory/wire size of an entry (its JSON length)."""
    return len(json.dumps(entry, separators=(",", ":")))


class ProofCache:
    """One cache directory plus hit/miss/store/corruption counters."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @classmethod
    def from_env(cls) -> Optional["ProofCache"]:
        """The cache named by ``$REPRO_CACHE_DIR``, or None if unset.

        Environment parsing is centralized in
        :meth:`repro.api.VerifyConfig.from_env`; this shim just asks it.
        (Tier selection lives in :func:`repro.cache.tiers.cache_from_env`;
        this classmethod always builds the bare disk tier.)
        """
        from ..api import VerifyConfig
        root = VerifyConfig.from_env().cache_dir
        return cls(root) if root else None

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def lookup(self, digest: str) -> Optional[dict]:
        """Return the stored entry for ``digest``, or None on miss.

        A malformed entry (truncated write, wrong digest, bogus status)
        counts as a miss: it is deleted so the fresh verdict can be
        rewritten cleanly.
        """
        path = self._path(digest)
        try:
            spec = _faults.maybe_fault("cache.lookup")
            if spec is not None:
                if spec.kind == "io":
                    raise InjectedIOError("cache.lookup")
                raise InjectedCorruption("cache.lookup")
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if not validate_entry(entry, digest):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError, UnicodeDecodeError):
            self.corrupt += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return entry

    def store(self, digest: str, status: str, stats: Optional[dict] = None,
              query_bytes: int = 0, label: str = "",
              diag: Optional[dict] = None,
              kind: Optional[str] = None) -> None:
        """Persist a verdict (atomic; best-effort on filesystem errors).

        ``diag`` is the serialized diagnostic payload for non-PROVED
        verdicts, so cache-warm failures replay the same counterexample
        /split/profile report without re-solving.  ``kind`` marks
        non-solver provenance (``STATIC_PROVED`` for verdicts from the
        abstract-interpretation triage tier); the scheduler gates replay
        of kinded entries on the tier being enabled.
        """
        entry = make_entry(digest, status, stats, query_bytes, label,
                           diag, kind)
        if entry is None:
            return
        self.store_entry(entry)

    def store_entry(self, entry: dict) -> bool:
        """Write one already-built entry atomically; True on success."""
        path = self._path(entry["digest"])
        try:
            spec = _faults.maybe_fault("cache.store")
            if spec is not None:
                raise InjectedIOError("cache.store")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True

    def iter_entries(self) -> Iterator[dict]:
        """Yield every *valid* entry under the root (invalid files are
        skipped, not deleted — this is a read-only scan used to seed
        replicas and Merkle indexes, not a lookup path)."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                digest = name[:-len(".json")]
                try:
                    with open(os.path.join(shard_dir, name), "r",
                              encoding="utf-8") as fh:
                        entry = json.load(fh)
                except (ValueError, OSError, UnicodeDecodeError):
                    continue
                if validate_entry(entry, digest):
                    yield entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {"cache_hits": self.hits, "cache_misses": self.misses,
                "cache_stores": self.stores, "cache_corrupt": self.corrupt}

    def __repr__(self) -> str:
        return (f"<ProofCache {self.root}: {self.hits} hits, "
                f"{self.misses} misses>")
