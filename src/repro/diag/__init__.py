"""Diagnostics engine: structured errors, counterexamples, splitting,
and the quantifier-instantiation profiler.

Verus's practical advantage over push-button verifiers is as much about
*failure feedback* as about proof speed: every failure is a member of a
small structured taxonomy, comes with a source span, can be drilled into
conjunct-by-conjunct, and slow proofs expose their quantifier storms
through a profiler.  This package reproduces that loop on top of our
DPLL(T) solver:

* :mod:`.taxonomy` — the VerusErrorType classification + the
  :class:`~repro.diag.taxonomy.Diagnostic` payload,
* :mod:`.model`    — counterexample witnesses from the SAT/EUF/LIA model,
* :mod:`.split`    — assert/ensures splitting (per-conjunct re-query),
* :mod:`.profile`  — per-quantifier/per-trigger instantiation top-k,
* :mod:`.render`   — human text + machine JSON renderings.

Diagnosis runs *post hoc* in the parent process: the scheduler re-solves
each FAILED obligation with a fresh solver over the same assertions, so
the diagnostic output is identical under serial, parallel, and
cache-warm runs by construction (the solver is deterministic).
"""

from __future__ import annotations

from typing import Optional

from ..smt import terms as T
from ..smt.solver import SAT, UNSAT, SmtSolver, SolverConfig
from ..vc.errors import FAILED, PROVED, TIMEOUT
from .model import extract_witness
from .profile import (module_perf_summary, module_profile,
                      perf_summary, top_instantiations)
from .render import module_to_json, render_diagnostic
from .split import check_conjuncts, split_goal
from .taxonomy import Diagnostic, VerusErrorType, classify

__all__ = [
    "Diagnostic", "VerusErrorType", "classify", "diagnose_obligation",
    "extract_witness", "split_goal", "check_conjuncts",
    "top_instantiations", "module_profile",
    "perf_summary", "module_perf_summary",
    "render_diagnostic", "module_to_json",
]


def diagnose_obligation(obligation, goal: Optional[T.Term],
                        assumptions: list, ctx_axioms: list,
                        config: Optional[SolverConfig] = None, *,
                        witness: bool = True, split: bool = True,
                        profile: bool = True, top_k: int = 5) -> Diagnostic:
    """Produce the full Diagnostic for one failed obligation.

    ``goal``/``assumptions``/``ctx_axioms`` are the obligation's VC as
    planned by the scheduler; ``goal is None`` marks obligations proved
    by §3.3 idiom engines (no SMT goal term exists), which get a
    taxonomy-only diagnostic.
    """
    diag = Diagnostic.for_obligation(obligation)
    if goal is None:
        diag.notes.append("no SMT goal term (idiom-engine obligation); "
                          "taxonomy-only diagnostic")
        return diag

    fn_name = obligation.label.split(":", 1)[0].strip() or None
    solver = SmtSolver(config or SolverConfig())
    for ax in ctx_axioms:
        solver.add(ax)
    for a in assumptions:
        solver.add(a)
    solver.add(T.Not(goal))
    res = solver.check()
    if res == UNSAT:
        # Should not happen (the scheduler only diagnoses failures) but
        # report honestly rather than fabricating a counterexample.
        diag.notes.append("re-solve proved this obligation; stale verdict?")
        return diag

    if witness and solver.last_model is not None:
        diag.witness = extract_witness(solver, goal, fn_name)
        if res != SAT and diag.witness:
            diag.notes.append(
                "witness is a candidate model: the solver answered "
                "unknown (quantifier saturation or budget), not a "
                "definite refutation")
    if split:
        diag.conjuncts = check_conjuncts(goal, assumptions, ctx_axioms,
                                         config)
        if (diag.conjuncts
                and diag.error_type == VerusErrorType.ASSERT_FAIL.value):
            diag.error_type = VerusErrorType.SPLIT_ASSERT_FAIL.value
    if profile:
        diag.qi_profile = top_instantiations(solver.stats.inst_profile,
                                             top_k)
    return diag
