"""Failure taxonomy: Verus-style structured error classes.

Verus reports every verification failure as a member of a small closed
error taxonomy (the classes AutoVerus's repair loop dispatches on);
we derive the same classification from an :class:`~repro.vc.errors.
Obligation`'s ``kind`` and label.  The :class:`Diagnostic` record is the
machine-readable payload attached to a failed obligation: taxonomy
class, source span, counterexample witness, split conjuncts, and the
quantifier-instantiation profile.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..vc.errors import FAILED, PROVED, RESOURCE_OUT, TIMEOUT


class VerusErrorType(enum.Enum):
    """Closed failure taxonomy, mirroring Verus's structured errors."""

    PRE_COND_FAIL = "PreCondFail"          # precondition at a call site
    POST_COND_FAIL = "PostCondFail"        # ensures clause
    INV_FAIL_FRONT = "InvFailFront"        # loop invariant on entry
    INV_FAIL_END = "InvFailEnd"            # loop invariant preserved
    ASSERT_FAIL = "AssertFail"             # plain assert
    SPLIT_ASSERT_FAIL = "SplitAssertFail"  # conjunctive assert, split
    ARITH_OVERFLOW = "ArithmeticOverflow"  # overflow/underflow/div-by-zero
    BOUNDS_FAIL = "BoundsFail"             # seq index / map key
    DECREASES_FAIL = "DecreasesFail"       # termination measure
    RLIMIT_EXCEEDED = "RlimitExceeded"     # solver gave up (unknown)
    RESOURCE_OUT = "ResourceOut"           # solver budget exhausted
    UNKNOWN_FAIL = "UnknownFail"           # anything else

    def __str__(self) -> str:
        return self.value


def classify(kind: str, label: str = "", status: str = FAILED
             ) -> VerusErrorType:
    """Map an obligation's (kind, label, status) to its taxonomy class.

    The kind wins even for solver-unknown verdicts — like Verus, a
    postcondition the solver gave up on is still reported *as* a
    postcondition failure; RlimitExceeded and ResourceOut are reserved
    for obligations with no more specific class (and for killed or
    budget-exhausted jobs, which the scheduler tags explicitly).
    """
    if kind == "requires":
        return VerusErrorType.PRE_COND_FAIL
    if kind == "ensures":
        return VerusErrorType.POST_COND_FAIL
    if kind == "invariant":
        if "on entry" in label:
            return VerusErrorType.INV_FAIL_FRONT
        return VerusErrorType.INV_FAIL_END
    if kind == "assert":
        return VerusErrorType.ASSERT_FAIL
    if kind == "overflow":
        return VerusErrorType.ARITH_OVERFLOW
    if kind == "bounds":
        return VerusErrorType.BOUNDS_FAIL
    if kind == "termination":
        return VerusErrorType.DECREASES_FAIL
    if status == TIMEOUT:
        return VerusErrorType.RLIMIT_EXCEEDED
    if status == RESOURCE_OUT:
        return VerusErrorType.RESOURCE_OUT
    return VerusErrorType.UNKNOWN_FAIL


class Diagnostic:
    """The full diagnostic payload of one failed obligation.

    Every field is plain data (strings, ints, lists, dicts) so the
    record serializes losslessly across the process-pool boundary and
    into proof-cache entries:

    * ``error_type``: the :class:`VerusErrorType` value (a string),
    * ``label``/``kind``: the obligation's provenance,
    * ``span``: rendered source span ("file.py:123") or None,
    * ``witness``: counterexample assignment — a list of
      ``{"name", "value", "term"}`` dicts, sorted by name,
    * ``conjuncts``: assert-splitting outcome — a list of
      ``{"index", "text", "status"}`` dicts (empty when the goal was
      not conjunctive or splitting was disabled),
    * ``qi_profile``: top-k quantifier-instantiation rows — a list of
      ``{"quantifier", "trigger", "count", "mechanism"}`` dicts,
    * ``notes``: free-form strings (e.g. "verdict changed on re-solve").
    """

    __slots__ = ("error_type", "label", "kind", "span", "witness",
                 "conjuncts", "qi_profile", "notes")

    def __init__(self, error_type: str, label: str = "", kind: str = "",
                 span: Optional[str] = None, witness: Optional[list] = None,
                 conjuncts: Optional[list] = None,
                 qi_profile: Optional[list] = None,
                 notes: Optional[list] = None):
        self.error_type = error_type
        self.label = label
        self.kind = kind
        self.span = span
        self.witness = witness or []
        self.conjuncts = conjuncts or []
        self.qi_profile = qi_profile or []
        self.notes = notes or []

    @classmethod
    def for_obligation(cls, obligation) -> "Diagnostic":
        """Taxonomy-only diagnostic (e.g. for §3.3 idiom obligations,
        which never touch the SMT model)."""
        etype = classify(obligation.kind, obligation.label,
                         obligation.status)
        return cls(etype.value, obligation.label, obligation.kind,
                   span=str(obligation.span)
                   if obligation.span is not None else None)

    def failing_conjuncts(self) -> list[dict]:
        return [c for c in self.conjuncts if c["status"] != PROVED]

    def to_dict(self) -> dict:
        return {"error_type": self.error_type, "label": self.label,
                "kind": self.kind, "span": self.span,
                "witness": list(self.witness),
                "conjuncts": list(self.conjuncts),
                "qi_profile": list(self.qi_profile),
                "notes": list(self.notes)}

    @classmethod
    def from_dict(cls, d: dict) -> "Diagnostic":
        return cls(d.get("error_type", VerusErrorType.UNKNOWN_FAIL.value),
                   d.get("label", ""), d.get("kind", ""), d.get("span"),
                   list(d.get("witness") or []),
                   list(d.get("conjuncts") or []),
                   list(d.get("qi_profile") or []),
                   list(d.get("notes") or []))

    def __eq__(self, other) -> bool:
        return (isinstance(other, Diagnostic)
                and self.to_dict() == other.to_dict())

    def __repr__(self) -> str:
        return (f"<Diagnostic {self.error_type} {self.label!r}: "
                f"{len(self.witness)} witness entries, "
                f"{len(self.failing_conjuncts())} failing conjuncts>")
