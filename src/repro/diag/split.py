"""Assert/ensures splitting — Verus's ``#[verifier::spinoff_prover]``-era
``assert ... by` splitting, or the ``--expand-errors`` conjunct drill-down.

A failed conjunctive goal ``A && B && C`` tells the user almost nothing;
re-querying each conjunct in isolation pinpoints exactly which clause
the solver cannot discharge.  Implications distribute over the split
(``P ==> (A && B)`` splits into ``P ==> A`` and ``P ==> B``) so guarded
postconditions split usefully too.
"""

from __future__ import annotations

from ..smt import terms as T
from ..smt.printer import term_to_str
from ..smt.solver import SAT, UNSAT, SmtSolver, SolverConfig
from ..vc.errors import FAILED, PROVED, TIMEOUT

# Don't split into more pieces than a person will read.
MAX_CONJUNCTS = 16


def split_goal(goal: T.Term) -> list[T.Term]:
    """Flatten a goal into independently provable conjuncts.

    Returns ``[goal]`` unchanged when there is nothing to split.
    """
    out: list[T.Term] = []
    _split_into(goal, out)
    return out if len(out) > 1 else [goal]


def _split_into(goal: T.Term, out: list[T.Term]) -> None:
    if len(out) >= MAX_CONJUNCTS:
        out.append(goal)
        return
    if goal.kind == T.AND:
        for arg in goal.args:
            _split_into(arg, out)
        return
    if goal.kind == T.IMPLIES:
        hyp, concl = goal.args
        if concl.kind == T.AND:
            for arg in concl.args:
                _split_into(T.Implies(hyp, arg), out)
            return
    out.append(goal)


def check_conjuncts(goal: T.Term, assumptions: list, ctx_axioms: list,
                    config=None) -> list[dict]:
    """Re-query each conjunct of ``goal`` separately.

    Returns ``{"index", "text", "status"}`` rows, or ``[]`` when the
    goal is not conjunctive (nothing to report).  Each conjunct gets a
    fresh solver over the same context, asserting the *negated*
    conjunct: UNSAT means that clause alone is provable.
    """
    conjuncts = split_goal(goal)
    if len(conjuncts) <= 1:
        return []
    rows = []
    for i, conj in enumerate(conjuncts):
        solver = SmtSolver(config or SolverConfig())
        for ax in ctx_axioms:
            solver.add(ax)
        for a in assumptions:
            solver.add(a)
        solver.add(T.Not(conj))
        res = solver.check()
        if res == UNSAT:
            status = PROVED
        elif res == SAT:
            status = FAILED
        else:
            status = TIMEOUT
        text = term_to_str(conj)
        if len(text) > 160:
            text = text[:157] + "..."
        rows.append({"index": i, "text": text, "status": status})
    return rows
