"""Quantifier-instantiation profiler — the ``--profile`` of Verus/Z3.

Slow or flaky proofs are usually quantifier storms: one badly triggered
axiom instantiating itself thousands of times.  The solver records every
instantiation in ``Stats.inst_profile`` as
``{quantifier label: {trigger label: count}}`` (MBQI instantiations use
the reserved trigger label ``"<mbqi>"``); this module aggregates that
raw profile into the top-k table users act on.
"""

from __future__ import annotations

from ..smt.solver import SmtSolver

MBQI_TRIGGER = SmtSolver.MBQI_TRIGGER


def top_instantiations(inst_profile: dict, k: int = 5) -> list[dict]:
    """Top-k ``{"quantifier", "trigger", "count", "mechanism"}`` rows.

    One row per (quantifier, trigger) pair, ordered by count descending
    (ties broken textually for determinism).  ``mechanism`` is
    ``"e-matching"`` or ``"mbqi"``.
    """
    rows = []
    for quant, per in inst_profile.items():
        for trigger, count in per.items():
            mech = "mbqi" if trigger == MBQI_TRIGGER else "e-matching"
            rows.append({"quantifier": quant,
                         "trigger": "" if mech == "mbqi" else trigger,
                         "count": count, "mechanism": mech})
    rows.sort(key=lambda r: (-r["count"], r["quantifier"], r["trigger"]))
    return rows[:k]


def profile_table(rows: list[dict]) -> str:
    """Render top-k rows as an aligned text table."""
    if not rows:
        return "(no quantifier instantiations)"
    lines = []
    width = max(len(str(r["count"])) for r in rows)
    for r in rows:
        via = r["mechanism"] if r["mechanism"] == "mbqi" \
            else f"e-matching on {r['trigger']}"
        lines.append(f"{r['count']:>{width}} × {r['quantifier']}  "
                     f"[{via}]")
    return "\n".join(lines)


def module_profile(result, k: int = 10) -> list[dict]:
    """Top-k rows for a whole :class:`~repro.vc.errors.ModuleResult`
    (the scheduler merges every obligation's profile into
    ``result.stats["inst_profile"]``)."""
    return top_instantiations(result.stats.get("inst_profile") or {}, k)


# The matcher/pruning counters the profile-driven solver pass added to
# Stats, with the units a profile reader needs to interpret them.
PERF_COUNTERS = (
    ("instantiations", "quantifier instances asserted"),
    ("ematch_index_hits", "match calls served by the apps-by-decl index"),
    ("ematch_rescans_avoided", "match calls skipped at the watermark"),
    ("fired_set_hits", "matches skipped by the fired-set memo"),
    ("congruent_skips", "instances skipped as congruent duplicates"),
    ("pruned_axioms", "context axioms dropped before encoding"),
    ("query_bytes_saved", "query bytes those axioms would have cost"),
    ("static_proved", "obligations discharged by the absint triage tier"),
    ("absint_fixpoint_iters", "abstract-interpretation fixpoint passes"),
    ("solver_constructions_avoided", "solvers never built thanks to triage"),
    ("mem_hits", "cache lookups answered by the in-memory LRU tier"),
    ("disk_hits", "cache lookups answered by the on-disk tier"),
    ("net_hits", "cache lookups answered by a networked replica"),
    ("net_timeouts", "replica request attempts abandoned at the deadline"),
    ("net_retries", "replica retry-ladder steps taken"),
    ("breaker_trips", "circuit-breaker open transitions"),
    ("quarantined", "cache entries rejected at a tier boundary"),
)


def perf_summary(stats: dict) -> str:
    """Render the solver-performance counters of a stats snapshot.

    Complements :func:`profile_table`: the QI table says *which*
    quantifiers fired, this says how much matching and encoding work the
    incremental machinery avoided.
    """
    width = max(len(name) for name, _ in PERF_COUNTERS)
    return "\n".join(f"{name:<{width}}  {stats.get(name, 0):>8}  ({note})"
                     for name, note in PERF_COUNTERS)


def module_perf_summary(result) -> str:
    """:func:`perf_summary` over a whole ModuleResult's merged stats."""
    return perf_summary(result.stats or {})
