"""Quantifier-instantiation profiler — the ``--profile`` of Verus/Z3.

Slow or flaky proofs are usually quantifier storms: one badly triggered
axiom instantiating itself thousands of times.  The solver records every
instantiation in ``Stats.inst_profile`` as
``{quantifier label: {trigger label: count}}`` (MBQI instantiations use
the reserved trigger label ``"<mbqi>"``); this module aggregates that
raw profile into the top-k table users act on.
"""

from __future__ import annotations

from ..smt.solver import SmtSolver

MBQI_TRIGGER = SmtSolver.MBQI_TRIGGER


def top_instantiations(inst_profile: dict, k: int = 5) -> list[dict]:
    """Top-k ``{"quantifier", "trigger", "count", "mechanism"}`` rows.

    One row per (quantifier, trigger) pair, ordered by count descending
    (ties broken textually for determinism).  ``mechanism`` is
    ``"e-matching"`` or ``"mbqi"``.
    """
    rows = []
    for quant, per in inst_profile.items():
        for trigger, count in per.items():
            mech = "mbqi" if trigger == MBQI_TRIGGER else "e-matching"
            rows.append({"quantifier": quant,
                         "trigger": "" if mech == "mbqi" else trigger,
                         "count": count, "mechanism": mech})
    rows.sort(key=lambda r: (-r["count"], r["quantifier"], r["trigger"]))
    return rows[:k]


def profile_table(rows: list[dict]) -> str:
    """Render top-k rows as an aligned text table."""
    if not rows:
        return "(no quantifier instantiations)"
    lines = []
    width = max(len(str(r["count"])) for r in rows)
    for r in rows:
        via = r["mechanism"] if r["mechanism"] == "mbqi" \
            else f"e-matching on {r['trigger']}"
        lines.append(f"{r['count']:>{width}} × {r['quantifier']}  "
                     f"[{via}]")
    return "\n".join(lines)


def module_profile(result, k: int = 10) -> list[dict]:
    """Top-k rows for a whole :class:`~repro.vc.errors.ModuleResult`
    (the scheduler merges every obligation's profile into
    ``result.stats["inst_profile"]``)."""
    return top_instantiations(result.stats.get("inst_profile") or {}, k)
