"""Rendering: diagnostics → human-readable text and machine JSON.

``render_diagnostic`` produces the indented failure section that
:meth:`repro.vc.errors.ModuleResult.report` splices under each FAILED
line; ``module_to_json`` produces the full machine-readable result the
CI/demo scripts and error-feedback benchmarks consume.
"""

from __future__ import annotations

from ..vc.errors import PROVED, STATIC_PROVED
from .profile import profile_table
from .taxonomy import Diagnostic


def render_diagnostic(diag: Diagnostic) -> str:
    """Multi-line human rendering of one failure's diagnostic payload."""
    lines: list[str] = []
    if diag.witness:
        lines.append("counterexample:")
        width = max(len(r["name"]) for r in diag.witness)
        for r in diag.witness:
            lines.append(f"  {r['name']:<{width}} = {r['value']}")
    if diag.conjuncts:
        failing = [c for c in diag.conjuncts if c["status"] != PROVED]
        lines.append(f"split: {len(failing)} of {len(diag.conjuncts)} "
                     f"conjuncts fail")
        for c in diag.conjuncts:
            mark = "✓" if c["status"] == PROVED else "✗"
            lines.append(f"  {mark} [{c['index']}] {c['text']}")
    if diag.qi_profile:
        lines.append("quantifier instantiations (top "
                     f"{len(diag.qi_profile)}):")
        for tl in profile_table(diag.qi_profile).splitlines():
            lines.append(f"  {tl}")
    for note in diag.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def obligation_to_json(o) -> dict:
    return {
        "label": o.label,
        "kind": o.kind,
        "status": o.status,
        "seq": o.seq,
        "span": str(o.span) if o.span is not None else None,
        "error_type": None if o.ok else o.error_type,
        "seconds": round(o.seconds, 6),
        # Schema v2 (additive): the automation profile whose verdict
        # this is (None = the session primary) and the portfolio race
        # record ({raced, outcomes, winner, tuner_recorded}, None when
        # the obligation was never raced).
        "profile": o.stats.get("profile"),
        "portfolio": o.stats.get("portfolio"),
        # Schema v2 (additive): True when the static proving tier
        # (repro.analysis.absint) discharged this obligation with no
        # solver constructed; absent/False for solver verdicts.
        "static": o.stats.get("tier") == STATIC_PROVED,
        "diag": o.diag.to_dict() if o.diag is not None else None,
    }


def render_findings(findings) -> str:
    """Human rendering of static-analysis findings, one block each."""
    lines: list[str] = []
    for f in findings:
        loc = f" @ {f.span}" if f.span is not None else ""
        lines.append(f"{f.severity.upper()} [{f.pass_id}] {f.where}{loc}")
        lines.append(f"  {f.message}")
        if f.suggestion:
            lines.append(f"  hint: {f.suggestion}")
    return "\n".join(lines)


def finding_to_json(f) -> dict:
    return {
        "pass": f.pass_id,
        "severity": f.severity,
        "where": f.where,
        "message": f.message,
        "span": str(f.span) if f.span is not None else None,
        "suggestion": f.suggestion or None,
    }


def analysis_to_json(report) -> dict:
    """Machine-readable rendering of an AnalysisReport."""
    return {
        "schema_version": SCHEMA_VERSION,
        "module": report.module,
        "ok": report.ok,
        "seconds": round(report.seconds, 6),
        "passes": list(report.passes),
        "errors": len(report.errors()),
        "warnings": len(report.warnings()),
        "findings": [finding_to_json(f) for f in report.sorted_findings()],
    }


# Version of the machine-readable report below.  Bump on any breaking
# change to the key layout; consumers should reject versions they do not
# know.  The schema is documented in README.md ("Machine-readable
# reports").  v2 added the per-obligation "profile" and "portfolio"
# fields (additive: every v1 key is unchanged).
SCHEMA_VERSION = 2


def module_to_json(result) -> dict:
    """Machine-readable rendering of a ModuleResult."""
    return {
        "schema_version": SCHEMA_VERSION,
        "module": result.name,
        "ok": result.ok,
        "rejected": getattr(result, "rejected", False),
        "analysis": (analysis_to_json(result.analysis)
                     if getattr(result, "analysis", None) is not None
                     else None),
        "seconds": round(result.seconds, 6),
        "query_bytes": result.query_bytes,
        "functions": [
            {
                "name": f.name,
                "ok": f.ok,
                "seconds": round(f.seconds, 6),
                "obligations": [obligation_to_json(o)
                                for o in f.obligations],
            }
            for f in result.functions
        ],
        "failures": [
            {"function": fn, **obligation_to_json(o)}
            for fn, o in result.failures()
        ],
        "stats": {k: v for k, v in result.stats.items()
                  if k != "inst_profile"},
        "inst_profile": result.stats.get("inst_profile") or {},
    }
