"""Counterexample extraction.

When an obligation FAILS, the solver's last theory model is a concrete
execution the proof does not rule out: the SAT assignment fixes the
boolean skeleton, EUF supplies congruence-class representatives for
uninterpreted values, and the LIA simplex model supplies integers.  This
module turns that model into a readable *witness* — an assignment to
the variables the failing goal actually mentions — the analogue of
Verus's ``--expand-errors`` counterexamples.
"""

from __future__ import annotations

from typing import Optional

from ..smt import terms as T
from ..smt.printer import term_to_str
from ..smt.sorts import BOOL, INT


def pretty_name(name: str, fn_name: Optional[str] = None) -> str:
    """Human form of a VC-level variable name.

    The VC generator manufactures names like ``pop!n`` (parameter),
    ``havoc!i!3`` (loop-havoced local), ``push!ret!7`` (call result);
    strip the plumbing so the witness reads like source code.
    """
    parts = name.split("!")
    # Drop a trailing freshness counter ("havoc!i!3" -> havoc!i).
    if len(parts) > 1 and parts[-1].isdigit():
        parts = parts[:-1]
    if parts[0] == "havoc" and len(parts) > 1:
        parts = parts[1:]
    elif fn_name is not None and parts[0] == fn_name and len(parts) > 1:
        parts = parts[1:]
    return ".".join(parts) if len(parts) > 1 else parts[0]


def witness_terms(goal: T.Term, limit: int = 24) -> list[T.Term]:
    """The terms worth reporting for a goal: its free variables plus its
    small ground applications (e.g. ``len(s)``, ``sel(m, k)``)."""
    seen: set[T.Term] = set()
    out: list[T.Term] = []
    for v in sorted(goal.free_vars(), key=lambda t: t.payload):
        if v not in seen:
            seen.add(v)
            out.append(v)
    apps = [t for t in goal.subterms()
            if t.kind == T.APP and t.sort in (INT, BOOL)
            and not t.free_vars() - goal.free_vars() and t.size() <= 8]
    for t in sorted(set(apps), key=lambda t: (t.size(), term_to_str(t))):
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out[:limit]


def extract_witness(solver, goal: T.Term,
                    fn_name: Optional[str] = None,
                    limit: int = 24) -> list[dict]:
    """Read the witness assignment off ``solver``'s last model.

    Returns sorted ``{"name", "value", "term"}`` dicts — plain data so
    the witness survives caching/pickling.  Terms the model says nothing
    about are omitted; an empty list means the solver exposed no model
    (e.g. the goal failed during forced-prefix reasoning with no values
    recorded for these terms).
    """
    if solver.last_model is None:
        return []
    rows = []
    for t in witness_terms(goal, limit):
        value = solver.model_repr(t)
        if value is None:
            continue
        if t.kind == T.VAR:
            name = pretty_name(t.payload, fn_name)
        else:
            name = term_to_str(t)
        rows.append({"name": name, "value": value, "term": term_to_str(t)})
    rows.sort(key=lambda r: (r["name"], r["term"]))
    return rows
