"""`#[epr_mode]` — selective use of EPR for full proof automation (§3.2).

A module marked EPR gets three things, mirroring the paper:

1. **Well-formedness checking** (:func:`check_epr_module`): the module's
   vocabulary must stay inside EPR — no arithmetic (integers are abstracted
   as totally ordered uninterpreted sorts), and the quantifier-alternation /
   function graph over sorts must be acyclic (Padon et al.'s criterion,
   checked with networkx).
2. **A complete decision procedure**: obligations are dispatched with MBQI
   (complete instantiation), so inductive invariants check *fully
   automatically* — no manual proof.
3. **Sound composition**: results are ordinary postconditions, so
   default-mode modules can consume them; the abstraction obligations
   connecting implementation to EPR model are ordinary default-mode proofs.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..analysis.graph import find_cycle
from ..smt.solver import SolverConfig
from ..vc import ast as A
from ..vc import types as VT
from ..vc.errors import ModuleResult
from ..vc.wp import VcConfig, VcGen

_ARITH_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
              "<", "<=", ">", ">="}


class EprViolation:
    """One reason a module is not in EPR."""

    def __init__(self, where: str, reason: str, span=None):
        self.where = where
        self.reason = reason
        self.span = span  # Optional[repro.vc.ast.Span]

    def to_finding(self, severity: str = "error"):
        """Adapt to a static-analysis :class:`repro.analysis.Finding`."""
        from ..analysis import Finding
        return Finding("epr", severity, self.where, self.reason,
                       span=self.span,
                       suggestion="rework the spec to stay inside EPR, or "
                                  "drop epr_mode and prove it manually")

    def __repr__(self) -> str:
        return f"<EprViolation {self.where}: {self.reason}>"


class EprError(Exception):
    def __init__(self, violations: list[EprViolation]):
        lines = [f"  {v.where}: {v.reason}" for v in violations]
        super().__init__("module is not in EPR:\n" + "\n".join(lines))
        self.violations = violations


def _is_epr_type(t: VT.VType) -> bool:
    if isinstance(t, VT.BoolType):
        return True
    if isinstance(t, (VT.StructType, VT.EnumType)):
        return True  # uninterpreted carriers
    return False


def _expr_violations(e: A.Expr, where: str, out: list[EprViolation],
                     span=None) -> None:
    for sub in _walk(e):
        if isinstance(sub, A.BinOp) and sub.op in _ARITH_OPS:
            out.append(EprViolation(
                where, f"arithmetic operator {sub.op!r} is outside EPR "
                       f"(abstract numbers as a totally ordered sort)", span))
        if isinstance(sub, A.Lit) and not isinstance(sub.vtype, VT.BoolType):
            out.append(EprViolation(
                where, "integer literal is outside EPR", span))
        if isinstance(sub, (A.SeqLen, A.SeqIndex, A.SeqUpdate, A.SeqConcat,
                            A.SeqSkip, A.SeqTake, A.SeqLit)):
            out.append(EprViolation(
                where, "Seq operations require integer indices, outside EPR",
                span))


def _walk(e: A.Expr):
    stack = [e]
    while stack:
        cur = stack.pop()
        yield cur
        for attr in ("lhs", "rhs", "operand", "cond", "then", "els", "base",
                     "seq", "idx", "value", "n", "m", "key", "body"):
            child = getattr(cur, attr, None)
            if isinstance(child, A.Expr):
                stack.append(child)
        for attr in ("args", "items"):
            children = getattr(cur, attr, None)
            if children:
                stack.extend(c for c in children if isinstance(c, A.Expr))
        fields = getattr(cur, "fields", None)
        if isinstance(fields, dict):
            stack.extend(v for v in fields.values() if isinstance(v, A.Expr))


def _quantifier_edges(e: A.Expr, positive: bool, graph: nx.DiGraph,
                      univ_in_scope: tuple) -> None:
    """Add quantifier-alternation edges: ∀x..∃y ⇒ sort(x) → sort(y)."""
    if isinstance(e, A.UnOp) and e.op == "!":
        _quantifier_edges(e.operand, not positive, graph, univ_in_scope)
        return
    if isinstance(e, A.BinOp):
        if e.op == "==>":
            _quantifier_edges(e.lhs, not positive, graph, univ_in_scope)
            _quantifier_edges(e.rhs, positive, graph, univ_in_scope)
            return
        if e.op in ("&&", "||"):
            _quantifier_edges(e.lhs, positive, graph, univ_in_scope)
            _quantifier_edges(e.rhs, positive, graph, univ_in_scope)
            return
        if e.op == "<==>":
            for pol in (positive, not positive):
                _quantifier_edges(e.lhs, pol, graph, univ_in_scope)
                _quantifier_edges(e.rhs, pol, graph, univ_in_scope)
            return
    if isinstance(e, (A.ForAllE, A.ExistsE)):
        is_univ = isinstance(e, A.ForAllE) == positive
        if is_univ:
            scope = univ_in_scope + tuple(t for _, t in e.bound)
            _quantifier_edges(e.body, positive, graph, scope)
        else:
            for _, exist_t in e.bound:
                for univ_t in univ_in_scope:
                    graph.add_edge(univ_t.name, exist_t.name)
            _quantifier_edges(e.body, positive, graph, univ_in_scope)
        return
    # Atoms: our language nests quantifiers only through boolean structure.


def check_epr_module(mod: A.Module) -> list[EprViolation]:
    """All EPR violations of a module (empty list = well-formed)."""
    violations: list[EprViolation] = []
    graph = nx.DiGraph()
    for fn in mod.functions.values():
        where = f"{mod.name}.{fn.name}"
        for p in fn.params:
            if not _is_epr_type(p.vtype):
                violations.append(EprViolation(
                    where, f"parameter {p.name}: type {p.vtype.name} is not "
                           f"an uninterpreted EPR sort", fn.span))
        if fn.ret is not None and not _is_epr_type(fn.ret[1]):
            violations.append(EprViolation(
                where, f"return type {fn.ret[1].name} is not an EPR sort",
                fn.span))
        exprs = list(fn.requires) + list(fn.ensures)
        if isinstance(fn.body, A.Expr):
            exprs.append(fn.body)
        for e in exprs:
            _expr_violations(e, where, violations, fn.span)
            _quantifier_edges(e, True, graph, ())
        # Function edges: non-boolean spec functions map argument sorts to
        # the result sort; a sort cycle breaks decidability.
        if fn.is_spec and fn.ret is not None:
            ret_t = fn.ret[1]
            if not isinstance(ret_t, VT.BoolType):
                for p in fn.params:
                    if not isinstance(p.vtype, VT.BoolType):
                        graph.add_edge(p.vtype.name, ret_t.name)
    cycle = find_cycle(graph)
    if cycle is not None:
        path = " -> ".join(str(a) for a, _ in cycle) + f" -> {cycle[-1][1]}"
        violations.append(EprViolation(
            mod.name,
            f"quantifier-alternation/function graph has a cycle: {path}"))
    return violations


def epr_config() -> VcConfig:
    """Verifier configuration for EPR modules: MBQI on, generous budgets."""
    return VcConfig(mbqi=True,
                    solver_config=SolverConfig(mbqi=True, max_rounds=200,
                                               max_instantiations=60000,
                                               mbqi_max_universe=14))


def verify_epr_module(mod: A.Module,
                      config: Optional[VcConfig] = None) -> ModuleResult:
    """Check EPR well-formedness, then verify with complete instantiation.

    Raises :class:`EprError` if the module steps outside EPR — the paper's
    `#[epr_mode]` attribute check.
    """
    violations = check_epr_module(mod)
    if violations:
        raise EprError(violations)
    return VcGen(mod, config or epr_config()).verify_module()
