"""The unified programmatic front door: ``Session`` + ``VerifyConfig``.

Everything tunable about a verification run — parallelism, proof cache,
diagnostics, per-obligation timeouts, and the incremental/delta solving
strategies — lives in one frozen :class:`VerifyConfig`.  The historical
``REPRO_*`` environment knobs are parsed in exactly one place,
:meth:`VerifyConfig.from_env`; every other module (the scheduler, the
proof cache, the lang helpers) asks this module instead of touching
``os.environ`` itself.

Typical usage::

    from repro.api import Session

    session = Session(jobs=4, cache_dir=".pv_cache", incremental=True)
    result = session.verify_module(mod)     # detailed ModuleResult
    session.verify(mod)                     # raises VerificationFailure
    report = session.diagnose(mod)          # diagnostics forced on

A ``Session`` owns one :class:`~repro.vc.cache.ProofCache` instance and
one aggregate :class:`~repro.smt.solver.Stats`, so verifying several
modules through the same session shares cache-hit bookkeeping the way a
single CLI invocation of Verus would.

The knob soup is collapsed behind **automation profiles**
(:mod:`repro.profiles`): ``VerifyConfig.profile`` names a detent on the
automation dial (``default`` / ``frugal`` / ``aggressive`` /
``nonlinear`` / ``bitvector`` / ``epr``), and the run-level fields it
implies (``incremental``, ``retries``, ``max_steps``) default to the
profile's values unless set explicitly — an explicit field always wins.
``VerifyConfig.portfolio`` enables racing: stubborn obligations are
re-discharged under that many alternative profiles, and the recorded
winner (the auto-tuner) is tried first on later runs.

Environment knobs (all optional, read only by :meth:`from_env`):

* ``REPRO_PROFILE`` — automation profile name (default ``default``).
* ``REPRO_PORTFOLIO`` — portfolio race width for stubborn obligations:
  an integer, or any other truthy value for the default width of 3
  (``0``/unset = racing off).
* ``REPRO_JOBS`` — worker count (``1`` = serial, the default).
* ``REPRO_CACHE_DIR`` — enable the content-addressed proof cache here.
* ``REPRO_DIAG`` — truthy to diagnose every failed obligation.
* ``REPRO_JOB_TIMEOUT`` — per-obligation soft deadline in seconds
  (parallel *and* serial runs honor it).
* ``REPRO_INCREMENTAL`` — truthy to discharge each function's
  obligations in one warm solver under push/pop scopes.
* ``REPRO_DELTA`` — truthy to skip re-planning functions whose
  transitive spec dependencies are unchanged (requires the cache).
* ``REPRO_ANALYZE`` — truthy to run the :mod:`repro.analysis` static
  passes before planning and reject modules with error findings
  without issuing a single SMT query.
* ``REPRO_RETRIES`` — max retry-escalation attempts per failed /
  resource-out / crashed obligation (``0`` = ladder off, the default).
* ``REPRO_MAX_STEPS`` — machine-independent solver step budget per
  check; exhaustion yields a structured ``resource-out`` verdict.
* ``REPRO_FAULT_PLAN`` — a :mod:`repro.resilience.faults` plan string;
  the scheduler installs it around each ``run_module`` for
  seed-reproducible chaos testing.
* ``REPRO_JOURNAL_DIR`` — directory for crash-resumable run journals
  (one per module); killed runs resume via
  ``Session.verify_module(resume=...)``.
* ``REPRO_TRIAGE`` — static proving tier (:mod:`repro.analysis.absint`):
  ``on`` discharges statically-entailed obligations with no solver,
  ``off`` disables the tier, ``shadow`` runs tier *and* solver and
  fails loudly on disagreement; unset = profile default.
* ``REPRO_CACHE_TIERS`` — tier spec for the proof cache
  (``mem,disk,net``; requires ``REPRO_CACHE_DIR``): unset keeps the
  flat disk store, otherwise a
  :class:`~repro.cache.tiers.TieredProofCache` is built.  The network
  tier stays inert until a host (the daemon, a test harness) attaches a
  datagram fabric, so the spec is safe to set everywhere.
* ``REPRO_CACHE_MEM_BUDGET`` — byte budget for the in-memory LRU tier
  (default 4 MiB).
* ``REPRO_CACHE_NET_TIMEOUT`` — per-request deadline in seconds for the
  network tier (default 0.05).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Optional

PROFILE_ENV = "REPRO_PROFILE"
PORTFOLIO_ENV = "REPRO_PORTFOLIO"
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DIAG_ENV = "REPRO_DIAG"
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
INCREMENTAL_ENV = "REPRO_INCREMENTAL"
DELTA_ENV = "REPRO_DELTA"
ANALYZE_ENV = "REPRO_ANALYZE"
RETRIES_ENV = "REPRO_RETRIES"
MAX_STEPS_ENV = "REPRO_MAX_STEPS"
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"
TRIAGE_ENV = "REPRO_TRIAGE"
CACHE_TIERS_ENV = "REPRO_CACHE_TIERS"
CACHE_MEM_BUDGET_ENV = "REPRO_CACHE_MEM_BUDGET"
CACHE_NET_TIMEOUT_ENV = "REPRO_CACHE_NET_TIMEOUT"

_FALSY = ("", "0", "false", "no", "off")


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSY


def _env_flag(name: str):
    """Tri-state env flag: None when unset/empty (let the profile
    decide), else the parsed boolean (an explicit ``0`` really means
    "off", even under a profile that defaults it on)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return None
    return raw.strip().lower() not in _FALSY


def _parse_triage(raw) -> Optional[str]:
    """Tri-state triage mode from ``$REPRO_TRIAGE``: None when unset
    (profile decides), else ``"on"``/``"off"``/``"shadow"`` —
    ``shadow`` by name, any other truthy value = on, falsy = off."""
    if raw is None or raw.strip() == "":
        return None
    raw = raw.strip().lower()
    if raw == "shadow":
        return "shadow"
    return "off" if raw in _FALSY else "on"


def _parse_portfolio(raw) -> int:
    """Race width from ``$REPRO_PORTFOLIO``: an int, or any other
    truthy value for the default width of 3."""
    if raw is None:
        return 0
    raw = raw.strip()
    try:
        return max(0, int(raw))
    except ValueError:
        return 0 if raw.lower() in _FALSY else 3


@dataclass(frozen=True)
class VerifyConfig:
    """Frozen bundle of run-level verification knobs.

    ``profile``         automation-profile name (:mod:`repro.profiles`);
                        the profile supplies the solver knobs and the
                        defaults for ``incremental``/``retries``/
                        ``max_steps`` left unset.
    ``portfolio``       portfolio race width: re-discharge stubborn
                        obligations under this many alternative
                        profiles (0 = off).
    ``jobs``            worker processes; obligations fan out when > 1.
    ``cache_dir``       proof-cache directory, or None to disable.
    ``diagnostics``     attach a full Diagnostic to every failure.
    ``job_timeout``     per-obligation soft deadline in seconds.
    ``incremental``     warm per-function solver contexts (push/pop);
                        None = profile default.
    ``delta``           skip functions with unchanged dependency
                        fingerprints (needs ``cache_dir``).
    ``analyze``         run the static-analysis gate before planning;
                        error findings reject the module solver-free.
    ``retries``         retry-escalation attempts per failed/resource-out
                        /crashed obligation (0 = ladder off; None =
                        profile default).
    ``max_steps``       per-check solver step budget; exhaustion yields
                        a ``resource-out`` verdict instead of a hang
                        (None = profile default).
    ``fault_plan``      a deterministic fault-injection plan string
                        (see :mod:`repro.resilience.faults`).
    ``journal_dir``     directory for crash-resumable run journals.
    ``triage``          static proving tier mode: ``"on"``/``"off"``/
                        ``"shadow"``; None = profile default.
    ``cache_tiers``     proof-cache tier spec (``"mem,disk,net"``); None
                        keeps the flat disk store.  Needs ``cache_dir``.
    ``cache_mem_budget``  byte budget for the in-memory LRU tier.
    ``cache_net_timeout`` per-request network-tier deadline (seconds).

    The tri-state fields resolve through the ``effective_*`` properties;
    everything downstream (``Session.scheduler``, the daemon) reads
    those, never the raw fields, so a profile default and an explicit
    value behave identically once a scheduler is built.
    """

    profile: str = "default"
    portfolio: int = 0
    jobs: int = 1
    cache_dir: Optional[str] = None
    diagnostics: bool = False
    job_timeout: Optional[float] = None
    incremental: Optional[bool] = None
    delta: bool = False
    analyze: bool = False
    retries: Optional[int] = None
    max_steps: Optional[int] = None
    fault_plan: Optional[str] = None
    journal_dir: Optional[str] = None
    triage: Optional[str] = None
    cache_tiers: Optional[str] = None
    cache_mem_budget: Optional[int] = None
    cache_net_timeout: Optional[float] = None

    @classmethod
    def from_env(cls, **overrides) -> "VerifyConfig":
        """Build a config from the ``REPRO_*`` environment.

        This classmethod is the *only* reader of those variables.
        Keyword overrides with non-``None`` values replace the
        corresponding env-derived field.
        """
        raw_jobs = os.environ.get(JOBS_ENV)
        try:
            jobs = max(1, int(raw_jobs)) if raw_jobs else 1
        except ValueError:
            jobs = 1
        raw_timeout = os.environ.get(JOB_TIMEOUT_ENV)
        try:
            job_timeout = float(raw_timeout) if raw_timeout else None
        except ValueError:
            job_timeout = None
        raw_retries = os.environ.get(RETRIES_ENV)
        try:
            retries = max(0, int(raw_retries)) if raw_retries else None
        except ValueError:
            retries = None
        raw_steps = os.environ.get(MAX_STEPS_ENV)
        try:
            max_steps = max(1, int(raw_steps)) if raw_steps else None
        except ValueError:
            max_steps = None
        raw_budget = os.environ.get(CACHE_MEM_BUDGET_ENV)
        try:
            mem_budget = max(0, int(raw_budget)) if raw_budget else None
        except ValueError:
            mem_budget = None
        raw_net_timeout = os.environ.get(CACHE_NET_TIMEOUT_ENV)
        try:
            net_timeout = (float(raw_net_timeout) if raw_net_timeout
                           else None)
        except ValueError:
            net_timeout = None
        cfg = cls(profile=os.environ.get(PROFILE_ENV) or "default",
                  portfolio=_parse_portfolio(os.environ.get(PORTFOLIO_ENV)),
                  jobs=jobs,
                  cache_dir=os.environ.get(CACHE_DIR_ENV) or None,
                  diagnostics=_env_truthy(DIAG_ENV),
                  job_timeout=job_timeout,
                  incremental=_env_flag(INCREMENTAL_ENV),
                  delta=_env_truthy(DELTA_ENV),
                  analyze=_env_truthy(ANALYZE_ENV),
                  retries=retries,
                  max_steps=max_steps,
                  fault_plan=os.environ.get(FAULT_PLAN_ENV) or None,
                  journal_dir=os.environ.get(JOURNAL_DIR_ENV) or None,
                  triage=_parse_triage(os.environ.get(TRIAGE_ENV)),
                  cache_tiers=os.environ.get(CACHE_TIERS_ENV) or None,
                  cache_mem_budget=mem_budget,
                  cache_net_timeout=net_timeout)
        return cfg.replace(**overrides) if overrides else cfg

    def replace(self, **overrides) -> "VerifyConfig":
        """A copy with the given non-``None`` fields replaced."""
        live = {k: v for k, v in overrides.items() if v is not None}
        unknown = set(live) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise TypeError(f"unknown VerifyConfig fields: {sorted(unknown)}")
        return dataclasses.replace(self, **live) if live else self

    # ------------------------------------------- profile-derived defaults

    @property
    def automation_profile(self):
        """The :class:`~repro.profiles.AutomationProfile` this config
        names; raises :class:`~repro.profiles.UnknownProfileError` for
        an unrecognized name."""
        from .profiles import get_profile
        return get_profile(self.profile)

    @property
    def effective_incremental(self) -> bool:
        if self.incremental is not None:
            return self.incremental
        return self.automation_profile.default_incremental

    @property
    def effective_retries(self) -> int:
        if self.retries is not None:
            return self.retries
        return self.automation_profile.default_retries

    @property
    def effective_max_steps(self) -> Optional[int]:
        if self.max_steps is not None:
            return self.max_steps
        return self.automation_profile.max_steps

    @property
    def effective_triage(self) -> str:
        if self.triage is not None:
            return self.triage
        return "on" if self.automation_profile.default_triage else "off"


class Session:
    """One verification session: a config plus shared cache/stats state.

    ``Session(config)`` takes an explicit :class:`VerifyConfig`;
    ``Session(jobs=4, incremental=True)`` layers keyword overrides over
    :meth:`VerifyConfig.from_env`.  The proof cache (when configured) is
    opened once and shared by every scheduler the session builds, so
    cross-module cache statistics accumulate like a single tool run.
    """

    def __init__(self, config: Optional[VerifyConfig] = None, cache=None,
                 warm_pool=None, tuner=None, **overrides):
        if config is None:
            config = VerifyConfig.from_env(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        # Resolve the profile eagerly so an unknown name fails at
        # session construction, not mid-run.
        config.automation_profile
        self._cache = None
        self._cache_opened = False
        # Auto-tuner for portfolio racing: explicit injection wins;
        # otherwise one is opened beside the proof cache when racing is
        # enabled (no cache dir -> nowhere durable to learn -> None).
        self._tuner = tuner
        self._tuner_opened = tuner is not None
        if cache is not None:
            # An already-open ProofCache injected directly (tests, and
            # the legacy lang shims, pass one around).
            self._cache = cache
            self._cache_opened = True
        # Warm solver-context pool (repro.server.warm.SolverPool).  Pass
        # an existing pool to share residency across sessions (the
        # daemon does), or ``True`` for a private default-budget pool.
        # Only meaningful with ``incremental=True`` — warm groups are
        # the acquire/release sites.  A pool passed in is *borrowed*:
        # close() only clears pools this session created.
        self._owns_pool = warm_pool is True
        if warm_pool is True:
            from .server.warm import SolverPool
            warm_pool = SolverPool()
        self.warm_pool = warm_pool
        self._closed = False

    # ------------------------------------------------------------ plumbing

    @property
    def cache(self):
        """The session's proof cache (or None): a
        :class:`~repro.cache.tiers.TieredProofCache` when
        ``config.cache_tiers`` is set, the flat
        :class:`~repro.cache.store.ProofCache` otherwise.  A session
        built without a network fabric leaves the tiered cache's net
        tier unattached (inert); hosts like the daemon inject a fully
        wired cache via ``Session(cfg, cache=...)`` instead."""
        if not self._cache_opened:
            self._cache_opened = True
            if self.config.cache_dir:
                if self.config.cache_tiers:
                    from .cache.tiers import TieredProofCache
                    self._cache = TieredProofCache(
                        self.config.cache_dir,
                        tiers=self.config.cache_tiers,
                        mem_budget=self.config.cache_mem_budget,
                        net_timeout=self.config.cache_net_timeout)
                else:
                    from .cache.store import ProofCache
                    self._cache = ProofCache(self.config.cache_dir)
        return self._cache

    @property
    def tuner(self):
        """The session's :class:`~repro.profiles.ProfileTuner` (or None).

        Lazily opened under the proof-cache directory when portfolio
        racing is enabled; sessions without a cache dir race statelessly.
        """
        if not self._tuner_opened:
            self._tuner_opened = True
            if self.config.portfolio > 0 and self.config.cache_dir:
                from .profiles import ProfileTuner
                self._tuner = ProfileTuner.for_cache_dir(self.config.cache_dir)
        return self._tuner

    def scheduler(self, journal=None):
        """A fresh :class:`~repro.vc.scheduler.Scheduler` wired to this
        session's config and shared cache.

        ``journal`` overrides the config's ``journal_dir`` — a journal
        file/directory path or an open ``RunJournal`` (used by
        :meth:`verify_module`'s ``resume=`` argument).
        """
        from .vc.scheduler import Scheduler
        cfg = self.config
        cache = self.cache
        return Scheduler(jobs=cfg.jobs,
                         cache=cache if cache is not None else False,
                         timeout=cfg.job_timeout,
                         diagnostics=cfg.diagnostics,
                         incremental=cfg.effective_incremental,
                         delta=cfg.delta,
                         analyze=cfg.analyze,
                         retries=cfg.effective_retries,
                         max_steps=cfg.effective_max_steps,
                         fault_plan=cfg.fault_plan,
                         journal=journal if journal is not None
                         else cfg.journal_dir,
                         solver_pool=self.warm_pool,
                         profile=cfg.profile,
                         portfolio=cfg.portfolio,
                         tuner=self.tuner,
                         triage=cfg.effective_triage)

    # ------------------------------------------------------------- verbs

    def verify_module(self, mod, vc_config=None, resume=None):
        """Verify a module, returning the detailed ``ModuleResult``.

        ``resume`` names a run journal (a ``*.journal`` file or a
        journal directory) from a previous — possibly killed — run of
        the same module: obligations whose digests it records are
        replayed instead of re-solved, and newly discharged goals are
        appended so the run stays resumable if killed again.
        """
        from .vc.wp import VcGen
        return VcGen(mod, vc_config).verify_module(
            self.scheduler(journal=resume))

    def verify(self, mod, vc_config=None):
        """Verify a module; raise ``VerificationFailure`` on failure."""
        from .vc.errors import VerificationFailure
        result = self.verify_module(mod, vc_config)
        if not result.ok:
            raise VerificationFailure(result)
        return result

    def diagnose(self, mod, vc_config=None):
        """Verify with diagnostics forced on; never raises."""
        from .vc.wp import VcGen
        scheduler = self.scheduler()
        scheduler.diagnostics = True
        return VcGen(mod, vc_config).verify_module(scheduler)

    def analyze(self, mod, vc_config=None):
        """Run the static-analysis passes only; no solver is constructed.

        Returns the :class:`repro.analysis.AnalysisReport` regardless of
        the session's ``analyze`` flag (that flag controls the
        verification-time gate, not this explicit verb).
        """
        from .analysis import analyze_module
        return analyze_module(mod, vc_config)

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release held resources: warm solver contexts this session
        owns are dropped (borrowed pools are left to their owner).
        Idempotent; the session stays usable for cache-only work but
        builds no further warm contexts from an owned pool."""
        if self._closed:
            return
        self._closed = True
        if self.warm_pool is not None and self._owns_pool:
            self.warm_pool.close()
            self.warm_pool = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Session {self.config}>"
