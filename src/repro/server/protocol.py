"""The wire protocol: newline-delimited JSON, one object per line.

Requests
--------

Every request is one JSON object terminated by ``\\n``::

    {"id": "r1", "verb": "verify", "client": "alice", "priority": 0,
     "module": {"builder": "repro.systems.plog.crc_verified:build_crc_table_module"},
     "config": {"max_steps": 20000}}

* ``id`` — caller-chosen request id, echoed on the reply (required).
* ``verb`` — one of ``verify`` / ``analyze`` / ``diagnose`` /
  ``profiles`` / ``status`` / ``shutdown`` (required).  ``profiles``
  lists the shipped automation profiles, the portfolio race order, and
  the resident auto-tuner's statistics.
* ``client`` — client name for fairness and quota accounting
  (default ``"anon"``).
* ``priority`` — integer band; higher bands are served first, requests
  within a band round-robin across clients (default ``0``).
* ``module`` — how to obtain the :class:`repro.lang.Module` (required
  for the three verification verbs):

  - ``{"builder": "dotted.module:callable"}`` imports and calls a
    zero-argument builder, or
  - ``{"source": "<python>", "builder": "build"}`` executes the given
    source and calls the named function from its namespace.  **The
    daemon executes submitted source verbatim** — it is a trusted-
    clients-only front door (localhost by default), not a sandbox.

* ``config`` — per-request :class:`~repro.api.VerifyConfig` overrides,
  restricted to :data:`ALLOWED_OVERRIDES` (budget/strategy knobs);
  infrastructure fields (cache dir, jobs, fault plans, journals) are
  server-owned and rejected.

Replies
-------

One JSON object per line, matched to the request by ``id``.  Replies
may arrive out of submission order (workers run concurrently)::

    {"id": "r1", "status": "ok", "result": {...ModuleResult.to_json()...},
     "server": {"path": "delta", "queued_ms": 1.9, "solvers_built": 0, ...}}

``status`` is ``ok``, ``busy`` (queue full or quota exhausted — see
``reason``), or ``error`` (malformed request / builder failure — see
``error``).
"""

from __future__ import annotations

import json
from typing import Optional

VERIFY = "verify"
ANALYZE = "analyze"
DIAGNOSE = "diagnose"
PROFILES = "profiles"
STATUS = "status"
SHUTDOWN = "shutdown"

VERBS = (VERIFY, ANALYZE, DIAGNOSE, PROFILES, STATUS, SHUTDOWN)
MODULE_VERBS = (VERIFY, ANALYZE, DIAGNOSE)

OK = "ok"
BUSY = "busy"
ERROR = "error"

#: VerifyConfig fields a client may override per request.  Everything
#: else (cache_dir, jobs, fault_plan, journal_dir) is infrastructure the
#: daemon owns; letting clients touch it would corrupt shared state.
#: ``profile``/``portfolio`` are per-request automation choices: an
#: unknown profile name passes validation here and becomes a structured
#: ``error`` reply (listing the shipped names) at request time.
ALLOWED_OVERRIDES = ("diagnostics", "job_timeout", "incremental", "delta",
                     "analyze", "retries", "max_steps", "profile",
                     "portfolio", "triage")

DEFAULT_CLIENT = "anon"


class ProtocolError(ValueError):
    """A structurally invalid request (maps to an ``error`` reply)."""


def encode(obj: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def validate_request(obj: dict) -> dict:
    """Normalize and validate one decoded request.

    Returns ``{id, verb, client, priority, module, config}`` with
    defaults filled in; raises :class:`ProtocolError` on anything the
    dispatcher could not act on.
    """
    req_id = obj.get("id")
    if not isinstance(req_id, (str, int)):
        raise ProtocolError("missing or non-scalar 'id'")
    verb = obj.get("verb")
    if verb not in VERBS:
        raise ProtocolError(f"unknown verb {verb!r} (expected one of "
                            f"{', '.join(VERBS)})")
    client = obj.get("client", DEFAULT_CLIENT)
    if not isinstance(client, str) or not client:
        raise ProtocolError("'client' must be a non-empty string")
    priority = obj.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("'priority' must be an integer")
    module = obj.get("module")
    if verb in MODULE_VERBS:
        module = validate_module_spec(module)
    else:
        module = None
    config = obj.get("config") or {}
    if not isinstance(config, dict):
        raise ProtocolError("'config' must be an object")
    bad = sorted(set(config) - set(ALLOWED_OVERRIDES))
    if bad:
        raise ProtocolError(
            f"config overrides not permitted: {bad} "
            f"(allowed: {', '.join(ALLOWED_OVERRIDES)})")
    return {"id": req_id, "verb": verb, "client": client,
            "priority": priority, "module": module, "config": config}


def validate_module_spec(spec) -> dict:
    if not isinstance(spec, dict):
        raise ProtocolError("'module' must be an object with a 'builder'")
    builder = spec.get("builder")
    source = spec.get("source")
    if source is not None:
        if not isinstance(source, str):
            raise ProtocolError("'module.source' must be a string")
        if not isinstance(builder, str) or not builder:
            raise ProtocolError("source form needs 'builder': the name "
                                "of a callable defined by the source")
        return {"source": source, "builder": builder}
    if not isinstance(builder, str) or ":" not in builder:
        raise ProtocolError("'module.builder' must be 'dotted.module:callable'")
    return {"builder": builder}


def build_module(spec: dict):
    """Materialize the :class:`repro.lang.Module` a request names.

    Import errors, missing attributes, and builder exceptions surface
    as :class:`ProtocolError` so they become structured ``error``
    replies instead of killing the worker.
    """
    import importlib

    try:
        if "source" in spec:
            namespace: dict = {}
            exec(compile(spec["source"], "<client-module>", "exec"),
                 namespace)
            builder = namespace.get(spec["builder"])
            if not callable(builder):
                raise ProtocolError(
                    f"source does not define callable {spec['builder']!r}")
        else:
            mod_path, _, attr = spec["builder"].partition(":")
            builder = getattr(importlib.import_module(mod_path), attr, None)
            if not callable(builder):
                raise ProtocolError(
                    f"no callable {attr!r} in module {mod_path!r}")
        return builder()
    except ProtocolError:
        raise
    except Exception as exc:  # builder code is arbitrary — contain it
        raise ProtocolError(
            f"module builder failed: {type(exc).__name__}: {exc}") from exc


# ---------------------------------------------------------------------- replies

def ok_reply(req_id, result: Optional[dict] = None,
             server: Optional[dict] = None) -> dict:
    out = {"id": req_id, "status": OK}
    if result is not None:
        out["result"] = result
    if server is not None:
        out["server"] = server
    return out


def busy_reply(req_id, reason: str, detail: Optional[dict] = None) -> dict:
    out = {"id": req_id, "status": BUSY, "reason": reason}
    if detail:
        out.update(detail)
    return out


def error_reply(req_id, message: str) -> dict:
    return {"id": req_id, "status": ERROR, "error": message}
