"""Daemon configuration: the ``REPRO_SERVER_*`` knobs, read once.

Mirrors :class:`repro.api.VerifyConfig`'s discipline — a frozen
dataclass whose :meth:`ServerConfig.from_env` classmethod is the *only*
reader of the environment.  The daemon builds one instance at startup
and never consults ``os.environ`` again; per-request variation happens
through :meth:`repro.api.VerifyConfig.replace` overrides instead.

Knobs (all optional):

* ``REPRO_SERVER_HOST`` — bind address (default ``127.0.0.1``).
* ``REPRO_SERVER_PORT`` — TCP port; ``0`` binds an ephemeral port
  (default ``9178``).
* ``REPRO_SERVER_QUEUE_DEPTH`` — max queued requests before new work
  gets a structured ``BUSY`` reply (default ``64``).
* ``REPRO_SERVER_WORKERS`` — resident worker count (default ``4``).
* ``REPRO_SERVER_WARM_BUDGET`` — warm solver-context pool budget in
  bytes of scope-0 query text (default 32 MiB).
* ``REPRO_SERVER_CLIENT_QUOTA`` — per-client solver *step* budget
  charged against a ledger; ``0`` = unlimited (the default).
* ``REPRO_SERVER_MAX_SOURCE`` — max request line length in bytes,
  bounding inline module source (default 1 MiB).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

HOST_ENV = "REPRO_SERVER_HOST"
PORT_ENV = "REPRO_SERVER_PORT"
QUEUE_DEPTH_ENV = "REPRO_SERVER_QUEUE_DEPTH"
WORKERS_ENV = "REPRO_SERVER_WORKERS"
WARM_BUDGET_ENV = "REPRO_SERVER_WARM_BUDGET"
CLIENT_QUOTA_ENV = "REPRO_SERVER_CLIENT_QUOTA"
MAX_SOURCE_ENV = "REPRO_SERVER_MAX_SOURCE"

DEFAULT_PORT = 9178


def _env_int(name: str, default: int, floor: int = 0) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return max(floor, int(raw))
    except ValueError:
        return default


@dataclass(frozen=True)
class ServerConfig:
    """Frozen bundle of daemon-level knobs (see module docstring)."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    queue_depth: int = 64
    workers: int = 4
    warm_budget: int = 32 * 1024 * 1024
    client_quota: int = 0
    max_source: int = 1024 * 1024

    @classmethod
    def from_env(cls, **overrides) -> "ServerConfig":
        """Build a config from the ``REPRO_SERVER_*`` environment.

        The single env reader, like :meth:`VerifyConfig.from_env`.
        Keyword overrides with non-``None`` values win.
        """
        cfg = cls(host=os.environ.get(HOST_ENV) or "127.0.0.1",
                  port=_env_int(PORT_ENV, DEFAULT_PORT),
                  queue_depth=_env_int(QUEUE_DEPTH_ENV, 64, floor=1),
                  workers=_env_int(WORKERS_ENV, 4, floor=1),
                  warm_budget=_env_int(WARM_BUDGET_ENV, 32 * 1024 * 1024),
                  client_quota=_env_int(CLIENT_QUOTA_ENV, 0),
                  max_source=_env_int(MAX_SOURCE_ENV, 1024 * 1024,
                                      floor=4096))
        return cfg.replace(**overrides) if overrides else cfg

    def replace(self, **overrides) -> "ServerConfig":
        """A copy with the given non-``None`` fields replaced."""
        live = {k: v for k, v in overrides.items() if v is not None}
        unknown = set(live) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise TypeError(f"unknown ServerConfig fields: {sorted(unknown)}")
        return dataclasses.replace(self, **live) if live else self
