"""Per-client resource quotas over the solver's step budgets.

The solver already has a machine-independent resource guard: the
``max_steps`` per-check budget (``REPRO_MAX_STEPS``), where a step is a
solver round, theory conflict, or quantifier instantiation.  The ledger
lifts that unit to the client level: each client gets a budget of steps
per daemon lifetime, every verification request is *admitted* with an
effective ``max_steps`` no larger than the client's remaining balance,
and the steps the request actually consumed (conflicts + rounds +
instantiations from the result stats) are charged afterwards.

A client that has spent its budget gets structured ``BUSY`` replies
with ``reason: "quota"`` — not errors, and not silent queueing — until
the operator resets the ledger.  Budget ``0`` disables accounting.
"""

from __future__ import annotations

import threading
from typing import Optional

#: Stats counters that constitute "steps spent" — must mirror the
#: dimensions the solver's own max_steps budget meters.
STEP_COUNTERS = ("conflicts", "rounds", "instantiations",
                 "mbqi_instantiations")


def steps_spent(stats: dict) -> int:
    """Steps a finished request consumed, from its result stats."""
    return sum(int(stats.get(k, 0) or 0) for k in STEP_COUNTERS)


class QuotaExceeded(Exception):
    """Client balance exhausted — admission refused (maps to BUSY)."""

    def __init__(self, client: str, used: int, budget: int):
        super().__init__(f"client {client!r} exhausted its step quota "
                         f"({used}/{budget})")
        self.client = client
        self.used = used
        self.budget = budget


class QuotaLedger:
    """Thread-safe per-client step accounting."""

    def __init__(self, budget: int = 0):
        self.budget = max(0, int(budget))
        self._used: dict[str, int] = {}
        self._refused: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.budget > 0

    def remaining(self, client: str) -> Optional[int]:
        """Steps left for ``client`` (None = unlimited)."""
        if not self.enabled:
            return None
        with self._lock:
            return max(0, self.budget - self._used.get(client, 0))

    def admit(self, client: str,
              requested_max_steps: Optional[int]) -> Optional[int]:
        """Admission-check one request; returns its effective max_steps.

        The per-request cap is the smaller of what the request asked for
        and the *full* per-client budget — deliberately NOT the running
        balance.  A balance-derived cap would give every request a
        different ``max_steps``, and budgets participate in proof-cache
        and delta fingerprints (a verdict under one budget says nothing
        about another), so repeat clients would never hit a cache again.
        The cost is bounded overdraft: the admitting request may spend
        up to one budget past the line before :class:`QuotaExceeded`
        refuses the next one.
        """
        if not self.enabled:
            return requested_max_steps
        with self._lock:
            used = self._used.get(client, 0)
            if used >= self.budget:
                self._refused[client] = self._refused.get(client, 0) + 1
                raise QuotaExceeded(client, used, self.budget)
        if requested_max_steps is None:
            return self.budget
        return min(requested_max_steps, self.budget)

    def charge(self, client: str, steps: int) -> None:
        """Record the steps a completed request actually consumed."""
        if not self.enabled or steps <= 0:
            return
        with self._lock:
            self._used[client] = self._used.get(client, 0) + int(steps)

    def snapshot(self) -> dict:
        """JSON-able per-client balances for the ``status`` verb."""
        with self._lock:
            return {
                "budget": self.budget,
                "clients": {
                    c: {"used": u,
                        "remaining": max(0, self.budget - u),
                        "refused": self._refused.get(c, 0)}
                    for c, u in sorted(self._used.items())
                },
            }
