"""Priority request queue with per-client fairness and backpressure.

Scheduling policy, in order:

1. **Priority bands** — higher integer bands are served strictly first.
2. **Round-robin within a band** — clients in the same band take turns;
   one client streaming 100 requests cannot starve another's single
   request (it waits at most one rotation, not 100 slots).
3. **FIFO within a client** — a client's own requests keep their order.

Backpressure is a hard bound on total depth: ``push`` on a full queue
raises :class:`QueueFull`, which the daemon turns into a structured
``BUSY`` reply instead of buffering unboundedly.

The policy lives in the synchronous :class:`FairQueueCore` (unit-testable
without an event loop); :class:`FairQueue` wraps it with an
``asyncio.Condition`` for the daemon's workers.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Optional


class QueueFull(Exception):
    """Bounded depth exceeded — the caller should reply BUSY."""


class FairQueueCore:
    """The synchronous scheduling core (no locking, no waiting)."""

    def __init__(self, depth: int):
        self.depth = max(1, int(depth))
        self._size = 0
        # band -> client -> deque of items; rotation order is tracked per
        # band as a deque of client names (head = next to serve).
        self._bands: dict[int, dict[str, deque]] = {}
        self._rotation: dict[int, deque] = {}

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.depth

    def push(self, priority: int, client: str, item) -> None:
        if self._size >= self.depth:
            raise QueueFull(f"queue depth {self.depth} exceeded")
        band = self._bands.setdefault(priority, {})
        q = band.get(client)
        if q is None:
            q = band[client] = deque()
            self._rotation.setdefault(priority, deque()).append(client)
        q.append(item)
        self._size += 1

    def pop(self):
        """The next item per the band/round-robin/FIFO policy, or None."""
        if self._size == 0:
            return None
        for priority in sorted(self._bands, reverse=True):
            band = self._bands[priority]
            rotation = self._rotation[priority]
            while rotation:
                client = rotation[0]
                q = band.get(client)
                if not q:
                    # Client drained: drop it from the rotation entirely
                    # (it re-enters at the tail on its next push).
                    rotation.popleft()
                    band.pop(client, None)
                    continue
                item = q.popleft()
                self._size -= 1
                # Rotate: this client goes to the back of the line.
                rotation.rotate(-1)
                if not q:
                    band.pop(client, None)
                    # The rotated-to-tail entry is now stale; remove it.
                    try:
                        rotation.remove(client)
                    except ValueError:
                        pass
                if not band:
                    del self._bands[priority]
                    del self._rotation[priority]
                return item
        return None

    def snapshot(self) -> dict:
        """JSON-able depth report for the ``status`` verb."""
        by_band = {
            str(priority): {client: len(q) for client, q in band.items()}
            for priority, band in self._bands.items()
        }
        return {"depth": self._size, "capacity": self.depth,
                "by_band": by_band}


class FairQueue:
    """Asyncio front for :class:`FairQueueCore` (daemon-internal).

    ``push`` never blocks (backpressure is an exception, not a wait);
    ``pop`` suspends the worker until an item or :meth:`close`.
    """

    def __init__(self, depth: int):
        self.core = FairQueueCore(depth)
        self._cond = asyncio.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self.core)

    async def push(self, priority: int, client: str, item) -> None:
        async with self._cond:
            if self._closed:
                raise QueueFull("queue closed")
            self.core.push(priority, client, item)  # may raise QueueFull
            self._cond.notify()

    async def pop(self):
        """Next item, or ``None`` once the queue is closed and drained."""
        async with self._cond:
            while True:
                item = self.core.pop()
                if item is not None:
                    return item
                if self._closed:
                    return None
                await self._cond.wait()

    async def close(self) -> None:
        async with self._cond:
            self._closed = True
            self._cond.notify_all()

    def snapshot(self) -> dict:
        return self.core.snapshot()
