"""The daemon: an asyncio front door over a resident worker pool.

Request lifecycle (also documented in DESIGN.md)::

    accept → validate → quota admit → fair queue → worker thread:
        build module → Session(base config ⊕ request overrides,
                               shared SolverPool, shared cache root)
        → delta lookup → warm-context lookup → solve residues
    → reply (out-of-order by design, matched by request id)

Residency is the point: one :class:`~repro.server.warm.SolverPool` and
one proof-cache root are shared by every request, so a client
re-submitting an edited module pays only for functions whose
dependency fingerprints changed (``vc/delta.py``), and even those
land on a pre-warmed scope-0 solver context when their assertion
prefix is unchanged.

Concurrency model: the event loop owns all I/O (accept, queue,
replies); verification itself runs on ``ServerConfig.workers``
dedicated threads via ``run_in_executor``.  Each request gets a fresh
:class:`~repro.api.Session` (clean per-request cache counters) over the
shared infrastructure.  The term interner is thread-safe
(``smt/terms.py`` uses atomic ``setdefault``), per-check solver budgets
are per-instance, and fault plans are never installed by the daemon —
the three facts that make in-process threading sound here.

Resilience: when the base config has a ``journal_dir``, every request
appends to a per-module run journal; a daemon killed mid-request
resumes on re-submission (the journal replays finished goals before
any solving), and ``status`` lists the journals found at startup.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..api import Session, VerifyConfig
from ..smt.solver import solver_constructions
from . import protocol
from .config import ServerConfig
from .queue import FairQueue, QueueFull
from .quota import QuotaExceeded, QuotaLedger, steps_spent
from .warm import SolverPool

#: Request paths reported in replies and aggregated by ``status``.
PATH_COLD = "cold"
PATH_CACHE = "cache"
PATH_WARM = "warm"
PATH_DELTA = "delta"
PATH_JOURNAL = "journal"


class _Pending:
    """One accepted request waiting in the queue."""

    __slots__ = ("request", "writer", "wlock", "enqueued",
                 "effective_max_steps")

    def __init__(self, request: dict, writer, wlock,
                 effective_max_steps: Optional[int]):
        self.request = request
        self.writer = writer
        self.wlock = wlock
        self.enqueued = time.perf_counter()
        self.effective_max_steps = effective_max_steps


class VerifyServer:
    """The long-lived multi-client verification service."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 verify_config: Optional[VerifyConfig] = None):
        self.config = config or ServerConfig.from_env()
        base = verify_config if verify_config is not None \
            else VerifyConfig.from_env()
        # Server invariants, whatever the env said: requests run inline
        # on their worker thread (jobs=1 — the daemon's parallelism *is*
        # the worker pool), warm contexts on (they are the residency
        # win), no fault plans (the injection registry is process-global
        # and must not be armed under concurrent traffic).
        base = dataclasses.replace(base, jobs=1, incremental=True,
                                   fault_plan=None)
        if base.cache_dir:
            # Residency implies delta: with a cache root to store
            # fingerprints in, re-submissions ride the fast path.
            base = dataclasses.replace(base, delta=True)
        self.base = base
        self.pool = SolverPool(self.config.warm_budget)
        # Resident auto-tuner: shared by every request so race winners
        # learned for one client redirect everyone (no cache root ->
        # nowhere durable to learn -> requests race statelessly).
        self.tuner = None
        if base.cache_dir:
            from ..profiles import ProfileTuner
            self.tuner = ProfileTuner.for_cache_dir(base.cache_dir)
        self.ledger = QuotaLedger(self.config.client_quota)
        self.queue: Optional[FairQueue] = None     # built on start()
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-worker")
        self.port: Optional[int] = None
        self._server = None
        self._workers: list[asyncio.Task] = []
        self._conn_tasks: set = set()
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None
        self._shutting_down = False
        self._started = time.monotonic()
        self._stats_lock = threading.Lock()
        self._requests: dict[str, int] = {}        # verb -> count
        self._paths: dict[str, int] = {p: 0 for p in
                                       (PATH_COLD, PATH_CACHE, PATH_WARM,
                                        PATH_DELTA, PATH_JOURNAL)}
        self._busy = 0
        self._errors = 0
        self._cache_hits = 0
        self._cache_misses = 0
        # Static proving tier aggregates (repro.analysis.absint).
        self._static_proved = 0
        self._solvers_avoided = 0
        # Tiered proof cache residency (repro.cache): like the
        # SolverPool, one network fabric + one CacheReplica outlive
        # every request; each request gets a fresh TieredProofCache
        # (clean counters, private client endpoint) over them.
        self.replica = None
        self._cache_network = None
        self._cache_clients = 0
        self._tier_totals = {k: 0 for k in
                             ("mem_hits", "disk_hits", "net_hits",
                              "net_timeouts", "net_retries",
                              "breaker_trips", "quarantined")}
        if base.cache_dir and base.cache_tiers \
                and "net" in base.cache_tiers:
            from ..cache.replica import CacheReplica
            from ..runtime.network import Network
            self._cache_network = Network()
            self.replica = CacheReplica("cache0", self._cache_network)
            # Warm the replica from whatever the disk tier already
            # holds, so first requests after a restart hit over the
            # (simulated) wire instead of re-solving.
            from ..cache.store import ProofCache
            self.replica.seed(ProofCache(base.cache_dir).iter_entries())
        self._resumable = self._scan_journals()

    # -------------------------------------------------------------- startup

    def _scan_journals(self) -> list[str]:
        """Journals left by a previous (possibly killed) daemon run."""
        root = self.base.journal_dir
        if not root or not os.path.isdir(root):
            return []
        return sorted(name[:-len(".journal")]
                      for name in os.listdir(root)
                      if name.endswith(".journal"))

    async def start(self) -> None:
        """Bind and start serving; resolves ``self.port``."""
        self.queue = FairQueue(self.config.queue_depth)
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_source)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.replica is not None:
            self.replica.start()
        self._workers = [asyncio.create_task(self._worker())
                         for _ in range(self.config.workers)]

    async def serve_forever(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`shutdown`)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    def run(self) -> None:
        """Synchronous convenience entry point (scripts/serve.py)."""
        asyncio.run(self.serve_forever())

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, release residency.

        Idempotent and awaitable from several places at once (the
        shutdown verb, tests, signal handlers) — the first caller runs
        the teardown, everyone else awaits the same task.
        """
        self._shutting_down = True
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self._do_shutdown())
        await asyncio.shield(self._shutdown_task)

    async def _do_shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.queue is not None:
            await self.queue.close()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        # In-flight replies are out; drop connections still idling in
        # readline so no handler task outlives the loop.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.executor.shutdown(wait=True)
        self.pool.close()
        if self.replica is not None:
            self.replica.stop()
        if self._stopped is not None:
            self._stopped.set()

    # ----------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        wlock = asyncio.Lock()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, wlock, protocol.error_reply(
                        None, "request line exceeds "
                              f"{self.config.max_source} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch(line, writer, wlock)
                if self._shutting_down:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown dropped us; close below, don't propagate
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    RuntimeError):
                pass

    async def _dispatch(self, line: bytes, writer, wlock) -> None:
        req_id = None
        try:
            obj = protocol.decode_line(line)
            raw_id = obj.get("id")
            if isinstance(raw_id, (str, int)):
                req_id = raw_id     # echo it even if validation fails below
            request = protocol.validate_request(obj)
        except protocol.ProtocolError as exc:
            with self._stats_lock:
                self._errors += 1
            await self._send(writer, wlock,
                             protocol.error_reply(req_id, str(exc)))
            return
        verb = request["verb"]
        with self._stats_lock:
            self._requests[verb] = self._requests.get(verb, 0) + 1
        if verb == protocol.STATUS:
            await self._send(writer, wlock,
                             protocol.ok_reply(request["id"],
                                               result=self.status()))
            return
        if verb == protocol.PROFILES:
            await self._send(writer, wlock,
                             protocol.ok_reply(request["id"],
                                               result=self.profiles()))
            return
        if verb == protocol.SHUTDOWN:
            await self._send(writer, wlock, protocol.ok_reply(request["id"]))
            asyncio.ensure_future(self.shutdown())
            return
        # Module verbs: admission-check the quota, then queue.  The
        # admission default is the *effective* step budget (an explicit
        # base max_steps, else the base profile's).
        requested_steps = request["config"].get(
            "max_steps", self.base.effective_max_steps)
        try:
            effective = self.ledger.admit(request["client"], requested_steps)
        except QuotaExceeded as exc:
            with self._stats_lock:
                self._busy += 1
            await self._send(writer, wlock, protocol.busy_reply(
                request["id"], "quota",
                {"used": exc.used, "budget": exc.budget}))
            return
        pending = _Pending(request, writer, wlock, effective)
        try:
            await self.queue.push(request["priority"], request["client"],
                                  pending)
        except QueueFull:
            with self._stats_lock:
                self._busy += 1
            await self._send(writer, wlock, protocol.busy_reply(
                request["id"], "queue-full",
                {"depth": len(self.queue),
                 "capacity": self.config.queue_depth}))

    async def _send(self, writer, wlock, reply: dict) -> None:
        try:
            async with wlock:
                writer.write(protocol.encode(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; nothing to tell it

    # -------------------------------------------------------------- workers

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            pending = await self.queue.pop()
            if pending is None:
                return
            queued_ms = (time.perf_counter() - pending.enqueued) * 1000.0
            try:
                reply = await loop.run_in_executor(
                    self.executor, self._process, pending)
            except Exception as exc:  # worker must survive anything
                with self._stats_lock:
                    self._errors += 1
                reply = protocol.error_reply(
                    pending.request["id"],
                    f"internal error: {type(exc).__name__}: {exc}")
            server = reply.get("server")
            if isinstance(server, dict):
                server["queued_ms"] = round(queued_ms, 3)
            await self._send(pending.writer, pending.wlock, reply)

    # ------------------------------------------------------- request engine

    def _request_config(self, pending: _Pending) -> VerifyConfig:
        cfg = self.base.replace(**pending.request["config"])
        if (pending.effective_max_steps is not None
                and cfg.max_steps != pending.effective_max_steps):
            cfg = cfg.replace(max_steps=pending.effective_max_steps)
        return cfg

    def _request_cache(self, cfg: VerifyConfig):
        """A fresh TieredProofCache over the resident replica, or None
        when the request doesn't want (or the daemon doesn't have) the
        network tier.  Each request gets its own client endpoint so
        concurrent worker threads never share request/reply queues or
        counters."""
        if (self.replica is None or not cfg.cache_dir
                or not cfg.cache_tiers or "net" not in cfg.cache_tiers):
            return None
        with self._stats_lock:
            self._cache_clients += 1
            client_id = self._cache_clients
        from ..cache.tiers import TieredProofCache
        return TieredProofCache(cfg.cache_dir, tiers=cfg.cache_tiers,
                                mem_budget=cfg.cache_mem_budget,
                                net_timeout=cfg.cache_net_timeout,
                                network=self._cache_network,
                                replica_name=self.replica.name,
                                client_name=f"daemon-cli-{client_id}")

    def _process(self, pending: _Pending) -> dict:
        """Verify/analyze/diagnose one request (runs on a worker thread)."""
        from ..profiles import UnknownProfileError
        request = pending.request
        try:
            mod = protocol.build_module(request["module"])
        except protocol.ProtocolError as exc:
            with self._stats_lock:
                self._errors += 1
            return protocol.error_reply(request["id"], str(exc))
        cfg = self._request_config(pending)
        try:
            cfg.automation_profile   # fail fast on an unknown name
        except UnknownProfileError as exc:
            # A structured reply (the message lists the shipped names)
            # instead of an opaque internal error.
            with self._stats_lock:
                self._errors += 1
            return protocol.error_reply(request["id"], str(exc))
        if request["verb"] == protocol.ANALYZE:
            with Session(cfg, warm_pool=self.pool) as session:
                report = session.analyze(mod)
            payload = report.to_json()
            if cfg.effective_triage != "off":
                # Additive (schema stays v2): what the static tier would
                # discharge, per function — no solver is constructed.
                from ..analysis.absint import triage_preview
                try:
                    payload["triage"] = triage_preview(mod)
                except Exception as exc:
                    payload["triage"] = {
                        "error": f"{type(exc).__name__}: {exc}"}
            return protocol.ok_reply(request["id"], result=payload,
                                     server={"path": "analyze",
                                             "solvers_built": 0,
                                             "steps_spent": 0})
        request_cache = self._request_cache(cfg)
        built0 = solver_constructions()
        session_kwargs = {"warm_pool": self.pool, "tuner": self.tuner}
        if request_cache is not None:
            session_kwargs["cache"] = request_cache
        with Session(cfg, **session_kwargs) as session:
            if request["verb"] == protocol.DIAGNOSE:
                result = session.diagnose(mod)
            else:
                result = session.verify_module(mod)
        if request_cache is not None:
            request_cache.close()       # flush stores queued while degraded
        built = solver_constructions() - built0
        stats = result.stats or {}
        spent = steps_spent(stats)
        self.ledger.charge(request["client"], spent)
        path = self._classify(stats, built)
        with self._stats_lock:
            self._paths[path] += 1
            self._cache_hits += int(stats.get("cache_hits", 0) or 0)
            self._cache_misses += int(stats.get("cache_misses", 0) or 0)
            self._static_proved += int(stats.get("static_proved", 0) or 0)
            self._solvers_avoided += int(
                stats.get("solver_constructions_avoided", 0) or 0)
            for key in self._tier_totals:
                self._tier_totals[key] += int(stats.get(key, 0) or 0)
        server = {
            "path": path,
            "solvers_built": built,
            "steps_spent": spent,
            "delta_skips": int(stats.get("delta_skips", 0) or 0),
            "warm_pool_hits": int(stats.get("warm_pool_hits", 0) or 0),
            "cache_hits": int(stats.get("cache_hits", 0) or 0),
            "cache_misses": int(stats.get("cache_misses", 0) or 0),
            "portfolio_races": int(stats.get("portfolio_races", 0) or 0),
            "portfolio_wins": int(stats.get("portfolio_wins", 0) or 0),
            "tuner_hits": int(stats.get("tuner_hits", 0) or 0),
            "static_proved": int(stats.get("static_proved", 0) or 0),
            "solver_constructions_avoided": int(
                stats.get("solver_constructions_avoided", 0) or 0),
        }
        return protocol.ok_reply(request["id"], result=result.to_json(),
                                 server=server)

    @staticmethod
    def _classify(stats: dict, solvers_built: int) -> str:
        """Which fast path (if any) served the request — delta beats
        warm beats cache beats cold, matching how much work each skips."""
        if stats.get("delta_skips"):
            return PATH_DELTA
        if stats.get("warm_pool_hits"):
            return PATH_WARM
        if stats.get("journal_skips") and solvers_built == 0:
            return PATH_JOURNAL
        if stats.get("cache_hits") and solvers_built == 0:
            return PATH_CACHE
        return PATH_COLD

    # -------------------------------------------------------------- status

    def profiles(self) -> dict:
        """The ``profiles`` verb payload: shipped detents, the race
        order, and the resident tuner's learned-winner statistics."""
        from ..profiles import PROFILES, RACE_ORDER
        return {
            "profiles": [p.describe() for p in PROFILES.values()],
            "race_order": list(RACE_ORDER),
            "base_profile": self.base.profile,
            "base_portfolio": self.base.portfolio,
            "tuner": self.tuner.stats() if self.tuner is not None else None,
        }

    def status(self) -> dict:
        """The ``status`` verb payload."""
        with self._stats_lock:
            requests = dict(self._requests)
            paths = dict(self._paths)
            busy = self._busy
            errors = self._errors
            hits, misses = self._cache_hits, self._cache_misses
            static_proved = self._static_proved
            solvers_avoided = self._solvers_avoided
            tier_totals = dict(self._tier_totals)
        total = hits + misses
        replica_info = None
        if self.replica is not None:
            replica_info = {"name": self.replica.name,
                            "entries": len(self.replica.store),
                            "served": self.replica.served,
                            "quarantined": self.replica.store.quarantined,
                            "crashed": self.replica.crashed,
                            "merkle_root": self.replica.store.root()}
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.config.workers,
            "requests": requests,
            "paths": paths,
            "busy_replies": busy,
            "errors": errors,
            "queue": (self.queue.snapshot() if self.queue is not None
                      else {"depth": 0,
                            "capacity": self.config.queue_depth,
                            "by_band": {}}),
            "warm": self.pool.stats(),
            "quota": self.ledger.snapshot(),
            "cache": {"hits": hits, "misses": misses,
                      "hit_rate": round(hits / total, 4) if total else None,
                      "dir": self.base.cache_dir,
                      "tiers": self.base.cache_tiers,
                      "tier_counters": tier_totals,
                      "replica": replica_info},
            "triage": {"mode": self.base.effective_triage,
                       "static_proved": static_proved,
                       "solver_constructions_avoided": solvers_avoided},
            "resumable": self._resumable,
        }
