"""Warm solver-context registry: residency for the verification daemon.

The scheduler's warm-context mode (:meth:`Scheduler._run_warm_group`)
asserts one function's shared assertion prefix at scope 0 of an
incremental solver, then discharges each goal's residue under push/pop.
In batch runs the solver dies with the run; across *requests* that
prefix — context axioms, datatype declarations, spec definitional
axioms — is rebuilt from scratch every time, which is exactly the cost
residency removes.

:class:`SolverPool` keeps those scope-0 solvers alive between requests,
keyed by the content address of their prefix (canonical SMT-LIB2 text +
solver knobs, via :func:`repro.smt.fingerprint.obligation_digest`).  A
re-submitted module whose function landed on an unchanged prefix gets
the pooled solver back: learned clauses, E-graph merges, and simplex
state from the previous request carry forward, and only per-goal
residues are paid for again.

Safety rules (all enforced here or by the scheduler's hook):

* **Exclusive use** — ``acquire`` removes the entry while a request
  uses it; two threads can never share one solver.
* **Scope discipline** — solvers are released only at scope 0 (the
  per-goal residue is popped by the scheduler before release); a group
  that raises mid-goal discards its solver instead of repooling it.
* **Wear retirement** — ``max_instantiations`` budgets are *cumulative*
  over a solver's lifetime, so a long-lived context could spuriously
  resource-out where a fresh one would not.  Solvers past half their
  instantiation budget are retired on release.
* **LRU under a byte budget** — entries are charged their scope-0
  ``query_bytes``; the least recently used contexts are evicted once
  the pool exceeds ``budget_bytes``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..smt.fingerprint import obligation_digest, solver_config_key

#: Fraction of the cumulative instantiation budget a pooled solver may
#: consume before it is retired instead of re-pooled.
WEAR_FRACTION = 0.5

#: Default byte budget (32 MiB of scope-0 query text).
DEFAULT_BUDGET_BYTES = 32 * 1024 * 1024


class _Entry:
    __slots__ = ("solver", "base_qbytes", "module")

    def __init__(self, solver, base_qbytes: int, module: Optional[str]):
        self.solver = solver
        self.base_qbytes = base_qbytes
        self.module = module


class SolverPool:
    """Thread-safe LRU pool of pre-warmed incremental solver contexts."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES):
        self.budget_bytes = max(0, int(budget_bytes))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.retired = 0
        self._closed = False

    # ------------------------------------------------------------- keying

    @staticmethod
    def group_key(prefix_assertions, config) -> str:
        """Content address of one warm group's scope-0 state.

        The digest covers the canonical query text of the shared prefix
        *and* every solver knob, namespaced with a ``warm-prefix``
        strategy tag so it can never collide with a proof-cache entry.
        """
        return obligation_digest(list(prefix_assertions),
                                 solver_config_key(config),
                                 "warm-prefix")

    # ----------------------------------------------------------- lifecycle

    def acquire(self, key: str):
        """Check out the pooled ``(solver, base_qbytes)`` for ``key``.

        Returns ``None`` on a miss.  A checked-out solver is removed
        from the pool — callers own it exclusively until they either
        :meth:`release` it back or drop it.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                self.misses += 1
                return None
            self._bytes -= entry.base_qbytes
            self.hits += 1
            return entry.solver, entry.base_qbytes

    def release(self, key: str, solver, base_qbytes: int,
                module: Optional[str] = None) -> None:
        """Return a solver to the pool (or retire it).

        The caller guarantees the solver is back at scope 0 with exactly
        its prefix asserted.  Worn-out solvers (past ``WEAR_FRACTION``
        of the cumulative instantiation budget) and solvers larger than
        the whole budget are dropped here.
        """
        with self._lock:
            if self._closed:
                return
            limit = getattr(solver.config, "max_instantiations", 0) or 0
            if limit and solver.stats.instantiations >= limit * WEAR_FRACTION:
                self.retired += 1
                return
            if base_qbytes > self.budget_bytes:
                self.retired += 1
                return
            old = self._entries.pop(key, None)
            if old is not None:
                # Another request re-warmed the same prefix concurrently;
                # keep the newcomer (fresher learned state), drop ours.
                self._bytes -= old.base_qbytes
            self._entries[key] = _Entry(solver, int(base_qbytes), module)
            self._bytes += int(base_qbytes)
            self._entries.move_to_end(key)
            while self._bytes > self.budget_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.base_qbytes
                self.evictions += 1

    def clear(self) -> None:
        """Drop every pooled context (Session.close / daemon shutdown)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def close(self) -> None:
        """Clear and refuse future releases (acquires just miss)."""
        with self._lock:
            self._closed = True
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------- status

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-able population/effectiveness snapshot (status verb)."""
        with self._lock:
            modules: dict[str, int] = {}
            for entry in self._entries.values():
                if entry.module:
                    modules[entry.module] = modules.get(entry.module, 0) + 1
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "retired": self.retired,
                "modules": modules,
            }
